// Experiment RDS -- reader scaling on the versioned read plane:
//
//   Scan tail latency as the READER population grows, at a fixed write
//   load.  The versioned plane's headline claim (ISSUE 6, PR 6): a
//   versioned scan is one camera fetch-add plus r bounded chain walks --
//   no double collect, no helping round, no seqlock retries -- so its
//   p99 stays flat as readers multiply, while collect-based scans degrade
//   (helping tables grow with the population; seqlock readers retry
//   against every writer-section entry).
//
// Table (one per implementation):
//   RDS: scan p50/p99 vs readers in {1, 4, 16, 64, 128}, 2 writers
//        updating uniformly at full speed, m=256, r=8.
//
// Two clocks per scan, both reported:
//   * wall ns (steady_clock): what a client observes; includes scheduler
//     preemption, so on a host with fewer cores than threads the 64/128-
//     reader cells are dominated by oversubscription for EVERY
//     implementation.
//   * cpu ns (CLOCK_THREAD_CPUTIME_ID): work the scan itself burned;
//     robust to oversubscription, so it is the column the flat-tail
//     acceptance claim is checked against.
//
// Total threads stay within the 192-slot pid capacity (128 readers + 2
// writers + main).
#include <ctime>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

constexpr std::uint32_t kM = 256;
constexpr std::uint32_t kR = 8;
constexpr std::uint32_t kWriters = 2;
const std::vector<std::uint32_t> kReaderSweep{1, 4, 16, 64, 128};

std::uint64_t thread_cpu_nanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

struct Cell {
  Percentiles wall_ns;
  Percentiles cpu_ns;
  double scans_per_second = 0;
};

Cell measure(const std::string& spec, std::uint32_t readers,
             double seconds) {
  auto snap = registry::make_snapshot(spec, kM, readers + kWriters);
  const std::uint32_t workers = readers + kWriters;
  std::atomic<std::uint64_t> total_scans{0};
  std::atomic<std::uint32_t> readers_running{readers};
  std::vector<bench::LatencySampler> wall(readers);
  std::vector<bench::LatencySampler> cpu(readers);

  bench::run_workers(workers, [&](std::uint32_t w, bench::WorkerStats&) {
    Xoshiro256 rng(w + 1);
    if (w < kWriters) {
      // Writers run until the last reader finishes, so every reader cell
      // sees the same write pressure regardless of scheduling skew.
      std::uint64_t v = 0;
      while (readers_running.load(std::memory_order_acquire) != 0) {
        snap->update(static_cast<std::uint32_t>(rng.next() % kM), ++v);
      }
      return;
    }
    std::vector<std::uint32_t> idx(kR);
    std::vector<std::uint64_t> out;
    std::uint64_t scans = 0;
    bench::StopAfter stop(seconds);
    while (!stop.expired()) {
      for (int burst = 0; burst < 16; ++burst) {
        for (std::uint32_t k = 0; k < kR; ++k) {
          idx[k] = static_cast<std::uint32_t>(rng.next() % kM);
        }
        const std::uint64_t c0 = thread_cpu_nanos();
        Timer timer;
        snap->scan(idx, out);
        wall[w - kWriters].add(double(timer.elapsed_nanos()));
        cpu[w - kWriters].add(double(thread_cpu_nanos() - c0));
        ++scans;
      }
    }
    total_scans.fetch_add(scans);
    readers_running.fetch_sub(1, std::memory_order_release);
  });

  bench::LatencySampler merged_wall, merged_cpu;
  for (const auto& s : wall) merged_wall.merge(s);
  for (const auto& s : cpu) merged_cpu.merge(s);
  return Cell{merged_wall.summarize(), merged_cpu.summarize(),
              double(total_scans.load()) / seconds};
}

std::vector<std::string> impl_specs(const std::string& impls_flag) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= impls_flag.size()) {
    std::size_t comma = impls_flag.find(',', pos);
    if (comma == std::string::npos) comma = impls_flag.size();
    if (comma > pos) specs.push_back(impls_flag.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return specs;
}

void run_sweep(const std::vector<std::string>& specs, double seconds,
               bench::JsonReport& report) {
  for (const std::string& spec : specs) {
    TablePrinter table({"readers", "scan p50 cpu", "scan p99 cpu",
                        "scan p50 wall", "scan p99 wall", "scans/s"});
    for (std::uint32_t readers : kReaderSweep) {
      Cell cell = measure(spec, readers, seconds);
      table.add_row({std::to_string(readers),
                     TablePrinter::fmt(cell.cpu_ns.p50, 0) + "ns",
                     TablePrinter::fmt(cell.cpu_ns.p99, 0) + "ns",
                     TablePrinter::fmt(cell.wall_ns.p50, 0) + "ns",
                     TablePrinter::fmt(cell.wall_ns.p99, 0) + "ns",
                     TablePrinter::fmt(cell.scans_per_second / 1e6, 3) +
                         "M"});
      const std::string name =
          "RDS/" + spec + "/readers=" + std::to_string(readers);
      report.add_percentiles(name + "/scan_cpu_ns", cell.cpu_ns);
      report.add_percentiles(name + "/scan_wall_ns", cell.wall_ns);
      report.add(name + "/scans_per_s", cell.scans_per_second);
    }
    table.print(std::cout,
                "RDS: " + spec + " -- scan latency vs readers (m=" +
                    std::to_string(kM) + ", r=" + std::to_string(kR) +
                    ", " + std::to_string(kWriters) +
                    " full-speed writers)");
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("seconds", "0.3", "measured duration per cell");
  flags.define("impls",
               "fig3_cas_fast:value=versioned,fig3_cas_fast,seqlock",
               "comma-separated registry specs to sweep ('help' prints "
               "the catalogue):\n" +
                   registry::snapshot_catalogue());
  flags.define("json", "",
               "also write machine-readable results to this JSON file "
               "(perf-trajectory artifact)");
  if (!flags.parse(argc, argv)) return 1;

  if (flags.get_string("impls") == "help") {
    std::printf("registered snapshot implementations:\n%s",
                registry::snapshot_catalogue().c_str());
    return 0;
  }

  std::printf(
      "Experiment RDS: reader scaling (versioned read plane, ISSUE 6)\n"
      "readers sweep %u..%u at %u full-speed writers; cpu-ns columns are "
      "the oversubscription-robust ones\n\n",
      kReaderSweep.front(), kReaderSweep.back(), kWriters);

  bench::JsonReport report;
  try {
    run_sweep(impl_specs(flags.get_string("impls")),
              flags.get_double("seconds"), report);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::string json_path = flags.get_string("json");
  if (!json_path.empty() && !report.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
