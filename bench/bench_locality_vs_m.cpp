// Experiment LOC -- the paper's Section 1 motivation:
//   "The motivation of this work is to make the complexity of partial
//    scan operations dependent only on the number of components they
//    access (we talk about a local implementation) rather than the total
//    number of components in the shared object."
//
// Regenerated table: steps and wall-clock per partial scan (r fixed) as m
// grows, for every implementation.  Expected shape: the paper's two
// algorithms and the per-component baselines stay flat; the full-snapshot
// extraction baseline grows linearly with m (and its updates too).
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/table.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

void run(std::uint64_t scans, std::uint32_t r) {
  TablePrinter scan_table({"impl", "m", "scan steps", "scan ns",
                           "update steps", "update ns"});
  for (const registry::SnapshotInfo* impl :
       registry::SnapshotRegistry::instance().all()) {
    for (std::uint32_t m : {16u, 128u, 1024u, 8192u}) {
      auto snap = impl->make(m, 3, registry::Options{});
      std::atomic<bool> stop{false};
      OnlineStats scan_steps, update_steps;
      double scan_ns = 0, update_ns = 0;
      bench::run_workers(2, [&](std::uint32_t w, bench::WorkerStats&) {
        if (w == 0) {
          // Updater measures its own cost while providing contention.
          std::uint64_t k = 0;
          Timer timer;
          std::uint64_t count = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            update_steps.add(double(bench::measured_steps(
                [&] { ++k; snap->update(static_cast<std::uint32_t>(k % m), k); })));
            ++count;
          }
          update_ns = timer.elapsed_seconds() * 1e9 / double(count);
        } else {
          std::vector<std::uint32_t> indices(r);
          for (std::uint32_t j = 0; j < r; ++j) indices[j] = j * (m / r);
          std::vector<std::uint64_t> out;
          Timer timer;
          for (std::uint64_t i = 0; i < scans; ++i) {
            scan_steps.add(double(
                bench::measured_steps([&] { snap->scan(indices, out); })));
          }
          scan_ns = timer.elapsed_seconds() * 1e9 / double(scans);
          stop = true;
        }
      });
      scan_table.add_row(
          {impl->name, TablePrinter::fmt(std::uint64_t(m)),
           impl->counts_steps ? TablePrinter::fmt(scan_steps.mean()) : "-",
           TablePrinter::fmt(scan_ns, 0),
           impl->counts_steps ? TablePrinter::fmt(update_steps.mean())
                              : "-",
           TablePrinter::fmt(update_ns, 0)});
    }
  }
  scan_table.print(
      std::cout,
      "LOC: partial-scan cost vs m (r=" + std::to_string(r) +
          ", 1 concurrent updater) -- paper: local implementations stay "
          "flat, full-snapshot extraction grows with m");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("scans", "20000", "scans per configuration");
  flags.define("r", "4", "partial scan width");
  if (!flags.parse(argc, argv)) return 1;

  std::printf("Experiment LOC: locality of partial scans (Section 1 "
              "motivation)\n\n");
  run(flags.get_uint("scans"), static_cast<std::uint32_t>(flags.get_uint("r")));
  return 0;
}
