// Experiment T1 -- Theorem 1 (Figure 1, partial snapshot from registers):
//   "processes perform O((Cu + 1) * r + A) steps per scan and
//    O(Cu * Cs * rmax + A) steps per update", where A is the active-set
//    term (O(n) for our register active set; see DESIGN.md substitutions).
//
// Regenerated tables:
//   T1a: scan steps vs r at fixed contention -- linear in r.
//   T1b: scan steps vs number of concurrent updaters Cu at fixed r -- the
//        (Cu + 1) factor: collects repeat until the window is quiet or the
//        helping path fires.
//   T1c: update steps vs number of concurrent scanners Cs and their scan
//        width rmax -- the Cs * rmax embedded-scan term.
#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <iostream>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/op_stats.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

// The implementation under measurement; --impl swaps in any registered
// spec (the tables are stated for Figure 1, the default).
std::string g_impl_spec = "fig1_register";

std::unique_ptr<core::PartialSnapshot> make_snap(std::uint32_t m,
                                                 std::uint32_t n) {
  return registry::make_snapshot(g_impl_spec, m, n);
}

// T1a: scan steps vs r, one background updater.
void table_scan_vs_r(std::uint64_t scans) {
  TablePrinter table({"r", "mean scan steps", "p99 scan steps",
                      "mean collects", "steps / r"});
  std::vector<double> xs, ys;
  for (std::uint32_t r : {1u, 2u, 4u, 8u, 16u, 32u}) {
    constexpr std::uint32_t kM = 64;
    auto snap_ptr = make_snap(kM, 2);
    auto& snap = *snap_ptr;
    std::atomic<bool> stop{false};
    std::vector<double> samples;
    OnlineStats collects;
    bench::run_workers(2, [&](std::uint32_t w, bench::WorkerStats&) {
      if (w == 0) {
        std::uint64_t k = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          ++k;
          snap.update(k % kM ? 0 : 1, k);
        }
      } else {
        std::vector<std::uint32_t> indices(r);
        for (std::uint32_t j = 0; j < r; ++j) indices[j] = j;
        std::vector<std::uint64_t> out;
        samples.reserve(scans);
        for (std::uint64_t i = 0; i < scans; ++i) {
          samples.push_back(
              double(bench::measured_steps([&] { snap.scan(indices, out); })));
          collects.add(double(core::tls_op_stats().collects));
        }
        stop = true;
      }
    });
    OnlineStats stats;
    for (double s : samples) stats.add(s);
    xs.push_back(double(r));
    ys.push_back(stats.mean());
    table.add_row({TablePrinter::fmt(std::uint64_t(r)),
                   TablePrinter::fmt(stats.mean()),
                   TablePrinter::fmt(percentile(samples, 99)),
                   TablePrinter::fmt(collects.mean()),
                   TablePrinter::fmt(stats.mean() / double(r))});
  }
  table.print(std::cout,
              "T1a: Figure-1 scan steps vs r (m=64, 1 updater) -- paper: "
              "O((Cu+1) r + A), linear in r");
  auto fit = fit_power_law(xs, ys);
  std::printf("power-law fit: steps ~ r^%.2f (r^2=%.3f) -- expect "
              "exponent <= ~1 (additive active-set term flattens small r)\n\n",
              fit.slope, fit.r2);
}

// T1b: scan steps vs updater count.
void table_scan_vs_updaters(std::uint64_t scans) {
  TablePrinter table({"updaters Cu", "mean scan steps", "p99 scan steps",
                      "mean collects", "borrowed %"});
  constexpr std::uint32_t kM = 16;
  constexpr std::uint32_t kR = 4;
  for (std::uint32_t cu : {0u, 1u, 2u, 3u}) {
    auto snap_ptr = make_snap(kM, cu + 2);
    auto& snap = *snap_ptr;
    std::atomic<bool> stop{false};
    std::vector<double> samples;
    OnlineStats collects;
    std::uint64_t borrowed = 0;
    bench::run_workers(cu + 1, [&](std::uint32_t w, bench::WorkerStats&) {
      if (w < cu) {
        std::uint64_t k = 0;
        // Hammer the scanned components specifically.
        while (!stop.load(std::memory_order_relaxed)) {
          ++k;
          snap.update(static_cast<std::uint32_t>(k % kR), k);
        }
      } else {
        std::vector<std::uint32_t> indices(kR);
        for (std::uint32_t j = 0; j < kR; ++j) indices[j] = j;
        std::vector<std::uint64_t> out;
        for (std::uint64_t i = 0; i < scans; ++i) {
          samples.push_back(
              double(bench::measured_steps([&] { snap.scan(indices, out); })));
          collects.add(double(core::tls_op_stats().collects));
          if (core::tls_op_stats().borrowed) ++borrowed;
        }
        stop = true;
      }
    });
    OnlineStats stats;
    for (double s : samples) stats.add(s);
    table.add_row({TablePrinter::fmt(std::uint64_t(cu)),
                   TablePrinter::fmt(stats.mean()),
                   TablePrinter::fmt(percentile(samples, 99)),
                   TablePrinter::fmt(collects.mean()),
                   TablePrinter::fmt(100.0 * double(borrowed) /
                                     double(scans))});
  }
  table.print(std::cout,
              "T1b: Figure-1 scan steps vs concurrent updaters (r=4) -- "
              "paper: the (Cu+1) collect factor");
  std::cout << "\n";
}

// T1c: update steps vs scanner count and scan width (the Cs*rmax term).
void table_update_vs_scanners(std::uint64_t updates) {
  TablePrinter table({"scanners Cs", "rmax", "mean update steps",
                      "mean embedded args", "mean getSet size"});
  constexpr std::uint32_t kM = 64;
  for (std::uint32_t cs : {0u, 1u, 2u}) {
    for (std::uint32_t rmax : {2u, 8u}) {
      if (cs == 0 && rmax != 2) continue;  // degenerate duplicates
      auto snap_ptr = make_snap(kM, cs + 2);
      auto& snap = *snap_ptr;
      std::atomic<bool> stop{false};
      OnlineStats steps, args, getset;
      bench::run_workers(cs + 1, [&](std::uint32_t w, bench::WorkerStats&) {
        if (w < cs) {
          // Scanner w repeatedly scans its own rmax-wide window.
          std::vector<std::uint32_t> indices(rmax);
          for (std::uint32_t j = 0; j < rmax; ++j) {
            indices[j] = (w * rmax + j) % kM;
          }
          std::vector<std::uint64_t> out;
          while (!stop.load(std::memory_order_relaxed)) {
            snap.scan(indices, out);
          }
        } else {
          std::uint64_t k = 0;
          for (std::uint64_t i = 0; i < updates; ++i) {
            steps.add(double(
                bench::measured_steps([&] { snap.update(kM - 1, ++k); })));
            args.add(double(core::tls_op_stats().embedded_args));
            getset.add(double(core::tls_op_stats().getset_size));
          }
          stop = true;
        }
      });
      table.add_row({TablePrinter::fmt(std::uint64_t(cs)),
                     TablePrinter::fmt(std::uint64_t(rmax)),
                     TablePrinter::fmt(steps.mean()),
                     TablePrinter::fmt(args.mean()),
                     TablePrinter::fmt(getset.mean())});
    }
  }
  table.print(std::cout,
              "T1c: Figure-1 update steps vs scanners and their width -- "
              "paper: O(Cu Cs rmax + A); embedded args track Cs*rmax");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("scans", "30000", "scans per configuration");
  flags.define("updates", "30000", "updates per configuration");
  flags.define("impl", "fig1_register",
               "registry spec of the implementation to measure:\n" +
                   registry::snapshot_catalogue());
  if (!flags.parse(argc, argv)) return 1;
  g_impl_spec = flags.get_string("impl");

  std::printf("Experiment T1: Figure 1, partial snapshot from registers "
              "(Theorem 1)\n\n");
  try {
    table_scan_vs_r(flags.get_uint("scans"));
    table_scan_vs_updaters(flags.get_uint("scans"));
    table_update_vs_scanners(flags.get_uint("updates"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
