// Experiment T3 -- Theorem 3 (Figure 3, local partial scans from CAS):
//   "worst-case time O(r^2) for partial scans.  Moreover, the amortized
//    complexity of any execution is O(r^2 + Cu-dot) per scan and
//    O(Cs^2 rmax^2) per update."
//
// Regenerated tables:
//   T3a: scan steps vs r under adversarial updaters hammering exactly the
//        scanned components: worst case bounded by (2r+1) collects of r
//        reads -- the quadratic envelope; uncontended cost is 2r.
//   T3b: locality -- scan steps vs m at fixed r: flat (the paper's core
//        claim; contrast bench_locality_vs_m for the cross-impl view).
//   T3c: worst-case collects per scan vs r: never exceeds 2r+1.
//   T3d: amortized update steps vs scanners and width (Cs^2 rmax^2 term).
#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <iostream>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/op_stats.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

// The implementation under measurement; --impl swaps in any registered
// spec (the tables are stated for Figure 3, the default).
std::string g_impl_spec = "fig3_cas";

std::unique_ptr<core::PartialSnapshot> make_snap(std::uint32_t m,
                                                 std::uint32_t n) {
  return registry::make_snapshot(g_impl_spec, m, n);
}

// T3a + T3c: scan cost/collect distribution vs r under attack.
void table_scan_vs_r(std::uint64_t scans) {
  TablePrinter table({"r", "mean steps", "p99 steps", "max steps",
                      "max collects", "2r+1 bound", "mean steps (idle)"});
  std::vector<double> xs, ys;
  for (std::uint32_t r : {1u, 2u, 4u, 8u, 16u}) {
    constexpr std::uint32_t kM = 32;
    // Adversarial phase: two updaters rotate over the scanned prefix.
    auto snap_ptr = make_snap(kM, 4);
    auto& snap = *snap_ptr;
    std::atomic<bool> stop{false};
    std::vector<double> samples;
    std::uint64_t max_collects = 0;
    bench::run_workers(3, [&](std::uint32_t w, bench::WorkerStats&) {
      if (w < 2) {
        std::uint64_t k = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          ++k;
          snap.update(static_cast<std::uint32_t>(k % r), k);
        }
      } else {
        std::vector<std::uint32_t> indices(r);
        for (std::uint32_t j = 0; j < r; ++j) indices[j] = j;
        std::vector<std::uint64_t> out;
        for (std::uint64_t i = 0; i < scans; ++i) {
          samples.push_back(
              double(bench::measured_steps([&] { snap.scan(indices, out); })));
          max_collects =
              std::max(max_collects, core::tls_op_stats().collects);
        }
        stop = true;
      }
    });
    // Idle phase: no contention.
    double idle_mean = 0;
    {
      auto idle_ptr = make_snap(kM, 2);
      auto& idle_snap = *idle_ptr;
      exec::ScopedPid pid(0);
      std::vector<std::uint32_t> indices(r);
      for (std::uint32_t j = 0; j < r; ++j) indices[j] = j;
      std::vector<std::uint64_t> out;
      OnlineStats idle;
      for (int i = 0; i < 2000; ++i) {
        idle.add(double(
            bench::measured_steps([&] { idle_snap.scan(indices, out); })));
      }
      idle_mean = idle.mean();
    }
    OnlineStats stats;
    for (double s : samples) stats.add(s);
    xs.push_back(double(r));
    ys.push_back(stats.max());
    table.add_row({TablePrinter::fmt(std::uint64_t(r)),
                   TablePrinter::fmt(stats.mean()),
                   TablePrinter::fmt(percentile(samples, 99)),
                   TablePrinter::fmt(stats.max()),
                   TablePrinter::fmt(max_collects),
                   TablePrinter::fmt(std::uint64_t(2 * r + 1)),
                   TablePrinter::fmt(idle_mean)});
  }
  table.print(std::cout,
              "T3a/T3c: Figure-3 scan cost vs r under adversarial updates "
              "-- paper: worst case O(r^2), collects <= 2r+1; idle cost 2r");
  auto fit = fit_power_law(xs, ys);
  std::printf("power-law fit of WORST-CASE steps: ~ r^%.2f (r^2=%.3f) -- "
              "paper's envelope is quadratic (exponent <= 2)\n\n",
              fit.slope, fit.r2);
}

// T3b: locality -- scan steps vs m at fixed r.
void table_scan_vs_m(std::uint64_t scans) {
  TablePrinter table({"m", "mean scan steps", "max scan steps"});
  constexpr std::uint32_t kR = 4;
  for (std::uint32_t m : {8u, 64u, 512u, 4096u}) {
    auto snap_ptr = make_snap(m, 3);
    auto& snap = *snap_ptr;
    std::atomic<bool> stop{false};
    std::vector<double> samples;
    bench::run_workers(2, [&](std::uint32_t w, bench::WorkerStats&) {
      if (w == 0) {
        std::uint64_t k = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          ++k;
          snap.update(static_cast<std::uint32_t>(k % m), k);
        }
      } else {
        std::vector<std::uint32_t> indices(kR);
        for (std::uint32_t j = 0; j < kR; ++j) indices[j] = j * (m / kR);
        std::vector<std::uint64_t> out;
        for (std::uint64_t i = 0; i < scans; ++i) {
          samples.push_back(
              double(bench::measured_steps([&] { snap.scan(indices, out); })));
        }
        stop = true;
      }
    });
    OnlineStats stats;
    for (double s : samples) stats.add(s);
    table.add_row({TablePrinter::fmt(std::uint64_t(m)),
                   TablePrinter::fmt(stats.mean()),
                   TablePrinter::fmt(stats.max())});
  }
  table.print(std::cout,
              "T3b: Figure-3 scan steps vs m (r=4, 1 updater) -- paper: "
              "LOCAL, independent of m");
  std::cout << "\n";
}

// T3d: update cost vs scanners/width.
void table_update_vs_scanners(std::uint64_t updates) {
  TablePrinter table({"scanners Cs", "rmax", "mean update steps",
                      "p99 update steps", "mean embedded args"});
  constexpr std::uint32_t kM = 64;
  struct Config {
    std::uint32_t cs;
    std::uint32_t rmax;
  };
  for (Config config : {Config{0, 2}, Config{1, 2}, Config{1, 8},
                        Config{2, 2}, Config{2, 8}}) {
    auto snap_ptr = make_snap(kM, config.cs + 2);
    auto& snap = *snap_ptr;
    std::atomic<bool> stop{false};
    std::vector<double> samples;
    OnlineStats args;
    bench::run_workers(
        config.cs + 1, [&](std::uint32_t w, bench::WorkerStats&) {
          if (w < config.cs) {
            std::vector<std::uint32_t> indices(config.rmax);
            for (std::uint32_t j = 0; j < config.rmax; ++j) {
              indices[j] = (w * config.rmax + j) % kM;
            }
            std::vector<std::uint64_t> out;
            while (!stop.load(std::memory_order_relaxed)) {
              snap.scan(indices, out);
            }
          } else {
            std::uint64_t k = 0;
            for (std::uint64_t i = 0; i < updates; ++i) {
              samples.push_back(double(bench::measured_steps(
                  [&] { snap.update(kM - 1, ++k); })));
              args.add(double(core::tls_op_stats().embedded_args));
            }
            stop = true;
          }
        });
    OnlineStats stats;
    for (double s : samples) stats.add(s);
    table.add_row({TablePrinter::fmt(std::uint64_t(config.cs)),
                   TablePrinter::fmt(std::uint64_t(config.rmax)),
                   TablePrinter::fmt(stats.mean()),
                   TablePrinter::fmt(percentile(samples, 99)),
                   TablePrinter::fmt(args.mean())});
  }
  table.print(std::cout,
              "T3d: Figure-3 update steps vs announced scanners -- paper: "
              "amortized O(Cs^2 rmax^2) per update");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("scans", "30000", "scans per configuration");
  flags.define("updates", "30000", "updates per configuration");
  flags.define("impl", "fig3_cas",
               "registry spec of the implementation to measure:\n" +
                   registry::snapshot_catalogue());
  if (!flags.parse(argc, argv)) return 1;
  g_impl_spec = flags.get_string("impl");

  std::printf("Experiment T3: Figure 3, local partial scans (Theorem 3)\n\n");
  try {
    table_scan_vs_r(flags.get_uint("scans"));
    table_scan_vs_m(flags.get_uint("scans"));
    table_update_vs_scanners(flags.get_uint("updates"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
