// Experiment ABL-3 -- Section 4's second modification:
//   "we change the write performed by an update to a compare&swap.  This
//    allows us to bound the number of collects done by a partial scan of r
//    components in terms of r rather than the contention."
//
// Regenerated table: Figure 3 with CAS-published updates (the paper) vs
// the same algorithm publishing with plain overwrites (falling back to
// Figure 1's per-process helping rule).  Reported: collects per scan
// (mean/p99/max) as updater contention grows.  Expected shape: in CAS
// mode the max stays <= 2r+1 regardless of contention; in write mode it
// grows with the number of updaters (bounded only by 2n+3).
#include <atomic>
#include <cstdio>
#include <iostream>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/op_stats.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

constexpr std::uint32_t kM = 8;
constexpr std::uint32_t kR = 2;

void run(std::uint64_t scans) {
  TablePrinter table({"update publish", "updaters", "mean collects",
                      "p99 collects", "max collects", "bound",
                      "cas failure %"});
  for (bool use_cas : {true, false}) {
    for (std::uint32_t updaters : {1u, 2u, 3u}) {
      // Both variants come from the registry spec language: the paper's
      // algorithm and its ABL-3 ablation differ by one option.
      auto snap_ptr = registry::make_snapshot(
          use_cas ? "fig3_cas" : "fig3_cas:cas=false", kM, updaters + 1);
      auto& snap = *snap_ptr;
      std::atomic<bool> stop{false};
      std::vector<double> collects;
      std::atomic<std::uint64_t> updates{0}, cas_failures{0};
      bench::run_workers(
          updaters + 1, [&](std::uint32_t w, bench::WorkerStats&) {
            if (w < updaters) {
              std::uint64_t k = 0;
              while (!stop.load(std::memory_order_relaxed)) {
                ++k;
                snap.update(static_cast<std::uint32_t>(k % kR), k);
                updates.fetch_add(1, std::memory_order_relaxed);
                if (core::tls_op_stats().cas_failed) {
                  cas_failures.fetch_add(1, std::memory_order_relaxed);
                }
              }
            } else {
              std::vector<std::uint32_t> indices{0, 1};
              std::vector<std::uint64_t> out;
              collects.reserve(scans);
              for (std::uint64_t i = 0; i < scans; ++i) {
                snap.scan(indices, out);
                collects.push_back(double(core::tls_op_stats().collects));
              }
              stop = true;
            }
          });
      OnlineStats stats;
      for (double c : collects) stats.add(c);
      double failure_pct =
          updates.load() == 0
              ? 0.0
              : 100.0 * double(cas_failures.load()) / double(updates.load());
      table.add_row(
          {use_cas ? "compare&swap (paper)" : "plain write (ablation)",
           TablePrinter::fmt(std::uint64_t(updaters)),
           TablePrinter::fmt(stats.mean()),
           TablePrinter::fmt(percentile(collects, 99)),
           TablePrinter::fmt(stats.max()),
           use_cas ? "2r+1 = " + std::to_string(2 * kR + 1)
                   : "2n+3 = " + std::to_string(2 * (updaters + 1) + 3),
           use_cas ? TablePrinter::fmt(failure_pct) : "-"});
    }
  }
  table.print(std::cout,
              "ABL-3: CAS-published vs write-published updates (Section 4) "
              "-- paper: CAS bounds scan collects by r, not contention");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("scans", "30000", "scans per configuration");
  if (!flags.parse(argc, argv)) return 1;
  std::printf("Experiment ABL-3: compare&swap vs plain-write updates\n\n");
  run(flags.get_uint("scans"));
  return 0;
}
