// Experiment T2 -- Theorem 2 (Figure 2 active set):
//   "joins and leaves take O(1) steps.  Moreover, the amortized time
//    complexity of any execution is O(1) per join, O(C-dot) per leave and
//    O(C) per getSet."
//
// Regenerated tables:
//   T2a: worst-case join/leave step counts across a churn-heavy execution
//        (paper: O(1) worst case -- measured: constants 2 and 1), compared
//        with the register active set (also O(1)) and with getSet costs.
//   T2b: amortized getSet steps as churn volume grows, with the published
//        skip list on (paper algorithm) and off (strawman): the paper's
//        claim is that cost tracks contention C, not history length.
//   T2c: amortized cost per operation type vs contention.
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>

#include "activeset/faicas_active_set.h"  // published_intervals()
#include "bench/harness.h"
#include "common/cli.h"
#include "common/table.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

// T2a: worst-case op costs over a churny execution.
void table_worst_case(std::uint64_t rounds) {
  TablePrinter table({"active-set", "op", "worst-case steps", "mean steps",
                      "ops"});
  for (const char* spec : {"faicas", "register"}) {
    std::unique_ptr<activeset::ActiveSet> as =
        registry::make_active_set(spec, 4);
    OnlineStats join_steps, leave_steps, getset_steps;
    std::uint64_t join_max = 0, leave_max = 0, getset_max = 0;
    auto merged = bench::run_workers(
        4, [&](std::uint32_t w, bench::WorkerStats&) {
          OnlineStats js, ls, gs;
          std::uint64_t jm = 0, lm = 0, gm = 0;
          std::vector<std::uint32_t> members;
          for (std::uint64_t i = 0; i < rounds; ++i) {
            std::uint64_t s = bench::measured_steps([&] { as->join(); });
            js.add(double(s));
            jm = std::max(jm, s);
            if (w == 0 && i % 8 == 0) {
              s = bench::measured_steps([&] { as->get_set(members); });
              gs.add(double(s));
              gm = std::max(gm, s);
            }
            s = bench::measured_steps([&] { as->leave(); });
            ls.add(double(s));
            lm = std::max(lm, s);
          }
          static std::mutex mu;
          std::scoped_lock lock(mu);
          join_steps.merge(js);
          leave_steps.merge(ls);
          getset_steps.merge(gs);
          join_max = std::max(join_max, jm);
          leave_max = std::max(leave_max, lm);
          getset_max = std::max(getset_max, gm);
        });
    (void)merged;
    std::string name(as->name());
    table.add_row({name, "join", TablePrinter::fmt(join_max),
                   TablePrinter::fmt(join_steps.mean()),
                   TablePrinter::fmt(join_steps.count())});
    table.add_row({name, "leave", TablePrinter::fmt(leave_max),
                   TablePrinter::fmt(leave_steps.mean()),
                   TablePrinter::fmt(leave_steps.count())});
    table.add_row({name, "getSet", TablePrinter::fmt(getset_max),
                   TablePrinter::fmt(getset_steps.mean()),
                   TablePrinter::fmt(getset_steps.count())});
  }
  table.print(std::cout,
              "T2a: worst-case step counts under churn (4 processes) -- "
              "paper: join/leave O(1) worst case");
  std::cout << "\n";
}

// T2b: amortized getSet cost vs churn volume (history length).
void table_amortized_vs_history(std::uint64_t max_rounds) {
  TablePrinter table({"churn volume", "getSet steps (skip list ON)",
                      "getSet steps (skip list OFF)",
                      "published intervals"});
  for (std::uint64_t volume = max_rounds / 8; volume <= max_rounds;
       volume *= 2) {
    double on_cost = 0, off_cost = 0;
    std::size_t intervals = 0;
    for (bool publish : {true, false}) {
      auto as_ptr = registry::make_active_set(
          publish ? "faicas" : "faicas:publish=false", 2);
      auto& as = dynamic_cast<activeset::FaiCasActiveSet&>(*as_ptr);
      exec::ScopedPid pid(0);
      std::vector<std::uint32_t> members;
      OnlineStats cost;
      for (std::uint64_t i = 0; i < volume; ++i) {
        as.join();
        as.leave();
        if (i % 16 == 15) {
          cost.add(double(bench::measured_steps([&] { as.get_set(members); })));
        }
      }
      if (publish) {
        on_cost = cost.mean();
        intervals = as.published_intervals();
      } else {
        off_cost = cost.mean();
      }
    }
    table.add_row({TablePrinter::fmt(volume), TablePrinter::fmt(on_cost),
                   TablePrinter::fmt(off_cost),
                   TablePrinter::fmt(std::uint64_t(intervals))});
  }
  table.print(std::cout,
              "T2b: amortized getSet steps vs churn volume -- paper: cost "
              "tracks contention, not history (skip-list strawman OFF "
              "grows linearly)");
  std::cout << "\n";
}

// T2c: amortized per-op costs vs contention (concurrent churners).
void table_amortized_vs_contention(std::uint64_t rounds) {
  TablePrinter table({"churners C", "amortized join", "amortized leave",
                      "amortized getSet", "total steps/op"});
  for (std::uint32_t churners : {1u, 2u, 3u, 4u}) {
    auto as_ptr = registry::make_active_set("faicas", churners + 1);
    auto& as = *as_ptr;
    OnlineStats getset_cost;
    std::mutex mu;
    auto merged = bench::run_workers(
        churners + 1, [&](std::uint32_t w, bench::WorkerStats& stats) {
          if (w < churners) {
            for (std::uint64_t i = 0; i < rounds; ++i) {
              std::uint64_t s = bench::measured_steps([&] {
                as.join();
                as.leave();
              });
              stats.steps_per_op.add(double(s) / 2);
              stats.ops += 2;
            }
          } else {
            std::vector<std::uint32_t> members;
            OnlineStats local;
            for (std::uint64_t i = 0; i < rounds / 4; ++i) {
              std::uint64_t s =
                  bench::measured_steps([&] { as.get_set(members); });
              local.add(double(s));
              stats.ops += 1;
            }
            std::scoped_lock lock(mu);
            getset_cost.merge(local);
          }
        });
    // Amortized join+leave is 3 steps by construction; report measured.
    table.add_row(
        {TablePrinter::fmt(std::uint64_t(churners)), "2.00 (exact)",
         "1.00 (exact)", TablePrinter::fmt(getset_cost.mean()),
         TablePrinter::fmt(merged.steps_per_op.mean())});
  }
  table.print(std::cout,
              "T2c: amortized step costs vs contention -- paper: O(1) "
              "join, O(C-dot) leave, O(C) getSet");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("rounds", "20000", "join/leave rounds per churner");
  flags.define("history", "65536", "max churn volume for the history sweep");
  if (!flags.parse(argc, argv)) return 1;

  std::printf("Experiment T2: the Figure 2 active set (Theorem 2)\n\n");
  table_worst_case(flags.get_uint("rounds") / 4);
  table_amortized_vs_history(flags.get_uint("history"));
  table_amortized_vs_contention(flags.get_uint("rounds"));
  return 0;
}
