// Experiment CMP -- the practical comparison the paper motivates
// (Section 1: unpredictable, overlapping queries over a large vector;
// Section 5: relation to complete-scan algorithms):
//
//   Who wins, by how much, and where is the crossover as the partial-scan
//   width r approaches m?
//
// Regenerated tables:
//   CMPa: mixed-workload throughput (ops/s) per implementation across
//         update fractions, at small r << m.
//   CMPb: crossover sweep -- scan-only throughput as r grows toward m:
//         the full-snapshot baseline becomes competitive only when scans
//         are nearly complete; the paper's algorithms win for r << m.
//   CMPc: churn -- worker threads join and leave (ThreadHandle
//         register/release per burst) while a grower adds components
//         mid-run; the dynamic-membership workload the static API could
//         not express.
//   CMPz: Zipf-skewed churn -- re-registration frequency follows a Zipf
//         law over worker rank, so hot pids hand their pid back almost
//         every burst while cold pids stay parked on theirs; the
//         skewed-lifetime population (a few frantic clients, a long tail
//         of idle ones) that uniform churn cannot model.  Lowest-free pid
//         reuse keeps the live pid range dense through all of it.
//   CMPg: grow-heavy churn -- add_components throughput itself (racing
//         growers through the reserve/publish protocol, update/scan
//         traffic in the background), the component-hot-plug rate a
//         dynamic deployment can sustain.
//   CMPi: batched ingest -- component writes/s vs batch width
//         k = 1/4/16/64 (update_batch amortizes one announcement and one
//         helping round over k publishes), plus the coalescing front-end
//         (ingest::Coalescer) merging duplicate writes inside a bounded
//         window.  A resident scanner keeps the helping machinery live,
//         so the k=1 column pays the full per-update protocol the batch
//         spreads over k.
//
// Wall-clock numbers are hardware-specific; the *shape* (ordering and
// crossover region) is the reproduced result.  StarvationError cannot
// occur here (caps are disabled), so non-wait-free baselines may in
// principle stall; at this host's contention levels they do not.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include <fstream>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/cas_psnap.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "exec/thread_registry.h"
#include "ingest/coalescer.h"
#include "registry/registry.h"
#include "runtime/trace.h"
#include "workload/workload.h"

using namespace psnap;

namespace {

// Specs to compare: either every registered implementation, or the comma-
// separated --impls list (each entry a registry spec, so ablation options
// like "fig3_cas:cas=false" work from the command line).  Specs themselves
// use commas between options ("fig3_cas:shards=4,affinity=segment"), so a
// token only STARTS a new spec when it looks like a name -- contains a ':'
// or no '=' at all; bare key=value tokens continue the previous spec.
std::vector<std::string> impl_specs(const std::string& impls_flag) {
  std::vector<std::string> specs;
  if (impls_flag.empty()) {
    for (const registry::SnapshotInfo* info :
         registry::SnapshotRegistry::instance().all()) {
      specs.push_back(info->name);
    }
  } else {
    std::size_t pos = 0;
    while (pos <= impls_flag.size()) {
      std::size_t comma = impls_flag.find(',', pos);
      if (comma == std::string::npos) comma = impls_flag.size();
      if (comma > pos) {
        std::string token = impls_flag.substr(pos, comma - pos);
        const bool starts_spec =
            token.find(':') != std::string::npos ||
            token.find('=') == std::string::npos;
        if (!starts_spec && !specs.empty()) {
          specs.back() += "," + token;
        } else {
          specs.push_back(std::move(token));
        }
      }
      pos = comma + 1;
    }
  }
  return specs;
}

// Builds a spec's snapshot with an ingest-knob sink, so the universal
// reclaim=/shards=/affinity= options work from --impls (with the
// registry's did-you-mean diagnostics for typos).  affinity=segment
// registers workers shard-affine, which draws pids from blocks spanning
// the FULL registry capacity -- the object is then sized to it (the
// adaptive watermark keeps per-pid walks bounded by the live range, and
// the default path keeps its historical sizing so trajectory numbers
// stay comparable).
struct BuiltSnapshot {
  std::unique_ptr<core::PartialSnapshot> snap;
  registry::IngestKnobs knobs;
  std::uint32_t affinity_shards = 1;  // for bench::run_workers_affine
};

BuiltSnapshot make_bench_snapshot(const std::string& spec, std::uint32_t m,
                                  std::uint32_t max_threads) {
  BuiltSnapshot built;
  built.snap = registry::make_snapshot(spec, m, max_threads, &built.knobs);
  if (built.knobs.affinity == "segment") {
    built.snap = registry::make_snapshot(
        spec, m, exec::ThreadRegistry::kMaxCapacity, &built.knobs);
    built.affinity_shards = std::max(1u, built.snap->reclaim_shards());
  }
  return built;
}

// Mixed workload: each worker runs an OpStream for a fixed duration.
// Scans are individually timed into a bounded LatencySampler so the tables
// report tail latency next to throughput (the averages hide exactly the
// reader-starvation effects the versioned plane exists to remove).
struct MixedResult {
  double ops_per_second = 0;
  Percentiles scan_ns;
};

MixedResult mixed_throughput(const std::string& spec, std::uint32_t m,
                             std::uint32_t r, std::uint32_t workers,
                             double update_fraction, double seconds) {
  BuiltSnapshot built = make_bench_snapshot(spec, m, workers);
  auto& snap = built.snap;
  std::atomic<std::uint64_t> total_ops{0};
  std::vector<bench::LatencySampler> samplers(workers);
  bench::run_workers_affine(workers, built.affinity_shards,
                            [&](std::uint32_t w, bench::WorkerStats&) {
    workload::OpMix mix;
    mix.update_fraction = update_fraction;
    mix.scan_r = r;
    mix.scan_kind = workload::ScanSetKind::kUniform;
    workload::OpStream stream(mix, m, /*seed=*/w + 1);
    workload::Op op;
    std::vector<std::uint64_t> out;
    std::uint64_t ops = 0;
    bench::StopAfter stop(seconds);
    while (!stop.expired()) {
      for (int burst = 0; burst < 64; ++burst) {
        stream.next(op);
        if (op.is_update) {
          snap->update(op.update_index, ops);
        } else {
          auto t0 = std::chrono::steady_clock::now();
          snap->scan(op.scan_set, out);
          auto t1 = std::chrono::steady_clock::now();
          samplers[w].add(static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()));
        }
        ++ops;
      }
    }
    total_ops.fetch_add(ops);
  });
  bench::LatencySampler merged;
  for (const auto& s : samplers) merged.merge(s);
  return MixedResult{double(total_ops.load()) / seconds,
                     merged.summarize()};
}

void table_mixed(const std::vector<std::string>& specs,
                 std::uint32_t workers, double seconds,
                 bench::JsonReport& report) {
  constexpr std::uint32_t kM = 256;
  constexpr std::uint32_t kR = 4;
  TablePrinter table({"impl", "10% updates ops/s", "50% updates ops/s",
                      "90% updates ops/s", "scan p50/p99 @50%"});
  for (const std::string& spec : specs) {
    std::vector<std::string> row{spec};
    std::string tail;
    for (double uf : {0.1, 0.5, 0.9}) {
      MixedResult result =
          mixed_throughput(spec, kM, kR, workers, uf, seconds);
      row.push_back(TablePrinter::fmt(result.ops_per_second / 1e6, 3) + "M");
      const std::string name =
          "CMPa/" + spec + "/updates=" +
          std::to_string(static_cast<int>(uf * 100)) + "%";
      report.add(name, result.ops_per_second);
      report.add_percentiles(name + "/scan_ns", result.scan_ns);
      if (uf == 0.5) {
        tail = TablePrinter::fmt(result.scan_ns.p50, 0) + "/" +
               TablePrinter::fmt(result.scan_ns.p99, 0) + "ns";
      }
    }
    row.push_back(std::move(tail));
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "CMPa: mixed-workload throughput, m=256, r=4, " +
                  std::to_string(workers) +
                  " threads -- paper: local algorithms win when r << m");
  std::cout << "\n";
}

void table_crossover(const std::vector<std::string>& specs,
                     std::uint32_t workers, double seconds,
                     bench::JsonReport& report) {
  constexpr std::uint32_t kM = 256;
  TablePrinter table({"impl", "r=2", "r=16", "r=64", "r=256(=m)"});
  for (const std::string& spec : specs) {
    std::vector<std::string> row{spec};
    for (std::uint32_t r : {2u, 16u, 64u, 256u}) {
      MixedResult result =
          mixed_throughput(spec, kM, r, workers, 0.3, seconds);
      row.push_back(TablePrinter::fmt(result.ops_per_second / 1e6, 3) + "M");
      const std::string name = "CMPb/" + spec + "/r=" + std::to_string(r);
      report.add(name, result.ops_per_second);
      report.add_percentiles(name + "/scan_ns", result.scan_ns);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "CMPb: throughput vs scan width r (m=256, 30% updates) -- "
              "paper: crossover only as r approaches m");
  std::cout << "\n";
}

// Churn throughput: workers re-register for every burst (thread lifecycle
// churn through the process-wide ThreadRegistry) while a grower thread
// keeps extending the component space; scans draw from the component
// range current at burst start.
struct ChurnResult {
  double ops_per_second = 0;
  std::uint32_t final_m = 0;
};

ChurnResult churn_throughput(const std::string& spec, std::uint32_t m0,
                             std::uint32_t r, std::uint32_t workers,
                             double seconds) {
  constexpr std::uint32_t kGrowStep = 16;
  const std::uint32_t m_cap = m0 * 16;
  BuiltSnapshot built = make_bench_snapshot(spec, m0, workers + 1);
  auto& snap = built.snap;
  std::atomic<std::uint64_t> total_ops{0};
  std::atomic<bool> stop{false};

  std::thread grower([&] {
    exec::ThreadHandle pid;
    while (!stop.load(std::memory_order_acquire)) {
      if (snap->num_components() + kGrowStep <= m_cap) {
        snap->add_components(kGrowStep);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Xoshiro256 rng(w + 1);
      std::vector<std::uint32_t> idx;
      std::vector<std::uint64_t> out;
      std::uint64_t ops = 0;
      bench::StopAfter stop_after(seconds);
      while (!stop_after.expired()) {
        // One registered life per burst: join, operate, leave (affine to
        // the worker's shard when affinity=segment is in the spec).
        bench::WorkerPid pid(w, built.affinity_shards);
        for (int burst = 0; burst < 256; ++burst) {
          std::uint32_t m = snap->num_components();
          if (rng.next_double() < 0.3) {
            snap->update(static_cast<std::uint32_t>(rng.next() % m), ops);
          } else {
            idx.clear();
            for (std::uint32_t k = 0; k < r; ++k) {
              idx.push_back(static_cast<std::uint32_t>(rng.next() % m));
            }
            snap->scan(idx, out);
          }
          ++ops;
        }
      }
      total_ops.fetch_add(ops);
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  grower.join();
  return ChurnResult{double(total_ops.load()) / seconds,
                     snap->num_components()};
}

void table_churn(const std::vector<std::string>& specs,
                 std::uint32_t workers, double seconds,
                 bench::JsonReport& report) {
  constexpr std::uint32_t kM0 = 64;
  constexpr std::uint32_t kR = 4;
  TablePrinter table({"impl", "churn ops/s", "final m"});
  for (const std::string& spec : specs) {
    ChurnResult result = churn_throughput(spec, kM0, kR, workers, seconds);
    table.add_row({spec, TablePrinter::fmt(result.ops_per_second / 1e6, 3) +
                             "M",
                   std::to_string(result.final_m)});
    report.add("CMPc/" + spec + "/churn", result.ops_per_second);
    report.add("CMPc/" + spec + "/final_m", double(result.final_m),
               "components");
  }
  table.print(std::cout,
              "CMPc: dynamic churn, m0=" + std::to_string(kM0) +
                  " growing in-run, r=" + std::to_string(kR) + ", " +
                  std::to_string(workers) +
                  " workers re-registering per burst");
  std::cout << "\n";
}

// Zipf-skewed churn: worker w re-registers between bursts with probability
// (1/(w+1))^theta -- rank 0 churns essentially every burst, the tail holds
// its pid for the whole run.  No grower: the variable under test is the
// lifetime skew itself.
double zipf_churn_throughput(const std::string& spec, std::uint32_t m,
                             std::uint32_t r, std::uint32_t workers,
                             double theta, double seconds) {
  BuiltSnapshot built = make_bench_snapshot(spec, m, workers);
  auto& snap = built.snap;
  std::atomic<std::uint64_t> total_ops{0};

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const double churn_probability = std::pow(1.0 / (w + 1), theta);
      Xoshiro256 rng(w + 17);
      std::vector<std::uint32_t> idx;
      std::vector<std::uint64_t> out;
      std::uint64_t ops = 0;
      bench::WorkerPid pid(w, built.affinity_shards);
      bench::StopAfter stop_after(seconds);
      while (!stop_after.expired()) {
        if (rng.next_double() < churn_probability) {
          pid.rebind();  // hand the pid back, re-register (lowest free)
        }
        for (int burst = 0; burst < 64; ++burst) {
          if (rng.next_double() < 0.3) {
            snap->update(static_cast<std::uint32_t>(rng.next() % m), ops);
          } else {
            idx.clear();
            for (std::uint32_t k = 0; k < r; ++k) {
              idx.push_back(static_cast<std::uint32_t>(rng.next() % m));
            }
            snap->scan(idx, out);
          }
          ++ops;
        }
      }
      total_ops.fetch_add(ops);
    });
  }
  for (auto& t : threads) t.join();
  return double(total_ops.load()) / seconds;
}

void table_zipf_churn(const std::vector<std::string>& specs,
                      std::uint32_t workers, double seconds,
                      bench::JsonReport& report) {
  constexpr std::uint32_t kM = 256;
  constexpr std::uint32_t kR = 4;
  constexpr double kTheta = 0.99;  // YCSB-style heavy skew
  TablePrinter table({"impl", "zipf churn ops/s"});
  for (const std::string& spec : specs) {
    double ops = zipf_churn_throughput(spec, kM, kR, workers, kTheta,
                                       seconds);
    table.add_row({spec, TablePrinter::fmt(ops / 1e6, 3) + "M"});
    report.add("CMPz/" + spec + "/churn", ops);
  }
  table.print(std::cout,
              "CMPz: Zipf-skewed churn (theta=0.99) -- hot pids "
              "re-register per burst, cold pids parked; m=" +
                  std::to_string(kM) + ", r=" + std::to_string(kR) + ", " +
                  std::to_string(workers) + " workers");
  std::cout << "\n";
}

// Grow-heavy profile: unlike CMPc (which grows in the background of an
// operation workload), this charts add_components throughput ITSELF --
// two grower threads race tight add_components(kGrowStep) loops through
// the reserve/publish protocol while a few workers keep update/scan
// traffic on the object.  The in-order publication wait is the contended
// resource; the segmented storage means growth never copies components.
struct GrowResult {
  double components_per_second = 0;
  std::uint32_t final_m = 0;
};

GrowResult grow_throughput(const std::string& spec, std::uint32_t m0,
                           std::uint32_t workers, double seconds) {
  constexpr std::uint32_t kGrowStep = 16;
  constexpr std::uint32_t kGrowers = 2;
  // Hard ceiling so a fast implementation cannot run the segment
  // directory out of its envelope; the rate uses the growers' own last-
  // add timestamps, so hitting the ceiling early does not skew it.
  constexpr std::uint32_t kMCap = 1u << 18;
  BuiltSnapshot built = make_bench_snapshot(spec, m0, workers + kGrowers);
  auto& snap = built.snap;
  std::atomic<bool> stop{false};
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::int64_t> last_add_ns{0};

  std::vector<std::thread> growers;
  for (std::uint32_t g = 0; g < kGrowers; ++g) {
    growers.emplace_back([&] {
      exec::ThreadHandle pid;
      bench::StopAfter stop_after(seconds);
      while (!stop_after.expired() &&
             snap->num_components() + kGrowStep <= kMCap) {
        snap->add_components(kGrowStep);
      }
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      std::int64_t seen = last_add_ns.load(std::memory_order_relaxed);
      while (ns > seen &&
             !last_add_ns.compare_exchange_weak(seen, ns,
                                                std::memory_order_relaxed)) {
      }
    });
  }

  std::vector<std::thread> threads;
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      bench::WorkerPid pid(w, built.affinity_shards);
      Xoshiro256 rng(w + 5);
      std::vector<std::uint32_t> idx;
      std::vector<std::uint64_t> out;
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::uint32_t m = snap->num_components();
        if (rng.next_double() < 0.3) {
          snap->update(static_cast<std::uint32_t>(rng.next() % m), ops);
        } else {
          idx.clear();
          for (std::uint32_t k = 0; k < 4; ++k) {
            idx.push_back(static_cast<std::uint32_t>(rng.next() % m));
          }
          snap->scan(idx, out);
        }
        ++ops;
      }
    });
  }

  for (auto& t : growers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  const std::uint32_t final_m = snap->num_components();
  double elapsed = double(last_add_ns.load(std::memory_order_relaxed)) / 1e9;
  elapsed = std::max(elapsed, 1e-3);
  return GrowResult{double(final_m - m0) / elapsed, final_m};
}

void table_grow(const std::vector<std::string>& specs, std::uint32_t workers,
                double seconds, bench::JsonReport& report) {
  constexpr std::uint32_t kM0 = 64;
  TablePrinter table({"impl", "grown comps/s", "final m"});
  for (const std::string& spec : specs) {
    GrowResult result = grow_throughput(spec, kM0, workers, seconds);
    table.add_row({spec,
                   TablePrinter::fmt(result.components_per_second / 1e6, 3) +
                       "M",
                   std::to_string(result.final_m)});
    report.add("CMPg/" + spec + "/grow_components_per_s",
               result.components_per_second);
    report.add("CMPg/" + spec + "/final_m", double(result.final_m),
               "components");
  }
  table.print(std::cout,
              "CMPg: grow-heavy churn -- add_components throughput itself "
              "(2 racing growers, step 16, m0=" +
                  std::to_string(kM0) + ", " + std::to_string(workers) +
                  " update/scan workers in the background)");
  std::cout << "\n";
}

// Batched ingest: every worker streams component writes; the batch width
// decides how the stream reaches the snapshot -- singleton update calls
// (k=1), direct update_batch of k distinct components, or the coalescing
// front-end merging a bounded window first.  The metric is raw component
// writes absorbed per second, so the k columns are directly comparable.
double ingest_throughput(const std::string& spec, std::uint32_t m,
                         std::uint32_t k, bool coalesce,
                         std::uint32_t workers, double seconds) {
  BuiltSnapshot built = make_bench_snapshot(spec, m, workers + 2);
  auto& snap = built.snap;
  std::atomic<bool> stop{false};
  // Resident scanner: with an announced scan always in flight, helping is
  // live, and each singleton update pays the getSet + embedded-scan cost
  // that update_batch amortizes over its k publishes.
  std::thread scanner([&] {
    exec::ThreadHandle pid;
    // A wide announced subset (r = m/4): every singleton update's helping
    // round collects all of it, so the per-write protocol cost is real.
    std::vector<std::uint32_t> idx;
    for (std::uint32_t i = 0; i < m; i += 4) idx.push_back(i);
    std::vector<std::uint64_t> out;
    while (!stop.load(std::memory_order_acquire)) snap->scan(idx, out);
  });
  std::atomic<std::uint64_t> total_writes{0};
  bench::run_workers_affine(workers, built.affinity_shards,
                            [&](std::uint32_t w, bench::WorkerStats&) {
    Xoshiro256 rng(w + 3);
    std::uint64_t writes = 0;
    bench::StopAfter stop_after(seconds);
    if (coalesce) {
      ingest::Coalescer::Options co_options;
      co_options.batch = k;
      co_options.coalesce_window = 4 * k;
      ingest::Coalescer ingest(*snap, std::move(co_options));
      while (!stop_after.expired()) {
        for (int burst = 0; burst < 64; ++burst) {
          ingest.write(static_cast<std::uint32_t>(rng.next() % m), writes);
          ++writes;
        }
      }
    } else if (k == 1) {
      while (!stop_after.expired()) {
        for (int burst = 0; burst < 64; ++burst) {
          snap->update(static_cast<std::uint32_t>(rng.next() % m), writes);
          ++writes;
        }
      }
    } else {
      std::vector<core::BatchEntry> entries(k);
      while (!stop_after.expired()) {
        for (int burst = 0; burst < 8; ++burst) {
          // A contiguous block mod m: k distinct components per batch.
          auto base = static_cast<std::uint32_t>(rng.next() % m);
          for (std::uint32_t j = 0; j < k; ++j) {
            entries[j] = {(base + j) % m, writes + j};
          }
          snap->update_batch(std::span<const core::BatchEntry>(entries));
          writes += k;
        }
      }
    }
    total_writes.fetch_add(writes);
  });
  stop.store(true, std::memory_order_release);
  scanner.join();
  return double(total_writes.load()) / seconds;
}

void table_batched_ingest(const std::vector<std::string>& specs,
                          std::uint32_t workers, double seconds,
                          bench::JsonReport& report) {
  constexpr std::uint32_t kM = 256;
  TablePrinter table(
      {"impl", "k=1", "k=4", "k=16", "k=64", "k=16+coalesce"});
  for (const std::string& spec : specs) {
    bool batched = false;
    {
      registry::IngestKnobs probe_knobs;
      auto probe = registry::make_snapshot(spec, 4, 2, &probe_knobs);
      batched =
          probe->batch_atomicity() != core::BatchAtomicity::kUnsupported;
    }
    std::vector<std::string> row{spec};
    for (std::uint32_t k : {1u, 4u, 16u, 64u}) {
      if (k > 1 && !batched) {
        row.push_back("-");
        continue;
      }
      double writes = ingest_throughput(spec, kM, k, /*coalesce=*/false,
                                        workers, seconds);
      row.push_back(TablePrinter::fmt(writes / 1e6, 3) + "M");
      report.add("CMPi/" + spec + "/k=" + std::to_string(k), writes,
                 "writes/s");
    }
    if (batched) {
      double writes = ingest_throughput(spec, kM, 16, /*coalesce=*/true,
                                        workers, seconds);
      row.push_back(TablePrinter::fmt(writes / 1e6, 3) + "M");
      report.add("CMPi/" + spec + "/k=16/coalesced", writes, "writes/s");
    } else {
      row.push_back("-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "CMPi: batched ingest, component writes/s vs batch width "
              "(m=256, resident scanner keeps helping live; '-' = not "
              "batch-capable; coalesce merges a 64-write window)");
  std::cout << "\n";
}

// The amortization headline, measured without scheduler noise: a scanner
// ANNOUNCEMENT parked in the active set (no competing thread) keeps the
// helping protocol live on the concrete fast runtime, and one writer
// thread alternates between 16 singleton updates and one 16-entry
// update_batch over the same components.  On a loaded or single-core
// host the CMPi survey above wobbles with thread placement; this cell is
// single-threaded and deterministic, so the committed artifact carries a
// stable singleton-vs-batch ratio.
template <class Snap>
void run_parked_amortization(const std::string& name, std::uint32_t m,
                             double seconds, TablePrinter& table,
                             bench::JsonReport& report) {
  constexpr std::uint32_t kK = 16;
  Snap snap(m, /*max_threads=*/4);
  {
    exec::ScopedPid scanner(1);
    std::vector<std::uint32_t> idx;
    for (std::uint32_t i = 0; i < m; i += 4) idx.push_back(i);
    std::vector<std::uint64_t> out;
    snap.scan(idx, out);
    snap.active_set().join();  // park: helping stays live, no thread runs
  }
  {
    exec::ScopedPid writer(0);
    std::vector<core::BatchEntry> entries(kK);
    for (std::uint32_t j = 0; j < kK; ++j) entries[j] = {j * 3, j};
    // Warm the pools and view capacities out of the measurement.
    for (std::uint64_t v = 0; v < 512; ++v) {
      snap.update(static_cast<std::uint32_t>(v % m), v);
      snap.update_batch(std::span<const core::BatchEntry>(entries));
    }

    std::uint64_t singles = 0;
    bench::StopAfter stop_singles(seconds);
    while (!stop_singles.expired()) {
      for (std::uint32_t j = 0; j < kK; ++j) {
        snap.update(entries[j].index, singles + j);
      }
      singles += kK;
    }
    const double singles_per_s = double(singles) / seconds;

    std::uint64_t batched = 0;
    bench::StopAfter stop_batches(seconds);
    while (!stop_batches.expired()) {
      snap.update_batch(std::span<const core::BatchEntry>(entries));
      batched += kK;
    }
    const double batched_per_s = double(batched) / seconds;

    table.add_row({name,
                   TablePrinter::fmt(singles_per_s / 1e6, 3) + "M",
                   TablePrinter::fmt(batched_per_s / 1e6, 3) + "M",
                   TablePrinter::fmt(batched_per_s / singles_per_s, 2) +
                       "x"});
    report.add("CMPi/" + name + "/parked/k=1", singles_per_s, "writes/s");
    report.add("CMPi/" + name + "/parked/k=16", batched_per_s, "writes/s");
    report.add("CMPi/" + name + "/parked/speedup",
               batched_per_s / singles_per_s, "ratio");
  }
  exec::ScopedPid scanner(1);
  snap.active_set().leave();
}

void table_ingest_amortization(double seconds, bench::JsonReport& report) {
  constexpr std::uint32_t kM = 256;
  TablePrinter table({"impl", "16 singletons", "one k=16 batch", "speedup"});
  run_parked_amortization<core::CasPartialSnapshot>("fig3_cas", kM, seconds,
                                                    table, report);
  run_parked_amortization<core::CasPartialSnapshotFast>(
      "fig3_cas_fast", kM, seconds, table, report);
  table.print(std::cout,
              "CMPi/parked: single-writer amortization, helping held live "
              "by a parked scanner announcement (m=256, r=64 announced) "
              "-- one batch's announcement + helping round covers 16 "
              "publishes");
  std::cout << "\n";
}

// --trace mode: a dedicated full-speed run with every operation recorded
// into runtime::TraceSink, dumped as a JSONL artifact for offline
// auditing (tools/trace_audit).  This is the wall-clock complement to the
// sim fuzzer: too long to linearizability-check, cheap to audit for epoch
// regressions, torn batches, and watermark violations.
int trace_profile(const std::string& spec, std::uint32_t workers,
                  double seconds, const std::string& path) {
  const std::uint32_t m0 = 48;
  BuiltSnapshot built = make_bench_snapshot(spec, m0, workers + 2);
  auto& snap = built.snap;
  runtime::TraceSink sink(exec::ThreadRegistry::kMaxCapacity, 2048);
  runtime::TracingSnapshot traced(*snap, sink);
  const bool versioned = traced.value_plane() == "versioned";
  const bool batched =
      traced.batch_atomicity() != core::BatchAtomicity::kUnsupported;

  bench::run_workers_affine(workers, built.affinity_shards,
                            [&](std::uint32_t w, bench::WorkerStats&) {
    Xoshiro256 rng(w + 17);
    bench::StopAfter stop_after(seconds);
    std::vector<std::uint64_t> out;
    std::vector<std::uint32_t> idx;
    std::vector<core::BatchEntry> entries;
    std::uint64_t n = 0;
    std::uint32_t grows_left = w == 0 ? 2 : 0;
    while (!stop_after.expired()) {
      const std::uint32_t m = traced.num_components();
      std::uint32_t roll = static_cast<std::uint32_t>(rng.next() % 100);
      if (roll < 50) {
        traced.update(static_cast<std::uint32_t>(rng.next() % m), ++n);
      } else if (roll < 70 && batched) {
        entries.clear();
        for (int k = 0; k < 3; ++k) {
          entries.push_back(
              {static_cast<std::uint32_t>(rng.next() % m), ++n});
        }
        traced.update_batch(
            std::span<const core::BatchEntry>(entries));
      } else {
        idx.clear();
        for (int k = 0; k < 4; ++k) {
          idx.push_back(static_cast<std::uint32_t>(rng.next() % m));
        }
        if (versioned) {
          (void)traced.scan_versioned(idx, out);
        } else {
          traced.scan(idx, out);
        }
      }
      if (grows_left > 0 && n > 200 * (3 - grows_left)) {
        traced.add_components(4);
        --grows_left;
      }
    }
  });

  runtime::TraceSink::Drained drained = sink.drain();
  runtime::TraceArtifact artifact;
  artifact.impl = spec;
  artifact.m0 = m0;
  artifact.final_m = traced.num_components();
  artifact.emitted = drained.emitted;
  artifact.dropped = drained.dropped;
  artifact.events = std::move(drained.events);
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "failed to open %s\n", path.c_str());
    return 1;
  }
  runtime::dump_jsonl(artifact, file);
  std::uint64_t dropped_total = 0;
  for (std::uint64_t d : artifact.dropped) dropped_total += d;
  std::printf("trace profile: impl=%s events=%zu emitted=%llu dropped=%llu "
              "-> %s\n",
              spec.c_str(), artifact.events.size(),
              static_cast<unsigned long long>(artifact.emitted),
              static_cast<unsigned long long>(dropped_total), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("threads", "4", "worker threads");
  flags.define("seconds", "0.4", "measured duration per cell");
  flags.define("impls", "",
               "comma-separated registry specs (default: all registered; "
               "'help' prints the catalogue):\n" +
                   registry::snapshot_catalogue());
  flags.define("json", "",
               "also write machine-readable results to this JSON file "
               "(perf-trajectory artifact)");
  flags.define("trace", "",
               "run a dedicated trace profile instead of the tables: "
               "record every operation of a full-speed mixed run into a "
               "JSONL artifact at this path (audit with "
               "tools/trace_audit); uses the first --impls spec, default "
               "fig3_cas_versioned_batch");
  if (!flags.parse(argc, argv)) return 1;

  if (flags.get_string("impls") == "help") {
    std::printf("registered snapshot implementations:\n%s",
                registry::snapshot_catalogue().c_str());
    return 0;
  }

  if (!flags.get_string("trace").empty()) {
    std::string spec = flags.get_string("impls").empty()
                           ? "fig3_cas_versioned_batch"
                           : impl_specs(flags.get_string("impls")).front();
    try {
      return trace_profile(
          spec, static_cast<std::uint32_t>(flags.get_uint("threads")),
          flags.get_double("seconds"), flags.get_string("trace"));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  std::printf("Experiment CMP: implementation comparison (Sections 1, 5)\n\n");
  auto workers = static_cast<std::uint32_t>(flags.get_uint("threads"));
  double seconds = flags.get_double("seconds");
  auto specs = impl_specs(flags.get_string("impls"));
  bench::JsonReport report;
  try {
    table_mixed(specs, workers, seconds, report);
    table_crossover(specs, workers, seconds, report);
    table_churn(specs, workers, seconds, report);
    table_zipf_churn(specs, workers, seconds, report);
    table_grow(specs, workers, seconds, report);
    table_batched_ingest(specs, workers, seconds, report);
    table_ingest_amortization(seconds, report);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::string json_path = flags.get_string("json");
  if (!json_path.empty() && !report.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
