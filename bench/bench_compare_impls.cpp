// Experiment CMP -- the practical comparison the paper motivates
// (Section 1: unpredictable, overlapping queries over a large vector;
// Section 5: relation to complete-scan algorithms):
//
//   Who wins, by how much, and where is the crossover as the partial-scan
//   width r approaches m?
//
// Regenerated tables:
//   CMPa: mixed-workload throughput (ops/s) per implementation across
//         update fractions, at small r << m.
//   CMPb: crossover sweep -- scan-only throughput as r grows toward m:
//         the full-snapshot baseline becomes competitive only when scans
//         are nearly complete; the paper's algorithms win for r << m.
//
// Wall-clock numbers are hardware-specific; the *shape* (ordering and
// crossover region) is the reproduced result.  StarvationError cannot
// occur here (caps are disabled), so non-wait-free baselines may in
// principle stall; at this host's contention levels they do not.
#include <atomic>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>

#include "baseline/double_collect.h"
#include "baseline/full_snapshot.h"
#include "baseline/lock_snapshot.h"
#include "baseline/seqlock_snapshot.h"
#include "bench/harness.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/cas_psnap.h"
#include "core/register_psnap.h"
#include "workload/workload.h"

using namespace psnap;

namespace {

using Factory = std::function<std::unique_ptr<core::PartialSnapshot>(
    std::uint32_t m, std::uint32_t n)>;

struct Impl {
  const char* label;
  Factory make;
};

const Impl kImpls[] = {
    {"fig3-cas",
     [](std::uint32_t m, std::uint32_t n) {
       return std::unique_ptr<core::PartialSnapshot>(
           new core::CasPartialSnapshot(m, n));
     }},
    {"fig1-register",
     [](std::uint32_t m, std::uint32_t n) {
       return std::unique_ptr<core::PartialSnapshot>(
           new core::RegisterPartialSnapshot(m, n));
     }},
    {"full-snapshot",
     [](std::uint32_t m, std::uint32_t n) {
       return std::unique_ptr<core::PartialSnapshot>(
           new baseline::FullSnapshot(m, n));
     }},
    {"double-collect",
     [](std::uint32_t m, std::uint32_t n) {
       return std::unique_ptr<core::PartialSnapshot>(
           new baseline::DoubleCollectSnapshot(m, n));
     }},
    {"seqlock",
     [](std::uint32_t m, std::uint32_t) {
       return std::unique_ptr<core::PartialSnapshot>(
           new baseline::SeqlockSnapshot(m));
     }},
    {"lock",
     [](std::uint32_t m, std::uint32_t) {
       return std::unique_ptr<core::PartialSnapshot>(
           new baseline::LockSnapshot(m));
     }},
};

// Mixed workload throughput: each worker runs an OpStream for a fixed
// duration.
double mixed_throughput(const Impl& impl, std::uint32_t m, std::uint32_t r,
                        std::uint32_t workers, double update_fraction,
                        double seconds) {
  auto snap = impl.make(m, workers);
  std::atomic<std::uint64_t> total_ops{0};
  bench::run_workers(workers, [&](std::uint32_t w, bench::WorkerStats&) {
    workload::OpMix mix;
    mix.update_fraction = update_fraction;
    mix.scan_r = r;
    mix.scan_kind = workload::ScanSetKind::kUniform;
    workload::OpStream stream(mix, m, /*seed=*/w + 1);
    workload::Op op;
    std::vector<std::uint64_t> out;
    std::uint64_t ops = 0;
    bench::StopAfter stop(seconds);
    while (!stop.expired()) {
      for (int burst = 0; burst < 64; ++burst) {
        stream.next(op);
        if (op.is_update) {
          snap->update(op.update_index, ops);
        } else {
          snap->scan(op.scan_set, out);
        }
        ++ops;
      }
    }
    total_ops.fetch_add(ops);
  });
  return double(total_ops.load()) / seconds;
}

void table_mixed(std::uint32_t workers, double seconds) {
  constexpr std::uint32_t kM = 256;
  constexpr std::uint32_t kR = 4;
  TablePrinter table({"impl", "10% updates ops/s", "50% updates ops/s",
                      "90% updates ops/s"});
  for (const Impl& impl : kImpls) {
    std::vector<std::string> row{impl.label};
    for (double uf : {0.1, 0.5, 0.9}) {
      double ops = mixed_throughput(impl, kM, kR, workers, uf, seconds);
      row.push_back(TablePrinter::fmt(ops / 1e6, 3) + "M");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "CMPa: mixed-workload throughput, m=256, r=4, " +
                  std::to_string(workers) +
                  " threads -- paper: local algorithms win when r << m");
  std::cout << "\n";
}

void table_crossover(std::uint32_t workers, double seconds) {
  constexpr std::uint32_t kM = 256;
  TablePrinter table({"impl", "r=2", "r=16", "r=64", "r=256(=m)"});
  for (const Impl& impl : kImpls) {
    std::vector<std::string> row{impl.label};
    for (std::uint32_t r : {2u, 16u, 64u, 256u}) {
      double ops = mixed_throughput(impl, kM, r, workers, 0.3, seconds);
      row.push_back(TablePrinter::fmt(ops / 1e6, 3) + "M");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "CMPb: throughput vs scan width r (m=256, 30% updates) -- "
              "paper: crossover only as r approaches m");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("threads", "4", "worker threads");
  flags.define("seconds", "0.4", "measured duration per cell");
  if (!flags.parse(argc, argv)) return 1;

  std::printf("Experiment CMP: implementation comparison (Sections 1, 5)\n\n");
  auto workers = static_cast<std::uint32_t>(flags.get_uint("threads"));
  double seconds = flags.get_double("seconds");
  table_mixed(workers, seconds);
  table_crossover(workers, seconds);
  return 0;
}
