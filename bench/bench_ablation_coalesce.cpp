// Experiment ABL-1 -- Section 4.1's coalescing rule:
//   "any consecutive intervals that have no gaps between them should be
//    coalesced into a single interval in order to keep the length of the
//    list as small as possible."
//
// Regenerated table: Figure-2 active set under a churn pattern that leaves
// a persistent member pinning gaps open, with coalescing ON vs OFF vs the
// skip list disabled entirely.  Reported: published list length, mean
// getSet steps, and the local work of walking the list.  Expected shape:
// coalescing keeps the list near-constant; without it the list grows with
// the number of vacated runs; without the skip list entirely, getSet cost
// grows with the total number of joins ever performed.
#include <cstdio>
#include <iostream>

#include "activeset/faicas_active_set.h"  // published_intervals()
#include "bench/harness.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

struct Variant {
  const char* label;
  const char* spec;  // registry spec selecting the ablation
};

void run(std::uint64_t rounds) {
  const Variant variants[] = {
      {"coalesced (paper)", "faicas"},
      {"no coalescing", "faicas:coalesce=false"},
      {"no skip list", "faicas:publish=false"},
  };
  TablePrinter table({"variant", "churn rounds", "published intervals",
                      "mean getSet steps", "max getSet steps"});
  for (const Variant& variant : variants) {
    for (std::uint64_t volume : {rounds / 4, rounds}) {
      auto as_ptr = registry::make_active_set(variant.spec, 3);
      auto& as = *as_ptr;
      // published_intervals() is Figure-2 observability, not part of the
      // ActiveSet interface; the downcast is safe for every faicas spec.
      auto& faicas = dynamic_cast<activeset::FaiCasActiveSet&>(as);
      OnlineStats getset_cost;

      // Churn pattern: pid 0 joins/leaves constantly; pid 1 joins for a
      // while, leaves, rejoins -- a long-lived member whose slot pins a
      // gap between vacated runs, defeating trivial single-interval
      // coalescing part of the time.
      {
        exec::ScopedPid pid(1);
        as.join();
      }
      std::vector<std::uint32_t> members;
      for (std::uint64_t i = 0; i < volume; ++i) {
        {
          exec::ScopedPid pid(0);
          as.join();
          as.leave();
        }
        if (i % 64 == 63) {
          // Long-lived member moves to a fresh slot, leaving a pinned gap.
          exec::ScopedPid pid(1);
          as.leave();
          as.join();
        }
        if (i % 16 == 15) {
          exec::ScopedPid pid(2);
          getset_cost.add(double(
              bench::measured_steps([&] { as.get_set(members); })));
        }
      }
      table.add_row({variant.label, TablePrinter::fmt(volume),
                     TablePrinter::fmt(std::uint64_t(faicas.published_intervals())),
                     TablePrinter::fmt(getset_cost.mean()),
                     TablePrinter::fmt(getset_cost.max())});
    }
  }
  table.print(std::cout,
              "ABL-1: interval coalescing in the Figure-2 active set "
              "(Section 4.1) -- paper: coalescing keeps the published "
              "list short");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("rounds", "32768", "churn rounds");
  if (!flags.parse(argc, argv)) return 1;
  std::printf("Experiment ABL-1: skip-list coalescing ablation\n\n");
  run(flags.get_uint("rounds"));
  return 0;
}
