// Shared helpers for the benchmark binaries.
//
// Conventions (see DESIGN.md section 3 and EXPERIMENTS.md):
//  * Complexity claims are measured in *steps* -- base-object operations
//    counted by the exec layer -- exactly the unit of Theorems 1-3.  Steps
//    are independent of machine noise and of core oversubscription, so the
//    curves are stable even on small hosts.
//  * Wall-clock throughput appears only in the comparison bench (CMP),
//    where the practical question "who wins" is the point.
//  * Every binary prints aligned tables through TablePrinter and finishes
//    in seconds with default flags.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "common/timing.h"
#include "exec/exec.h"
#include "exec/thread_registry.h"

namespace psnap::bench {

// Machine-readable results next to the human tables: benches accumulate
// (name, value, unit) entries and write them as JSON when --json=<path> is
// passed, feeding the committed BENCH_*.json perf-trajectory artifacts
// (CI produces BENCH_PR2.json and successors).  The format mirrors google
// benchmark's "benchmarks" array so one jq expression reads both.
class JsonReport {
 public:
  void add(const std::string& name, double value,
           const std::string& unit = "ops/s") {
    entries_.push_back(Entry{name, value, unit});
  }

  // Tail latency as first-class entries: "<name>/p50" and "<name>/p99"
  // rows next to the mean-style entry of the same name, so trajectory
  // diffs catch tail regressions that averages hide.
  void add_percentiles(const std::string& name, const Percentiles& p,
                       const std::string& unit = "ns/op") {
    add(name + "/p50", p.p50, unit);
    add(name + "/p99", p.p99, unit);
  }

  bool empty() const { return entries_.empty(); }

  // Writes {"benchmarks": [{"name": ..., "value": ..., "unit": ...}]}.
  // Names are registry specs and metric labels (identifier-safe; no JSON
  // escaping needed).  Returns false if the file cannot be written.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, "
                   "\"unit\": \"%s\"}%s\n",
                   e.name.c_str(), e.value, e.unit.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  std::vector<Entry> entries_;
};

// Bounded per-operation latency recorder for percentile reporting.  Keeps
// at most `cap` samples however long the run is: when full it compacts to
// every other retained sample and doubles its stride, so retention stays
// uniform over the run (late samples are as likely kept as early ones) and
// memory stays O(cap) -- tail percentiles over minutes-long sweeps without
// gigabyte sample vectors.
class LatencySampler {
 public:
  explicit LatencySampler(std::size_t cap = std::size_t{1} << 15)
      : cap_(cap) {
    samples_.reserve(cap_);
  }

  void add(double x) {
    if (++tick_ % stride_ != 0) return;
    if (samples_.size() == cap_) {
      std::size_t w = 0;
      for (std::size_t i = 0; i < samples_.size(); i += 2) {
        samples_[w++] = samples_[i];
      }
      samples_.resize(w);
      stride_ *= 2;
      if (tick_ % stride_ != 0) return;
    }
    samples_.push_back(x);
  }

  const std::vector<double>& samples() const { return samples_; }

  // Concatenates another sampler's retained samples (parallel reduction;
  // strides may differ -- percentiles over the union stay representative
  // because each worker's retention is uniform over its own run).
  void merge(const LatencySampler& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  Percentiles summarize() const { return summarize_percentiles(samples_); }

 private:
  std::size_t cap_;
  std::uint64_t tick_ = 0;
  std::uint64_t stride_ = 1;
  std::vector<double> samples_;
};

// Statistics one worker gathers about its own operations.
struct WorkerStats {
  OnlineStats steps_per_op;     // exec steps per operation
  OnlineStats collects_per_op;  // embedded-scan collects per operation
  std::uint64_t ops = 0;
  std::uint64_t max_steps = 0;
  std::uint64_t borrowed = 0;
  std::uint64_t starved = 0;  // StarvationError count (capped baselines)
  double seconds = 0;

  void merge(const WorkerStats& other) {
    steps_per_op.merge(other.steps_per_op);
    collects_per_op.merge(other.collects_per_op);
    ops += other.ops;
    max_steps = std::max(max_steps, other.max_steps);
    borrowed += other.borrowed;
    starved += other.starved;
    seconds = std::max(seconds, other.seconds);
  }
};

// Measures one operation: returns steps consumed by `op`.
template <class Fn>
std::uint64_t measured_steps(Fn&& op) {
  std::uint64_t before = exec::ctx().steps.total;
  op();
  return exec::ctx().steps.total - before;
}

// Registers one worker thread's pid for the enclosing scope.  With
// affinity_shards > 1 the pid is shard-affine (ThreadRegistry's
// affinity=segment mode): worker w lands in shard w % affinity_shards's
// pid block, so its EBR slot / pool free list / announcement register sit
// in the tables of the segment it writes.  affinity_shards <= 1 is the
// plain lowest-free registration every bench used before.
class WorkerPid {
 public:
  WorkerPid(std::uint32_t w, std::uint32_t affinity_shards)
      : w_(w), shards_(affinity_shards) {
    acquire();
  }

  // Churn: hand the pid back and re-register (same shard preference).
  void rebind() {
    handle_.reset();
    acquire();
  }

 private:
  void acquire() {
    if (shards_ > 1) {
      handle_.emplace(exec::ThreadRegistry::process_wide(), w_ % shards_,
                      shards_);
    } else {
      handle_.emplace();
    }
  }

  std::uint32_t w_;
  std::uint32_t shards_;
  std::optional<exec::ThreadHandle> handle_;
};

// Runs `workers` threads; worker w executes body(w, stats) with a
// dynamically registered pid installed (exec::ThreadHandle).  The pids are
// the lowest free ones in the process-wide registry -- with no other
// holders, exactly {0..workers-1}, though not necessarily in thread order;
// `w` remains the worker's stable identity for seeds and sharding.
// Returns merged stats.
//
// run_workers_affine registers worker w shard-affine in shard
// w % affinity_shards (the registry's affinity=segment knob); pair it with
// a body that directs worker w's updates at component segments of the same
// shard so pid-keyed reclamation state stays segment-local.
inline WorkerStats run_workers_affine(
    std::uint32_t workers, std::uint32_t affinity_shards,
    const std::function<void(std::uint32_t, WorkerStats&)>& body) {
  std::vector<WorkerStats> stats(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  for (std::uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerPid pid(w, affinity_shards);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      Timer timer;
      body(w, stats[w]);
      stats[w].seconds = timer.elapsed_seconds();
    });
  }
  while (ready.load() != workers) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  WorkerStats merged;
  for (const auto& s : stats) merged.merge(s);
  return merged;
}

inline WorkerStats run_workers(
    std::uint32_t workers,
    const std::function<void(std::uint32_t, WorkerStats&)>& body) {
  return run_workers_affine(workers, /*affinity_shards=*/1, body);
}

// Convenience: keep-running flag + fixed-duration stop for mixed loops.
class StopAfter {
 public:
  explicit StopAfter(double seconds) : seconds_(seconds) {}
  bool expired() const { return timer_.elapsed_seconds() >= seconds_; }

 private:
  Timer timer_;
  double seconds_;
};

}  // namespace psnap::bench
