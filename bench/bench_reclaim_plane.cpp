// Experiment RCL -- the reclamation plane's tail-latency story (ISSUE 10):
// per-segment EBR sharding and the reclaim=ebr|hp knob, measured.
//
// Regenerated tables:
//   RCLa: update throughput + scan tail latency vs EBR shard count
//         (1/2/4/8).  Eight writers, each affine to one component segment
//         (affinity=segment pid placement), plus one scanner localized to
//         segment 0.  With ONE global domain the scanner's pins stall
//         epoch advance for every writer -- retired lists balloon and the
//         O(retired) reclamation walks tax every 64th update; with
//         per-segment domains only segment 0's writer shares a domain
//         with the scanner and the other segments reclaim at full speed.
//   RCLb: retired-but-unfreed residency under a deliberately PARKED
//         reader (core::CasPartialSnapshotT::ParkedReader -- protection
//         loaded, then the thread goes silent), single-threaded and
//         deterministic so the committed artifact is stable:
//           * global EBR: residency grows without bound (~1000/kop);
//           * sharded EBR, reader parked in segment 0, traffic in
//             segments 1..3: residency stays at the retire threshold;
//           * hazard pointers: residency stays bounded by the hazard-scan
//             threshold no matter where the traffic goes -- the parked
//             reader pins exactly the records its hazards name.
//
// Wall-clock numbers are hardware-specific; the *shape* -- sharded EBR
// recovering the unsharded throughput under a localized reader, and hp
// turning unbounded residency into a constant -- is the reproduced claim
// (tests/core/reclaim_plane_test.cpp pins it qualitatively in CI).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/cas_psnap.h"
#include "core/growth.h"
#include "exec/exec.h"
#include "exec/thread_registry.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

constexpr std::uint32_t kSegments = 8;
constexpr std::uint32_t kScanWidth = 16;

// ---------------------------------------------------------------------------
// RCLa: shard-count sweep under a segment-0 scanner.
// ---------------------------------------------------------------------------

struct ShardCell {
  double updates_per_second = 0;
  Percentiles scan_ns;
  std::uint64_t outstanding_final = 0;
};

ShardCell shard_sweep_cell(std::uint32_t shards, std::uint32_t writers,
                           double seconds) {
  const std::uint32_t m = kSegments * core::kComponentSegmentSize;
  registry::IngestKnobs knobs;
  const std::string spec = "fig3_cas_fast:shards=" + std::to_string(shards) +
                           ",affinity=segment";
  // Affine pids land in per-shard blocks spread across the FULL registry
  // capacity, so the object's per-pid arrays must cover all of it (the
  // adaptive watermark keeps per-pid walks bounded by the live range).
  auto snap = registry::make_snapshot(
      spec, m, exec::ThreadRegistry::kMaxCapacity, &knobs);

  std::atomic<bool> stop{false};
  bench::LatencySampler scan_sampler;
  // The localized reader: r=16 scans inside segment 0 only.  Its EBR pins
  // land in segment 0's domain (plus the meta domain); under shards=1
  // that domain is everyone's.
  std::thread scanner([&] {
    exec::ThreadHandle pid;
    Xoshiro256 rng(97);
    std::vector<std::uint32_t> idx(kScanWidth);
    std::vector<std::uint64_t> out;
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& i : idx) {
        i = static_cast<std::uint32_t>(rng.next() %
                                       core::kComponentSegmentSize);
      }
      auto t0 = std::chrono::steady_clock::now();
      snap->scan(idx, out);
      auto t1 = std::chrono::steady_clock::now();
      scan_sampler.add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
  });

  // Writer w owns segment w: updates stay segment-local, and the affine
  // registration (affinity=segment) places its pid in the matching
  // shard's block -- w % shards == (w % kSegments) % shards for every
  // shards value in the sweep (divisors of kSegments).
  std::atomic<std::uint64_t> total_updates{0};
  const std::uint32_t affinity_shards =
      knobs.affinity == "segment" ? shards : 1;
  bench::run_workers_affine(
      writers, affinity_shards, [&](std::uint32_t w, bench::WorkerStats&) {
        const std::uint32_t base =
            (w % kSegments) * core::kComponentSegmentSize;
        Xoshiro256 rng(w + 1);
        std::uint64_t ops = 0;
        bench::StopAfter stop_after(seconds);
        while (!stop_after.expired()) {
          for (int burst = 0; burst < 64; ++burst) {
            snap->update(base + static_cast<std::uint32_t>(
                                    rng.next() %
                                    core::kComponentSegmentSize),
                         ops);
            ++ops;
          }
        }
        total_updates.fetch_add(ops);
      });
  stop.store(true, std::memory_order_release);
  scanner.join();

  ShardCell cell;
  cell.updates_per_second = double(total_updates.load()) / seconds;
  cell.scan_ns = scan_sampler.summarize();
  cell.outstanding_final = snap->reclaim_outstanding();
  return cell;
}

void table_shard_sweep(std::uint32_t writers, double seconds,
                       bench::JsonReport& report) {
  TablePrinter table({"reclaim plane", "updates/s", "scan p50/p99",
                      "outstanding at end"});
  double baseline = 0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardCell cell = shard_sweep_cell(shards, writers, seconds);
    if (shards == 1) baseline = cell.updates_per_second;
    table.add_row(
        {"ebr shards=" + std::to_string(shards),
         TablePrinter::fmt(cell.updates_per_second / 1e6, 3) + "M",
         TablePrinter::fmt(cell.scan_ns.p50, 0) + "/" +
             TablePrinter::fmt(cell.scan_ns.p99, 0) + "ns",
         std::to_string(cell.outstanding_final)});
    const std::string name = "RCLa/shards=" + std::to_string(shards);
    report.add(name + "/updates", cell.updates_per_second);
    report.add_percentiles(name + "/scan_ns", cell.scan_ns);
    report.add(name + "/outstanding_final",
               double(cell.outstanding_final), "records");
    if (shards > 1 && baseline > 0) {
      report.add(name + "/speedup_vs_global",
                 cell.updates_per_second / baseline, "ratio");
    }
  }
  table.print(std::cout,
              "RCLa: update throughput vs EBR shard count (m=" +
                  std::to_string(kSegments *
                                 core::kComponentSegmentSize) +
                  ", " + std::to_string(writers) +
                  " segment-affine writers, scanner localized to segment "
                  "0) -- sharding confines the scanner's reclamation "
                  "stall to its own segment");
  std::cout << "\n";
}

// ---------------------------------------------------------------------------
// RCLb: parked-reader residency, single-threaded and deterministic.
// ---------------------------------------------------------------------------

struct ResidencyRow {
  std::uint64_t outstanding_max = 0;
  std::uint64_t outstanding_final = 0;
  std::uint64_t pool_fresh = 0;  // records the pool had to heap-allocate
};

ResidencyRow parked_residency(const core::CasSnapshotOptions& options,
                              std::uint64_t kops) {
  constexpr std::uint32_t kResidencySegments = 4;
  const std::uint32_t m =
      kResidencySegments * core::kComponentSegmentSize;
  core::CasPartialSnapshot snap(m, /*max_threads=*/4, options,
                                /*initial=*/0);

  std::unique_ptr<core::CasPartialSnapshot::ParkedReader> parked;
  {
    exec::ScopedPid reader(1);
    parked = std::make_unique<core::CasPartialSnapshot::ParkedReader>(
        snap, std::vector<std::uint32_t>{0});
  }

  ResidencyRow row;
  const std::uint64_t fresh_before = snap.record_pool().fresh_count();
  {
    exec::ScopedPid updater(0);
    for (std::uint64_t k = 0; k < kops * 1000; ++k) {
      // Traffic in segments 1..3 only: the parked reader sits in segment
      // 0, so the sharded row's updates never touch its domain.
      const std::uint32_t seg =
          1 + static_cast<std::uint32_t>(k % (kResidencySegments - 1));
      snap.update(seg * core::kComponentSegmentSize +
                      static_cast<std::uint32_t>(k % 64),
                  k);
      if (k % 1000 == 999) {
        row.outstanding_max =
            std::max(row.outstanding_max, snap.reclaim_outstanding());
      }
    }
    row.outstanding_final = snap.reclaim_outstanding();
    row.pool_fresh = snap.record_pool().fresh_count() - fresh_before;
  }
  {
    exec::ScopedPid reader(1);
    parked.reset();
  }
  return row;
}

void table_parked_residency(std::uint64_t kops, bench::JsonReport& report) {
  struct Config {
    const char* label;
    core::CasSnapshotOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"ebr shards=1", {}});
  {
    core::CasSnapshotOptions sharded;
    sharded.reclaim_shards = 4;
    configs.push_back({"ebr shards=4", sharded});
  }
  {
    core::CasSnapshotOptions hp;
    hp.use_hp = true;
    configs.push_back({"hp", hp});
  }

  TablePrinter table({"reclaim plane", "outstanding max", "outstanding/kop",
                      "pool fresh allocs"});
  for (const Config& config : configs) {
    ResidencyRow row = parked_residency(config.options, kops);
    const double per_kop = double(row.outstanding_final) / double(kops);
    table.add_row({config.label, std::to_string(row.outstanding_max),
                   TablePrinter::fmt(per_kop, 1),
                   std::to_string(row.pool_fresh)});
    std::string name = std::string("RCLb/") + config.label;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    report.add(name + "/outstanding_max", double(row.outstanding_max),
               "records");
    report.add(name + "/outstanding_per_kop", per_kop, "records/kop");
    report.add(name + "/pool_fresh", double(row.pool_fresh), "allocs");
  }
  table.print(std::cout,
              "RCLb: retired-but-unfreed residency under a PARKED reader "
              "(protection loaded in segment 0, then silent; " +
                  std::to_string(kops) +
                  "k single-threaded updates in segments 1..3) -- global "
                  "EBR grows without bound, sharded EBR and hp stay at "
                  "their thresholds");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("writers", "8",
               "segment-affine writer threads for the shard sweep");
  flags.define("seconds", "0.4", "measured duration per RCLa cell");
  flags.define("kops", "50",
               "thousands of updates per RCLb residency row");
  flags.define("quick", "false",
               "CI preset: short cells (seconds=0.1, kops=10)");
  flags.define("json", "",
               "also write machine-readable results to this JSON file "
               "(perf-trajectory artifact)");
  if (!flags.parse(argc, argv)) return 1;

  auto writers = static_cast<std::uint32_t>(flags.get_uint("writers"));
  double seconds = flags.get_double("seconds");
  std::uint64_t kops = flags.get_uint("kops");
  if (flags.get_bool("quick")) {
    seconds = 0.1;
    kops = 10;
  }

  std::printf(
      "Experiment RCL: reclamation planes -- EBR sharding and hazard "
      "pointers\n\n");
  bench::JsonReport report;
  try {
    table_shard_sweep(writers, seconds, report);
    table_parked_residency(kops, report);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::string json_path = flags.get_string("json");
  if (!json_path.empty() && !report.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
