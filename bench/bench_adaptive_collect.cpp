// Experiment ADP -- population-adaptive collects (the PidBound refactor):
//
//   getSet and scan latency as a function of the LIVE thread population,
//   at a fixed max_threads=128 capacity.
//
// The paper's thesis is that cost should track what an operation touches,
// not the object's size; this bench applies it to the thread dimension.
// Before PidBound (exec/pid_bound.h) every per-pid walk cost
// O(max_threads); with the watermark bound it costs O(live).  Each
// adaptive row is paired with its full-range (`adaptive=false`) twin --
// the seed behavior -- so the win is measured, not asserted:
//
//   ADPg: active-set getSet latency vs live population (2/8/32/128).
//         The adaptive rows should be flat-in-capacity and scale with
//         live; the full-range rows pay for all 128 potential pids even
//         with 2 live.
//   ADPs: snapshot scan latency vs live population (the fig1 embedded
//         scan's condition-(2) table is the per-pid cost inside scans).
//   ADPc: getSet latency under pid churn -- threads re-register through
//         the registry while the measurer collects; lowest-free reuse
//         keeps the watermark at the peak live population, so adaptive
//         stays adaptive under churn.
//
// Each cell runs in its own ThreadRegistry so the monotone watermark
// restarts per measurement (the process-wide registry would remember the
// largest population ever used).  Release-runtime implementations
// throughout: the question is wall-clock, not steps.
#include <atomic>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "activeset/active_set.h"
#include "activeset/bitmap_active_set.h"
#include "activeset/faicas_active_set.h"
#include "activeset/register_active_set.h"
#include "bench/harness.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/cas_psnap.h"
#include "core/register_psnap.h"
#include "exec/pid_bound.h"
#include "exec/thread_registry.h"

using namespace psnap;

namespace {

constexpr std::uint32_t kMaxThreads = 128;
const std::vector<std::uint32_t> kLiveSweep{2, 8, 32, 128};

// Runs `live` registered threads against a fresh registry; thread 0 is the
// measurer (its per-op latencies are returned, one median per rep), the
// rest hold their pids -- parked population -- until the measurer is done.
// `churners` > 0 replaces parking with register/release churn.
std::vector<double> measure_population(
    std::uint32_t live, std::uint32_t churners, int reps, int iters,
    const std::function<std::unique_ptr<activeset::ActiveSet>(
        exec::ThreadRegistry&)>& make_as,
    const std::function<double(activeset::ActiveSet&, int)>& measure) {
  exec::ThreadRegistry registry(kMaxThreads);
  auto as = make_as(registry);
  std::vector<double> medians;

  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> others;
  for (std::uint32_t t = 1; t < live; ++t) {
    others.emplace_back([&] {
      exec::ThreadHandle pid(registry);
      as->join();
      ready.fetch_add(1);
      while (!done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      as->leave();
    });
  }
  for (std::uint32_t c = 0; c < churners; ++c) {
    others.emplace_back([&] {
      ready.fetch_add(1);
      while (!done.load(std::memory_order_acquire)) {
        // One registered life per lap: acquire the lowest free pid, be a
        // member briefly, leave, hand the pid back.
        exec::ThreadHandle pid(registry);
        as->join();
        as->leave();
      }
    });
  }

  {
    exec::ThreadHandle pid(registry);
    as->join();
    while (ready.load() + 1 < live + churners) std::this_thread::yield();
    for (int w = 0; w < 3; ++w) measure(*as, iters);  // warm-up
    for (int rep = 0; rep < reps; ++rep) {
      medians.push_back(measure(*as, iters));
    }
    done.store(true, std::memory_order_release);
    as->leave();
  }
  for (auto& t : others) t.join();
  return medians;
}

// ns per getSet over `iters` calls.
double time_getsets(activeset::ActiveSet& as, int iters) {
  std::vector<std::uint32_t> out;
  as.get_set(out);  // capacity warm-up
  Timer timer;
  for (int i = 0; i < iters; ++i) as.get_set(out);
  return timer.elapsed_seconds() / iters * 1e9;
}

struct AsVariant {
  std::string label;
  // Figure 2 consumes one fresh slot per join for the whole execution (the
  // paper leaves recycling open, Section 6), so it cannot face the
  // free-running churn table -- the same iteration-budget reasoning as the
  // contract tests.
  bool supports_free_churn = true;
  std::function<std::unique_ptr<activeset::ActiveSet>(exec::ThreadRegistry&)>
      make;
};

// The contestants: each watermark-bounded implementation next to its
// full-range twin (PidBound::fixed(capacity) -- the pre-PidBound walk).
std::vector<AsVariant> getset_variants() {
  using primitives::Release;
  return {
      {"register-as-fast", /*supports_free_churn=*/true,
       [](exec::ThreadRegistry& r) {
         return std::make_unique<activeset::RegisterActiveSetT<Release>>(
             kMaxThreads, exec::PidBound::watermark_of(r));
       }},
      {"register-as-fast full-range", /*supports_free_churn=*/true,
       [](exec::ThreadRegistry&) {
         return std::make_unique<activeset::RegisterActiveSetT<Release>>(
             kMaxThreads, exec::PidBound::fixed(kMaxThreads));
       }},
      {"bitmap-as-fast", /*supports_free_churn=*/true,
       [](exec::ThreadRegistry& r) {
         return std::make_unique<activeset::BitmapActiveSetT<Release>>(
             kMaxThreads, exec::PidBound::watermark_of(r));
       }},
      {"bitmap-as-fast full-range", /*supports_free_churn=*/true,
       [](exec::ThreadRegistry&) {
         return std::make_unique<activeset::BitmapActiveSetT<Release>>(
             kMaxThreads, exec::PidBound::fixed(kMaxThreads));
       }},
      {"faicas-as-fast", /*supports_free_churn=*/false,
       [](exec::ThreadRegistry& r) {
         activeset::FaiCasOptions options;
         options.bound = exec::PidBound::watermark_of(r);
         return std::make_unique<activeset::FaiCasActiveSetT<Release>>(
             kMaxThreads, options);
       }},
  };
}

void table_getset(int reps, int iters, bench::JsonReport& report) {
  TablePrinter table({"impl", "live=2", "live=8", "live=32", "live=128"});
  for (const AsVariant& variant : getset_variants()) {
    std::vector<std::string> row{variant.label};
    for (std::uint32_t live : kLiveSweep) {
      Percentiles pct = summarize_percentiles(measure_population(
          live, /*churners=*/0, reps, iters, variant.make, time_getsets));
      row.push_back(TablePrinter::fmt(pct.p50, 1) + "ns");
      const std::string name =
          "ADPg/" + variant.label + "/live=" + std::to_string(live);
      report.add(name, pct.p50, "ns/op");
      report.add_percentiles(name, pct);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "ADPg: getSet latency vs live population, max_threads=" +
                  std::to_string(kMaxThreads) +
                  " -- adaptive walks cost O(live), full-range "
                  "O(max_threads)");
  std::cout << "\n";
}

void table_churn(int reps, int iters, bench::JsonReport& report) {
  constexpr std::uint32_t kChurners = 8;
  TablePrinter table({"impl", "churners=8 getSet"});
  for (const AsVariant& variant : getset_variants()) {
    if (!variant.supports_free_churn) continue;
    Percentiles pct = summarize_percentiles(measure_population(
        /*live=*/1, kChurners, reps, iters, variant.make, time_getsets));
    table.add_row({variant.label, TablePrinter::fmt(pct.p50, 1) + "ns"});
    const std::string name = "ADPc/" + variant.label + "/churners=8";
    report.add(name, pct.p50, "ns/op");
    report.add_percentiles(name, pct);
  }
  table.print(std::cout,
              "ADPc: getSet latency under pid churn (8 threads "
              "re-registering per membership lap) -- lowest-free reuse "
              "keeps the watermark at the peak live population");
  std::cout << "\n";
}

// --- scan latency vs parked population -------------------------------------

struct SnapVariant {
  std::string label;
  std::function<std::unique_ptr<core::PartialSnapshot>(
      exec::ThreadRegistry&)>
      make;
};

std::vector<SnapVariant> scan_variants(std::uint32_t m) {
  using primitives::Release;
  return {
      {"fig1-register-fast",
       [m](exec::ThreadRegistry& r) {
         return std::make_unique<core::RegisterPartialSnapshotT<Release>>(
             m, kMaxThreads, nullptr, 0, exec::PidBound::watermark_of(r));
       }},
      {"fig1-register-fast full-range",
       [m](exec::ThreadRegistry&) {
         return std::make_unique<core::RegisterPartialSnapshotT<Release>>(
             m, kMaxThreads, nullptr, 0,
             exec::PidBound::fixed(kMaxThreads));
       }},
      {"fig3-cas-fast",
       [m](exec::ThreadRegistry& r) {
         core::CasPartialSnapshotT<Release>::Options options;
         options.bound = exec::PidBound::watermark_of(r);
         options.active_set.bound = options.bound;
         return std::make_unique<core::CasPartialSnapshotT<Release>>(
             m, kMaxThreads, options);
       }},
  };
}

void table_scan(int reps, int iters, bench::JsonReport& report) {
  constexpr std::uint32_t kM = 256;
  const std::vector<std::uint32_t> scan_set{3, 40, 77, 200};  // r = 4
  TablePrinter table({"impl", "live=2", "live=8", "live=32", "live=128"});
  for (const SnapVariant& variant : scan_variants(kM)) {
    std::vector<std::string> row{variant.label};
    for (std::uint32_t live : kLiveSweep) {
      exec::ThreadRegistry registry(kMaxThreads);
      auto snap = variant.make(registry);

      std::atomic<std::uint32_t> ready{0};
      std::atomic<bool> done{false};
      // Parked population: registered pids that raise the watermark but
      // never operate -- the cost being charted is the per-pid scratch a
      // scan pays for them.
      std::vector<std::thread> parked;
      for (std::uint32_t t = 1; t < live; ++t) {
        parked.emplace_back([&] {
          exec::ThreadHandle pid(registry);
          ready.fetch_add(1);
          while (!done.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        });
      }

      Percentiles pct;
      {
        exec::ThreadHandle pid(registry);
        while (ready.load() + 1 < live) std::this_thread::yield();
        for (std::uint32_t i = 0; i < kM; ++i) snap->update(i, i);
        std::vector<std::uint64_t> out;
        std::vector<double> samples;
        for (int rep = 0; rep < reps + 3; ++rep) {
          Timer timer;
          for (int i = 0; i < iters; ++i) snap->scan(scan_set, out);
          if (rep >= 3) {  // first three laps are warm-up
            samples.push_back(timer.elapsed_seconds() / iters * 1e9);
          }
        }
        pct = summarize_percentiles(std::move(samples));
        done.store(true, std::memory_order_release);
      }
      for (auto& t : parked) t.join();

      row.push_back(TablePrinter::fmt(pct.p50, 1) + "ns");
      const std::string name =
          "ADPs/" + variant.label + "/live=" + std::to_string(live);
      report.add(name, pct.p50, "ns/op");
      report.add_percentiles(name, pct);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout,
              "ADPs: uncontended scan latency (r=4, m=256) vs parked "
              "population -- the fig1 embedded scan's helping table is "
              "the per-pid cost inside a scan");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("reps", "11", "measured repetitions per cell (median kept)");
  flags.define("iters", "4000", "operations per repetition");
  flags.define("json", "",
               "also write machine-readable results to this JSON file "
               "(perf-trajectory artifact)");
  if (!flags.parse(argc, argv)) return 1;

  const int reps = static_cast<int>(flags.get_uint("reps"));
  const int iters = static_cast<int>(flags.get_uint("iters"));

  std::printf(
      "Experiment ADP: population-adaptive collects (PidBound refactor)\n"
      "capacity max_threads=%u everywhere; adaptive rows bound their "
      "walks by the live watermark\n\n",
      kMaxThreads);

  bench::JsonReport report;
  table_getset(reps, iters, report);
  table_scan(reps, iters, report);
  table_churn(reps, iters, report);

  std::string json_path = flags.get_string("json");
  if (!json_path.empty() && !report.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
