// Experiment MICRO: google-benchmark latencies for every substrate layer.
//
// These are the raw ingredient costs behind the step counts the other
// benches report: base-object operations, reclamation primitives, interval
// merging, active set operations, and single-threaded snapshot operations.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/cas_psnap.h"
#include "exec/exec.h"
#include "intervals/interval_set.h"
#include "primitives/primitives.h"
#include "reclaim/ebr.h"
#include "reclaim/hazard.h"
#include "registry/registry.h"

namespace {

using namespace psnap;

// Primitive micros run in both runtimes (see primitives.h): the gap
// between <policy>/instrumented and <policy>/release is exactly the cost
// of step accounting plus seq_cst ordering.
template <class Policy>
void BM_RegisterLoad(benchmark::State& state) {
  primitives::Register<std::uint64_t, Policy> reg(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.load());
  }
}
BENCHMARK(BM_RegisterLoad<primitives::Instrumented>)->Name(
    "BM_RegisterLoad/instrumented");
BENCHMARK(BM_RegisterLoad<primitives::Release>)->Name(
    "BM_RegisterLoad/release");

template <class Policy>
void BM_RegisterStore(benchmark::State& state) {
  primitives::Register<std::uint64_t, Policy> reg(1);
  std::uint64_t k = 0;
  for (auto _ : state) {
    reg.store(++k);
  }
}
BENCHMARK(BM_RegisterStore<primitives::Instrumented>)->Name(
    "BM_RegisterStore/instrumented");
BENCHMARK(BM_RegisterStore<primitives::Release>)->Name(
    "BM_RegisterStore/release");

template <class Policy>
void BM_CasSuccess(benchmark::State& state) {
  primitives::CasObject<std::uint64_t, Policy> obj(0);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.compare_and_swap(k, k + 1));
    ++k;
  }
}
BENCHMARK(BM_CasSuccess<primitives::Instrumented>)->Name(
    "BM_CasSuccess/instrumented");
BENCHMARK(BM_CasSuccess<primitives::Release>)->Name(
    "BM_CasSuccess/release");

template <class Policy>
void BM_FetchIncrement(benchmark::State& state) {
  primitives::FetchIncrementT<Policy> fai;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fai.fetch_increment());
  }
}
BENCHMARK(BM_FetchIncrement<primitives::Instrumented>)->Name(
    "BM_FetchIncrement/instrumented");
BENCHMARK(BM_FetchIncrement<primitives::Release>)->Name(
    "BM_FetchIncrement/release");

void BM_EbrPinUnpin(benchmark::State& state) {
  reclaim::EbrDomain domain;
  for (auto _ : state) {
    auto guard = domain.pin();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EbrPinUnpin);

void BM_EbrRetireReclaim(benchmark::State& state) {
  reclaim::EbrDomain domain;
  for (auto _ : state) {
    domain.retire(new std::uint64_t(1));
  }
}
BENCHMARK(BM_EbrRetireReclaim);

void BM_HazardProtect(benchmark::State& state) {
  reclaim::HazardDomain domain;
  std::atomic<std::uint64_t*> src{new std::uint64_t(7)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(domain.protect(src, 0));
    domain.clear(0);
  }
  delete src.load();
}
BENCHMARK(BM_HazardProtect);

void BM_IntervalMerge(benchmark::State& state) {
  auto base = intervals::IntervalSet::from_intervals(
      {{1, 100}, {200, 300}, {400, 500}});
  std::vector<std::uint64_t> points{150, 151, 350};
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.merged_with_points(points));
  }
}
BENCHMARK(BM_IntervalMerge);

void BM_FaiCasJoinLeave(benchmark::State& state) {
  // Unbounded churn: one fresh slot per join, as the paper specifies.
  auto as = registry::make_active_set("faicas", 2);
  exec::ScopedPid pid(0);
  for (auto _ : state) {
    as->join();
    as->leave();
  }
}
BENCHMARK(BM_FaiCasJoinLeave)->Iterations(1 << 20);

void BM_RegisterAsJoinLeave(benchmark::State& state) {
  auto as = registry::make_active_set("register", 4);
  exec::ScopedPid pid(0);
  for (auto _ : state) {
    as->join();
    as->leave();
  }
}
BENCHMARK(BM_RegisterAsJoinLeave);

void BM_FaiCasGetSetAfterChurn(benchmark::State& state) {
  auto as = registry::make_active_set("faicas", 2);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 10000; ++i) {
    as->join();
    as->leave();
  }
  std::vector<std::uint32_t> members;
  for (auto _ : state) {
    as->get_set(members);
  }
}
BENCHMARK(BM_FaiCasGetSetAfterChurn);

// Snapshot operation micros, parameterized by registry spec so the
// instrumented and release runtimes appear side by side in the output
// (and in the BENCH_*.json artifacts CI captures from this binary).
void BM_SnapshotUpdate(benchmark::State& state, const char* spec) {
  auto snap = registry::make_snapshot(spec, 64, 2);
  exec::ScopedPid pid(0);
  std::uint64_t k = 0;
  for (auto _ : state) {
    ++k;
    snap->update(static_cast<std::uint32_t>(k % 64), k);
  }
}
BENCHMARK_CAPTURE(BM_SnapshotUpdate, fig3_cas, "fig3_cas");
BENCHMARK_CAPTURE(BM_SnapshotUpdate, fig3_cas_fast, "fig3_cas_fast");
BENCHMARK_CAPTURE(BM_SnapshotUpdate, fig1_register, "fig1_register");
BENCHMARK_CAPTURE(BM_SnapshotUpdate, fig1_register_fast,
                  "fig1_register_fast");

// Update with a parked scanner announced and active: the updater pays the
// full helping path (getSet + announcement read + embedded scan over the
// announced set + a view-carrying record).
void BM_SnapshotUpdateHelping(benchmark::State& state, const char* spec) {
  auto snap = registry::make_snapshot(spec, 64, 2);
  {
    // Announce a scan set, then park pid 1 in the active set (a scan's
    // join without its leave), so every measured update helps it.
    exec::ScopedPid scanner(1);
    std::vector<std::uint64_t> out;
    snap->scan(std::vector<std::uint32_t>{1, 17, 33, 49}, out);
    if (auto* c = dynamic_cast<core::CasPartialSnapshot*>(snap.get())) {
      c->active_set().join();
    } else if (auto* f =
                   dynamic_cast<core::CasPartialSnapshotFast*>(snap.get())) {
      f->active_set().join();
    } else {
      // Without the park the getSet below returns empty and the numbers
      // would be non-helping timings under a helping label.
      state.SkipWithError("spec has no parkable active set accessor");
      return;
    }
  }
  exec::ScopedPid pid(0);
  std::uint64_t k = 0;
  for (auto _ : state) {
    ++k;
    snap->update(static_cast<std::uint32_t>(k % 64), k);
  }
}
BENCHMARK_CAPTURE(BM_SnapshotUpdateHelping, fig3_cas, "fig3_cas");
BENCHMARK_CAPTURE(BM_SnapshotUpdateHelping, fig3_cas_fast, "fig3_cas_fast");

// Fixed iteration count, like BM_FaiCasJoinLeave: every Figure-3 scan
// consumes one Figure-2 slot (the paper never recycles them; 4M capacity
// per instance), so a time-targeted run of the fast runtime could exhaust
// the slot array mid-benchmark.  1<<19 scans stay far inside it.
void BM_SnapshotScan(benchmark::State& state, const char* spec) {
  auto snap_ptr = registry::make_snapshot(spec, 1024, 2);
  auto& snap = *snap_ptr;
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> indices;
  for (std::uint32_t j = 0; j < state.range(0); ++j) {
    indices.push_back(j * 16);
  }
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    snap.scan(indices, out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK_CAPTURE(BM_SnapshotScan, fig3_cas, "fig3_cas")
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Iterations(1 << 19)
    ->Complexity();
BENCHMARK_CAPTURE(BM_SnapshotScan, fig3_cas_fast, "fig3_cas_fast")
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Iterations(1 << 19)
    ->Complexity();
BENCHMARK_CAPTURE(BM_SnapshotScan, fig1_register, "fig1_register")
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Iterations(1 << 19)
    ->Complexity();
BENCHMARK_CAPTURE(BM_SnapshotScan, fig1_register_fast, "fig1_register_fast")
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Iterations(1 << 19)
    ->Complexity();

void BM_FullSnapshotScan(benchmark::State& state) {
  auto snap_ptr = registry::make_snapshot(
      "full_snapshot", static_cast<std::uint32_t>(state.range(0)), 2);
  auto& snap = *snap_ptr;
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> indices{0};
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    snap.scan(indices, out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullSnapshotScan)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
