// Experiment MICRO: google-benchmark latencies for every substrate layer.
//
// These are the raw ingredient costs behind the step counts the other
// benches report: base-object operations, reclamation primitives, interval
// merging, active set operations, and single-threaded snapshot operations.
#include <benchmark/benchmark.h>

#include <memory>

#include "exec/exec.h"
#include "intervals/interval_set.h"
#include "primitives/primitives.h"
#include "reclaim/ebr.h"
#include "reclaim/hazard.h"
#include "registry/registry.h"

namespace {

using namespace psnap;

void BM_RegisterLoad(benchmark::State& state) {
  primitives::Register<std::uint64_t> reg(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.load());
  }
}
BENCHMARK(BM_RegisterLoad);

void BM_RegisterStore(benchmark::State& state) {
  primitives::Register<std::uint64_t> reg(1);
  std::uint64_t k = 0;
  for (auto _ : state) {
    reg.store(++k);
  }
}
BENCHMARK(BM_RegisterStore);

void BM_CasSuccess(benchmark::State& state) {
  primitives::CasObject<std::uint64_t> obj(0);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.compare_and_swap(k, k + 1));
    ++k;
  }
}
BENCHMARK(BM_CasSuccess);

void BM_FetchIncrement(benchmark::State& state) {
  primitives::FetchIncrement fai;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fai.fetch_increment());
  }
}
BENCHMARK(BM_FetchIncrement);

void BM_EbrPinUnpin(benchmark::State& state) {
  reclaim::EbrDomain domain;
  for (auto _ : state) {
    auto guard = domain.pin();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EbrPinUnpin);

void BM_EbrRetireReclaim(benchmark::State& state) {
  reclaim::EbrDomain domain;
  for (auto _ : state) {
    domain.retire(new std::uint64_t(1));
  }
}
BENCHMARK(BM_EbrRetireReclaim);

void BM_HazardProtect(benchmark::State& state) {
  reclaim::HazardDomain domain;
  std::atomic<std::uint64_t*> src{new std::uint64_t(7)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(domain.protect(src, 0));
    domain.clear(0);
  }
  delete src.load();
}
BENCHMARK(BM_HazardProtect);

void BM_IntervalMerge(benchmark::State& state) {
  auto base = intervals::IntervalSet::from_intervals(
      {{1, 100}, {200, 300}, {400, 500}});
  std::vector<std::uint64_t> points{150, 151, 350};
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.merged_with_points(points));
  }
}
BENCHMARK(BM_IntervalMerge);

void BM_FaiCasJoinLeave(benchmark::State& state) {
  // Unbounded churn: one fresh slot per join, as the paper specifies.
  auto as = registry::make_active_set("faicas", 2);
  exec::ScopedPid pid(0);
  for (auto _ : state) {
    as->join();
    as->leave();
  }
}
BENCHMARK(BM_FaiCasJoinLeave)->Iterations(1 << 20);

void BM_RegisterAsJoinLeave(benchmark::State& state) {
  auto as = registry::make_active_set("register", 4);
  exec::ScopedPid pid(0);
  for (auto _ : state) {
    as->join();
    as->leave();
  }
}
BENCHMARK(BM_RegisterAsJoinLeave);

void BM_FaiCasGetSetAfterChurn(benchmark::State& state) {
  auto as = registry::make_active_set("faicas", 2);
  exec::ScopedPid pid(0);
  for (int i = 0; i < 10000; ++i) {
    as->join();
    as->leave();
  }
  std::vector<std::uint32_t> members;
  for (auto _ : state) {
    as->get_set(members);
  }
}
BENCHMARK(BM_FaiCasGetSetAfterChurn);

void BM_Fig3Update(benchmark::State& state) {
  auto snap = registry::make_snapshot("fig3_cas", 64, 2);
  exec::ScopedPid pid(0);
  std::uint64_t k = 0;
  for (auto _ : state) {
    ++k;
    snap->update(static_cast<std::uint32_t>(k % 64), k);
  }
}
BENCHMARK(BM_Fig3Update);

void BM_Fig3Scan(benchmark::State& state) {
  auto snap_ptr = registry::make_snapshot("fig3_cas", 1024, 2);
  auto& snap = *snap_ptr;
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> indices;
  for (std::uint32_t j = 0; j < state.range(0); ++j) {
    indices.push_back(j * 16);
  }
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    snap.scan(indices, out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fig3Scan)->RangeMultiplier(2)->Range(1, 64)->Complexity();

void BM_Fig1Scan(benchmark::State& state) {
  auto snap_ptr = registry::make_snapshot("fig1_register", 1024, 2);
  auto& snap = *snap_ptr;
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> indices;
  for (std::uint32_t j = 0; j < state.range(0); ++j) {
    indices.push_back(j * 16);
  }
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    snap.scan(indices, out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fig1Scan)->RangeMultiplier(2)->Range(1, 64)->Complexity();

void BM_FullSnapshotScan(benchmark::State& state) {
  auto snap_ptr = registry::make_snapshot(
      "full_snapshot", static_cast<std::uint32_t>(state.range(0)), 2);
  auto& snap = *snap_ptr;
  exec::ScopedPid pid(0);
  std::vector<std::uint32_t> indices{0};
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    snap.scan(indices, out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullSnapshotScan)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
