// Experiment VAL -- the value plane's cost (PR 5's tentpole, measured):
//
//   What does the indirect (value=blob) plane cost over the direct u64
//   plane, per update and per scan?
//
// Where an algorithm already publishes records (fig1/fig3), the blob
// plane's marginal cost is copying payload bytes through the pooled
// record instead of one word -- no extra dereference on the protocol
// path.  Where the component cell was a raw word (the seqlock baseline),
// the blob plane adds the full indirection: one pool acquire per update,
// one extra acquire dereference per read (primitives/value_cell.h).  This
// bench pins both numbers next to their direct twins:
//
//   VALu: single-thread update latency -- u64 interface on both planes
//         (8-byte payloads), plus update_blob at 24B and 256B payloads.
//   VALs: single-thread scan latency (r=4) -- u64 scans on both planes,
//         plus scan_blobs at the current payload size.
//
// Release-runtime (*_fast) implementations for the paper algorithms and
// the (always-Instrumented) seqlock baseline: the question is wall-clock.
// Every (direct, indirect) pair also emits an explicit delta entry
// (indirect/direct ratio), the committed BENCH_PR5.json headline.
#include <array>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timing.h"
#include "exec/thread_registry.h"
#include "primitives/value_plane.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

constexpr std::uint32_t kM = 64;
const std::vector<std::uint32_t> kScanSet{3, 9, 17, 40};

double median(std::vector<double> samples) {
  return percentile(std::move(samples), 50.0);
}

// ns per op over `iters` calls of `op(k)`.
template <class Op>
double time_ns(int iters, Op&& op) {
  Timer timer;
  for (int k = 0; k < iters; ++k) op(k);
  return timer.elapsed_seconds() / iters * 1e9;
}

// Median-of-reps single-thread latency for one measurement lambda.
template <class Op>
double measure(int reps, int iters, Op&& op) {
  for (int w = 0; w < 2; ++w) time_ns(iters, op);  // warm-up
  std::vector<double> medians;
  for (int rep = 0; rep < reps; ++rep) {
    medians.push_back(time_ns(iters, op));
  }
  return median(std::move(medians));
}

struct Cells {
  double update_u64 = 0;
  double update_blob24 = 0;   // 0 = not applicable (direct plane)
  double update_blob256 = 0;
  double scan_u64 = 0;
  double scan_blobs24 = 0;
};

Cells run_spec(const std::string& spec, int reps, int iters) {
  Cells cells;
  auto snap = registry::make_snapshot(spec, kM, 2);
  exec::ThreadHandle pid;
  const bool blob = snap->value_plane() == "blob";

  std::vector<std::uint64_t> out;
  cells.update_u64 = measure(reps, iters, [&](int k) {
    snap->update(static_cast<std::uint32_t>(k) % kM,
                 static_cast<std::uint64_t>(k));
  });
  cells.scan_u64 = measure(reps, iters, [&](int) {
    snap->scan(kScanSet, out);
  });

  if (blob) {
    std::vector<std::byte> payload24(24, std::byte{0x42});
    std::vector<std::byte> payload256(256, std::byte{0x42});
    cells.update_blob24 = measure(reps, iters, [&](int k) {
      snap->update_blob(static_cast<std::uint32_t>(k) % kM,
                        std::span<const std::byte>(payload24));
    });
    std::vector<value::Blob> blobs;
    cells.scan_blobs24 = measure(reps, iters, [&](int) {
      snap->scan_blobs(kScanSet, blobs);
    });
    cells.update_blob256 = measure(reps, iters, [&](int k) {
      snap->update_blob(static_cast<std::uint32_t>(k) % kM,
                        std::span<const std::byte>(payload256));
    });
  }
  return cells;
}

std::string fmt_or_dash(double v) {
  return v == 0 ? std::string("-") : TablePrinter::fmt(v, 1);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("reps", "7", "median-of-reps repetitions per cell");
  flags.define("iters", "20000", "operations per repetition");
  flags.define("json", "",
               "also write machine-readable results to this JSON file "
               "(perf-trajectory artifact; committed as BENCH_PR5.json)");
  if (!flags.parse(argc, argv)) return 1;
  const int reps = static_cast<int>(flags.get_uint("reps"));
  const int iters = static_cast<int>(flags.get_uint("iters"));

  std::printf(
      "Experiment VAL: value-plane cost, direct (u64) vs indirect (blob)\n"
      "m=%u, r=%zu, single thread, median of %d reps x %d iters\n\n",
      kM, kScanSet.size(), reps, iters);

  // (family, direct spec, indirect spec) triples: the paper algorithms in
  // the Release runtime, the raw-word baseline that pays the ValueCell
  // indirection, and the instrumented fig3 so the sim-covered build has a
  // trajectory point too.
  const std::vector<std::array<std::string, 3>> families = {
      {"fig1", "fig1_register_fast", "fig1_register_fast:value=blob"},
      {"fig3", "fig3_cas_fast", "fig3_cas_fast:value=blob"},
      {"fig3_instrumented", "fig3_cas", "fig3_cas_blob"},
      {"seqlock", "seqlock", "seqlock:value=blob"},
  };

  bench::JsonReport report;
  TablePrinter table({"impl", "update u64 ns", "update blob24 ns",
                      "update blob256 ns", "scan r=4 ns",
                      "scan_blobs r=4 ns"});
  for (const auto& family : families) {
    std::map<std::string, Cells> results;
    for (int which : {1, 2}) {
      const std::string& spec = family[which];
      Cells cells = run_spec(spec, reps, iters);
      results[spec] = cells;
      table.add_row({spec, TablePrinter::fmt(cells.update_u64, 1),
                     fmt_or_dash(cells.update_blob24),
                     fmt_or_dash(cells.update_blob256),
                     TablePrinter::fmt(cells.scan_u64, 1),
                     fmt_or_dash(cells.scan_blobs24)});
      report.add("VAL/" + spec + "/update_u64_ns", cells.update_u64, "ns");
      report.add("VAL/" + spec + "/scan_r4_ns", cells.scan_u64, "ns");
      if (cells.update_blob24 != 0) {
        report.add("VAL/" + spec + "/update_blob24_ns", cells.update_blob24,
                   "ns");
        report.add("VAL/" + spec + "/update_blob256_ns",
                   cells.update_blob256, "ns");
        report.add("VAL/" + spec + "/scan_blobs24_r4_ns",
                   cells.scan_blobs24, "ns");
      }
    }
    // The headline deltas: indirect over direct, same interface.
    const Cells& direct = results[family[1]];
    const Cells& indirect = results[family[2]];
    report.add("VAL/" + family[0] + "/delta_update_indirect_over_direct",
               indirect.update_u64 / direct.update_u64, "ratio");
    report.add("VAL/" + family[0] + "/delta_scan_indirect_over_direct",
               indirect.scan_u64 / direct.scan_u64, "ratio");
    std::printf("%s: indirect/direct = %.2fx update, %.2fx scan (u64 ops)\n",
                family[0].c_str(), indirect.update_u64 / direct.update_u64,
                indirect.scan_u64 / direct.scan_u64);
  }
  std::cout << "\n";
  table.print(std::cout,
              "VAL: value-plane micro (single thread; '-' = not applicable "
              "on the direct plane)");

  std::string json_path = flags.get_string("json");
  if (!json_path.empty() && !report.write_file(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
