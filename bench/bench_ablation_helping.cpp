// Experiment ABL-2 -- Section 1/Section 3's helping mechanism:
//   "individual scans may never terminate: a slow scanner can keep seeing
//    different collects if fast updates are concurrently being performed.
//    ...  The classical way to transform such a non-blocking implementation
//    into a wait-free one is to rely on a helping mechanism."
//
// Regenerated table: scans under increasing update pressure, for
//   * double-collect (no helping, lock-free only): starvation rate at a
//     fixed collect budget, and the maximum collects an (uncapped) scan
//     needed;
//   * Figure 1 and Figure 3 (helping): worst-case collects stay bounded
//     (2n+3 and 2r+1 respectively) and every scan terminates.
#include <atomic>
#include <cstdio>
#include <iostream>

#include "baseline/double_collect.h"  // StarvationError
#include "bench/harness.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/op_stats.h"
#include "registry/registry.h"

using namespace psnap;

namespace {

constexpr std::uint32_t kM = 8;
constexpr std::uint32_t kR = 2;

// Runs `scans` partial scans against `updaters` saturating updaters on the
// scanned components; fills collect stats and the starvation count (only
// nonzero for the capped double-collect).
struct PressureResult {
  OnlineStats collects;
  std::uint64_t max_collects = 0;
  std::uint64_t starved = 0;
};

PressureResult run_pressure(core::PartialSnapshot& snap,
                            std::uint32_t updaters, std::uint64_t scans) {
  PressureResult result;
  std::atomic<bool> stop{false};
  bench::run_workers(updaters + 1, [&](std::uint32_t w, bench::WorkerStats&) {
    if (w < updaters) {
      std::uint64_t k = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++k;
        snap.update(static_cast<std::uint32_t>(k % kR), k);
      }
    } else {
      std::vector<std::uint32_t> indices{0, 1};
      std::vector<std::uint64_t> out;
      for (std::uint64_t i = 0; i < scans; ++i) {
        try {
          snap.scan(indices, out);
          result.collects.add(double(core::tls_op_stats().collects));
          result.max_collects =
              std::max(result.max_collects, core::tls_op_stats().collects);
        } catch (const baseline::StarvationError&) {
          ++result.starved;
        }
      }
      stop = true;
    }
  });
  return result;
}

void run(std::uint64_t scans, std::uint64_t cap) {
  TablePrinter table({"algorithm", "updaters", "mean collects",
                      "max collects", "bound", "starved"});
  for (std::uint32_t updaters : {1u, 2u, 3u}) {
    struct Row {
      std::string spec;
      const char* label;
      std::string bound;
    };
    const Row rows[] = {
        {"double_collect:cap=" + std::to_string(cap), "double-collect (cap)",
         "none"},
        {"double_collect", "double-collect (uncapped)", "unbounded"},
        {"fig1_register", "fig1-register (helping)",
         "2n+3 = " + std::to_string(2 * (updaters + 1) + 3)},
        {"fig3_cas", "fig3-cas (helping)",
         "2r+1 = " + std::to_string(2 * kR + 1)},
    };
    for (const Row& row : rows) {
      auto snap = registry::make_snapshot(row.spec, kM, updaters + 1);
      auto result = run_pressure(*snap, updaters, scans);
      table.add_row({row.label, TablePrinter::fmt(std::uint64_t(updaters)),
                     TablePrinter::fmt(result.collects.mean()),
                     TablePrinter::fmt(result.max_collects), row.bound,
                     TablePrinter::fmt(result.starved)});
    }
  }
  table.print(std::cout,
              "ABL-2: helping vs no helping under update pressure (r=2) -- "
              "paper: without helping scans can starve; with it collects "
              "are bounded");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("scans", "20000", "scans per configuration");
  flags.define("cap", "2", "collect budget for the capped double-collect");
  if (!flags.parse(argc, argv)) return 1;
  std::printf("Experiment ABL-2: the helping mechanism ablation\n\n");
  run(flags.get_uint("scans"), flags.get_uint("cap"));
  return 0;
}
