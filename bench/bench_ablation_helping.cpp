// Experiment ABL-2 -- Section 1/Section 3's helping mechanism:
//   "individual scans may never terminate: a slow scanner can keep seeing
//    different collects if fast updates are concurrently being performed.
//    ...  The classical way to transform such a non-blocking implementation
//    into a wait-free one is to rely on a helping mechanism."
//
// Regenerated table: scans under increasing update pressure, for
//   * double-collect (no helping, lock-free only): starvation rate at a
//     fixed collect budget, and the maximum collects an (uncapped) scan
//     needed;
//   * Figure 1 and Figure 3 (helping): worst-case collects stay bounded
//     (2n+3 and 2r+1 respectively) and every scan terminates.
#include <atomic>
#include <cstdio>
#include <iostream>

#include "baseline/double_collect.h"
#include "bench/harness.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/cas_psnap.h"
#include "core/op_stats.h"
#include "core/register_psnap.h"

using namespace psnap;

namespace {

constexpr std::uint32_t kM = 8;
constexpr std::uint32_t kR = 2;

// Runs `scans` partial scans against `updaters` saturating updaters on the
// scanned components; fills collect stats and the starvation count (only
// nonzero for the capped double-collect).
struct PressureResult {
  OnlineStats collects;
  std::uint64_t max_collects = 0;
  std::uint64_t starved = 0;
};

template <class Snap>
PressureResult run_pressure(Snap& snap, std::uint32_t updaters,
                            std::uint64_t scans) {
  PressureResult result;
  std::atomic<bool> stop{false};
  bench::run_workers(updaters + 1, [&](std::uint32_t w, bench::WorkerStats&) {
    if (w < updaters) {
      std::uint64_t k = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        snap.update(static_cast<std::uint32_t>(k % kR), ++k);
      }
    } else {
      std::vector<std::uint32_t> indices{0, 1};
      std::vector<std::uint64_t> out;
      for (std::uint64_t i = 0; i < scans; ++i) {
        try {
          snap.scan(indices, out);
          result.collects.add(double(core::tls_op_stats().collects));
          result.max_collects =
              std::max(result.max_collects, core::tls_op_stats().collects);
        } catch (const baseline::StarvationError&) {
          ++result.starved;
        }
      }
      stop = true;
    }
  });
  return result;
}

void run(std::uint64_t scans, std::uint64_t cap) {
  TablePrinter table({"algorithm", "updaters", "mean collects",
                      "max collects", "bound", "starved"});
  for (std::uint32_t updaters : {1u, 2u, 3u}) {
    {
      baseline::DoubleCollectSnapshot snap(kM, updaters + 1, cap);
      auto result = run_pressure(snap, updaters, scans);
      table.add_row({"double-collect (cap)",
                     TablePrinter::fmt(std::uint64_t(updaters)),
                     TablePrinter::fmt(result.collects.mean()),
                     TablePrinter::fmt(result.max_collects), "none",
                     TablePrinter::fmt(result.starved)});
    }
    {
      baseline::DoubleCollectSnapshot snap(kM, updaters + 1, 0);
      auto result = run_pressure(snap, updaters, scans);
      table.add_row({"double-collect (uncapped)",
                     TablePrinter::fmt(std::uint64_t(updaters)),
                     TablePrinter::fmt(result.collects.mean()),
                     TablePrinter::fmt(result.max_collects), "unbounded",
                     "0"});
    }
    {
      core::RegisterPartialSnapshot snap(kM, updaters + 1);
      auto result = run_pressure(snap, updaters, scans);
      table.add_row({"fig1-register (helping)",
                     TablePrinter::fmt(std::uint64_t(updaters)),
                     TablePrinter::fmt(result.collects.mean()),
                     TablePrinter::fmt(result.max_collects),
                     "2n+3 = " +
                         std::to_string(2 * (updaters + 1) + 3),
                     "0"});
    }
    {
      core::CasPartialSnapshot snap(kM, updaters + 1);
      auto result = run_pressure(snap, updaters, scans);
      table.add_row({"fig3-cas (helping)",
                     TablePrinter::fmt(std::uint64_t(updaters)),
                     TablePrinter::fmt(result.collects.mean()),
                     TablePrinter::fmt(result.max_collects),
                     "2r+1 = " + std::to_string(2 * kR + 1), "0"});
    }
  }
  table.print(std::cout,
              "ABL-2: helping vs no helping under update pressure (r=2) -- "
              "paper: without helping scans can starve; with it collects "
              "are bounded");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("scans", "20000", "scans per configuration");
  flags.define("cap", "2", "collect budget for the capped double-collect");
  if (!flags.parse(argc, argv)) return 1;
  std::printf("Experiment ABL-2: the helping mechanism ablation\n\n");
  run(flags.get_uint("scans"), flags.get_uint("cap"));
  return 0;
}
