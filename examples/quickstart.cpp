// Quickstart: the partial snapshot object in five minutes.
//
//   build/examples/quickstart [--impl=<registry spec>]
//
// Creates the paper's headline algorithm (Figure 3: compare&swap based,
// local partial scans), runs a few updater threads against a couple of
// scanner threads, and prints what the scans observed together with the
// per-operation cost counters the library exposes.
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "core/op_stats.h"
#include "exec/thread_registry.h"
#include "registry/registry.h"

int main(int argc, char** argv) {
  psnap::CliFlags flags;
  flags.define("impl", "fig3_cas",
               "registry spec of the implementation to run:\n" +
                   psnap::registry::snapshot_catalogue());
  if (!flags.parse(argc, argv)) return 1;

  constexpr std::uint32_t kComponents = 16;  // m
  constexpr std::uint32_t kProcesses = 4;    // max concurrent processes

  // The partial snapshot object.  Every implementation shares the
  // core::PartialSnapshot interface and is registered in the central
  // registry, so --impl=fig1_register (Figure 1) or any baseline spec
  // swaps the algorithm without touching this program.
  std::unique_ptr<psnap::core::PartialSnapshot> snapshot_ptr;
  try {
    snapshot_ptr = psnap::registry::make_snapshot(flags.get_string("impl"),
                                                  kComponents, kProcesses);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  auto& snapshot = *snapshot_ptr;

  // Two updaters write to disjoint halves of the vector.
  std::vector<std::thread> threads;
  for (std::uint32_t u = 0; u < 2; ++u) {
    threads.emplace_back([&snapshot, u] {
      // Each thread participating in the protocol needs a process id.
      psnap::exec::ThreadHandle pid;
      for (std::uint64_t k = 1; k <= 10000; ++k) {
        snapshot.update(u * 8 + static_cast<std::uint32_t>(k % 8),
                        k);
      }
    });
  }

  // Two scanners read small, overlapping subsets -- the operation this
  // object exists for.  A scan's cost depends only on the subset size,
  // never on m.
  for (std::uint32_t s = 0; s < 2; ++s) {
    threads.emplace_back([&snapshot, s] {
      psnap::exec::ThreadHandle pid;
      std::vector<std::uint32_t> indices{s, 7, 8 + s};
      std::vector<std::uint64_t> values;
      std::uint64_t borrowed = 0;
      for (int i = 0; i < 5000; ++i) {
        snapshot.scan(indices, values);
        if (psnap::core::tls_op_stats().borrowed) ++borrowed;
      }
      std::printf(
          "scanner %u: last scan {%u,%u,%u} -> {%llu,%llu,%llu}; "
          "%llu/5000 scans used the helping path\n",
          s, indices[0], indices[1], indices[2],
          static_cast<unsigned long long>(values[0]),
          static_cast<unsigned long long>(values[1]),
          static_cast<unsigned long long>(values[2]),
          static_cast<unsigned long long>(borrowed));
    });
  }

  for (auto& t : threads) t.join();

  // A full scan is just a partial scan of everything.
  psnap::exec::ThreadHandle pid;
  auto all = snapshot.scan_all();
  std::printf("final state:");
  for (std::uint32_t i = 0; i < kComponents; ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(all[i]));
  }
  std::printf("\n");
  return 0;
}
