// The paper's motivating example (Section 1): valuing stock portfolios
// while prices move.
//
//   build/examples/stock_portfolio [--stocks=N] [--ticks=N] [--valuations=N]
//                                  [--impl=<registry spec>]
//
// A market thread updates individual stock prices; portfolio threads
// compute the total value of their holdings with ONE consistent partial
// scan over just their tickers.  As a control, the same valuation is also
// done with naive piece-by-piece reads, demonstrating the phantom
// gains/losses the paper describes ("the result might exceed the maximum
// value the portfolio had at any time during the day").
//
// To make inconsistency *observable*, the market updates prices in
// correlated pairs: stock 2k and stock 2k+1 always move so their sum is
// constant (think a dual-listed share).  Any valuation of such a pair that
// does not equal the constant is a torn read.
#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "exec/thread_registry.h"
#include "registry/registry.h"

int main(int argc, char** argv) {
  psnap::CliFlags flags;
  flags.define("stocks", "64", "number of listed stocks (even)");
  flags.define("ticks", "200000", "price updates performed by the market");
  flags.define("valuations", "50000", "portfolio valuations per auditor");
  flags.define("impl", "fig3_cas",
               "registry spec of the snapshot implementation:\n" +
                   psnap::registry::snapshot_catalogue());
  if (!flags.parse(argc, argv)) return 1;

  const auto stocks = static_cast<std::uint32_t>(flags.get_uint("stocks"));
  const auto ticks = flags.get_uint("ticks");
  const auto valuations = flags.get_uint("valuations");
  constexpr std::uint64_t kPairSum = 10000;  // paired stocks sum to this

  std::unique_ptr<psnap::core::PartialSnapshot> market_ptr;
  try {
    market_ptr = psnap::registry::make_snapshot(flags.get_string("impl"), stocks, 4);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  auto& market = *market_ptr;

  // Initialize: each pair starts at (kPairSum/2, kPairSum/2).
  {
    psnap::exec::ThreadHandle pid;
    for (std::uint32_t s = 0; s < stocks; ++s) {
      market.update(s, kPairSum / 2);
    }
  }

  std::atomic<bool> market_open{true};

  // The market: moves each pair in opposite directions, conserving the
  // pair sum at every instant by writing one leg at a time through values
  // that keep |leg - sum/2| <= spread...  Simplest correct scheme: write
  // leg A to x, then leg B to kPairSum - x.  Between the two writes the
  // instantaneous pair state is (x_new, kPairSum - x_old); to keep the
  // invariant exact we instead snapshot-update a single leg and define
  // the second leg implicitly: leg B always holds kPairSum - (previous A).
  // A consistent scan of (A, B) therefore sees either (x, kPairSum - x)
  // -- both legs settled -- or (x', kPairSum - x) mid-move, which differs
  // from kPairSum by exactly |x' - x|, bounded by the per-tick move of 1.
  std::thread market_maker([&] {
    psnap::exec::ThreadHandle pid;
    std::uint64_t seed = 42;
    std::vector<std::uint64_t> leg_a(stocks / 2, kPairSum / 2);
    for (std::uint64_t t = 0; t < ticks && market_open; ++t) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      auto pair = static_cast<std::uint32_t>((seed >> 33) % (stocks / 2));
      std::uint64_t& a = leg_a[pair];
      // Random walk by +-1, clamped.
      if ((seed & 1) != 0 && a < kPairSum) {
        ++a;
      } else if (a > 0) {
        --a;
      }
      market.update(2 * pair, a);
      market.update(2 * pair + 1, kPairSum - a);
    }
    market_open = false;
  });

  // Auditor using consistent partial scans: pair valuations may be off by
  // at most 1 (the market's in-flight tick), never more.
  std::uint64_t snapshot_max_error = 0;
  std::thread snapshot_auditor([&] {
    psnap::exec::ThreadHandle pid;
    std::uint64_t seed = 7;
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i < valuations; ++i) {
      seed = seed * 6364136223846793005ull + 1;
      auto pair = static_cast<std::uint32_t>((seed >> 33) % (stocks / 2));
      market.scan(std::vector<std::uint32_t>{2 * pair, 2 * pair + 1}, values);
      std::uint64_t total = values[0] + values[1];
      std::uint64_t error =
          total > kPairSum ? total - kPairSum : kPairSum - total;
      if (error > snapshot_max_error) snapshot_max_error = error;
    }
  });

  // Control auditor using naive piecewise reads (two independent scans):
  // the classic inconsistent read the paper warns about.
  std::uint64_t naive_max_error = 0;
  std::thread naive_auditor([&] {
    psnap::exec::ThreadHandle pid;
    std::uint64_t seed = 99;
    std::vector<std::uint64_t> a, b;
    for (std::uint64_t i = 0; i < valuations; ++i) {
      seed = seed * 6364136223846793005ull + 1;
      auto pair = static_cast<std::uint32_t>((seed >> 33) % (stocks / 2));
      market.scan(std::vector<std::uint32_t>{2 * pair}, a);
      market.scan(std::vector<std::uint32_t>{2 * pair + 1}, b);
      std::uint64_t total = a[0] + b[0];
      std::uint64_t error =
          total > kPairSum ? total - kPairSum : kPairSum - total;
      if (error > naive_max_error) naive_max_error = error;
    }
  });

  market_maker.join();
  snapshot_auditor.join();
  naive_auditor.join();

  std::printf("pair sum invariant: %llu\n",
              static_cast<unsigned long long>(kPairSum));
  std::printf("consistent partial scans : max valuation error = %llu "
              "(bounded by the 1-unit in-flight tick)\n",
              static_cast<unsigned long long>(snapshot_max_error));
  std::printf("naive piecewise reads    : max valuation error = %llu "
              "(phantom value, unbounded by any single instant)\n",
              static_cast<unsigned long long>(naive_max_error));
  if (snapshot_max_error > 1) {
    std::printf("ERROR: consistent scans exceeded the in-flight bound!\n");
    return 1;
  }
  return 0;
}
