// Crash recovery end to end: a live service, real kill -9, rollback
// restore -- the paper's "storing checkpoints for data recovery"
// (Section 1) exercised against actual process death.
//
//   build/examples/recovery_service [--cycles=10] [--stages=6]
//       [--impl=<registry spec>] [--interval-us=5000]
//       [--kill-min-ms=30] [--kill-max-ms=120] [--dir=<checkpoint dir>]
//       [--json=<artifact path>] [--seed=1]
//
// The SUPERVISOR (this process) forks a SERVICE child and SIGKILLs it at
// a random point mid-traffic, `cycles` times.  The child runs the
// checkpoint_debugger pipeline -- stage k's progress counter lives in
// component k of a partial snapshot object, so `progress[k] <=
// progress[k-1]` holds at every real instant -- with two additions:
//
//   * a recovery::Checkpointer thread commits a consistent full scan
//     every `interval-us` through persist::CheckpointWriter's atomic
//     rename protocol;
//   * on startup the child loads the newest intact frame, restores the
//     object through recovery::restore(), seeds the stages from it, and
//     resumes frame numbering after the loaded sequence.
//
// An in-child oracle thread keeps re-checking the pipeline invariant on
// live partial scans and exits with a distinct code on violation.  After
// every kill the supervisor checks the surviving newest frame: the
// invariant must hold IN the frame (a torn checkpoint would break it),
// and progress must be component-wise monotone against the previous
// cycle's frame (restore never rolls back past what was durably
// committed).  Recovery latency -- child spawn to first frame that
// supersedes the pre-kill one -- is measured per cycle and written as a
// JSON artifact for CI trending.
//
// Exit status: 0 when every cycle survives with zero violations.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "exec/thread_registry.h"
#include "persist/checkpoint.h"
#include "recovery/checkpointer.h"
#include "recovery/restore.h"
#include "registry/registry.h"

namespace {

using psnap::persist::CheckpointData;
using psnap::persist::CheckpointLoader;
using psnap::persist::CheckpointWriter;

constexpr int kExitStartupFailure = 2;
constexpr int kExitInvariantViolated = 3;

// progress[k] <= progress[k-1]: a stage cannot have consumed more than
// its upstream produced.  Holds at every real instant, so it must hold in
// every consistent frame.
bool pipeline_invariant_holds(const std::vector<std::uint64_t>& v) {
  for (std::size_t k = 1; k < v.size(); ++k) {
    if (v[k] > v[k - 1]) return false;
  }
  return true;
}

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// ---- The service child: pipeline + checkpointer + live oracle --------

[[noreturn]] void service_main(const std::string& impl, std::uint32_t stages,
                               const std::string& dir,
                               std::uint64_t interval_us) {
  const std::uint32_t max_threads = stages + 3;  // stages, ckpt, oracle, main

  // Rollback restore: resume from the newest intact frame if one
  // survived the previous life, else start fresh.
  std::unique_ptr<psnap::core::PartialSnapshot> snap;
  std::uint64_t resume_sequence = 0;
  {
    psnap::exec::ThreadHandle pid;
    auto frame = CheckpointLoader(dir).load_newest();
    if (frame.has_value()) {
      if (!pipeline_invariant_holds(frame->values)) _exit(kExitInvariantViolated);
      snap = psnap::recovery::restore(*frame);
      resume_sequence = frame->sequence;
    } else {
      snap = psnap::registry::make_snapshot(impl, stages, max_threads);
    }
  }
  auto& progress = *snap;

  // Seed the coordination counters from the restored view so the
  // pipeline continues where the checkpoint left it.
  std::vector<std::uint64_t> restored;
  {
    psnap::exec::ThreadHandle pid;
    restored = progress.scan_all();
  }
  std::vector<std::atomic<std::uint64_t>> done(stages);
  for (std::uint32_t k = 0; k < stages; ++k) done[k].store(restored[k]);

  std::vector<std::thread> workers;
  for (std::uint32_t k = 0; k < stages; ++k) {
    workers.emplace_back([&, k] {
      psnap::exec::ThreadHandle pid;
      std::uint64_t my_done = done[k].load();
      for (;;) {  // runs until SIGKILL
        std::uint64_t upstream =
            k == 0 ? my_done + 1  // unbounded producer
                   : done[k - 1].load(std::memory_order_acquire);
        if (my_done < upstream) {
          ++my_done;
          progress.update(k, my_done);
          done[k].store(my_done, std::memory_order_release);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Live oracle: consistent partial scans of adjacent stage pairs must
  // satisfy the invariant at all times.
  std::thread oracle([&] {
    psnap::exec::ThreadHandle pid;
    std::vector<std::uint64_t> values;
    std::uint64_t seed = 7;
    for (;;) {
      auto k = static_cast<std::uint32_t>(
          1 + xorshift(seed) % (stages - 1));
      progress.scan(std::vector<std::uint32_t>{k - 1, k}, values);
      if (values[1] > values[0]) _exit(kExitInvariantViolated);
    }
  });

  // The checkpoint service: periodic durable frames, sequence numbering
  // resumed past the frame this life restored from.
  psnap::exec::ThreadHandle pid;
  CheckpointWriter writer(dir);
  psnap::recovery::Checkpointer::Options options;
  options.impl_spec = impl;
  options.initial_m = stages;
  options.max_threads = max_threads;
  psnap::recovery::Checkpointer ck(progress, writer, options);
  ck.set_next_sequence(resume_sequence + 1);
  std::atomic<bool> never_stop{false};
  ck.run(never_stop, std::chrono::microseconds(interval_us));
  _exit(kExitStartupFailure);  // run() only returns if stop is set
}

// ---- The supervisor ---------------------------------------------------

std::uint64_t newest_sequence(const std::string& dir) {
  auto frame = CheckpointLoader(dir).load_newest();
  return frame.has_value() ? frame->sequence : 0;
}

}  // namespace

int main(int argc, char** argv) {
  psnap::CliFlags flags;
  flags.define("cycles", "10", "kill/restore cycles to run");
  flags.define("stages", "6", "pipeline stages");
  flags.define("impl", "fig3_cas",
               "registry spec of the snapshot implementation:\n" +
                   psnap::registry::snapshot_catalogue());
  flags.define("interval-us", "5000", "checkpoint interval (microseconds)");
  flags.define("kill-min-ms", "30", "min service lifetime before SIGKILL");
  flags.define("kill-max-ms", "120", "max service lifetime before SIGKILL");
  flags.define("dir", "", "checkpoint directory (default: fresh temp dir)");
  flags.define("json", "", "write recovery-latency JSON artifact here");
  flags.define("seed", "1", "kill-timing seed");
  if (!flags.parse(argc, argv)) return 1;

  const auto cycles = flags.get_uint("cycles");
  const auto stages = static_cast<std::uint32_t>(flags.get_uint("stages"));
  const auto interval_us = flags.get_uint("interval-us");
  const auto kill_min_ms = flags.get_uint("kill-min-ms");
  const auto kill_max_ms = flags.get_uint("kill-max-ms");
  const std::string impl = flags.get_string("impl");
  std::uint64_t rng = flags.get_uint("seed") | 1;

  if (stages < 2 || kill_max_ms < kill_min_ms) {
    std::fprintf(stderr, "need --stages >= 2 and kill-max >= kill-min\n");
    return 1;
  }

  std::string dir = flags.get_string("dir");
  if (dir.empty()) {
    std::string tmpl = "/tmp/psnap-recovery-XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    if (made == nullptr) {
      std::perror("mkdtemp");
      return 1;
    }
    dir = made;
  }
  std::printf("checkpoint dir: %s\n", dir.c_str());

  // Validate the spec up front (the child would only report exit codes).
  try {
    psnap::registry::make_snapshot(impl, stages, 1);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::vector<double> recovery_ms;
  std::vector<std::uint64_t> previous;  // last verified frame's values
  std::uint64_t frames_verified = 0;

  for (std::uint64_t cycle = 1; cycle <= cycles; ++cycle) {
    const std::uint64_t pre_kill_seq = newest_sequence(dir);

    auto spawn_time = std::chrono::steady_clock::now();
    pid_t child = ::fork();
    if (child < 0) {
      std::perror("fork");
      return 1;
    }
    if (child == 0) {
      service_main(impl, stages, dir, interval_us);  // never returns
    }

    // Recovery latency: spawn to the first frame superseding the one the
    // child restored from (load + restore + reseed + first commit).
    const auto deadline =
        spawn_time + std::chrono::seconds(30);
    bool recovered = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (newest_sequence(dir) > pre_kill_seq) {
        recovered = true;
        break;
      }
      int status = 0;
      if (::waitpid(child, &status, WNOHANG) == child) {
        std::fprintf(stderr,
                     "cycle %llu: service died before first checkpoint "
                     "(status %d)\n",
                     static_cast<unsigned long long>(cycle), status);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!recovered) {
      std::fprintf(stderr, "cycle %llu: no new frame within 30s\n",
                   static_cast<unsigned long long>(cycle));
      ::kill(child, SIGKILL);
      ::waitpid(child, nullptr, 0);
      return 1;
    }
    double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - spawn_time)
            .count();
    recovery_ms.push_back(latency_ms);

    // Let traffic (and checkpoints) run, then kill -9 mid-flight.
    std::uint64_t life_ms =
        kill_min_ms + xorshift(rng) % (kill_max_ms - kill_min_ms + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(life_ms));
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      // The child beat the SIGKILL by exiting on its own -- only the
      // oracle or startup failure does that, and both are fatal.
      std::fprintf(stderr, "cycle %llu: service exited with status %d\n",
                   static_cast<unsigned long long>(cycle),
                   WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      return 1;
    }

    // The rollback point the next life will restore from: intact,
    // invariant-satisfying, and monotone over the previous cycle's.
    CheckpointLoader::Report report;
    auto frame = CheckpointLoader(dir).load_newest(&report);
    if (!frame.has_value()) {
      std::fprintf(stderr, "cycle %llu: no intact frame after kill\n",
                   static_cast<unsigned long long>(cycle));
      return 1;
    }
    if (!pipeline_invariant_holds(frame->values)) {
      std::fprintf(stderr, "cycle %llu: INVARIANT VIOLATED in frame %llu\n",
                   static_cast<unsigned long long>(cycle),
                   static_cast<unsigned long long>(frame->sequence));
      return 1;
    }
    if (!previous.empty()) {
      for (std::uint32_t k = 0; k < stages; ++k) {
        if (frame->values[k] < previous[k]) {
          std::fprintf(stderr,
                       "cycle %llu: stage %u went BACKWARD across restore "
                       "(%llu -> %llu)\n",
                       static_cast<unsigned long long>(cycle), k,
                       static_cast<unsigned long long>(previous[k]),
                       static_cast<unsigned long long>(frame->values[k]));
          return 1;
        }
      }
    }
    previous = frame->values;
    ++frames_verified;

    std::printf(
        "cycle %2llu: recovered in %6.1f ms, killed after %3llu ms, "
        "frame %llu stage0=%llu stage%u=%llu%s\n",
        static_cast<unsigned long long>(cycle), latency_ms,
        static_cast<unsigned long long>(life_ms),
        static_cast<unsigned long long>(frame->sequence),
        static_cast<unsigned long long>(frame->values[0]), stages - 1,
        static_cast<unsigned long long>(frame->values[stages - 1]),
        report.rejected.empty() ? "" : " [rejected frames present]");
  }

  // Final end-to-end restore in the supervisor itself: the surviving
  // frame must rebuild an object whose scan equals the frame.
  {
    psnap::exec::ThreadHandle pid;
    auto frame = CheckpointLoader(dir).load_newest();
    auto restored = psnap::recovery::restore(*frame);
    if (restored->scan_all() != frame->values) {
      std::fprintf(stderr, "final restore does not match its frame\n");
      return 1;
    }
  }

  double min_ms = recovery_ms[0], max_ms = recovery_ms[0], sum = 0;
  for (double ms : recovery_ms) {
    min_ms = std::min(min_ms, ms);
    max_ms = std::max(max_ms, ms);
    sum += ms;
  }
  double mean_ms = sum / static_cast<double>(recovery_ms.size());

  std::printf(
      "%llu kill/restore cycles survived, %llu frames verified, "
      "0 invariant violations\n"
      "recovery latency: min %.1f ms, mean %.1f ms, max %.1f ms\n",
      static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(frames_verified), min_ms, mean_ms,
      max_ms);

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::perror("fopen json");
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"impl\": \"%s\",\n  \"stages\": %u,\n"
                 "  \"cycles\": %llu,\n  \"violations\": 0,\n"
                 "  \"recovery_latency_ms\": {\"min\": %.3f, \"mean\": %.3f, "
                 "\"max\": %.3f},\n  \"per_cycle_ms\": [",
                 impl.c_str(), stages,
                 static_cast<unsigned long long>(cycles), min_ms, mean_ms,
                 max_ms);
    for (std::size_t i = 0; i < recovery_ms.size(); ++i) {
      std::fprintf(out, "%s%.3f", i == 0 ? "" : ", ", recovery_ms[i]);
    }
    std::fprintf(out, "]\n}\n");
    std::fclose(out);
    std::printf("recovery-latency artifact: %s\n", json_path.c_str());
  }
  return 0;
}
