// Sensor fusion over overlapping, unpredictable sensor subsets.
//
//   build/examples/sensor_fusion [--sensors=N] [--readings=N] [--queries=N]
//                                [--impl=<registry spec>]
//
// A sensor array publishes readings into a partial snapshot object; fusion
// queries ask for consistent views of *query-dependent* subsets (a
// navigation query wants the IMU cluster, a mapping query wants a lidar
// ring segment, and the clusters overlap).  This is exactly the workload
// shape from the paper's introduction: queries are unpredictable and
// overlapping, so statically splitting the vector into separate snapshot
// objects cannot work -- the whole reason partial snapshots exist.
//
// Consistency is made observable through redundant encoding: each sensor
// publishes (reading epoch * 1000 + sensor id).  All sensors advance
// epochs together (barrier), so a consistent scan during epoch e sees
// epochs that differ by at most 1 across any subset; larger spread means
// the fused estimate mixed incompatible frames.
#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  psnap::CliFlags flags;
  flags.define("sensors", "32", "sensors in the array");
  flags.define("readings", "2000", "epochs each sensor publishes");
  flags.define("queries", "20000", "fusion queries");
  flags.define("impl", "fig3_cas",
               "registry spec of the snapshot implementation:\n" +
                   psnap::registry::snapshot_catalogue());
  if (!flags.parse(argc, argv)) return 1;

  const auto sensors = static_cast<std::uint32_t>(flags.get_uint("sensors"));
  const auto readings = flags.get_uint("readings");
  const auto queries = flags.get_uint("queries");

  std::unique_ptr<psnap::core::PartialSnapshot> array_ptr;
  try {
    array_ptr = psnap::registry::make_snapshot(flags.get_string("impl"),
                                            sensors, sensors + 2);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  auto& array = *array_ptr;

  // Sensor threads: groups of sensors share a thread (the protocol cost is
  // per process, not per component).  All advance epoch in lock-step via a
  // shared epoch counter; each publishes epoch*1000+id.
  constexpr std::uint32_t kSensorThreads = 2;
  std::atomic<std::uint64_t> epoch{1};
  std::atomic<std::uint32_t> at_barrier{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> sensor_threads;
  for (std::uint32_t t = 0; t < kSensorThreads; ++t) {
    sensor_threads.emplace_back([&, t] {
      psnap::exec::ScopedPid pid(t);
      while (!stop) {
        std::uint64_t e = epoch.load(std::memory_order_acquire);
        if (e > readings) break;
        for (std::uint32_t s = t; s < sensors; s += kSensorThreads) {
          array.update(s, e * 1000 + s);
        }
        // Barrier: last thread in advances the epoch.
        if (at_barrier.fetch_add(1) + 1 == kSensorThreads) {
          at_barrier.store(0);
          epoch.store(e + 1, std::memory_order_release);
        } else {
          while (epoch.load(std::memory_order_acquire) == e && !stop) {
            std::this_thread::yield();
          }
        }
      }
    });
  }

  // Fusion threads: random overlapping subsets (uniform and contiguous
  // cluster shapes), checking epoch spread.
  std::atomic<std::uint64_t> bad_fusions{0};
  std::atomic<std::uint64_t> max_spread_seen{0};
  auto record_spread = [&max_spread_seen](std::uint64_t spread) {
    std::uint64_t cur = max_spread_seen.load(std::memory_order_relaxed);
    while (spread > cur &&
           !max_spread_seen.compare_exchange_weak(cur, spread)) {
    }
  };
  std::vector<std::thread> fusers;
  for (std::uint32_t f = 0; f < 2; ++f) {
    fusers.emplace_back([&, f] {
      psnap::exec::ScopedPid pid(kSensorThreads + f);
      psnap::Xoshiro256 rng(f + 1);
      psnap::workload::ScanSetGenerator cluster(
          f == 0 ? psnap::workload::ScanSetKind::kContiguous
                 : psnap::workload::ScanSetKind::kUniform,
          sensors, 5);
      std::vector<std::uint32_t> subset;
      std::vector<std::uint64_t> values;
      for (std::uint64_t q = 0; q < queries / 2; ++q) {
        cluster.next(rng, subset);
        array.scan(subset, values);
        std::uint64_t lo = ~0ull, hi = 0;
        for (std::size_t j = 0; j < subset.size(); ++j) {
          if (values[j] == 0) {  // sensor not yet published: epoch 0
            lo = 0;
            continue;
          }
          std::uint64_t e = values[j] / 1000;
          // Redundant encoding must match the component.
          if (values[j] % 1000 != subset[j]) {
            bad_fusions.fetch_add(1);
            continue;
          }
          lo = std::min(lo, e);
          hi = std::max(hi, e);
        }
        // All sensors move epochs through one barrier, so a consistent
        // view can straddle at most two adjacent epochs.
        std::uint64_t spread = (hi > lo) ? hi - lo : 0;
        if (spread > 1) bad_fusions.fetch_add(1);
        record_spread(spread);
      }
    });
  }

  for (auto& t : fusers) t.join();
  stop = true;
  for (auto& t : sensor_threads) t.join();

  std::printf("fusion queries: %llu, inconsistent fusions: %llu, "
              "max epoch spread: %llu\n",
              static_cast<unsigned long long>(queries),
              static_cast<unsigned long long>(bad_fusions.load()),
              static_cast<unsigned long long>(max_spread_seen.load()));
  return bad_fusions.load() == 0 ? 0 : 1;
}
