// Sensor fusion over a hot-plugging sensor array -- the dynamic-runtime
// AND value-plane showcase.
//
//   build/examples/sensor_fusion [--sensors0=N] [--sensors=N]
//                                [--readings=N] [--queries=N]
//                                [--readers=N] [--impl=<registry spec>]
//                                [--publish=batch|singleton]
//                                [--trace=<path.jsonl>]
//
// A sensor array publishes readings into a partial snapshot object.  The
// array GROWS while the system runs: new sensors hot-plug in blocks via
// PartialSnapshot::add_components, with updates and fusion queries never
// pausing.  Fusion reader threads likewise come and go -- each reader
// generation registers with exec::ThreadHandle, runs its queries, and
// exits, handing its pid to the next generation.
//
// Readings are STRUCT payloads on the blob value plane (the default impl
// is fig3_cas:value=blob): each sensor publishes a SensorReading
// {id, epoch, reading} through update_blob, and fusion queries read the
// structs back atomically with scan_blobs -- no field packing into a
// word, the indirect-payload feature end to end.  Pass a u64-plane spec
// (e.g. --impl=fig3_cas) and the example falls back to the historical
// redundant word encoding (epoch * 1000 + id) over the same oracle.
//
// Consistency is made observable either way: all sensors advance epochs
// together (barrier), so a consistent scan sees epochs that differ by at
// most 1 across any subset of *published* sensors; a larger spread means
// the fused estimate mixed incompatible frames, and an id mismatch means
// a payload landed on the wrong component.  A sensor that hot-plugged but
// has not yet published is skipped (blob plane: its payload is still the
// 8-byte initial encoding, not a SensorReading; u64 plane: it reads 0).
//
// Reader-flood mode: --readers=N floods each reader generation with N
// concurrent fusion threads (up to 128).  The versioned read plane is the
// configuration built for exactly that shape -- e.g.
//   sensor_fusion --readers=64 --impl=fig3_cas:value=versioned
// runs the flood over camera-epoch chain walks (scans never double-
// collect or retry, whatever N is) with the SAME epoch-spread oracle:
// the versioned plane stores words, so the redundant u64 encoding and
// its consistency check apply unchanged.
//
// Publish modes: the default --publish=batch presses update_batch into
// service as the multi-sensor publish -- ONE batched call covers every
// installed sensor per epoch, so the whole frame shares one announcement
// and one helping round.  The oracle tightens with the implementation's
// batch_atomicity() tier: on an atomic tier (versioned planes, lock,
// seqlock) a fused subset must sit at exactly ONE epoch (spread 0); on
// the amortized tiers entries land in argument order, so a scan may
// straddle two adjacent frames (spread <= 1), same envelope as the
// barrier gives the singleton mode.  --publish=singleton keeps the
// historical per-component path for A/B comparison.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fstream>
#include <optional>

#include "common/cli.h"
#include "common/rng.h"
#include "exec/thread_registry.h"
#include "primitives/value_plane.h"
#include "registry/registry.h"
#include "runtime/trace.h"

namespace {

// The struct telemetry record each sensor publishes on the blob plane.
struct SensorReading {
  std::uint32_t id;
  std::uint64_t epoch;
  double reading;
};

}  // namespace

int main(int argc, char** argv) {
  psnap::CliFlags flags;
  flags.define("sensors0", "16", "sensors installed at start");
  flags.define("sensors", "48", "sensors after all hot-plugs");
  flags.define("readings", "2000", "epochs the array publishes");
  flags.define("queries", "20000", "fusion queries (across reader lives)");
  flags.define("readers", "2",
               "concurrent fusion readers per generation (flood mode; "
               "pair large values with --impl=fig3_cas:value=versioned)");
  flags.define("impl", "fig3_cas:value=blob",
               "registry spec of the snapshot implementation:\n" +
                   psnap::registry::snapshot_catalogue());
  flags.define("publish", "batch",
               "multi-sensor publish path: 'batch' (one update_batch per "
               "epoch frame) or 'singleton' (one update per sensor)");
  flags.define("trace", "",
               "record every snapshot operation into a JSONL trace "
               "artifact at this path (audit with tools/trace_audit)");
  if (!flags.parse(argc, argv)) return 1;

  const std::string publish = flags.get_string("publish");
  if (publish != "batch" && publish != "singleton") {
    std::fprintf(stderr, "--publish expects 'batch' or 'singleton'\n");
    return 1;
  }
  const bool batch_publish = publish == "batch";

  const auto sensors = static_cast<std::uint32_t>(flags.get_uint("sensors"));
  // A --sensors below the default start size just means no hot-plugs; at
  // least one sensor must exist at construction.
  const auto sensors0 = std::max(
      1u, std::min(sensors,
                   static_cast<std::uint32_t>(flags.get_uint("sensors0"))));
  const auto readings = flags.get_uint("readings");
  const auto queries = flags.get_uint("queries");
  const auto readers = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                     128, flags.get_uint("readers"))));
  if (sensors == 0 || sensors >= 1000) {
    // The u64 fallback's redundant encoding needs id < 1000; the blob
    // plane has no such limit, but one envelope keeps the example simple.
    std::fprintf(stderr, "need 0 < sensors < 1000\n");
    return 1;
  }

  std::unique_ptr<psnap::core::PartialSnapshot> array_ptr;
  psnap::registry::IngestKnobs knobs;
  try {
    // Capacity: one pid per concurrent fusion reader plus the sensor
    // threads (reader generations recycle pids, so the flood never needs
    // more than one generation's worth at a time).  The knob sink makes
    // the universal reclaim=/shards=/affinity= options usable from
    // --impl; affinity=segment draws pids from shard blocks spanning the
    // full registry capacity, so the array is sized to it in that mode.
    array_ptr = psnap::registry::make_snapshot(
        flags.get_string("impl"), sensors0, /*max_threads=*/readers + 6,
        &knobs);
    if (knobs.affinity == "segment") {
      array_ptr = psnap::registry::make_snapshot(
          flags.get_string("impl"), sensors0,
          psnap::exec::ThreadRegistry::kMaxCapacity, &knobs);
    }
    if (knobs.batching_requested()) {
      std::fprintf(stderr,
                   "sensor_fusion publishes frames itself; use "
                   "--publish=batch instead of batch=/coalesce_window= "
                   "ingest knobs\n");
      return 1;
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  // --trace wraps the array in the tracing decorator; the main thread
  // also takes a pid so its hot-plug calls own their own trace ring (the
  // per-pid rings are single-writer).
  const std::string trace_path = flags.get_string("trace");
  const std::uint32_t sensors0_m = array_ptr->num_components();
  std::optional<psnap::exec::ThreadHandle> main_pid;
  std::optional<psnap::runtime::TraceSink> trace_sink;
  std::optional<psnap::runtime::TracingSnapshot> traced;
  if (!trace_path.empty()) {
    main_pid.emplace();
    trace_sink.emplace(psnap::exec::ThreadRegistry::kMaxCapacity, 2048);
    traced.emplace(*array_ptr, *trace_sink);
  }
  auto& array = traced
                    ? static_cast<psnap::core::PartialSnapshot&>(*traced)
                    : *array_ptr;
  const bool blob = array.value_plane() == "blob";
  const psnap::core::BatchAtomicity tier = array.batch_atomicity();
  if (batch_publish && tier == psnap::core::BatchAtomicity::kUnsupported) {
    std::fprintf(stderr,
                 "--publish=batch needs a batch-capable implementation "
                 "(catalogue entries marked (batch)); retry with "
                 "--publish=singleton or another --impl\n");
    return 1;
  }
  // The oracle's envelope: an atomic batch publish makes every fused
  // subset single-epoch; amortized batches and the barrier-coupled
  // singleton threads may straddle two adjacent frames.
  const std::uint64_t allowed_spread =
      batch_publish && tier == psnap::core::BatchAtomicity::kAtomic ? 0 : 1;
  // affinity=segment registers every worker shard-affine; with fewer than
  // one segment of sensors the only shard is 0, but the mode still
  // exercises the affine registration path end to end.
  const std::uint32_t affinity_shards =
      knobs.affinity == "segment"
          ? std::max(1u, array_ptr->reclaim_shards())
          : 1;
  auto registered_pid = [affinity_shards](std::uint32_t shard) {
    if (affinity_shards > 1) {
      return psnap::exec::ThreadHandle(
          psnap::exec::ThreadRegistry::process_wide(),
          shard % affinity_shards, affinity_shards);
    }
    return psnap::exec::ThreadHandle();
  };
  std::printf(
      "value plane: %s (%s payloads), publish: %s (%s), reclaim: %s "
      "(%u shard%s, affinity=%s)\n",
      std::string(array.value_plane()).c_str(),
      blob ? "struct SensorReading" : "packed u64", publish.c_str(),
      tier == psnap::core::BatchAtomicity::kAtomic    ? "atomic"
      : tier == psnap::core::BatchAtomicity::kAmortized
          ? "amortized"
          : "per-component",
      std::string(array_ptr->reclaim_plane()).c_str(),
      static_cast<unsigned>(array_ptr->reclaim_shards()),
      array_ptr->reclaim_shards() == 1 ? "" : "s", knobs.affinity.c_str());

  // Sensor threads: groups of sensors share a thread (the protocol cost is
  // per process, not per component).  All advance epoch in lock-step via a
  // shared epoch counter; each publishes its SensorReading struct (blob
  // plane) or epoch*1000+id (u64 plane).  Thread 0 doubles as the
  // hot-plug controller: every block of fusion progress it brings new
  // sensors online -- concurrently with the other thread's updates and
  // with all fusion queries.
  constexpr std::uint32_t kSensorThreads = 2;
  const std::uint32_t kPlugBlock =
      std::max(1u, (sensors - sensors0) / 8);
  std::atomic<std::uint64_t> epoch{1};
  std::atomic<std::uint32_t> at_barrier{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hot_plugs{0};
  std::atomic<std::uint64_t> queries_done{0};

  std::vector<std::thread> sensor_threads;
  if (batch_publish) {
    // One publisher owns the whole frame: every installed sensor's reading
    // for epoch e goes out in a single update_batch(_blob) -- one
    // announcement and one helping round per epoch, and (on the atomic
    // tiers) no scan can straddle two frames.  No barrier needed: the
    // batch IS the epoch boundary.
    sensor_threads.emplace_back([&] {
      auto pid = registered_pid(0);
      std::vector<SensorReading> frame;
      std::vector<psnap::core::BlobBatchEntry> blob_entries;
      std::vector<psnap::core::BatchEntry> entries;
      for (std::uint64_t e = 1; e <= readings && !stop; ++e) {
        // A sensor plugged mid-frame joins the next frame's batch.
        const std::uint32_t m = array.num_components();
        if (blob) {
          frame.clear();
          for (std::uint32_t s = 0; s < m; ++s) {
            frame.push_back({s, e, 20.0 + 0.01 * s + 0.001 * (e % 97)});
          }
          blob_entries.clear();
          for (std::uint32_t s = 0; s < m; ++s) {
            blob_entries.push_back(
                {s, psnap::value::as_bytes_of(frame[s])});
          }
          array.update_batch_blob(blob_entries);
        } else {
          entries.clear();
          for (std::uint32_t s = 0; s < m; ++s) {
            entries.push_back({s, e * 1000 + s});
          }
          array.update_batch(
              std::span<const psnap::core::BatchEntry>(entries));
        }
        epoch.store(e + 1, std::memory_order_release);
      }
    });
  } else {
    for (std::uint32_t t = 0; t < kSensorThreads; ++t) {
      sensor_threads.emplace_back([&, t] {
        auto pid = registered_pid(t);
        while (!stop) {
          std::uint64_t e = epoch.load(std::memory_order_acquire);
          if (e > readings) break;
          // Cover the sensors installed as of this epoch; a sensor
          // plugged mid-epoch starts publishing next epoch (spread
          // stays <= 1).
          const std::uint32_t m = array.num_components();
          for (std::uint32_t s = t; s < m; s += kSensorThreads) {
            if (blob) {
              SensorReading r{s, e, 20.0 + 0.01 * s + 0.001 * (e % 97)};
              array.update_blob(s, psnap::value::as_bytes_of(r));
            } else {
              array.update(s, e * 1000 + s);
            }
          }
          // Barrier: last thread in advances the epoch.
          if (at_barrier.fetch_add(1) + 1 == kSensorThreads) {
            at_barrier.store(0);
            epoch.store(e + 1, std::memory_order_release);
          } else {
            while (epoch.load(std::memory_order_acquire) == e && !stop) {
              std::this_thread::yield();
            }
          }
        }
      });
    }
  }

  // Fusion readers: short-lived generations.  Each life registers a fresh
  // ThreadHandle, fuses kQueriesPerLife random overlapping subsets of the
  // *currently installed* sensors, checks id + epoch spread, and exits.
  // --readers floods each generation with that many concurrent lives.
  constexpr std::uint64_t kQueriesPerLife = 500;
  std::atomic<std::uint64_t> bad_fusions{0};
  std::atomic<std::uint64_t> max_spread_seen{0};
  std::atomic<std::uint64_t> reader_lives{0};
  auto record_spread = [&max_spread_seen](std::uint64_t spread) {
    std::uint64_t cur = max_spread_seen.load(std::memory_order_relaxed);
    while (spread > cur &&
           !max_spread_seen.compare_exchange_weak(cur, spread)) {
    }
  };

  auto reader_life = [&](std::uint64_t seed, bool contiguous) {
    auto pid = registered_pid(  // this life's registration
        static_cast<std::uint32_t>(seed));
    reader_lives.fetch_add(1);
    psnap::Xoshiro256 rng(seed);
    std::vector<std::uint32_t> subset;
    std::vector<std::uint64_t> values;
    std::vector<psnap::value::Blob> blobs;
    for (std::uint64_t q = 0; q < kQueriesPerLife; ++q) {
      if (queries_done.fetch_add(1) >= queries) return;
      const std::uint32_t m = array.num_components();
      const std::uint32_t r = std::min<std::uint32_t>(5, m);
      subset.clear();
      if (contiguous) {
        std::uint32_t start =
            static_cast<std::uint32_t>(rng.next_below(m - r + 1));
        for (std::uint32_t k = 0; k < r; ++k) subset.push_back(start + k);
      } else {
        while (subset.size() < r) {
          std::uint32_t s = static_cast<std::uint32_t>(rng.next_below(m));
          if (std::find(subset.begin(), subset.end(), s) == subset.end()) {
            subset.push_back(s);
          }
        }
      }
      std::uint64_t lo = ~0ull, hi = 0;
      if (blob) {
        array.scan_blobs(subset, blobs);
        for (std::size_t j = 0; j < subset.size(); ++j) {
          SensorReading r_back{};
          // Hot-plugged but not yet published: still the 8-byte initial
          // payload, not a SensorReading -- skip it.
          if (!psnap::value::from_bytes(blobs[j], r_back)) continue;
          if (r_back.id != subset[j]) {  // payload on the wrong component
            bad_fusions.fetch_add(1);
            continue;
          }
          lo = std::min(lo, r_back.epoch);
          hi = std::max(hi, r_back.epoch);
        }
      } else {
        array.scan(subset, values);
        for (std::size_t j = 0; j < subset.size(); ++j) {
          if (values[j] == 0) continue;  // hot-plugged, not yet published
          // Redundant encoding must match the component.
          if (values[j] % 1000 != subset[j]) {
            bad_fusions.fetch_add(1);
            continue;
          }
          std::uint64_t e = values[j] / 1000;
          lo = std::min(lo, e);
          hi = std::max(hi, e);
        }
      }
      // Singleton/amortized publishes can straddle at most two adjacent
      // epochs; an atomic batch publish pins the whole subset to one.
      std::uint64_t spread = (hi > lo) ? hi - lo : 0;
      if (spread > allowed_spread) bad_fusions.fetch_add(1);
      record_spread(spread);
    }
  };

  std::uint64_t generation = 0;
  while (queries_done.load() < queries) {
    std::vector<std::thread> fusers;
    for (std::uint32_t f = 0; f < readers; ++f) {
      fusers.emplace_back(reader_life, generation * readers + f + 1,
                          f == 0);
    }
    for (auto& t : fusers) t.join();
    ++generation;
    // Hot-plug schedule keyed to fusion progress (one block per tenth of
    // the query budget), concurrent with the sensor threads' updates --
    // epoch counts advance at wildly different rates on a loaded
    // single-core host vs an idle many-core one, query progress does not.
    while (array.num_components() + kPlugBlock <= sensors &&
           queries_done.load() * 10 >= (hot_plugs.load() + 1) * queries) {
      array.add_components(kPlugBlock);
      hot_plugs.fetch_add(1);
    }
  }
  stop = true;
  for (auto& t : sensor_threads) t.join();

  if (traced) {
    psnap::runtime::TraceSink::Drained drained = trace_sink->drain();
    psnap::runtime::TraceArtifact artifact;
    artifact.impl = flags.get_string("impl");
    artifact.m0 = sensors0_m;
    artifact.final_m = array.num_components();
    artifact.emitted = drained.emitted;
    artifact.dropped = drained.dropped;
    artifact.events = std::move(drained.events);
    std::ofstream file(trace_path);
    if (!file) {
      std::fprintf(stderr, "failed to open %s\n", trace_path.c_str());
      return 1;
    }
    psnap::runtime::dump_jsonl(artifact, file);
    std::printf("trace: %zu events -> %s\n", artifact.events.size(),
                trace_path.c_str());
  }

  std::printf(
      "fusion queries: %llu over %llu reader lives, sensors %u -> %u "
      "(%llu hot-plugs), inconsistent fusions: %llu, max epoch spread: "
      "%llu\n",
      static_cast<unsigned long long>(queries_done.load()),
      static_cast<unsigned long long>(reader_lives.load()),
      static_cast<unsigned>(sensors0),
      static_cast<unsigned>(array.num_components()),
      static_cast<unsigned long long>(hot_plugs.load()),
      static_cast<unsigned long long>(bad_fusions.load()),
      static_cast<unsigned long long>(max_spread_seen.load()));
  return bad_fusions.load() == 0 ? 0 : 1;
}
