// Consistent checkpoints of selected program state -- the paper's
// "debugging distributed programs and storing checkpoints for data
// recovery" application (Section 1).
//
//   build/examples/checkpoint_debugger [--stages=N] [--items=N]
//                                      [--impl=<registry spec>]
//
// A pipeline of worker stages streams items: stage k consumes what stage
// k-1 produced.  Each stage publishes its progress counter into one
// component of a partial snapshot object.  A debugger thread repeatedly
// checkpoints *adjacent stage pairs* with a partial scan and checks the
// pipeline invariant
//
//     progress[k] <= progress[k-1]
//
// which holds at every real instant (a stage cannot have consumed more
// than its upstream produced).  A torn checkpoint -- new downstream value
// with a stale upstream value -- would violate it; a consistent partial
// scan never does.  At the end, a full checkpoint is committed as a
// DURABLE frame through the persist layer (CRC-framed, atomic-rename),
// loaded back, re-verified against the invariant, and printed as the
// recovery point -- the same frames examples/recovery_service restarts
// from after kill -9.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "exec/thread_registry.h"
#include "persist/checkpoint.h"
#include "recovery/checkpointer.h"
#include "registry/registry.h"

int main(int argc, char** argv) {
  psnap::CliFlags flags;
  flags.define("stages", "6", "pipeline stages");
  flags.define("items", "100000", "items pushed through the pipeline");
  flags.define("impl", "fig3_cas",
               "registry spec of the snapshot implementation:\n" +
                   psnap::registry::snapshot_catalogue());
  flags.define("dir", "", "checkpoint directory (default: fresh temp dir)");
  if (!flags.parse(argc, argv)) return 1;

  const auto stages = static_cast<std::uint32_t>(flags.get_uint("stages"));
  const auto items = flags.get_uint("items");

  std::unique_ptr<psnap::core::PartialSnapshot> progress_ptr;
  try {
    progress_ptr = psnap::registry::make_snapshot(
        flags.get_string("impl"), stages, stages + 1 /* + debugger */);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  auto& progress = *progress_ptr;

  // Local mirrored progress array the stages coordinate through; the
  // snapshot object is the *published*, checkpointable view.
  std::vector<std::atomic<std::uint64_t>> done(stages);
  for (auto& d : done) d.store(0);

  std::vector<std::thread> workers;
  for (std::uint32_t k = 0; k < stages; ++k) {
    workers.emplace_back([&, k] {
      psnap::exec::ThreadHandle pid;
      std::uint64_t my_done = 0;
      while (my_done < items) {
        std::uint64_t upstream =
            k == 0 ? items : done[k - 1].load(std::memory_order_acquire);
        if (my_done < upstream) {
          // "Process" one item and publish progress: snapshot first, then
          // the coordination variable, so the published view never runs
          // ahead of what downstream stages can observe.
          ++my_done;
          progress.update(k, my_done);
          done[k].store(my_done, std::memory_order_release);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::uint64_t checkpoints = 0, violations = 0;
  std::thread debugger([&] {
    psnap::exec::ThreadHandle pid;
    std::vector<std::uint64_t> values;
    std::uint64_t seed = 5;
    while (done[stages - 1].load(std::memory_order_acquire) < items) {
      seed = seed * 6364136223846793005ull + 1;
      auto k = static_cast<std::uint32_t>(1 + (seed >> 33) % (stages - 1));
      progress.scan(std::vector<std::uint32_t>{k - 1, k}, values);
      ++checkpoints;
      if (values[1] > values[0]) ++violations;
    }
  });

  for (auto& w : workers) w.join();
  debugger.join();

  std::printf("pipeline finished; %llu adjacent-pair checkpoints, "
              "%llu invariant violations\n",
              static_cast<unsigned long long>(checkpoints),
              static_cast<unsigned long long>(violations));

  // The final recovery point rides the durable path: commit one full
  // frame, load it back through the corruption-checked loader, and trust
  // only what the load returned.
  std::string dir = flags.get_string("dir");
  if (dir.empty()) {
    std::string tmpl = "/tmp/psnap-debugger-XXXXXX";
    char* made = ::mkdtemp(tmpl.data());
    if (made == nullptr) {
      std::perror("mkdtemp");
      return 1;
    }
    dir = made;
  }
  psnap::exec::ThreadHandle pid;
  psnap::persist::CheckpointWriter writer(dir);
  psnap::recovery::Checkpointer::Options options;
  options.impl_spec = flags.get_string("impl");
  options.initial_m = stages;
  options.max_threads = stages + 1;
  psnap::recovery::Checkpointer ck(progress, writer, options);
  std::string frame_path = ck.checkpoint_now();

  auto loaded = psnap::persist::CheckpointLoader(dir).load_newest();
  if (!loaded.has_value()) {
    std::fprintf(stderr, "committed frame did not load back\n");
    return 1;
  }
  bool frame_consistent = true;
  for (std::uint32_t k = 1; k < stages; ++k) {
    if (loaded->values[k] > loaded->values[k - 1]) frame_consistent = false;
  }
  std::printf("recovery checkpoint (%s):", frame_path.c_str());
  for (std::uint32_t k = 0; k < stages; ++k) {
    std::printf(" stage%u=%llu", k,
                static_cast<unsigned long long>(loaded->values[k]));
  }
  std::printf("%s\n", frame_consistent ? "" : "  INVARIANT VIOLATED");
  return violations == 0 && frame_consistent ? 0 : 1;
}
