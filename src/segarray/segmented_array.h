// Lock-free grow-only segmented array.
//
// Figure 2's active set uses an unbounded array I[1..] of registers: each
// join claims a fresh slot via fetch&increment and the slot is never
// recycled (the paper leaves recycling as an open problem, Section 6).
// SegmentedArray provides that unbounded array: a fixed directory of
// atomically installed fixed-size segments.  Slot addresses are stable
// forever once created, which the algorithm relies on (a leave writes 0
// into its old slot with no synchronization beyond the register write).
//
// Segment installation uses a single CAS on the directory entry; losers
// delete their segment.  Installation is memory management, not an
// algorithm step, so it is not counted by exec::on_step (the contained
// elements are themselves step-counted primitives).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/assert.h"

namespace psnap::segarray {

// Defaults give 4M slots with a 32KB directory per array instance; both
// parameters are compile-time tunable.
template <class T, std::size_t kSegmentSize = 1024,
          std::size_t kMaxSegments = 1 << 12>
class SegmentedArray {
  static_assert(kSegmentSize > 0 && (kSegmentSize & (kSegmentSize - 1)) == 0,
                "segment size must be a power of two");

 public:
  SegmentedArray() {
    for (auto& d : directory_) d.store(nullptr, std::memory_order_relaxed);
  }

  ~SegmentedArray() {
    for (auto& d : directory_) {
      delete d.load(std::memory_order_relaxed);
    }
  }

  SegmentedArray(const SegmentedArray&) = delete;
  SegmentedArray& operator=(const SegmentedArray&) = delete;

  static constexpr std::uint64_t capacity() {
    return static_cast<std::uint64_t>(kSegmentSize) * kMaxSegments;
  }

  // Returns the element at index, creating its segment if needed.  The
  // reference is valid for the lifetime of the array.
  T& at(std::uint64_t index) {
    PSNAP_ASSERT_MSG(index < capacity(), "SegmentedArray capacity exceeded");
    std::size_t seg = static_cast<std::size_t>(index / kSegmentSize);
    std::size_t off = static_cast<std::size_t>(index % kSegmentSize);
    Segment* s = directory_[seg].load(std::memory_order_acquire);
    if (s == nullptr) {
      s = install_segment(seg);
    }
    return s->slots[off];
  }

  // Read-only variant that must not allocate: returns nullptr if the
  // segment does not exist yet (the caller treats the slot as
  // "never written").
  const T* try_at(std::uint64_t index) const {
    PSNAP_ASSERT_MSG(index < capacity(), "SegmentedArray capacity exceeded");
    std::size_t seg = static_cast<std::size_t>(index / kSegmentSize);
    std::size_t off = static_cast<std::size_t>(index % kSegmentSize);
    const Segment* s = directory_[seg].load(std::memory_order_acquire);
    if (s == nullptr) return nullptr;
    return &s->slots[off];
  }

  // Number of segments currently allocated (observability for tests).
  std::size_t allocated_segments() const {
    std::size_t n = 0;
    for (const auto& d : directory_) {
      if (d.load(std::memory_order_relaxed) != nullptr) ++n;
    }
    return n;
  }

 private:
  struct Segment {
    T slots[kSegmentSize]{};
  };

  Segment* install_segment(std::size_t seg) {
    // Value-initialized segment is fully constructed before publication;
    // the release CAS orders initialization before any acquire load.
    auto fresh = std::make_unique<Segment>();
    Segment* expected = nullptr;
    if (directory_[seg].compare_exchange_strong(expected, fresh.get(),
                                                std::memory_order_acq_rel)) {
      return fresh.release();
    }
    return expected;  // another thread won; ours is freed by unique_ptr
  }

  std::atomic<Segment*> directory_[kMaxSegments];
};

}  // namespace psnap::segarray
