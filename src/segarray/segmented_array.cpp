// Header-only template; this TU anchors the library and force-instantiates
// the configuration used by the active set.
#include "segarray/segmented_array.h"

#include <atomic>

namespace psnap::segarray {

template class SegmentedArray<std::atomic<std::uint64_t>, 1024, 1 << 12>;

}  // namespace psnap::segarray
