// Direct validity checking for active set histories (paper Section 2.1).
//
// The active set specification is weaker than linearizability, so instead
// of a linearization search we check the stated property directly.  For
// every getSet G in the history:
//
//   * must-include: every process p whose join completed before G was
//     invoked and whose next leave (if any) was invoked after G responded
//     must appear in G's result;
//   * must-exclude: every process p whose leave completed before G was
//     invoked and whose next join (if any) was invoked after G responded
//     must be absent; likewise processes that never joined before G
//     responded;
//   * processes mid-join or mid-leave during G may appear either way.
//
// These are exactly the guarantees Figure 1/Figure 3's correctness proof
// consumes ("the getSet performed by U must include process p because p
// completed its join before calling E").
#pragma once

#include <string>
#include <vector>

#include "verify/history.h"

namespace psnap::verify {

struct ActiveSetCheckOutcome {
  bool ok = true;
  std::string diagnosis;  // set when !ok
};

// ops: the full history of kJoin/kLeave/kGetSet operations (updates/scans
// are ignored).  join/leave alternation per process is also validated.
//
// Pending join/leave operations (halting failures) are accepted when they
// are the process's last operation: a process that crashed inside join or
// leave is "neither active nor inactive" from that invocation onward, so
// getSets may report it either way -- no obligation in either direction.
// Pending getSets are skipped (they returned nothing to check).
ActiveSetCheckOutcome check_active_set_validity(
    const std::vector<Operation>& ops);

}  // namespace psnap::verify
