#include "verify/history.h"

#include <sstream>

#include "common/assert.h"

namespace psnap::verify {

std::string Operation::to_string() const {
  std::ostringstream os;
  os << "p" << pid;
  if (incarnation != 0) os << "#" << incarnation;
  os << " ";
  switch (type) {
    case Type::kUpdate:
      os << "update(" << index << ", " << value << ")";
      break;
    case Type::kScan:
    case Type::kScanVersioned: {
      os << (type == Type::kScan ? "scan(" : "scan_versioned(");
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (i) os << ",";
        os << indices[i];
      }
      os << ") -> (";
      for (std::size_t i = 0; i < result.size(); ++i) {
        if (i) os << ",";
        os << result[i];
      }
      os << ")";
      if (type == Type::kScanVersioned && complete()) {
        os << " @" << epoch;
      }
      break;
    }
    case Type::kUpdateBatch: {
      os << "update_batch(";
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (i) os << ",";
        os << indices[i] << ":=" << batch_values[i];
      }
      os << ")";
      break;
    }
    case Type::kGrow:
      os << "add_components(" << value << ")";
      if (complete()) os << " -> " << index;
      break;
    case Type::kJoin:
      os << "join";
      break;
    case Type::kLeave:
      os << "leave";
      break;
    case Type::kGetSet: {
      os << "getSet -> {";
      for (std::size_t i = 0; i < set_result.size(); ++i) {
        if (i) os << ",";
        os << set_result[i];
      }
      os << "}";
      break;
    }
  }
  os << " [" << invoke_seq << ", ";
  if (complete()) {
    os << respond_seq;
  } else {
    os << "pending";
  }
  os << "]";
  return os.str();
}

std::size_t History::begin_op(Operation op) {
  op.invoke_seq = next_seq();
  op.respond_seq = kPending;
  std::scoped_lock lock(mu_);
  auto it = incarnations_.find(op.pid);
  op.incarnation = it == incarnations_.end() ? 0 : it->second;
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void History::complete_op(std::size_t handle) {
  std::uint64_t seq = next_seq();
  std::scoped_lock lock(mu_);
  PSNAP_ASSERT(handle < ops_.size());
  PSNAP_ASSERT(!ops_[handle].complete());
  ops_[handle].respond_seq = seq;
}

void History::complete_scan(std::size_t handle,
                            std::vector<std::uint64_t> result) {
  std::uint64_t seq = next_seq();
  std::scoped_lock lock(mu_);
  PSNAP_ASSERT(handle < ops_.size());
  Operation& op = ops_[handle];
  PSNAP_ASSERT(op.type == Operation::Type::kScan && !op.complete());
  op.result = std::move(result);
  op.respond_seq = seq;
}

void History::complete_scan_versioned(std::size_t handle,
                                      std::vector<std::uint64_t> result,
                                      std::uint64_t epoch) {
  std::uint64_t seq = next_seq();
  std::scoped_lock lock(mu_);
  PSNAP_ASSERT(handle < ops_.size());
  Operation& op = ops_[handle];
  PSNAP_ASSERT(op.type == Operation::Type::kScanVersioned && !op.complete());
  op.result = std::move(result);
  op.epoch = epoch;
  op.respond_seq = seq;
}

void History::complete_grow(std::size_t handle, std::uint32_t first) {
  std::uint64_t seq = next_seq();
  std::scoped_lock lock(mu_);
  PSNAP_ASSERT(handle < ops_.size());
  Operation& op = ops_[handle];
  PSNAP_ASSERT(op.type == Operation::Type::kGrow && !op.complete());
  op.index = first;
  op.respond_seq = seq;
}

void History::complete_get_set(std::size_t handle,
                               std::vector<std::uint32_t> set_result) {
  std::uint64_t seq = next_seq();
  std::scoped_lock lock(mu_);
  PSNAP_ASSERT(handle < ops_.size());
  Operation& op = ops_[handle];
  PSNAP_ASSERT(op.type == Operation::Type::kGetSet && !op.complete());
  op.set_result = std::move(set_result);
  op.respond_seq = seq;
}

void History::note_pid_released(std::uint32_t pid) {
  std::scoped_lock lock(mu_);
  ++incarnations_[pid];
}

std::vector<Operation> History::operations() const {
  std::scoped_lock lock(mu_);
  return ops_;
}

std::string History::to_string() const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  for (const Operation& op : ops_) os << op.to_string() << "\n";
  return os.str();
}

}  // namespace psnap::verify
