// History-recording decorators for the objects under test.
//
// Wrap any PartialSnapshot or ActiveSet; every operation is logged into a
// History with invocation/response sequence numbers taken immediately
// before/after the delegate call.  The wrappers add no base-object steps.
#pragma once

#include "activeset/active_set.h"
#include "core/partial_snapshot.h"
#include "verify/history.h"

namespace psnap::verify {

class RecordingSnapshot final : public core::PartialSnapshot {
 public:
  RecordingSnapshot(core::PartialSnapshot& delegate, History& history)
      : delegate_(delegate), history_(history) {}

  std::uint32_t num_components() const override {
    return delegate_.num_components();
  }
  std::string_view name() const override { return delegate_.name(); }
  bool is_wait_free() const override { return delegate_.is_wait_free(); }
  bool is_local() const override { return delegate_.is_local(); }
  std::string_view value_plane() const override {
    return delegate_.value_plane();
  }
  core::BatchAtomicity batch_atomicity() const override {
    return delegate_.batch_atomicity();
  }

  // Recorded as kGrow: growth itself is not a linearized value operation
  // (new components start at the initial value, indistinguishable from
  // having existed all along), but the grow-only oracle checks the
  // returned blocks for disjointness and watermark monotonicity.
  std::uint32_t add_components(std::uint32_t count) override;

  void update(std::uint32_t i, std::uint64_t v) override;
  // Recorded as kUpdate carrying the u64 the blob plane's scan() would
  // decode from the payload (first 8 bytes, native-endian, zero-extended),
  // so blob-plane histories check against the same sequential spec.
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  void update_batch(std::span<const core::BatchEntry> entries) override;
  using core::PartialSnapshot::update_batch;
  // Forwarded without recording: the fuzzers drive the blob plane through
  // update_blob/update_batch (which encode), not the blob batch entry.
  void update_batch_blob(
      std::span<const core::BlobBatchEntry> entries) override {
    delegate_.update_batch_blob(entries);
  }

  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan;
  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out,
                               core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan_versioned;
  // Forwarded without recording (see update_batch_blob).
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<value::Blob>& out,
                  core::ScanContext& ctx) override {
    delegate_.scan_blobs(indices, out, ctx);
  }
  using core::PartialSnapshot::scan_blobs;

 private:
  core::PartialSnapshot& delegate_;
  History& history_;
};

class RecordingActiveSet final : public activeset::ActiveSet {
 public:
  RecordingActiveSet(activeset::ActiveSet& delegate, History& history)
      : delegate_(delegate), history_(history) {}

  void join() override;
  void leave() override;
  void get_set(std::vector<std::uint32_t>& out) override;

  std::string_view name() const override { return delegate_.name(); }
  std::uint32_t max_processes() const override {
    return delegate_.max_processes();
  }

 private:
  activeset::ActiveSet& delegate_;
  History& history_;
};

}  // namespace psnap::verify
