// History-recording decorators for the objects under test.
//
// Wrap any PartialSnapshot or ActiveSet; every operation is logged into a
// History with invocation/response sequence numbers taken immediately
// before/after the delegate call.  The wrappers add no base-object steps.
#pragma once

#include "activeset/active_set.h"
#include "core/partial_snapshot.h"
#include "verify/history.h"

namespace psnap::verify {

class RecordingSnapshot final : public core::PartialSnapshot {
 public:
  RecordingSnapshot(core::PartialSnapshot& delegate, History& history)
      : delegate_(delegate), history_(history) {}

  std::uint32_t num_components() const override {
    return delegate_.num_components();
  }
  std::string_view name() const override { return delegate_.name(); }
  bool is_wait_free() const override { return delegate_.is_wait_free(); }
  bool is_local() const override { return delegate_.is_local(); }

  // Forwarded without recording: growth is not one of the checked
  // operations (new components start at the initial value, which is
  // indistinguishable from their having existed all along, so histories
  // stay checkable against the final component count).
  std::uint32_t add_components(std::uint32_t count) override {
    return delegate_.add_components(count);
  }

  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan;

 private:
  core::PartialSnapshot& delegate_;
  History& history_;
};

class RecordingActiveSet final : public activeset::ActiveSet {
 public:
  RecordingActiveSet(activeset::ActiveSet& delegate, History& history)
      : delegate_(delegate), history_(history) {}

  void join() override;
  void leave() override;
  void get_set(std::vector<std::uint32_t>& out) override;

  std::string_view name() const override { return delegate_.name(); }
  std::uint32_t max_processes() const override {
    return delegate_.max_processes();
  }

 private:
  activeset::ActiveSet& delegate_;
  History& history_;
};

}  // namespace psnap::verify
