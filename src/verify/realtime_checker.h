// Sound real-time consistency checking for native-thread stress tests.
//
// Precise linearizability checking does not scale to multi-million-op
// native runs, so stress tests use a sound (no false alarms) interval
// check instead, under a constrained workload:
//
//   * each component i has exactly ONE dedicated writer thread, writing the
//     strictly increasing values 1, 2, 3, ...;
//   * every write k on component i is logged with wall-clock timestamps
//     taken immediately before and after the update call: [b_{i,k}, e_{i,k}];
//   * value k is therefore present in component i no earlier than b_{i,k}
//     and no later than e_{i,k+1} (the possible-presence window; the true
//     window is contained in it).
//
// A scan returning value k_j for component i_j is judged inconsistent --
// definitely not linearizable -- if the possible-presence windows of its
// values cannot pairwise intersect at a time inside the scan's own
// interval:   max_j b_j > min_j e_j.  This catches torn scans (mixing an
// old value of one component with a much newer value of another) while
// never flagging a correct implementation; the deterministic-scheduler
// tests provide the exact check on small histories.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psnap::verify {

class RealtimeChecker {
 public:
  // num_components dedicated-writer components.
  explicit RealtimeChecker(std::uint32_t num_components);

  // The component's writer calls these around each update(i, k) call, with
  // k = 1, 2, 3, ... strictly increasing.  Not thread-safe across writers
  // of the same component (by design there is exactly one).
  void record_write_begin(std::uint32_t component, std::uint64_t value,
                          std::uint64_t now_nanos);
  void record_write_end(std::uint32_t component, std::uint64_t value,
                        std::uint64_t now_nanos);

  struct ScanObservation {
    std::uint64_t invoke_nanos;
    std::uint64_t respond_nanos;
    std::vector<std::uint32_t> indices;
    std::vector<std::uint64_t> values;
  };

  struct Outcome {
    bool ok = true;
    std::string diagnosis;
  };

  // Call after all threads joined.  Checks every scan observation.
  Outcome check(const std::vector<ScanObservation>& scans) const;

 private:
  struct WriteLog {
    // begin[k-1] / end[k-1] are the timestamps around the write of value k.
    std::vector<std::uint64_t> begin;
    std::vector<std::uint64_t> end;
  };

  std::vector<WriteLog> logs_;
};

}  // namespace psnap::verify
