#include "verify/realtime_checker.h"

#include <algorithm>

#include "common/assert.h"

namespace psnap::verify {

RealtimeChecker::RealtimeChecker(std::uint32_t num_components)
    : logs_(num_components) {}

void RealtimeChecker::record_write_begin(std::uint32_t component,
                                         std::uint64_t value,
                                         std::uint64_t now_nanos) {
  PSNAP_ASSERT(component < logs_.size());
  WriteLog& log = logs_[component];
  PSNAP_ASSERT_MSG(value == log.begin.size() + 1,
                   "writer must produce values 1,2,3,... in order");
  log.begin.push_back(now_nanos);
}

void RealtimeChecker::record_write_end(std::uint32_t component,
                                       std::uint64_t value,
                                       std::uint64_t now_nanos) {
  PSNAP_ASSERT(component < logs_.size());
  WriteLog& log = logs_[component];
  PSNAP_ASSERT(value == log.begin.size() && value == log.end.size() + 1);
  log.end.push_back(now_nanos);
}

RealtimeChecker::Outcome RealtimeChecker::check(
    const std::vector<ScanObservation>& scans) const {
  constexpr std::uint64_t kInf = ~std::uint64_t{0};
  Outcome outcome;
  for (const ScanObservation& scan : scans) {
    PSNAP_ASSERT(scan.indices.size() == scan.values.size());
    // Intersect the possible-presence windows of all observed values and
    // the scan's own interval.
    std::uint64_t lo = scan.invoke_nanos;
    std::uint64_t hi = scan.respond_nanos;
    std::uint32_t lo_comp = ~std::uint32_t{0}, hi_comp = ~std::uint32_t{0};
    for (std::size_t j = 0; j < scan.indices.size(); ++j) {
      std::uint32_t comp = scan.indices[j];
      std::uint64_t value = scan.values[j];
      PSNAP_ASSERT(comp < logs_.size());
      const WriteLog& log = logs_[comp];
      PSNAP_ASSERT_MSG(value <= log.begin.size(),
                       "scan observed a value that was never written");
      // Value k is possibly present from begin[k-1] (0 for the initial
      // value) until end[k] (infinity if k+1 was never written).
      std::uint64_t b = value == 0 ? 0 : log.begin[value - 1];
      std::uint64_t e = value < log.end.size() ? log.end[value] : kInf;
      if (b > lo) {
        lo = b;
        lo_comp = comp;
      }
      if (e < hi) {
        hi = e;
        hi_comp = comp;
      }
    }
    if (lo > hi) {
      outcome.ok = false;
      outcome.diagnosis =
          "torn scan: value of component " + std::to_string(lo_comp) +
          " cannot have coexisted with value of component " +
          std::to_string(hi_comp) +
          " inside the scan interval (window [" + std::to_string(lo) + ", " +
          std::to_string(hi) + "])";
      return outcome;
    }
  }
  return outcome;
}

}  // namespace psnap::verify
