// Operation histories for correctness checking.
//
// A history is a sequence of invocation/response pairs with a global order:
// operation A really-happened-before B iff A's response sequence number is
// smaller than B's invocation sequence number.  Under the deterministic
// scheduler the sequence numbers are exact; under native threads they come
// from an atomic counter, which is sound for the checkers used there.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace psnap::verify {

inline constexpr std::uint64_t kPending = ~std::uint64_t{0};

struct Operation {
  enum class Type : std::uint8_t { kUpdate, kScan, kJoin, kLeave, kGetSet };

  Type type;
  std::uint32_t pid = 0;
  std::uint64_t invoke_seq = 0;
  std::uint64_t respond_seq = kPending;

  // kUpdate payload.
  std::uint32_t index = 0;
  std::uint64_t value = 0;

  // kScan payload.
  std::vector<std::uint32_t> indices;
  std::vector<std::uint64_t> result;

  // kGetSet payload.
  std::vector<std::uint32_t> set_result;

  bool complete() const { return respond_seq != kPending; }

  std::string to_string() const;
};

// Thread-safe append-only history.
class History {
 public:
  // Returns an operation handle; fill the payload through it and call
  // complete_op when the operation returns.
  std::size_t begin_op(Operation op);
  void complete_op(std::size_t handle);
  // Completes with payload fields that are only known at response time.
  void complete_scan(std::size_t handle, std::vector<std::uint64_t> result);
  void complete_get_set(std::size_t handle,
                        std::vector<std::uint32_t> set_result);

  // Snapshot of all operations (call after the run has quiesced).
  std::vector<Operation> operations() const;

  std::string to_string() const;

 private:
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::atomic<std::uint64_t> seq_{0};
  std::vector<Operation> ops_;
};

}  // namespace psnap::verify
