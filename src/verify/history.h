// Operation histories for correctness checking.
//
// A history is a sequence of invocation/response pairs with a global order:
// operation A really-happened-before B iff A's response sequence number is
// smaller than B's invocation sequence number.  Under the deterministic
// scheduler the sequence numbers are exact; under native threads they come
// from an atomic counter, which is sound for the checkers used there.
//
// Thread identity is a LANE, not a raw pid: ThreadRegistry reuses released
// pids, so two different logical threads can record under the same pid
// within one history.  The history tracks a per-pid incarnation counter,
// bumped by note_pid_released(); checkers that need per-thread program
// order (epoch monotonicity, batch pairing) key on Operation::lane(),
// which never merges operations from distinct holders of a reused pid.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace psnap::verify {

inline constexpr std::uint64_t kPending = ~std::uint64_t{0};

struct Operation {
  enum class Type : std::uint8_t {
    kUpdate,
    kScan,
    kJoin,
    kLeave,
    kGetSet,
    kUpdateBatch,    // update_batch: indices[i] := batch_values[i]
    kScanVersioned,  // scan carrying the camera epoch it returned
    kGrow,           // add_components: value = count, index = first (at
                     // response; the block base is only known on return)
  };

  Type type;
  std::uint32_t pid = 0;
  // Which holder of `pid` this was (see lane() below).
  std::uint32_t incarnation = 0;
  std::uint64_t invoke_seq = 0;
  std::uint64_t respond_seq = kPending;

  // kUpdate payload; kGrow reuses index=first, value=count.
  std::uint32_t index = 0;
  std::uint64_t value = 0;

  // kScan / kScanVersioned / kUpdateBatch payload.
  std::vector<std::uint32_t> indices;
  std::vector<std::uint64_t> result;

  // kUpdateBatch payload: parallel to indices.
  std::vector<std::uint64_t> batch_values;

  // kScanVersioned payload: the epoch stamped on the returned view.
  std::uint64_t epoch = 0;

  // kGetSet payload.
  std::vector<std::uint32_t> set_result;

  bool complete() const { return respond_seq != kPending; }

  // Per-thread identity that survives pid reuse.
  std::uint64_t lane() const {
    return (std::uint64_t{pid} << 32) | incarnation;
  }

  std::string to_string() const;
};

// Thread-safe append-only history.
class History {
 public:
  // Returns an operation handle; fill the payload through it and call
  // complete_op when the operation returns.
  std::size_t begin_op(Operation op);
  void complete_op(std::size_t handle);
  // Completes with payload fields that are only known at response time.
  void complete_scan(std::size_t handle, std::vector<std::uint64_t> result);
  void complete_scan_versioned(std::size_t handle,
                               std::vector<std::uint64_t> result,
                               std::uint64_t epoch);
  void complete_grow(std::size_t handle, std::uint32_t first);
  void complete_get_set(std::size_t handle,
                        std::vector<std::uint32_t> set_result);

  // Declares that pid's current holder released it: operations recorded
  // under this pid from now on belong to a new lane.  Call between the
  // release and the next acquire (ThreadRegistry hands pids to one holder
  // at a time, so there is no in-flight operation to misattribute).
  void note_pid_released(std::uint32_t pid);

  // Snapshot of all operations (call after the run has quiesced).
  std::vector<Operation> operations() const;

  std::string to_string() const;

 private:
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::atomic<std::uint64_t> seq_{0};
  std::vector<Operation> ops_;
  std::unordered_map<std::uint32_t, std::uint32_t> incarnations_;
};

}  // namespace psnap::verify
