#include "verify/lin_checker.h"

#include <algorithm>
#include <unordered_set>

#include "common/assert.h"

namespace psnap::verify {

namespace {

// Search-state key: which operations have linearized (bitmask) plus the
// exact component values.  Exact equality -- a hash collision must not be
// able to fake a visited state, so the full state participates in
// operator==.
struct StateKey {
  std::uint64_t mask;
  std::vector<std::uint64_t> components;

  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const {
    // FNV-1a over mask and components.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t x) {
      h ^= x;
      h *= 1099511628211ull;
    };
    mix(key.mask);
    for (std::uint64_t v : key.components) mix(v);
    return static_cast<std::size_t>(h);
  }
};

class Searcher {
 public:
  Searcher(const std::vector<Operation>& ops, const LinCheckOptions& options)
      : ops_(ops),
        options_(options),
        state_(options.num_components, options.initial_value) {}

  LinCheckOutcome run() {
    LinCheckOutcome outcome;
    std::uint64_t all = ops_.size() == 64
                            ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << ops_.size()) - 1);
    completed_mask_ = 0;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].complete()) completed_mask_ |= std::uint64_t{1} << i;
    }
    bool ok = dfs(all);
    outcome.nodes_visited = nodes_;
    if (budget_hit_) {
      outcome.result = LinResult::kBudgetExceeded;
    } else if (ok) {
      outcome.result = LinResult::kLinearizable;
    } else {
      outcome.result = LinResult::kNotLinearizable;
      outcome.diagnosis = diagnosis_.empty()
                              ? "no linearization order can explain the "
                                "recorded scan results"
                              : diagnosis_;
    }
    return outcome;
  }

 private:
  // remaining: bitmask of operations not yet linearized.
  bool dfs(std::uint64_t remaining) {
    // Success once every COMPLETED operation has linearized: remaining
    // pending updates are simply never assigned linearization points
    // (their effects never became visible, which is allowed).
    if ((remaining & completed_mask_) == 0) return true;
    if (++nodes_ > options_.max_nodes) {
      budget_hit_ = true;
      return false;
    }
    StateKey key{remaining, state_};
    if (!visited_.insert(key).second) return false;

    // Minimal operations: invocation precedes every remaining response.
    std::uint64_t min_respond = kPending;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((remaining >> i) & 1) {
        min_respond = std::min(min_respond, ops_[i].respond_seq);
      }
    }

    bool any_candidate = false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!((remaining >> i) & 1)) continue;
      const Operation& op = ops_[i];
      if (op.invoke_seq > min_respond) continue;
      any_candidate = true;

      if (op.type == Operation::Type::kUpdate) {
        std::uint64_t saved = state_[op.index];
        state_[op.index] = op.value;
        if (dfs(remaining & ~(std::uint64_t{1} << i))) return true;
        state_[op.index] = saved;
      } else if (op.type == Operation::Type::kUpdateBatch) {
        // The whole batch takes effect at ONE linearization point
        // (kAtomic tier; amortized-tier batches are expanded into
        // per-entry updates before the search).  Entries apply in
        // argument order, so duplicate indices coalesce last-wins.
        std::vector<std::uint64_t> saved;
        saved.reserve(op.indices.size());
        for (std::size_t j = 0; j < op.indices.size(); ++j) {
          saved.push_back(state_[op.indices[j]]);
          state_[op.indices[j]] = op.batch_values[j];
        }
        if (dfs(remaining & ~(std::uint64_t{1} << i))) return true;
        for (std::size_t j = op.indices.size(); j-- > 0;) {
          state_[op.indices[j]] = saved[j];
        }
      } else {
        PSNAP_ASSERT(op.type == Operation::Type::kScan ||
                     op.type == Operation::Type::kScanVersioned);
        PSNAP_ASSERT(op.indices.size() == op.result.size());
        bool matches = true;
        for (std::size_t j = 0; j < op.indices.size(); ++j) {
          if (state_[op.indices[j]] != op.result[j]) {
            matches = false;
            break;
          }
        }
        if (matches) {
          if (dfs(remaining & ~(std::uint64_t{1} << i))) return true;
        }
      }
      if (budget_hit_) return false;
    }

    if (!any_candidate && diagnosis_.empty()) {
      diagnosis_ = "no minimal operation can linearize; frontier:";
      for (std::size_t i = 0; i < ops_.size(); ++i) {
        if ((remaining >> i) & 1) {
          diagnosis_ += "\n  " + ops_[i].to_string();
        }
      }
    }
    return false;
  }

  const std::vector<Operation>& ops_;
  const LinCheckOptions& options_;
  std::uint64_t completed_mask_ = 0;
  std::vector<std::uint64_t> state_;
  std::unordered_set<StateKey, StateKeyHash> visited_;
  std::uint64_t nodes_ = 0;
  bool budget_hit_ = false;
  std::string diagnosis_;
};

}  // namespace

LinCheckOutcome check_snapshot_linearizable(const std::vector<Operation>& ops,
                                            const LinCheckOptions& options) {
  PSNAP_ASSERT(options.num_components > 0);
  // Pending scans returned nothing: drop them before the search.  Pending
  // updates stay in (apply-or-omit is explored by the searcher).
  std::vector<Operation> filtered;
  filtered.reserve(ops.size());
  for (const Operation& op : ops) {
    PSNAP_ASSERT_MSG(op.type == Operation::Type::kUpdate ||
                         op.type == Operation::Type::kScan ||
                         op.type == Operation::Type::kScanVersioned ||
                         op.type == Operation::Type::kUpdateBatch ||
                         op.type == Operation::Type::kGrow,
                     "snapshot checker accepts only snapshot operations");
    if (op.type == Operation::Type::kGrow) {
      // Growth is not a value operation: new components hold the initial
      // value, indistinguishable from having existed all along, so the
      // search runs against the final component count.  (The grow-only
      // oracle checks the blocks themselves.)
      continue;
    }
    if (op.type == Operation::Type::kUpdate) {
      PSNAP_ASSERT(op.index < options.num_components);
    } else if (op.type == Operation::Type::kUpdateBatch) {
      PSNAP_ASSERT(op.indices.size() == op.batch_values.size());
      for (std::uint32_t i : op.indices) {
        PSNAP_ASSERT(i < options.num_components);
      }
    } else {
      for (std::uint32_t i : op.indices) {
        PSNAP_ASSERT(i < options.num_components);
      }
      if (!op.complete()) continue;  // pending scans returned nothing
    }
    filtered.push_back(op);
  }
  PSNAP_ASSERT_MSG(filtered.size() <= 64,
                   "checker handles at most 64 operations per history");
  Searcher searcher(filtered, options);
  return searcher.run();
}

}  // namespace psnap::verify
