#include "verify/recording.h"

#include "exec/exec.h"

namespace psnap::verify {

void RecordingSnapshot::update(std::uint32_t i, std::uint64_t v) {
  Operation op;
  op.type = Operation::Type::kUpdate;
  op.pid = exec::ctx().pid;
  op.index = i;
  op.value = v;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.update(i, v);
  history_.complete_op(handle);
}

void RecordingSnapshot::scan(std::span<const std::uint32_t> indices,
                             std::vector<std::uint64_t>& out,
                             core::ScanContext& ctx) {
  Operation op;
  op.type = Operation::Type::kScan;
  op.pid = exec::ctx().pid;
  op.indices.assign(indices.begin(), indices.end());
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.scan(indices, out, ctx);
  history_.complete_scan(handle, out);
}

void RecordingActiveSet::join() {
  Operation op;
  op.type = Operation::Type::kJoin;
  op.pid = exec::ctx().pid;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.join();
  history_.complete_op(handle);
}

void RecordingActiveSet::leave() {
  Operation op;
  op.type = Operation::Type::kLeave;
  op.pid = exec::ctx().pid;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.leave();
  history_.complete_op(handle);
}

void RecordingActiveSet::get_set(std::vector<std::uint32_t>& out) {
  Operation op;
  op.type = Operation::Type::kGetSet;
  op.pid = exec::ctx().pid;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.get_set(out);
  history_.complete_get_set(handle, out);
}

}  // namespace psnap::verify
