#include "verify/recording.h"

#include <cstring>

#include "exec/exec.h"

namespace psnap::verify {

namespace {

// The blob plane's u64 view of a payload: first 8 bytes, native-endian,
// zero-extended (core/partial_snapshot.h's scan-on-blob contract).
std::uint64_t decode_blob_word(std::span<const std::byte> bytes) {
  std::uint64_t v = 0;
  if (!bytes.empty()) {
    std::memcpy(&v, bytes.data(), std::min<std::size_t>(bytes.size(), 8));
  }
  return v;
}

}  // namespace

std::uint32_t RecordingSnapshot::add_components(std::uint32_t count) {
  Operation op;
  op.type = Operation::Type::kGrow;
  op.pid = exec::ctx().pid;
  op.value = count;
  std::size_t handle = history_.begin_op(std::move(op));
  std::uint32_t first = delegate_.add_components(count);
  history_.complete_grow(handle, first);
  return first;
}

void RecordingSnapshot::update(std::uint32_t i, std::uint64_t v) {
  Operation op;
  op.type = Operation::Type::kUpdate;
  op.pid = exec::ctx().pid;
  op.index = i;
  op.value = v;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.update(i, v);
  history_.complete_op(handle);
}

void RecordingSnapshot::update_blob(std::uint32_t i,
                                    std::span<const std::byte> bytes) {
  Operation op;
  op.type = Operation::Type::kUpdate;
  op.pid = exec::ctx().pid;
  op.index = i;
  op.value = decode_blob_word(bytes);
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.update_blob(i, bytes);
  history_.complete_op(handle);
}

void RecordingSnapshot::update_batch(
    std::span<const core::BatchEntry> entries) {
  if (entries.empty()) {
    delegate_.update_batch(entries);
    return;
  }
  Operation op;
  op.type = Operation::Type::kUpdateBatch;
  op.pid = exec::ctx().pid;
  op.indices.reserve(entries.size());
  op.batch_values.reserve(entries.size());
  for (const core::BatchEntry& e : entries) {
    op.indices.push_back(e.index);
    op.batch_values.push_back(e.value);
  }
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.update_batch(entries);
  history_.complete_op(handle);
}

void RecordingSnapshot::scan(std::span<const std::uint32_t> indices,
                             std::vector<std::uint64_t>& out,
                             core::ScanContext& ctx) {
  Operation op;
  op.type = Operation::Type::kScan;
  op.pid = exec::ctx().pid;
  op.indices.assign(indices.begin(), indices.end());
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.scan(indices, out, ctx);
  history_.complete_scan(handle, out);
}

std::uint64_t RecordingSnapshot::scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    core::ScanContext& ctx) {
  Operation op;
  op.type = Operation::Type::kScanVersioned;
  op.pid = exec::ctx().pid;
  op.indices.assign(indices.begin(), indices.end());
  std::size_t handle = history_.begin_op(std::move(op));
  std::uint64_t epoch = delegate_.scan_versioned(indices, out, ctx);
  history_.complete_scan_versioned(handle, out, epoch);
  return epoch;
}

void RecordingActiveSet::join() {
  Operation op;
  op.type = Operation::Type::kJoin;
  op.pid = exec::ctx().pid;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.join();
  history_.complete_op(handle);
}

void RecordingActiveSet::leave() {
  Operation op;
  op.type = Operation::Type::kLeave;
  op.pid = exec::ctx().pid;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.leave();
  history_.complete_op(handle);
}

void RecordingActiveSet::get_set(std::vector<std::uint32_t>& out) {
  Operation op;
  op.type = Operation::Type::kGetSet;
  op.pid = exec::ctx().pid;
  std::size_t handle = history_.begin_op(std::move(op));
  delegate_.get_set(out);
  history_.complete_get_set(handle, out);
}

}  // namespace psnap::verify
