// Linearizability checking for partial snapshot histories.
//
// Wing & Gong's algorithm with Lowe-style memoization: depth-first search
// over linearization orders, where at each point any operation whose
// invocation precedes every remaining operation's response ("minimal"
// operations) may linearize next; visited (remaining-set, abstract-state)
// pairs are cached so equivalent search branches are explored once.
//
// The sequential specification is the paper's Section 2.1 object: a vector
// of m components; update(i,v) mutates component i; scan(i1..ir) returns
// exactly the current values of those components.
//
// Pending operations -- invocations without responses, produced by the
// scheduler's halting-failure injection -- are handled per the standard
// definition: a pending update may be assigned a linearization point
// anywhere after its invocation or omitted entirely; a pending scan
// returned nothing and imposes no constraint, so it is ignored.
//
// General linearizability checking is NP-complete (that is fine: the
// histories come from the deterministic scheduler and are small).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/history.h"

namespace psnap::verify {

enum class LinResult : std::uint8_t {
  kLinearizable,
  kNotLinearizable,
  kBudgetExceeded,  // search node budget exhausted (inconclusive)
};

struct LinCheckOptions {
  std::uint32_t num_components = 0;   // m
  std::uint64_t initial_value = 0;
  std::uint64_t max_nodes = 5'000'000;
};

struct LinCheckOutcome {
  LinResult result;
  std::uint64_t nodes_visited = 0;
  // On kNotLinearizable: a human-readable description of the stuck frontier.
  std::string diagnosis;
};

// ops may contain kUpdate, kScan, kScanVersioned, kUpdateBatch and kGrow
// operations.  kGrow is skipped (run the check against the final component
// count); kScanVersioned checks like kScan; a kUpdateBatch linearizes
// atomically at one point -- expand amortized-tier batches into per-entry
// kUpdates (sharing the batch's interval) before calling, as
// fuzz/oracles.h does.
LinCheckOutcome check_snapshot_linearizable(const std::vector<Operation>& ops,
                                            const LinCheckOptions& options);

}  // namespace psnap::verify
