#include "verify/activeset_checker.h"

#include <algorithm>
#include <map>

#include "common/assert.h"

namespace psnap::verify {

namespace {

struct MemberOp {
  bool is_join;
  std::uint64_t invoke_seq;
  std::uint64_t respond_seq;
};

std::string fail(const Operation& get_set, const std::string& why) {
  return "getSet " + get_set.to_string() + ": " + why;
}

}  // namespace

ActiveSetCheckOutcome check_active_set_validity(
    const std::vector<Operation>& ops) {
  ActiveSetCheckOutcome outcome;

  // Per-process join/leave timeline, sorted by invocation.  Pending
  // member operations keep their invocation (that is when obligations
  // end) and an infinite response, so last_completed below never selects
  // them while next_after does -- exactly the "neither active nor
  // inactive from invocation on" semantics.
  std::map<std::uint32_t, std::vector<MemberOp>> timelines;
  std::vector<const Operation*> get_sets;
  for (const Operation& op : ops) {
    switch (op.type) {
      case Operation::Type::kJoin:
      case Operation::Type::kLeave:
        timelines[op.pid].push_back(MemberOp{
            op.type == Operation::Type::kJoin, op.invoke_seq, op.respond_seq});
        break;
      case Operation::Type::kGetSet:
        if (op.complete()) get_sets.push_back(&op);
        break;
      default:
        break;  // snapshot operations are not our concern
    }
  }

  for (auto& [pid, timeline] : timelines) {
    std::sort(timeline.begin(), timeline.end(),
              [](const MemberOp& a, const MemberOp& b) {
                return a.invoke_seq < b.invoke_seq;
              });
    // Alternation contract: join, leave, join, ...
    for (std::size_t k = 0; k < timeline.size(); ++k) {
      bool expect_join = (k % 2 == 0);
      if (timeline[k].is_join != expect_join) {
        outcome.ok = false;
        outcome.diagnosis = "process " + std::to_string(pid) +
                            " violates join/leave alternation";
        return outcome;
      }
    }
  }

  for (const Operation* g : get_sets) {
    for (auto& [pid, timeline] : timelines) {
      // State of p at G's invocation, considering only completed ops, and
      // whether p invokes a conflicting transition before G responds.
      //
      // last_completed: the latest join/leave of p whose response precedes
      // G's invocation (nullptr if none).
      const MemberOp* last_completed = nullptr;
      const MemberOp* next_after = nullptr;  // earliest op invoked after that
      for (const MemberOp& mo : timeline) {
        if (mo.respond_seq < g->invoke_seq) {
          if (last_completed == nullptr ||
              mo.respond_seq > last_completed->respond_seq) {
            last_completed = &mo;
          }
        }
      }
      for (const MemberOp& mo : timeline) {
        if (last_completed != nullptr &&
            mo.invoke_seq <= last_completed->invoke_seq) {
          continue;
        }
        if (last_completed == nullptr || mo.invoke_seq > last_completed->invoke_seq) {
          if (next_after == nullptr || mo.invoke_seq < next_after->invoke_seq) {
            next_after = &mo;
          }
        }
      }

      bool in_result = std::binary_search(g->set_result.begin(),
                                          g->set_result.end(), pid);

      bool active_throughout =
          last_completed != nullptr && last_completed->is_join &&
          (next_after == nullptr || next_after->invoke_seq > g->respond_seq);
      bool inactive_throughout =
          (last_completed == nullptr || !last_completed->is_join) &&
          (next_after == nullptr || next_after->invoke_seq > g->respond_seq);

      if (active_throughout && !in_result) {
        outcome.ok = false;
        outcome.diagnosis =
            fail(*g, "missing process " + std::to_string(pid) +
                         " which was active throughout");
        return outcome;
      }
      if (inactive_throughout && in_result) {
        outcome.ok = false;
        outcome.diagnosis =
            fail(*g, "contains process " + std::to_string(pid) +
                         " which was inactive throughout");
        return outcome;
      }
    }
  }
  return outcome;
}

}  // namespace psnap::verify
