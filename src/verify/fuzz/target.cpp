#include "verify/fuzz/target.h"

#include <stdexcept>

#include "registry/registry.h"

namespace psnap::verify::fuzz {

namespace {

// The one ingest-knob combination fuzzed per batch-capable combo: small
// enough that plans stay within the checker's 64-op ceiling, large enough
// that flushes really carry multi-entry batches through update_batch.
constexpr char kIngestKnobs[] = "batch=3,coalesce_window=6";

std::vector<std::string> split_planes(std::string_view values) {
  std::vector<std::string> planes;
  std::size_t pos = 0;
  while (pos <= values.size()) {
    std::size_t comma = values.find(',', pos);
    if (comma == std::string_view::npos) comma = values.size();
    planes.emplace_back(values.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return planes;
}

FuzzTarget snapshot_target(const registry::SnapshotInfo& info,
                           const std::string& plane, bool coalesced) {
  FuzzTarget target;
  target.kind = FuzzTarget::Kind::kSnapshot;
  target.spec = info.name + ":value=" + plane;
  if (coalesced) target.spec += std::string(",") + kIngestKnobs;
  target.supports_batch = info.supports_batch;
  target.versioned = plane == "versioned";
  target.blob = plane == "blob";
  target.coalesced = coalesced;
  return target;
}

}  // namespace

std::vector<FuzzTarget> enumerate_snapshot_targets() {
  std::vector<FuzzTarget> targets;
  for (const registry::SnapshotInfo* info :
       registry::SnapshotRegistry::instance().all()) {
    if (!info->sim_safe) continue;
    for (const std::string& plane : split_planes(info->values)) {
      targets.push_back(snapshot_target(*info, plane, /*coalesced=*/false));
      if (info->supports_batch) {
        targets.push_back(snapshot_target(*info, plane, /*coalesced=*/true));
      }
    }
  }
  return targets;
}

std::vector<FuzzTarget> enumerate_active_set_targets() {
  std::vector<FuzzTarget> targets;
  for (const registry::ActiveSetInfo* info :
       registry::ActiveSetRegistry::instance().all()) {
    if (!info->sim_safe) continue;
    FuzzTarget target;
    target.kind = FuzzTarget::Kind::kActiveSet;
    target.spec = info->name;
    targets.push_back(std::move(target));
  }
  return targets;
}

std::vector<FuzzTarget> enumerate_targets() {
  std::vector<FuzzTarget> targets = enumerate_snapshot_targets();
  std::vector<FuzzTarget> sets = enumerate_active_set_targets();
  targets.insert(targets.end(), sets.begin(), sets.end());
  return targets;
}

FuzzTarget target_from_spec(FuzzTarget::Kind kind, std::string spec) {
  FuzzTarget target;
  target.kind = kind;
  auto [name, opt_spec] = registry::split_spec(spec);
  if (kind == FuzzTarget::Kind::kActiveSet) {
    if (registry::ActiveSetRegistry::instance().find(name) == nullptr) {
      throw std::invalid_argument("unknown active-set implementation '" +
                                  std::string(name) + "' in fuzz token");
    }
    target.spec = std::move(spec);
    return target;
  }
  const registry::SnapshotInfo* info =
      registry::SnapshotRegistry::instance().find(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown snapshot implementation '" +
                                std::string(name) +
                                "' in fuzz token (mutant tokens need the "
                                "experimental registrations)");
  }
  registry::Options options = registry::Options::parse(opt_spec);
  std::string plane = options.get_string(
      "value", registry::default_value_plane(info->values));
  target.supports_batch = info->supports_batch;
  target.versioned = plane == "versioned";
  target.blob = plane == "blob";
  target.coalesced =
      options.contains("batch") || options.contains("coalesce_window");
  target.spec = std::move(spec);
  return target;
}

}  // namespace psnap::verify::fuzz
