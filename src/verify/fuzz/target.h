// Fuzz targets enumerated from the implementation registries.
//
// A target is one (implementation × value plane × ingest-knob) combination
// the fuzzer must cover.  The list is DERIVED from the registries -- no
// hand-curated impl tables anywhere in the fuzz layer -- so a newly
// registered sim-safe implementation (or a new plane on an existing one)
// is fuzzed automatically; tests/verify/fuzz_coverage_test.cpp asserts the
// enumeration stays complete.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psnap::verify::fuzz {

struct FuzzTarget {
  enum class Kind : std::uint8_t { kSnapshot, kActiveSet };

  Kind kind = Kind::kSnapshot;
  // Full registry spec, including value=<plane> and (for the coalesced
  // variants) batch=/coalesce_window= ingest knobs.  The spec alone
  // rebuilds the object, which is what makes repro tokens portable.
  std::string spec;

  // Capability flags steering op-mix generation, derived from the
  // registry entry + plane (never set by hand).
  bool supports_batch = false;  // emit update_batch ops
  bool versioned = false;       // emit scan_versioned ops; epoch oracle
  bool blob = false;            // emit update_blob ops
  bool coalesced = false;       // route updates through ingest::Coalescer

  std::string display() const {
    return (kind == Kind::kSnapshot ? "snap " : "aset ") + spec;
  }
};

// Every sim-safe snapshot entry × each supported plane, plus a coalescing
// ingest variant (batch=3,coalesce_window=6) for each batch-capable combo.
std::vector<FuzzTarget> enumerate_snapshot_targets();

// Every sim-safe active-set entry.
std::vector<FuzzTarget> enumerate_active_set_targets();

// Both of the above, snapshots first.
std::vector<FuzzTarget> enumerate_targets();

// Rebuilds a target (capability flags included) from a spec string, by
// consulting the registry entry it names.  Used by token replay.  Throws
// std::invalid_argument for unknown names.
FuzzTarget target_from_spec(FuzzTarget::Kind kind, std::string spec);

}  // namespace psnap::verify::fuzz
