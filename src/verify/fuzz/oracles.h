// Per-plane history oracles the fuzzer checks beyond linearizability.
//
// The linearizability checker (verify/lin_checker.h) validates values; the
// oracles here validate the plane-specific contracts layered on top:
//
//   * batch-atomicity tiers (PR 8): kAtomic batches must linearize whole
//     (kept as kUpdateBatch for the searcher); kAmortized batches expand
//     into per-entry updates sharing the batch's interval, which is the
//     sound relaxation of "entries linearize individually";
//   * monotone camera epochs (PR 6): scan_versioned epochs are strictly
//     increasing per lane AND across real-time-ordered scans anywhere
//     (every scan takes its own fetch&add ticket, so equality is a bug);
//   * grow-only watermarks (PR 3): add_components blocks are disjoint,
//     start at or above the initial count, and the final component count
//     accounts for exactly the completed grows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partial_snapshot.h"
#include "verify/history.h"
#include "verify/lin_checker.h"

namespace psnap::verify::fuzz {

struct OracleOutcome {
  bool ok = true;
  std::string diagnosis;
};

// Rewrites a recorded snapshot history for the linearizability search:
// kAmortized (and kUnsupported, defensively) batches expand into
// per-entry kUpdate operations that share the batch's [invoke, respond]
// interval; kAtomic batches pass through intact.
std::vector<Operation> expand_batches_for_lin(
    const std::vector<Operation>& ops, core::BatchAtomicity tier);

// Camera-epoch contract over the complete kScanVersioned operations.
OracleOutcome check_epochs(const std::vector<Operation>& ops);

// Grow-only contract over the kGrow operations.  final_m is the object's
// num_components() after the run quiesced.
OracleOutcome check_growth(const std::vector<Operation>& ops,
                           std::uint32_t initial_m, std::uint32_t final_m);

}  // namespace psnap::verify::fuzz
