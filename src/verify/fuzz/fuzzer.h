// The fuzzing engine: execute plans under the deterministic scheduler,
// check them with the oracles, shrink failures, replay tokens.
//
// One fuzz case = (target, shape, op seed, schedule seed).  The runner
// builds the object from its registry spec, records every operation
// through verify::Recording, runs the plan's processes under SimScheduler
// (random policy seeded by the schedule seed, or an explicit rank script
// during shrinking), and checks the history: linearizability (with
// batch-tier expansion), camera epochs, grow-only blocks for snapshots;
// Section 2.1 validity for active sets.  Plan op kChurn releases the
// process's pid to a case-local ThreadRegistry and re-acquires (usually
// the same pid -- lowest-free reuse), exercising the pid-reuse lanes the
// History tracks.
//
// Failures shrink greedily -- drop processes, drop ops, thin batch/scan
// argument sets, then truncate the schedule's rank script -- re-running
// the case after each candidate edit with the same seeds, so the minimal
// counterexample is a deterministic function of the repro token.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/fuzz/oracles.h"
#include "verify/fuzz/plan.h"
#include "verify/fuzz/token.h"

namespace psnap::verify::fuzz {

struct CaseOutcome {
  bool failed = false;
  // Checker node budget or scheduler step limit hit; the case proves
  // nothing either way and is not counted as a failure.
  bool inconclusive = false;
  std::string diagnosis;
  std::string history;
};

// Executes one plan.  `script` non-null replays an explicit rank script
// under Policy::kScriptThenLowest (shrinking); otherwise Policy::kRandom
// seeded with spec.sched_seed.  `ranks_out` non-null receives the schedule
// actually taken (valid as a script for this exact plan).
CaseOutcome run_case(const CaseSpec& spec, const FuzzPlan& plan,
                     const std::vector<std::uint32_t>* script = nullptr,
                     std::vector<std::uint32_t>* ranks_out = nullptr);

struct FailingCase {
  CaseSpec spec;
  std::string token;
  std::string diagnosis;        // from the original (unshrunk) failure
  FuzzPlan minimal_plan;
  std::vector<std::uint32_t> minimal_script;
  std::string minimal_diagnosis;
  std::string minimal_history;

  // Stable rendering of the minimal counterexample; two replays of the
  // same token must produce identical summaries (asserted by the
  // mutation suite).
  std::string minimal_summary() const;
};

// Runs spec from scratch (generate plan, run, and -- when it fails --
// shrink).  Returns true and fills *failing on failure.
bool run_and_shrink(const CaseSpec& spec, FailingCase* failing);

// Decodes the token and run_and_shrink()s it.
bool replay_token(const std::string& token, FailingCase* failing);

struct CampaignOptions {
  std::uint64_t base_seed = 1;
  // Iterations per target per sweep; the campaign keeps sweeping (with
  // fresh derived seeds) until budget_seconds elapses, or runs exactly one
  // sweep when the budget is zero.
  std::uint32_t iters_per_target = 20;
  double budget_seconds = 0;
  // Stop after this many failures (0 = never; the mutation suite stops at
  // the first).
  std::uint32_t max_failures = 0;
  bool shrink = true;
  // Pinned regression tokens (corpus.h) re-run at the start of every
  // campaign before any generated cases.
  std::vector<std::string> pinned_tokens;
};

struct CampaignStats {
  std::uint64_t cases_run = 0;
  std::uint64_t failures = 0;
  std::uint64_t inconclusive = 0;
};

// Fuzzes every target, round-robin.  on_failure (may be null) receives
// each shrunk failure.
CampaignStats run_campaign(
    const std::vector<FuzzTarget>& targets, const CampaignOptions& options,
    const std::function<void(const FailingCase&)>& on_failure);

}  // namespace psnap::verify::fuzz
