#include "verify/fuzz/oracles.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace psnap::verify::fuzz {

std::vector<Operation> expand_batches_for_lin(
    const std::vector<Operation>& ops, core::BatchAtomicity tier) {
  std::vector<Operation> out;
  out.reserve(ops.size());
  for (const Operation& op : ops) {
    if (op.type != Operation::Type::kUpdateBatch ||
        tier == core::BatchAtomicity::kAtomic) {
      out.push_back(op);
      continue;
    }
    // Amortized tier: each entry linearizes individually somewhere inside
    // the batch's interval.  The expansion drops the argument-order
    // constraint between entries (the searcher may order them freely),
    // which only ACCEPTS more histories -- sound, no false alarms.  A
    // pending batch expands into pending updates (apply-or-omit per
    // entry), a superset of the true prefix behavior, likewise sound.
    for (std::size_t j = 0; j < op.indices.size(); ++j) {
      Operation entry;
      entry.type = Operation::Type::kUpdate;
      entry.pid = op.pid;
      entry.incarnation = op.incarnation;
      entry.invoke_seq = op.invoke_seq;
      entry.respond_seq = op.respond_seq;
      entry.index = op.indices[j];
      entry.value = op.batch_values[j];
      out.push_back(std::move(entry));
    }
  }
  return out;
}

OracleOutcome check_epochs(const std::vector<Operation>& ops) {
  std::vector<const Operation*> scans;
  for (const Operation& op : ops) {
    if (op.type == Operation::Type::kScanVersioned && op.complete()) {
      scans.push_back(&op);
    }
  }
  // Per-lane program order: strictly increasing epochs.
  std::map<std::uint64_t, const Operation*> last_by_lane;
  std::vector<const Operation*> by_invoke = scans;
  std::sort(by_invoke.begin(), by_invoke.end(),
            [](const Operation* a, const Operation* b) {
              return a->invoke_seq < b->invoke_seq;
            });
  for (const Operation* scan : by_invoke) {
    auto [it, fresh] = last_by_lane.try_emplace(scan->lane(), scan);
    if (!fresh) {
      if (scan->epoch <= it->second->epoch) {
        return {false, "per-lane epoch regression:\n  " +
                           it->second->to_string() + "\n  " +
                           scan->to_string()};
      }
      it->second = scan;
    }
  }
  // Cross-lane real-time order: every scan takes a fresh fetch&add ticket,
  // so a scan that completes strictly before another begins must carry a
  // strictly smaller epoch.
  for (const Operation* a : scans) {
    for (const Operation* b : scans) {
      if (a->respond_seq < b->invoke_seq && a->epoch >= b->epoch) {
        return {false, "real-time epoch regression:\n  " + a->to_string() +
                           "\n  " + b->to_string()};
      }
    }
  }
  return {};
}

OracleOutcome check_growth(const std::vector<Operation>& ops,
                           std::uint32_t initial_m, std::uint32_t final_m) {
  struct Block {
    std::uint64_t first;
    std::uint64_t count;
    const Operation* op;
  };
  std::vector<Block> blocks;
  std::uint64_t grown = 0;
  bool pending_grow = false;
  for (const Operation& op : ops) {
    if (op.type != Operation::Type::kGrow) continue;
    if (!op.complete()) {
      pending_grow = true;
      continue;
    }
    blocks.push_back({op.index, op.value, &op});
    grown += op.value;
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.first < b.first; });
  std::uint64_t prev_end = initial_m;
  for (const Block& b : blocks) {
    if (b.first < prev_end) {
      return {false, "grow blocks overlap (or dip below the initial count) "
                     "at:\n  " +
                         b.op->to_string()};
    }
    prev_end = b.first + b.count;
  }
  if (prev_end > final_m) {
    return {false,
            "grow block ends beyond the final component count " +
                std::to_string(final_m)};
  }
  // With no pending grow, the final count must account for exactly the
  // completed blocks: growth is grow-only and nothing else resizes.
  if (!pending_grow &&
      std::uint64_t{initial_m} + grown != std::uint64_t{final_m}) {
    std::ostringstream os;
    os << "final component count " << final_m << " != initial " << initial_m
       << " + grown " << grown;
    return {false, os.str()};
  }
  return {};
}

}  // namespace psnap::verify::fuzz
