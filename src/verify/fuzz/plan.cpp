#include "verify/fuzz/plan.h"

#include <sstream>

#include "common/rng.h"

namespace psnap::verify::fuzz {

namespace {

// Weighted pick over the op kinds a target admits.  Weights are part of
// the deterministic generator: changing them invalidates old tokens'
// minimal counterexamples (the token still replays, it just re-shrinks),
// so keep them stable unless the mix is wrong.
struct WeightedKind {
  FuzzOp::Kind kind;
  std::uint32_t weight;
};

FuzzOp::Kind pick(const std::vector<WeightedKind>& kinds, Xoshiro256& rng) {
  std::uint32_t total = 0;
  for (const WeightedKind& wk : kinds) total += wk.weight;
  std::uint32_t roll = static_cast<std::uint32_t>(rng.next_below(total));
  for (const WeightedKind& wk : kinds) {
    if (roll < wk.weight) return wk.kind;
    roll -= wk.weight;
  }
  return kinds.back().kind;
}

std::uint64_t fresh_value(Xoshiro256& rng) {
  // Small enough to read in a diagnosis, collision-sparse enough that a
  // torn scan almost never fakes a legal state by accident.
  return rng.next_below(999983) + 1;
}

void generate_snapshot_ops(const FuzzTarget& target, const PlanShape& shape,
                           Xoshiro256& rng, std::vector<FuzzOp>& ops) {
  std::vector<WeightedKind> kinds = {{FuzzOp::Kind::kUpdate, 30},
                                     {FuzzOp::Kind::kScan, 24},
                                     {FuzzOp::Kind::kGrow, 6},
                                     {FuzzOp::Kind::kChurn, 6}};
  if (target.supports_batch) kinds.push_back({FuzzOp::Kind::kUpdateBatch, 14});
  if (target.blob) kinds.push_back({FuzzOp::Kind::kUpdateBlob, 12});
  if (target.versioned) {
    kinds.push_back({FuzzOp::Kind::kScanVersioned, 16});
  }

  // Indices are drawn below the components THIS process has proof exist:
  // the initial count plus its own completed grows (the global count is
  // monotone and covers every completed grow, so these indices are valid
  // whenever the op runs, regardless of how other processes interleave).
  std::uint32_t local_m = shape.initial_m;
  std::uint32_t grows = 0;
  std::uint32_t churns = 0;
  for (std::uint32_t i = 0; i < shape.ops_per_proc; ++i) {
    FuzzOp op;
    op.kind = pick(kinds, rng);
    if (op.kind == FuzzOp::Kind::kGrow && grows >= 2) {
      op.kind = FuzzOp::Kind::kUpdate;
    }
    if (op.kind == FuzzOp::Kind::kChurn && churns >= 2) {
      op.kind = FuzzOp::Kind::kScan;
    }
    switch (op.kind) {
      case FuzzOp::Kind::kUpdate:
      case FuzzOp::Kind::kUpdateBlob:
        op.index = static_cast<std::uint32_t>(rng.next_below(local_m));
        op.value = fresh_value(rng);
        break;
      case FuzzOp::Kind::kUpdateBatch: {
        std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.next_below(2));
        for (std::uint32_t e = 0; e < k; ++e) {
          op.entries.push_back(
              {static_cast<std::uint32_t>(rng.next_below(local_m)),
               fresh_value(rng)});
        }
        break;
      }
      case FuzzOp::Kind::kScan:
      case FuzzOp::Kind::kScanVersioned: {
        std::uint32_t r =
            1 + static_cast<std::uint32_t>(rng.next_below(
                    std::min<std::uint32_t>(3, local_m)));
        for (std::uint32_t e = 0; e < r; ++e) {
          op.indices.push_back(
              static_cast<std::uint32_t>(rng.next_below(local_m)));
        }
        break;
      }
      case FuzzOp::Kind::kGrow:
        op.count = 1 + static_cast<std::uint32_t>(rng.next_below(2));
        local_m += op.count;
        ++grows;
        break;
      case FuzzOp::Kind::kChurn:
        ++churns;
        break;
      default:
        break;
    }
    ops.push_back(std::move(op));
  }
}

void generate_active_set_ops(const PlanShape& shape, Xoshiro256& rng,
                             std::vector<FuzzOp>& ops) {
  bool joined = false;
  std::uint32_t churns = 0;
  for (std::uint32_t i = 0; i < shape.ops_per_proc; ++i) {
    FuzzOp op;
    if (joined) {
      // A joined process must leave before it can release its pid (the
      // active set is keyed by pid), so churn is only offered when idle.
      op.kind = rng.next_below(100) < 55 ? FuzzOp::Kind::kLeave
                                         : FuzzOp::Kind::kGetSet;
    } else {
      std::uint64_t roll = rng.next_below(100);
      if (roll < 45) {
        op.kind = FuzzOp::Kind::kJoin;
      } else if (roll < 80 || churns >= 2) {
        op.kind = FuzzOp::Kind::kGetSet;
      } else {
        op.kind = FuzzOp::Kind::kChurn;
        ++churns;
      }
    }
    if (op.kind == FuzzOp::Kind::kJoin) joined = true;
    if (op.kind == FuzzOp::Kind::kLeave) joined = false;
    ops.push_back(std::move(op));
  }
}

}  // namespace

std::string FuzzOp::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kUpdate:
      os << "update(" << index << ", " << value << ")";
      break;
    case Kind::kUpdateBlob:
      os << "update_blob(" << index << ", enc(" << value << "))";
      break;
    case Kind::kUpdateBatch: {
      os << "update_batch(";
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i) os << ",";
        os << entries[i].index << ":=" << entries[i].value;
      }
      os << ")";
      break;
    }
    case Kind::kScan:
    case Kind::kScanVersioned: {
      os << (kind == Kind::kScan ? "scan(" : "scan_versioned(");
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (i) os << ",";
        os << indices[i];
      }
      os << ")";
      break;
    }
    case Kind::kGrow:
      os << "add_components(" << count << ")";
      break;
    case Kind::kChurn:
      os << "churn";
      break;
    case Kind::kJoin:
      os << "join";
      break;
    case Kind::kLeave:
      os << "leave";
      break;
    case Kind::kGetSet:
      os << "getSet";
      break;
  }
  return os.str();
}

std::uint32_t FuzzPlan::total_ops() const {
  std::uint32_t n = 0;
  for (const auto& proc : procs) n += static_cast<std::uint32_t>(proc.size());
  return n;
}

std::string FuzzPlan::to_string() const {
  std::ostringstream os;
  os << "m0=" << initial_m << "\n";
  for (std::size_t p = 0; p < procs.size(); ++p) {
    os << "  proc " << p << ":";
    for (const FuzzOp& op : procs[p]) os << " " << op.to_string() << ";";
    os << "\n";
  }
  return os.str();
}

FuzzPlan generate_plan(const FuzzTarget& target, const PlanShape& shape,
                       std::uint64_t op_seed) {
  FuzzPlan plan;
  plan.initial_m = shape.initial_m;
  Xoshiro256 rng(op_seed);
  plan.procs.resize(shape.procs);
  for (std::uint32_t p = 0; p < shape.procs; ++p) {
    if (target.kind == FuzzTarget::Kind::kSnapshot) {
      generate_snapshot_ops(target, shape, rng, plan.procs[p]);
    } else {
      generate_active_set_ops(shape, rng, plan.procs[p]);
    }
  }
  return plan;
}

}  // namespace psnap::verify::fuzz
