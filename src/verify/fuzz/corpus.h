// Pinned regression corpus: repro tokens re-run at the start of every
// fuzz campaign, before any freshly generated cases.
//
// A token lands here when a schedule class once required a hand-written
// test to hit -- pinning it keeps the fuzzer regenerating that exact
// op-stream + schedule forever, independent of generator drift elsewhere
// (the plan is a pure function of the token's seeds).  On correct
// implementations every pinned token replays CLEAN; a pin that starts
// failing is a regression, not a flaky seed.
//
// Campaign runners fold pinned_corpus() into CampaignOptions::pinned_tokens.
// Tokens whose implementation is not registered in the running binary are
// skipped by the campaign (production binaries don't register mutants).
#pragma once

#include <string>
#include <vector>

namespace psnap::verify::fuzz {

// The Dekker-shaped announce/join edge from the DFS validity sweeps
// (tests/activeset/validity_sim_test.cpp, ChurnersAndObserverAllSchedules):
// two churners join/leave while an observer getSets twice, exercising the
// announce-then-read-vs-read-then-announce race in the FAI+CAS active set.
// This seed pair regenerates that shape -- three processes where churners
// interleave join/leave with an observing getSet stream.
inline constexpr char kPinnedAsetDekker[] =
    "psnapfuzz/1|aset|faicas|m0=1|procs=3|ops=4|op=7|sched=2f";

// Batched fig3 under the coalescing front-end: multi-entry flushes racing
// a versioned scan stream, the shape that stresses batch-tier expansion
// in the checker (PR 8) together with camera epochs (PR 6).
inline constexpr char kPinnedSnapBatchedScan[] =
    "psnapfuzz/1|snap|fig3_cas_versioned_batch:value=versioned,batch=3,"
    "coalesce_window=6|m0=3|procs=3|ops=5|op=11|sched=3";

// Growth racing scans on the fast-scan fig3 variant: add_components
// interleaved with partial scans near the old/new boundary (PR 3's
// grow-only watermark oracle).
inline constexpr char kPinnedSnapGrowth[] =
    "psnapfuzz/1|snap|fig3_cas_fast:value=u64|m0=2|procs=3|ops=5|op=1d|"
    "sched=9";

// The try-once-CAS-vs-lazy-stamping race the fuzzer itself found on the
// versioned plane (campaign base_seed=123): an update whose try-once CAS
// loses linearizes immediately before the winner, but the winner's stamp
// fix used to float past the loser's response -- so a scan invoked after
// the loser returned could fetch an epoch below the winner's eventual
// stamp and miss both writes.  Fixed by ensure_stamped on the observed
// head in the failure branch (cas_psnap.cpp, do_update).  Two flavors:
// singleton winner, and a batch winner whose shared stamp is the one that
// floats.
inline constexpr char kPinnedSnapLoserStamp[] =
    "psnapfuzz/1|snap|fig3_cas_versioned:value=versioned|m0=2|procs=3|"
    "ops=4|op=120878d18ad3f6da|sched=25b55ac85950db3a";
inline constexpr char kPinnedSnapLoserStampBatch[] =
    "psnapfuzz/1|snap|fig3_cas:value=versioned|m0=2|procs=2|ops=5|"
    "op=397ddcbe50ba0e1|sched=e7c6347fe50c7a25";

inline std::vector<std::string> pinned_corpus() {
  return {kPinnedAsetDekker, kPinnedSnapBatchedScan, kPinnedSnapGrowth,
          kPinnedSnapLoserStamp, kPinnedSnapLoserStampBatch};
}

}  // namespace psnap::verify::fuzz
