// Compact repro tokens: everything needed to re-execute a fuzz case.
//
// A failing run prints one line:
//
//   psnapfuzz/1|snap|fig3_cas:value=blob|m0=3|procs=3|ops=4|op=1f2e...|sched=9a0b...
//
// fields: format tag | target kind (snap/aset) | full registry spec |
// plan shape (initial_m, processes, ops per process) | op-stream seed |
// schedule seed (hex).  The token deliberately holds NO history and no
// schedule trace: plan generation and the seeded random scheduler are
// deterministic, so replaying the token regenerates the identical run,
// re-fails, and re-shrinks to the identical minimal counterexample.
//
// '|' is the field separator because every other delimiter is taken by
// specs ('::'-free names, ':' before options, ',' between options, '='
// inside them, ';' inside nested as= sub-specs).
#pragma once

#include <cstdint>
#include <string>

#include "verify/fuzz/plan.h"
#include "verify/fuzz/target.h"

namespace psnap::verify::fuzz {

inline constexpr char kTokenPrefix[] = "psnapfuzz/1";

struct CaseSpec {
  FuzzTarget target;
  PlanShape shape;
  std::uint64_t op_seed = 0;
  std::uint64_t sched_seed = 0;
};

std::string encode_token(const CaseSpec& spec);

// Parses a token, rebuilding the target's capability flags from the
// registry.  Throws std::invalid_argument on malformed tokens or unknown
// implementation names.
CaseSpec decode_token(const std::string& token);

}  // namespace psnap::verify::fuzz
