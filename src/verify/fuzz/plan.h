// Randomized operation plans: what each simulated process will do.
//
// A plan is generated deterministically from (target capabilities, shape,
// op seed); re-generating with the same inputs yields the same plan, which
// is what makes repro tokens sufficient for replay.  Shrinking works on
// the plan structure (drop processes, drop ops, thin batches and scan
// sets), never on the generator, so a shrunk counterexample is an ordinary
// plan the runner executes like any other.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partial_snapshot.h"
#include "verify/fuzz/target.h"

namespace psnap::verify::fuzz {

struct FuzzOp {
  enum class Kind : std::uint8_t {
    kUpdate,
    kUpdateBlob,    // blob plane: update_blob with the 8-byte encoding
    kUpdateBatch,   // batch-capable targets
    kScan,
    kScanVersioned,  // versioned plane
    kGrow,           // add_components
    kChurn,          // release + re-acquire this process's pid
    kJoin,           // active-set targets only
    kLeave,
    kGetSet,
  };

  Kind kind;
  std::uint32_t index = 0;  // kUpdate / kUpdateBlob
  std::uint64_t value = 0;  // kUpdate / kUpdateBlob
  std::vector<core::BatchEntry> entries;   // kUpdateBatch
  std::vector<std::uint32_t> indices;      // kScan / kScanVersioned
  std::uint32_t count = 0;                 // kGrow

  std::string to_string() const;
};

struct FuzzPlan {
  std::uint32_t initial_m = 0;
  std::vector<std::vector<FuzzOp>> procs;

  std::uint32_t total_ops() const;
  std::string to_string() const;
};

// Shape knobs the campaign varies per iteration; bounded so that every
// history stays under the linearizability checker's 64-op ceiling even
// after amortized batches expand into per-entry updates.
struct PlanShape {
  std::uint32_t procs = 3;
  std::uint32_t ops_per_proc = 4;
  std::uint32_t initial_m = 3;
};

FuzzPlan generate_plan(const FuzzTarget& target, const PlanShape& shape,
                       std::uint64_t op_seed);

}  // namespace psnap::verify::fuzz
