#include "verify/fuzz/token.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace psnap::verify::fuzz {

namespace {

std::vector<std::string> split_fields(const std::string& token) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos <= token.size()) {
    std::size_t bar = token.find('|', pos);
    if (bar == std::string::npos) bar = token.size();
    fields.push_back(token.substr(pos, bar - pos));
    pos = bar + 1;
  }
  return fields;
}

[[noreturn]] void bad_token(const std::string& token, const std::string& why) {
  throw std::invalid_argument("malformed fuzz token '" + token + "': " + why);
}

// "key=value" field with an unsigned payload (decimal or, for base 16,
// bare hex digits).
std::uint64_t parse_field(const std::string& token, const std::string& field,
                          const std::string& key, int base) {
  std::string prefix = key + "=";
  if (field.rfind(prefix, 0) != 0) {
    bad_token(token, "expected field '" + key + "=...', got '" + field + "'");
  }
  std::string_view digits(field);
  digits.remove_prefix(prefix.size());
  std::uint64_t value = 0;
  auto [end, ec] = std::from_chars(digits.data(), digits.data() + digits.size(),
                                   value, base);
  if (ec != std::errc{} || end != digits.data() + digits.size()) {
    bad_token(token, "field '" + field + "' is not a base-" +
                         std::to_string(base) + " integer");
  }
  return value;
}

}  // namespace

std::string encode_token(const CaseSpec& spec) {
  std::ostringstream os;
  os << kTokenPrefix << "|"
     << (spec.target.kind == FuzzTarget::Kind::kSnapshot ? "snap" : "aset")
     << "|" << spec.target.spec << "|m0=" << spec.shape.initial_m
     << "|procs=" << spec.shape.procs << "|ops=" << spec.shape.ops_per_proc
     << "|op=" << std::hex << spec.op_seed << "|sched=" << spec.sched_seed;
  return os.str();
}

CaseSpec decode_token(const std::string& token) {
  std::vector<std::string> fields = split_fields(token);
  if (fields.size() != 8) {
    bad_token(token, "expected 8 '|'-separated fields, got " +
                         std::to_string(fields.size()));
  }
  if (fields[0] != kTokenPrefix) {
    bad_token(token, "unknown format tag '" + fields[0] + "'");
  }
  FuzzTarget::Kind kind;
  if (fields[1] == "snap") {
    kind = FuzzTarget::Kind::kSnapshot;
  } else if (fields[1] == "aset") {
    kind = FuzzTarget::Kind::kActiveSet;
  } else {
    bad_token(token, "target kind must be 'snap' or 'aset'");
  }
  CaseSpec spec;
  spec.target = target_from_spec(kind, fields[2]);
  spec.shape.initial_m =
      static_cast<std::uint32_t>(parse_field(token, fields[3], "m0", 10));
  spec.shape.procs =
      static_cast<std::uint32_t>(parse_field(token, fields[4], "procs", 10));
  spec.shape.ops_per_proc =
      static_cast<std::uint32_t>(parse_field(token, fields[5], "ops", 10));
  spec.op_seed = parse_field(token, fields[6], "op", 16);
  spec.sched_seed = parse_field(token, fields[7], "sched", 16);
  if (spec.shape.procs == 0 || spec.shape.ops_per_proc == 0) {
    bad_token(token, "shape fields must be positive");
  }
  if (spec.target.kind == FuzzTarget::Kind::kSnapshot &&
      spec.shape.initial_m == 0) {
    bad_token(token, "snapshot cases need m0 >= 1");
  }
  return spec;
}

}  // namespace psnap::verify::fuzz
