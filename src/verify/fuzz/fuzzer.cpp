#include "verify/fuzz/fuzzer.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "common/rng.h"
#include "exec/exec.h"
#include "exec/thread_registry.h"
#include "ingest/coalescer.h"
#include "registry/registry.h"
#include "runtime/sim_scheduler.h"
#include "verify/activeset_checker.h"
#include "verify/recording.h"

namespace psnap::verify::fuzz {

namespace {

using runtime::SimScheduler;

// Release this process's pid to the case-local registry and take a fresh
// one (lowest-free, so churn usually re-issues the SAME pid -- exactly the
// reuse the History's incarnation lanes must keep apart).  The process-wide
// watermark is raised like exec::ScopedPid would, so adaptive per-pid walks
// stay sound for the new pid.
void churn_pid(exec::ThreadRegistry& reg, History& history) {
  std::uint32_t old = exec::ctx().pid;
  reg.release(old);
  history.note_pid_released(old);
  std::uint32_t fresh = reg.acquire();
  exec::ThreadRegistry::process_wide().note_pid_in_use(fresh);
  exec::ctx().pid = fresh;
}

// Count of operations the linearizability searcher will actually hold in
// its 64-bit mask after filtering.
std::size_t checked_op_count(const std::vector<Operation>& lin_ops) {
  std::size_t n = 0;
  for (const Operation& op : lin_ops) {
    if (op.type == Operation::Type::kGrow) continue;
    if ((op.type == Operation::Type::kScan ||
         op.type == Operation::Type::kScanVersioned) &&
        !op.complete()) {
      continue;
    }
    ++n;
  }
  return n;
}

struct RunError {
  std::mutex mu;
  std::string what;

  void capture(const std::exception& e) {
    std::scoped_lock lock(mu);
    if (what.empty()) what = e.what();
  }
};

CaseOutcome run_snapshot_case(const CaseSpec& spec, const FuzzPlan& plan,
                              const std::vector<std::uint32_t>* script,
                              std::vector<std::uint32_t>* ranks_out) {
  CaseOutcome outcome;
  const FuzzTarget& target = spec.target;
  const std::uint32_t procs = static_cast<std::uint32_t>(plan.procs.size());
  const std::uint32_t max_threads = procs * 2 + 2;

  registry::IngestKnobs knobs;
  auto snap =
      registry::make_snapshot(target.spec, plan.initial_m, max_threads,
                              &knobs);
  History history;
  RecordingSnapshot recorded(*snap, history);
  exec::ThreadRegistry churn_reg(max_threads);
  for (std::uint32_t p = 0; p < procs; ++p) churn_reg.acquire();
  RunError error;

  SimScheduler::Options sopt;
  if (script != nullptr) {
    sopt.policy = SimScheduler::Policy::kScriptThenLowest;
    sopt.script = *script;
  } else {
    sopt.policy = SimScheduler::Policy::kRandom;
    sopt.seed = spec.sched_seed;
  }
  SimScheduler sched(sopt);
  for (std::uint32_t p = 0; p < procs; ++p) {
    sched.add_process([&, p] {
      try {
        std::optional<ingest::Coalescer> co;
        if (target.coalesced) {
          ingest::Coalescer::Options co_options;
          co_options.batch = knobs.batch;
          co_options.coalesce_window = knobs.coalesce_window;
          co.emplace(recorded, std::move(co_options));
        }
        std::vector<std::uint64_t> out;
        for (const FuzzOp& op : plan.procs[p]) {
          switch (op.kind) {
            case FuzzOp::Kind::kUpdate:
              if (co) {
                co->write(op.index, op.value);
              } else {
                recorded.update(op.index, op.value);
              }
              break;
            case FuzzOp::Kind::kUpdateBlob: {
              std::array<std::byte, 8> buf;
              std::memcpy(buf.data(), &op.value, sizeof(op.value));
              recorded.update_blob(
                  op.index, std::span<const std::byte>(buf.data(), 8));
              break;
            }
            case FuzzOp::Kind::kUpdateBatch:
              recorded.update_batch(std::span<const core::BatchEntry>(
                  op.entries.data(), op.entries.size()));
              break;
            case FuzzOp::Kind::kScan:
              recorded.scan(std::span<const std::uint32_t>(op.indices), out);
              break;
            case FuzzOp::Kind::kScanVersioned:
              recorded.scan_versioned(
                  std::span<const std::uint32_t>(op.indices), out);
              break;
            case FuzzOp::Kind::kGrow:
              recorded.add_components(op.count);
              break;
            case FuzzOp::Kind::kChurn:
              // Buffered writes belong to the pid that accepted them:
              // publish before handing the pid back.
              if (co) co->flush();
              churn_pid(churn_reg, history);
              break;
            default:
              break;
          }
        }
        if (co) {
          co->flush();
          co.reset();
        }
      } catch (const std::exception& e) {
        error.capture(e);
      }
    });
  }
  SimScheduler::RunResult run = sched.run();
  if (ranks_out != nullptr) *ranks_out = run.chosen_rank;

  if (!error.what.empty()) {
    outcome.failed = true;
    outcome.diagnosis = "operation threw: " + error.what;
    outcome.history = history.to_string();
    return outcome;
  }

  const std::uint32_t final_m = snap->num_components();
  std::vector<Operation> ops = history.operations();
  std::vector<Operation> lin_ops =
      expand_batches_for_lin(ops, snap->batch_atomicity());
  if (checked_op_count(lin_ops) > 64) {
    outcome.inconclusive = true;
    return outcome;
  }
  LinCheckOptions lopt;
  lopt.num_components = final_m;
  lopt.initial_value = 0;
  lopt.max_nodes = 4'000'000;
  LinCheckOutcome lin = check_snapshot_linearizable(lin_ops, lopt);
  if (lin.result == LinResult::kBudgetExceeded) {
    outcome.inconclusive = true;
    return outcome;
  }
  if (lin.result == LinResult::kNotLinearizable) {
    outcome.failed = true;
    outcome.diagnosis = "linearizability: " + lin.diagnosis;
    outcome.history = history.to_string();
    return outcome;
  }
  OracleOutcome epochs = check_epochs(ops);
  if (!epochs.ok) {
    outcome.failed = true;
    outcome.diagnosis = "epoch oracle: " + epochs.diagnosis;
    outcome.history = history.to_string();
    return outcome;
  }
  OracleOutcome growth = check_growth(ops, plan.initial_m, final_m);
  if (!growth.ok) {
    outcome.failed = true;
    outcome.diagnosis = "growth oracle: " + growth.diagnosis;
    outcome.history = history.to_string();
    return outcome;
  }
  return outcome;
}

CaseOutcome run_active_set_case(const CaseSpec& spec, const FuzzPlan& plan,
                                const std::vector<std::uint32_t>* script,
                                std::vector<std::uint32_t>* ranks_out) {
  CaseOutcome outcome;
  const std::uint32_t procs = static_cast<std::uint32_t>(plan.procs.size());
  const std::uint32_t max_threads = procs * 2 + 2;

  auto as = registry::make_active_set(spec.target.spec, max_threads);
  History history;
  RecordingActiveSet recorded(*as, history);
  exec::ThreadRegistry churn_reg(max_threads);
  for (std::uint32_t p = 0; p < procs; ++p) churn_reg.acquire();
  RunError error;

  SimScheduler::Options sopt;
  if (script != nullptr) {
    sopt.policy = SimScheduler::Policy::kScriptThenLowest;
    sopt.script = *script;
  } else {
    sopt.policy = SimScheduler::Policy::kRandom;
    sopt.seed = spec.sched_seed;
  }
  SimScheduler sched(sopt);
  for (std::uint32_t p = 0; p < procs; ++p) {
    sched.add_process([&, p] {
      try {
        std::vector<std::uint32_t> out;
        for (const FuzzOp& op : plan.procs[p]) {
          switch (op.kind) {
            case FuzzOp::Kind::kJoin:
              recorded.join();
              break;
            case FuzzOp::Kind::kLeave:
              recorded.leave();
              break;
            case FuzzOp::Kind::kGetSet:
              recorded.get_set(out);
              break;
            case FuzzOp::Kind::kChurn:
              churn_pid(churn_reg, history);
              break;
            default:
              break;
          }
        }
      } catch (const std::exception& e) {
        error.capture(e);
      }
    });
  }
  SimScheduler::RunResult run = sched.run();
  if (ranks_out != nullptr) *ranks_out = run.chosen_rank;

  if (!error.what.empty()) {
    outcome.failed = true;
    outcome.diagnosis = "operation threw: " + error.what;
    outcome.history = history.to_string();
    return outcome;
  }
  auto validity = check_active_set_validity(history.operations());
  if (!validity.ok) {
    outcome.failed = true;
    outcome.diagnosis = "active-set validity: " + validity.diagnosis;
    outcome.history = history.to_string();
  }
  return outcome;
}

// A plan is runnable only when every index an op uses is covered by the
// initial count plus the grows THAT process completed earlier (the
// generator's invariant; see plan.cpp).  Shrink edits can break it --
// dropping an add_components while keeping an update into the grown range
// would index out of bounds at runtime -- so candidates that lose the
// invariant are rejected without running.
bool plan_is_valid(const FuzzPlan& plan) {
  for (const std::vector<FuzzOp>& proc : plan.procs) {
    std::uint32_t local_m = plan.initial_m;
    for (const FuzzOp& op : proc) {
      switch (op.kind) {
        case FuzzOp::Kind::kUpdate:
        case FuzzOp::Kind::kUpdateBlob:
          if (op.index >= local_m) return false;
          break;
        case FuzzOp::Kind::kUpdateBatch:
          for (const core::BatchEntry& e : op.entries) {
            if (e.index >= local_m) return false;
          }
          break;
        case FuzzOp::Kind::kScan:
        case FuzzOp::Kind::kScanVersioned:
          for (std::uint32_t i : op.indices) {
            if (i >= local_m) return false;
          }
          break;
        case FuzzOp::Kind::kGrow:
          local_m += op.count;
          break;
        default:
          break;
      }
    }
  }
  return true;
}

// Greedy structural shrink with a hard run budget (each probe is a full
// sim run; the budget keeps worst-case shrink time bounded).
class Shrinker {
 public:
  Shrinker(const CaseSpec& spec, FuzzPlan seed) : spec_(spec), best_(seed) {}

  static constexpr std::uint64_t kMaxRuns = 600;

  const FuzzPlan& best() const { return best_; }

  void shrink() {
    bool improved = true;
    while (improved && runs_ < kMaxRuns) {
      improved = false;
      improved |= drop_processes();
      improved |= drop_ops();
      improved |= thin_arguments();
    }
  }

 private:
  bool fails(const FuzzPlan& plan) {
    if (!plan_is_valid(plan)) return false;
    if (runs_ >= kMaxRuns) return false;
    ++runs_;
    return run_case(spec_, plan).failed;
  }

  bool drop_processes() {
    bool improved = false;
    for (std::size_t p = 0; p < best_.procs.size() && best_.procs.size() > 1;) {
      FuzzPlan cand = best_;
      cand.procs.erase(cand.procs.begin() + static_cast<std::ptrdiff_t>(p));
      if (fails(cand)) {
        best_ = std::move(cand);
        improved = true;
      } else {
        ++p;
      }
    }
    return improved;
  }

  bool drop_ops() {
    bool improved = false;
    for (std::size_t p = 0; p < best_.procs.size(); ++p) {
      for (std::size_t i = 0; i < best_.procs[p].size();) {
        FuzzPlan cand = best_;
        cand.procs[p].erase(cand.procs[p].begin() +
                            static_cast<std::ptrdiff_t>(i));
        if (fails(cand)) {
          best_ = std::move(cand);
          improved = true;
        } else {
          ++i;
        }
      }
    }
    return improved;
  }

  bool thin_arguments() {
    bool improved = false;
    for (std::size_t p = 0; p < best_.procs.size(); ++p) {
      for (std::size_t i = 0; i < best_.procs[p].size(); ++i) {
        // Re-fetch best_.procs[p][i] on every probe: accepting a candidate
        // move-assigns best_ and would invalidate any held reference.
        const FuzzOp::Kind kind = best_.procs[p][i].kind;
        auto try_erase = [&](auto member) {
          for (std::size_t j = 0;;) {
            const auto& vec = best_.procs[p][i].*member;
            if (vec.size() <= 1 || j >= vec.size()) break;
            FuzzPlan cand = best_;
            auto& cvec = cand.procs[p][i].*member;
            cvec.erase(cvec.begin() + static_cast<std::ptrdiff_t>(j));
            if (fails(cand)) {
              best_ = std::move(cand);
              improved = true;
            } else {
              ++j;
            }
          }
        };
        if (kind == FuzzOp::Kind::kUpdateBatch) {
          try_erase(&FuzzOp::entries);
        } else if (kind == FuzzOp::Kind::kScan ||
                   kind == FuzzOp::Kind::kScanVersioned) {
          try_erase(&FuzzOp::indices);
        }
      }
    }
    return improved;
  }

  const CaseSpec& spec_;
  FuzzPlan best_;
  std::uint64_t runs_ = 0;
};

std::uint64_t hash_target(const FuzzTarget& target) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(target.kind));
  for (char c : target.spec) mix(static_cast<std::uint8_t>(c));
  return h;
}

// Shrinks a known-failing spec into *failing.  Deterministic: every probe
// reuses the token's seeds, so two invocations converge on the same
// minimal plan, script, and diagnosis.
void shrink_failure(const CaseSpec& spec, const FuzzPlan& plan,
                    const CaseOutcome& first, FailingCase* failing) {
  failing->spec = spec;
  failing->token = encode_token(spec);
  failing->diagnosis = first.diagnosis;

  Shrinker shrinker(spec, plan);
  shrinker.shrink();
  FuzzPlan best = shrinker.best();

  // Schedule shrink: capture the rank trace the minimal plan takes under
  // the seeded policy, then find a short failing prefix (script + fall
  // back to lowest-index).  Binary search is deterministic even where the
  // predicate is not monotone; the full trace is the fallback.
  std::vector<std::uint32_t> ranks;
  CaseOutcome traced = run_case(spec, best, nullptr, &ranks);
  std::size_t lo = 0, hi = ranks.size();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    std::vector<std::uint32_t> prefix(ranks.begin(),
                                      ranks.begin() + static_cast<std::ptrdiff_t>(mid));
    if (run_case(spec, best, &prefix).failed) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<std::uint32_t> script(
      ranks.begin(), ranks.begin() + static_cast<std::ptrdiff_t>(hi));
  CaseOutcome minimal = run_case(spec, best, &script);
  if (!minimal.failed) {
    script = ranks;
    minimal = std::move(traced);
  }
  failing->minimal_plan = std::move(best);
  failing->minimal_script = std::move(script);
  failing->minimal_diagnosis = minimal.diagnosis;
  failing->minimal_history = minimal.history;
}

}  // namespace

CaseOutcome run_case(const CaseSpec& spec, const FuzzPlan& plan,
                     const std::vector<std::uint32_t>* script,
                     std::vector<std::uint32_t>* ranks_out) {
  if (spec.target.kind == FuzzTarget::Kind::kSnapshot) {
    return run_snapshot_case(spec, plan, script, ranks_out);
  }
  return run_active_set_case(spec, plan, script, ranks_out);
}

std::string FailingCase::minimal_summary() const {
  std::ostringstream os;
  os << "token: " << token << "\nminimal plan:\n" << minimal_plan.to_string()
     << "schedule script (" << minimal_script.size() << " ranks):";
  for (std::uint32_t r : minimal_script) os << " " << r;
  os << "\ndiagnosis: " << minimal_diagnosis << "\n";
  return os.str();
}

bool run_and_shrink(const CaseSpec& spec, FailingCase* failing) {
  FuzzPlan plan = generate_plan(spec.target, spec.shape, spec.op_seed);
  CaseOutcome first = run_case(spec, plan);
  if (!first.failed) return false;
  shrink_failure(spec, plan, first, failing);
  return true;
}

bool replay_token(const std::string& token, FailingCase* failing) {
  return run_and_shrink(decode_token(token), failing);
}

CampaignStats run_campaign(
    const std::vector<FuzzTarget>& targets, const CampaignOptions& options,
    const std::function<void(const FailingCase&)>& on_failure) {
  CampaignStats stats;
  const auto start = std::chrono::steady_clock::now();
  auto out_of_budget = [&] {
    if (options.budget_seconds <= 0) return false;
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.budget_seconds;
  };
  auto report = [&](const FailingCase& failing) {
    ++stats.failures;
    if (on_failure) on_failure(failing);
    return options.max_failures != 0 &&
           stats.failures >= options.max_failures;
  };

  // Pinned regression corpus first: a token whose implementation is not
  // registered in this binary (e.g. a mutant token under the production
  // registry) is skipped, not an error.
  for (const std::string& token : options.pinned_tokens) {
    ++stats.cases_run;
    try {
      FailingCase failing;
      if (replay_token(token, &failing) && report(failing)) return stats;
    } catch (const std::invalid_argument&) {
      --stats.cases_run;
    }
  }

  std::uint64_t sweep = 0;
  do {
    for (const FuzzTarget& target : targets) {
      SplitMix64 seeder(options.base_seed ^ hash_target(target) ^
                        (sweep * 0x9e3779b97f4a7c15ull));
      for (std::uint32_t i = 0; i < options.iters_per_target; ++i) {
        if (out_of_budget()) return stats;
        CaseSpec spec;
        spec.target = target;
        std::uint64_t shape_bits = seeder.next();
        spec.shape.procs = static_cast<std::uint32_t>(2 + shape_bits % 2);
        spec.shape.ops_per_proc =
            static_cast<std::uint32_t>(3 + (shape_bits >> 8) % 3);
        spec.shape.initial_m =
            static_cast<std::uint32_t>(2 + (shape_bits >> 16) % 3);
        spec.op_seed = seeder.next();
        spec.sched_seed = seeder.next();
        ++stats.cases_run;

        FuzzPlan plan = generate_plan(spec.target, spec.shape, spec.op_seed);
        CaseOutcome outcome = run_case(spec, plan);
        if (outcome.inconclusive) {
          ++stats.inconclusive;
        } else if (outcome.failed) {
          FailingCase failing;
          if (options.shrink) {
            shrink_failure(spec, plan, outcome, &failing);
          } else {
            failing.spec = spec;
            failing.token = encode_token(spec);
            failing.diagnosis = outcome.diagnosis;
            failing.minimal_plan = plan;
            failing.minimal_diagnosis = outcome.diagnosis;
            failing.minimal_history = outcome.history;
          }
          if (report(failing)) return stats;
        }
      }
    }
    ++sweep;
  } while (options.budget_seconds > 0 && !out_of_budget());
  return stats;
}

}  // namespace psnap::verify::fuzz
