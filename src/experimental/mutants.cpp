#include "experimental/mutants.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "core/partial_snapshot.h"
#include "primitives/primitives.h"

namespace psnap::experimental {

namespace {

// Shared chassis: a fixed-capacity array of step-counted seq_cst
// registers with CAS-mediated growth.  Deliberately primitive -- the
// mutants' job is to take the WRONG protocol steps around these
// registers, so the chassis itself must be beyond suspicion.
class MutantChassis : public core::PartialSnapshot {
 public:
  explicit MutantChassis(std::uint32_t initial_m)
      : slots_(initial_m + kGrowSlack) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      slots_[i].init(0, i);
    }
    size_.init(initial_m);
  }

  std::uint32_t num_components() const override {
    return static_cast<std::uint32_t>(size_.peek());
  }
  bool is_wait_free() const override { return true; }
  bool is_local() const override { return true; }

  std::uint32_t add_components(std::uint32_t count) override {
    for (;;) {
      std::uint64_t cur = size_.load();
      PSNAP_ASSERT_MSG(cur + count <= slots_.size(),
                       "mutant chassis grow capacity exceeded");
      if (size_.compare_and_swap_bool(cur, cur + count)) {
        return static_cast<std::uint32_t>(cur);
      }
    }
  }

  void update(std::uint32_t i, std::uint64_t v) override {
    slots_[i].store(v);
  }

 protected:
  // Fuzz plans grow by at most 2 components per grow, at most 2 grows per
  // process, at most a handful of processes; 32 slack slots is generous.
  static constexpr std::uint32_t kGrowSlack = 32;

  void collect_once(std::span<const std::uint32_t> indices,
                    std::vector<std::uint64_t>& out) {
    out.clear();
    out.reserve(indices.size());
    for (std::uint32_t i : indices) out.push_back(slots_[i].load());
  }

  // Value-equality double collect, retried until clean.  Correct here
  // because the fuzz generator draws collision-sparse fresh values (no
  // ABA): two identical consecutive collects pin a moment where all
  // requested components held exactly these values.
  void collect_clean(std::span<const std::uint32_t> indices,
                     std::vector<std::uint64_t>& out,
                     std::vector<std::uint64_t>& scratch) {
    collect_once(indices, out);
    for (;;) {
      collect_once(indices, scratch);
      if (scratch == out) return;
      out.swap(scratch);
    }
  }

 private:
  std::vector<primitives::Register<std::uint64_t>> slots_;
  primitives::CasObject<std::uint64_t> size_;
};

// scan = one collect, no validation.
class TornScanMutant final : public MutantChassis {
 public:
  using MutantChassis::MutantChassis;
  std::string_view name() const override { return "mut_torn_scan"; }

  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext&) override {
    collect_once(indices, out);
  }
};

// Bounded double collect: two attempts, then return the dirty collect.
class SkippedHelpingMutant final : public MutantChassis {
 public:
  using MutantChassis::MutantChassis;
  std::string_view name() const override { return "mut_skipped_helping"; }

  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext&) override {
    std::vector<std::uint64_t> scratch;
    collect_once(indices, out);
    collect_once(indices, scratch);
    if (scratch == out) return;
    // A correct implementation retries (double collect) or switches to
    // the helping path (fig1/fig3).  Giving up and returning the second
    // collect is the seeded bug.
    out.swap(scratch);
  }
};

// Claims atomic batches, applies them entry-wise.
class TornBatchMutant final : public MutantChassis {
 public:
  using MutantChassis::MutantChassis;
  std::string_view name() const override { return "mut_torn_batch"; }

  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext&) override {
    std::vector<std::uint64_t> scratch;
    collect_clean(indices, out, scratch);
  }

  void update_batch(std::span<const core::BatchEntry> entries) override {
    // Each entry linearizes on its own store: exactly the kAmortized
    // behavior -- while batch_atomicity() promises kAtomic.
    for (const core::BatchEntry& e : entries) update(e.index, e.value);
  }
  core::BatchAtomicity batch_atomicity() const override {
    return core::BatchAtomicity::kAtomic;
  }
};

// Versioned plane whose scans never take a camera ticket.
class StaleEpochMutant final : public MutantChassis {
 public:
  using MutantChassis::MutantChassis;
  std::string_view name() const override { return "mut_stale_epoch"; }
  std::string_view value_plane() const override { return "versioned"; }

  void update(std::uint32_t i, std::uint64_t v) override {
    MutantChassis::update(i, v);
    epoch_.fetch_increment();
  }

  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext&) override {
    std::vector<std::uint64_t> scratch;
    collect_clean(indices, out, scratch);
  }

  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out,
                               core::ScanContext& ctx) override {
    scan(indices, out, ctx);
    // The camera contract is one fetch&add ticket per scan, making
    // epochs strictly increasing per thread.  Reading without
    // incrementing hands consecutive scans the same epoch.
    return epoch_.read();
  }

 private:
  primitives::FetchIncrement epoch_;
};

template <class Mutant>
registry::SnapshotFactory factory() {
  return [](std::uint32_t initial_m, std::uint32_t /*max_threads*/,
            const registry::Options& options) {
    options.check_consumed();
    return std::make_unique<Mutant>(initial_m);
  };
}

}  // namespace

void register_mutant_snapshots(registry::SnapshotRegistry& reg) {
  registry::SnapshotInfo torn_scan;
  torn_scan.name = "mut_torn_scan";
  torn_scan.description = "MUTANT: scan is one unvalidated collect";
  torn_scan.is_wait_free = true;
  torn_scan.is_local = true;
  torn_scan.make = factory<TornScanMutant>();
  reg.add(std::move(torn_scan));

  registry::SnapshotInfo skipped_helping;
  skipped_helping.name = "mut_skipped_helping";
  skipped_helping.description =
      "MUTANT: double collect gives up after two attempts and returns the "
      "dirty collect";
  skipped_helping.is_wait_free = true;
  skipped_helping.is_local = true;
  skipped_helping.make = factory<SkippedHelpingMutant>();
  reg.add(std::move(skipped_helping));

  registry::SnapshotInfo torn_batch;
  torn_batch.name = "mut_torn_batch";
  torn_batch.description =
      "MUTANT: claims atomic batches, applies them entry-wise";
  torn_batch.is_wait_free = true;
  torn_batch.is_local = true;
  torn_batch.supports_batch = true;
  torn_batch.make = factory<TornBatchMutant>();
  reg.add(std::move(torn_batch));

  registry::SnapshotInfo stale_epoch;
  stale_epoch.name = "mut_stale_epoch";
  stale_epoch.description =
      "MUTANT: versioned scans read the camera without taking a ticket";
  stale_epoch.values = "versioned";
  stale_epoch.make = factory<StaleEpochMutant>();
  reg.add(std::move(stale_epoch));
}

}  // namespace psnap::experimental
