// Deliberately broken snapshot implementations: the fuzzer's mutation
// suite (ISSUE: seeded-bug detection).
//
// Each mutant seeds exactly one protocol-step bug of a kind the real
// algorithms guard against, and the fuzz campaign must detect every one
// of them within a bounded budget (tests/verify/fuzz_mutation_test.cpp is
// a hard CI gate).  The bugs are STEP-LEVEL protocol mistakes, not
// memory-ordering mistakes: the deterministic scheduler serializes
// execution between base-object steps, so a dropped fence would be
// invisible under sim -- what the fuzzer can see is a protocol that takes
// the wrong steps.
//
//   mut_torn_scan        scan is a single collect: no validation pass at
//                        all, so an update landing mid-collect yields a
//                        value vector no linearization can produce.
//   mut_skipped_helping  bounded double collect that gives up: after two
//                        disagreeing collects it returns the last (dirty)
//                        one instead of retrying/helping -- the
//                        "termination by helping" obligation dropped.
//   mut_torn_batch       claims BatchAtomicity::kAtomic but applies
//                        update_batch entry-by-entry through the singleton
//                        path, so concurrent scans observe batch prefixes
//                        the atomic tier forbids.
//   mut_stale_epoch      versioned plane whose scan_versioned reads the
//                        camera without taking a ticket: values are
//                        consistent but consecutive scans repeat the same
//                        epoch, violating the strictly-increasing camera
//                        contract.
//
// These live in psnap_experimental (linked only by the mutation tests and
// the fuzz tool's --mutants mode) so the production library and registry
// carry no intentionally-broken code.
#pragma once

#include "registry/registry.h"

namespace psnap::experimental {

// Registers the four mutants into `reg` (normally
// registry::SnapshotRegistry::instance()).  Idempotent per registry --
// calling twice would violate the registry's unique-name invariant, so it
// asserts via the registry itself; call once per process.
void register_mutant_snapshots(registry::SnapshotRegistry& reg);

// The registered mutant names, for iterating the mutation suite.
inline constexpr const char* kMutantNames[] = {
    "mut_torn_scan",
    "mut_skipped_helping",
    "mut_torn_batch",
    "mut_stale_epoch",
};

}  // namespace psnap::experimental
