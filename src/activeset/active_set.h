// The active set abstraction (paper Section 2.1).
//
// An active set tracks a dynamic group of processes:
//   * join / leave change the calling process's membership and return ack.
//     Calls by one process must alternate, starting with join.
//   * getSet returns a set S of process ids that
//       - contains every process that is *active* (its join completed
//         before getSet was invoked and it has not yet called leave), and
//       - contains no process that is *inactive* (its leave completed
//         before getSet was invoked and it has not called join since), and
//       - may contain any subset of processes that are mid-join/mid-leave.
//
// Note this is deliberately weaker than linearizability: two concurrent
// getSets may resolve concurrent joiners differently.  The partial snapshot
// algorithms only need the guarantee above (Section 3's correctness
// argument), and the verification module checks exactly it.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace psnap::activeset {

class ActiveSet {
 public:
  virtual ~ActiveSet() = default;

  // All three operations act on behalf of exec::ctx().pid, which must be a
  // valid process id below the max_processes the object was built with.
  virtual void join() = 0;
  virtual void leave() = 0;

  // Appends the member set, sorted and duplicate-free, into out (cleared
  // first).  An output parameter so hot paths can reuse capacity.
  virtual void get_set(std::vector<std::uint32_t>& out) = 0;

  virtual std::string_view name() const = 0;

  virtual std::uint32_t max_processes() const = 0;

  std::vector<std::uint32_t> get_set() {
    std::vector<std::uint32_t> out;
    get_set(out);
    return out;
  }
};

}  // namespace psnap::activeset
