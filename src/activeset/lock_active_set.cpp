#include "activeset/lock_active_set.h"

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::activeset {

void LockActiveSet::join() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  std::scoped_lock lock(mu_);
  auto [it, inserted] = members_.insert(pid);
  PSNAP_ASSERT_MSG(inserted, "join by an already-active process");
}

void LockActiveSet::leave() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  std::scoped_lock lock(mu_);
  std::size_t erased = members_.erase(pid);
  PSNAP_ASSERT_MSG(erased == 1, "leave by a non-active process");
}

void LockActiveSet::get_set(std::vector<std::uint32_t>& out) {
  out.clear();
  std::scoped_lock lock(mu_);
  out.assign(members_.begin(), members_.end());
}

}  // namespace psnap::activeset
