// The paper's new active set algorithm (Figure 2, Section 4.1).
//
//   join:   l <- fetch&increment(H);  I[l] <- id          (O(1) steps)
//   leave:  I[l] <- 0                                     (O(1) steps)
//   getSet: oldC <- C; h <- H
//           walk I[1..h], skipping indices covered by oldC's intervals;
//           vacated entries are gathered and the union is published back
//           to C with a single compare&swap (losers simply move on).
//
// Invariant (the paper's one-line correctness argument): an index appears
// in an interval stored in C only after the corresponding entry of I was
// set to 0, and that entry never changes thereafter.
//
// One deviation from the pseudocode, required to keep that invariant true:
// the pseudocode tests "entry = 0" for vacated slots, but a slot can also
// read as fresh/unwritten when a joiner has performed its fetch&increment
// and not yet written its id.  Treating that transient state as vacated
// would permanently skip a process that is about to become active,
// violating the invariant ("... is set to 0 and never changes thereafter"
// -- a mid-join slot *does* still change).  We therefore distinguish three
// slot states: kEmpty (allocated, id not yet written; skipped but NOT added
// to the interval list), kVacated (left; added to the list), and an id.
// A mid-join process is neither active nor inactive, so omitting it is
// allowed by the specification.
//
// Space: slots are never recycled, exactly as in the paper (Section 6
// leaves recycling open).  When a bound on the total number of joins is
// known a priori the constructor accepts it and asserts it is respected,
// which is the bounded-space variant the paper sketches.
//
// Templated over the primitives' runtime policy (see primitives.h).
// Release-mode soundness, per operation:
//   * join: the F&I is acq_rel (slot indices stay unique) and the I[l]
//     id store is release, sequenced after the caller's announcement
//     store; a getSet that loads the id therefore also sees the
//     announcement -- the message-passing property Figures 1/3 need.
//     The converse direction (a getSet running after the caller's
//     post-join fence must SEE the join) is the Dekker-shaped half:
//     scanners fence between join and collects, and the I[] walk below
//     uses load_sync -- see the protocol-fence discussion in
//     primitives.h.
//   * getSet: reads C with acquire (the IntervalSet behind the pointer is
//     immutable and was release-published), H with acquire, and each I[l]
//     with load_sync as above.  The skip-list CAS is acq_rel.
//   * The paper's invariant only demands per-location ordering ("is set to
//     0 and never changes thereafter"), which coherence gives even
//     relaxed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "activeset/active_set.h"
#include "common/padding.h"
#include "core/growth.h"
#include "exec/pid_bound.h"
#include "intervals/interval_set.h"
#include "primitives/primitives.h"
#include "reclaim/ebr.h"
#include "segarray/segmented_array.h"

namespace psnap::activeset {

// Options are policy-independent so registry code can build them once and
// hand them to either runtime's constructor.
struct FaiCasOptions {
  // Coalesce adjacent intervals when publishing (Section 4.1's rule).
  // Disabled only by the ABL-1 ablation bench.
  bool coalesce = true;
  // Publish the vacated-interval list at all.  Disabled only by the
  // ablation bench, to measure how getSet cost degrades without C.
  bool publish_skip_list = true;
  // If nonzero, the a-priori bound on joins in this execution: the slot
  // array is conceptually bounded and exceeding the bound is a usage
  // error (asserted).
  std::uint64_t max_joins = 0;
  // The per-pid walk bound (exec/pid_bound.h).  Figure 2's I[] walk is
  // slot-indexed and already population-adaptive through the published
  // skip list (bounded by live joiners plus not-yet-skip-listed vacated
  // slots), so the bound's role here is sizing: getSet reserves its
  // result capacity at min(max_processes, bound) once instead of growing
  // the vector member by member.
  exec::PidBound bound;
};

template <class Policy = primitives::Instrumented>
class FaiCasActiveSetT final : public ActiveSet {
 public:
  using Options = FaiCasOptions;

  explicit FaiCasActiveSetT(std::uint32_t max_processes);
  FaiCasActiveSetT(std::uint32_t max_processes, Options options);
  ~FaiCasActiveSetT() override;

  void join() override;
  void leave() override;
  void get_set(std::vector<std::uint32_t>& out) override;
  using ActiveSet::get_set;

  std::string_view name() const override {
    return Policy::kCountsSteps ? "faicas-as" : "faicas-as-fast";
  }
  std::uint32_t max_processes() const override { return n_; }

  // --- observability for tests and benches ---
  // Length of the currently published interval list.
  std::size_t published_intervals() const;
  // Highest slot index handed out so far.
  std::uint64_t slots_used() const { return h_.peek(); }
  // Number of successful publications of a new interval list.
  std::uint64_t skip_list_publications() const {
    return publications_.load(std::memory_order_relaxed);
  }

 private:
  // Slot states; ids are stored as pid + kIdBase so they collide with
  // neither sentinel.
  static constexpr std::uint64_t kEmpty = 0;    // allocated, id not written
  static constexpr std::uint64_t kVacated = 1;  // left; eligible for skipping
  static constexpr std::uint64_t kIdBase = 2;

  std::uint32_t n_;
  Options options_;

  primitives::FetchIncrementT<Policy> h_;  // highest issued slot (1-based)
  primitives::CasObject<const intervals::IntervalSet*, Policy> c_;
  segarray::SegmentedArray<primitives::Register<std::uint64_t, Policy>> i_;

  // Per-process slot index from the most recent join (local state), in
  // grow-only per-pid storage so a dynamic thread population only pays for
  // the pids it actually registers.
  core::PerPidStorage<CachelinePadded<std::uint64_t>> my_slot_;

  reclaim::EbrDomain ebr_;
  std::atomic<std::uint64_t> publications_{0};
};

using FaiCasActiveSet = FaiCasActiveSetT<primitives::Instrumented>;

}  // namespace psnap::activeset
