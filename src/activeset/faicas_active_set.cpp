#include "activeset/faicas_active_set.h"

#include <algorithm>

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::activeset {

using intervals::IntervalSet;

template <class Policy>
FaiCasActiveSetT<Policy>::FaiCasActiveSetT(std::uint32_t max_processes)
    : FaiCasActiveSetT(max_processes, Options{}) {}

template <class Policy>
FaiCasActiveSetT<Policy>::FaiCasActiveSetT(std::uint32_t max_processes,
                                           Options options)
    : n_(max_processes), options_(options), c_(new IntervalSet()) {
  PSNAP_ASSERT(max_processes > 0);
}

template <class Policy>
FaiCasActiveSetT<Policy>::~FaiCasActiveSetT() {
  // Retired lists are drained by the EbrDomain destructor; the currently
  // published list is still owned here.
  delete c_.peek();
}

template <class Policy>
void FaiCasActiveSetT<Policy>::join() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  std::uint64_t l = h_.fetch_increment();  // 1-based slot index
  if (options_.max_joins != 0) {
    PSNAP_ASSERT_MSG(l <= options_.max_joins,
                     "bounded FaiCasActiveSet exceeded its join budget");
  }
  i_.at(l - 1).store(kIdBase + pid);
  my_slot_.at(pid).value = l;
}

template <class Policy>
void FaiCasActiveSetT<Policy>::leave() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  std::uint64_t l = my_slot_.at(pid).value;
  PSNAP_ASSERT_MSG(l != 0, "leave without a preceding join");
  i_.at(l - 1).store(kVacated);
  my_slot_.at(pid).value = 0;
}

template <class Policy>
void FaiCasActiveSetT<Policy>::get_set(std::vector<std::uint32_t>& out) {
  out.clear();
  // Reserve once at the population bound; repeated collects then reuse
  // the caller's capacity with no member-by-member growth (the get_set
  // allocation audit in tests/activeset/getset_alloc_test.cpp).
  out.reserve(options_.bound.get(n_));
  auto guard = ebr_.pin();

  const IntervalSet* old_c = c_.load();
  std::uint64_t h = h_.read();

  // Reusable vacated-slot scratch: per native thread, cleared per call,
  // capacity retained -- so collects stay allocation-free even while
  // concurrent churn keeps producing vacated slots to gather.  (Not a
  // member: concurrent getSets by different threads must not share it.)
  static thread_local std::vector<std::uint64_t> vacated_scratch;
  std::vector<std::uint64_t>& vacated = vacated_scratch;
  vacated.clear();
  const IntervalSet empty;
  const IntervalSet& skip =
      options_.publish_skip_list ? *old_c : empty;
  if (h > 0) {
    skip.for_each_gap(1, h, [&](std::uint64_t l) {
      // load_sync: the getSet end of the announce/join handshake -- a
      // join the scanner fenced before our walk must be seen here (see
      // primitives.h).
      std::uint64_t entry = i_.at(l - 1).load_sync();
      if (entry == kVacated) {
        vacated.push_back(l);
      } else if (entry != kEmpty) {
        out.push_back(static_cast<std::uint32_t>(entry - kIdBase));
      }
      // kEmpty: a process between its fetch&increment and its id write.
      // Neither a member nor skippable -- see the header comment.
    });
  }

  if (options_.publish_skip_list && !vacated.empty()) {
    // Publish oldC ∪ vacated with one CAS; on failure another getSet
    // advanced the list and our additions will be rediscovered (charged,
    // in the amortized analysis, to the leaves that wrote the zeros).
    // unique_ptr until publication: an injected halt at the CAS step
    // (crash tests) unwinds without leaking the unpublished list.
    // `vacated` is copied, not moved: the scratch keeps its capacity for
    // the next collect (publication already allocates the list itself,
    // so the copy adds nothing to the steady state).
    auto new_c = std::make_unique<IntervalSet>(
        old_c->merged_with_points(vacated, options_.coalesce));
    if (c_.compare_and_swap_bool(old_c, new_c.get())) {
      new_c.release();
      publications_.fetch_add(1, std::memory_order_relaxed);
      ebr_.retire(const_cast<IntervalSet*>(old_c));
    }
  }

  // The same process can legitimately appear in two slots within one scan
  // of I (it left slot a and re-joined into slot b mid-getSet); the
  // abstraction returns a set, so deduplicate.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

template <class Policy>
std::size_t FaiCasActiveSetT<Policy>::published_intervals() const {
  return c_.peek()->size();
}

template class FaiCasActiveSetT<primitives::Instrumented>;
template class FaiCasActiveSetT<primitives::Release>;

}  // namespace psnap::activeset
