#include "activeset/register_active_set.h"

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::activeset {

template <class Policy>
RegisterActiveSetT<Policy>::RegisterActiveSetT(std::uint32_t max_processes,
                                               exec::PidBound bound)
    : n_(max_processes), bound_(bound) {
  PSNAP_ASSERT(max_processes > 0);
}

template <class Policy>
void RegisterActiveSetT<Policy>::join() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  flags_.at(pid).store(1);
}

template <class Policy>
void RegisterActiveSetT<Policy>::leave() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  flags_.at(pid).store(0);
}

template <class Policy>
void RegisterActiveSetT<Policy>::get_set(std::vector<std::uint32_t>& out) {
  out.clear();
  // The population-adaptive walk: every pid in use is below the bound
  // (pid_bound.h's soundness argument), so the collect touches -- and, in
  // the instrumented runtime, step-counts -- only the dense live prefix.
  // The bound read itself is bookkeeping, not a base-object step.
  const std::uint32_t limit = bound_.get(n_);
  out.reserve(limit);
  for (std::uint32_t p = 0; p < limit; ++p) {
    const auto* flag = flags_.try_at(p);
    if (flag == nullptr) {
      // No pid in this slot's segment has ever joined, so the flag reads
      // as 0.  Still one register step (and one schedule point) in the
      // instrumented runtime: the paper's model reads one register per
      // walked slot regardless of how the storage is laid out.
      if constexpr (Policy::kCountsSteps) {
        exec::on_step(exec::ObjKind::kRegister, exec::kNoLabel);
      }
      continue;
    }
    // load_sync: the getSet end of the announce/join handshake -- a join
    // the scanner fenced before this walk must be seen (see primitives.h).
    if (flag->load_sync() != 0) out.push_back(p);
  }
}

template class RegisterActiveSetT<primitives::Instrumented>;
template class RegisterActiveSetT<primitives::Release>;

}  // namespace psnap::activeset
