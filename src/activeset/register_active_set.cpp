#include "activeset/register_active_set.h"

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::activeset {

RegisterActiveSet::RegisterActiveSet(std::uint32_t max_processes)
    : n_(max_processes), flags_(max_processes) {
  PSNAP_ASSERT(max_processes > 0);
}

void RegisterActiveSet::join() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  flags_[pid].store(1);
}

void RegisterActiveSet::leave() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  flags_[pid].store(0);
}

void RegisterActiveSet::get_set(std::vector<std::uint32_t>& out) {
  out.clear();
  for (std::uint32_t p = 0; p < n_; ++p) {
    if (flags_[p].load() != 0) out.push_back(p);
  }
}

}  // namespace psnap::activeset
