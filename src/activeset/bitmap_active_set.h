// Bitmap active set: one membership bit per pid, collected a word at a
// time.
//
// The register active set spends one base-object read per pid it walks;
// with the watermark bound that is O(live population) reads.  This
// implementation packs 64 membership flags into each AtomicBits word
// (primitives.h), so
//
//   join:   one fetch_or of the pid's bit        (O(1) steps)
//   leave:  one fetch_and clearing the bit       (O(1) steps)
//   getSet: read ceil(bound/64) words and iterate their set bits
//           (O(live/64) steps with the adaptive PidBound)
//
// -- a collect whose step count is 1/64th of the register walk's, usable
// as Figure 1's active set (`fig1_register:as=bitmap`) exactly like the
// register substitution.  Words are cacheline-padded so join/leave RMWs by
// pids in different 64-pid blocks never false-share; pids within a block
// do share their word, which is the price of the packed collect (the
// paper's model charges per base object, and 64 flags per readable base
// object is the whole win).
//
// Specification fit (Section 2.1): a set bit IS membership -- join's RMW
// linearizes the transition to active, leave's RMW the transition to
// inactive, so a getSet word read observes each pid's state at one instant
// and never returns an inactive process.  Concurrent joins/leaves resolve
// per word read, which the (deliberately weak) active-set spec allows.
// Pids at or beyond the walk bound can only be mid-join (the bound covers
// every pid whose acquisition completed before the collect started; see
// exec/pid_bound.h), and a mid-join process may be omitted.
//
// Release-mode soundness carries over from register_active_set.h
// unchanged, both directions of the Dekker-shaped handshake: (a) an
// update whose getSet reads pid p's bit synchronizes-with p's acq_rel
// join RMW and therefore sees p's earlier announcement; (b) a scanner
// fences (seq_cst, primitives::protocol_fence) between its join and its
// collects, and getSet reads both the walk bound and the words with
// seq_cst loads (high_watermark_sync / AtomicBits::load_sync), so an
// update whose walk runs after that fence cannot miss the scanner.
#pragma once

#include <memory>
#include <vector>

#include "activeset/active_set.h"
#include "common/padding.h"
#include "exec/pid_bound.h"
#include "primitives/primitives.h"

namespace psnap::activeset {

template <class Policy = primitives::Instrumented>
class BitmapActiveSetT final : public ActiveSet {
 public:
  explicit BitmapActiveSetT(std::uint32_t max_processes,
                            exec::PidBound bound = {});

  void join() override;
  void leave() override;
  void get_set(std::vector<std::uint32_t>& out) override;
  using ActiveSet::get_set;

  std::string_view name() const override {
    return Policy::kCountsSteps ? "bitmap-as" : "bitmap-as-fast";
  }
  std::uint32_t max_processes() const override { return n_; }

 private:
  static constexpr std::uint32_t kBitsPerWord = 64;

  std::uint32_t n_;
  std::uint32_t num_words_;
  exec::PidBound bound_;
  // Fixed at construction (ceil(n/64) words): membership is per-pid state
  // with a hard capacity, not grow-only history, and at the registry's
  // 128-pid ceiling the whole bitmap is two cache lines.
  std::unique_ptr<CachelinePadded<primitives::AtomicBits<Policy>>[]> words_;
};

using BitmapActiveSet = BitmapActiveSetT<primitives::Instrumented>;

}  // namespace psnap::activeset
