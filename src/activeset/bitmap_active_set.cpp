#include "activeset/bitmap_active_set.h"

#include <bit>

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::activeset {

template <class Policy>
BitmapActiveSetT<Policy>::BitmapActiveSetT(std::uint32_t max_processes,
                                           exec::PidBound bound)
    : n_(max_processes),
      num_words_((max_processes + kBitsPerWord - 1) / kBitsPerWord),
      bound_(bound),
      words_(std::make_unique<
             CachelinePadded<primitives::AtomicBits<Policy>>[]>(num_words_)) {
  PSNAP_ASSERT(max_processes > 0);
}

template <class Policy>
void BitmapActiveSetT<Policy>::join() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  std::uint64_t prev =
      words_[pid / kBitsPerWord]->fetch_or(pid % kBitsPerWord);
  PSNAP_ASSERT_MSG((prev & (std::uint64_t{1} << (pid % kBitsPerWord))) == 0,
                   "join by an already-active process");
}

template <class Policy>
void BitmapActiveSetT<Policy>::leave() {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  std::uint64_t prev =
      words_[pid / kBitsPerWord]->fetch_and_clear(pid % kBitsPerWord);
  PSNAP_ASSERT_MSG((prev & (std::uint64_t{1} << (pid % kBitsPerWord))) != 0,
                   "leave by a non-active process");
}

template <class Policy>
void BitmapActiveSetT<Policy>::get_set(std::vector<std::uint32_t>& out) {
  out.clear();
  // Every pid whose join completed before this getSet was invoked is
  // below the bound (pid_bound.h), so ceil(bound/64) word reads cover the
  // whole member set.  A set bit at or beyond the bound -- a joiner whose
  // pid acquisition raced this read -- lands in a word we read anyway or
  // in one we skip; either way it is a mid-join process the specification
  // lets a getSet resolve freely, and bits can never be set at or beyond
  // n_ (join asserts).  The bound read is bookkeeping, not a step; each
  // word read is one register step.
  const std::uint32_t limit = bound_.get(n_);
  out.reserve(limit);
  const std::uint32_t walk_words =
      std::min(num_words_, (limit + kBitsPerWord - 1) / kBitsPerWord);
  for (std::uint32_t w = 0; w < walk_words; ++w) {
    // load_sync: the getSet end of the announce/join handshake -- a join
    // the scanner fenced before this walk must be seen (see primitives.h).
    std::uint64_t word = words_[w]->load_sync();
    while (word != 0) {
      std::uint32_t b = static_cast<std::uint32_t>(std::countr_zero(word));
      out.push_back(w * kBitsPerWord + b);
      word &= word - 1;  // clear the lowest set bit
    }
  }
  // Ascending word-then-bit order is already sorted and duplicate-free.
}

template class BitmapActiveSetT<primitives::Instrumented>;
template class BitmapActiveSetT<primitives::Release>;

}  // namespace psnap::activeset
