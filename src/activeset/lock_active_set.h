// Mutex-based active set.
//
// Reference model only: trivially correct (every operation is atomic under
// one lock), used by tests as the oracle the lock-free implementations are
// compared against, and by benches as the "what a lock costs" baseline.
// Not wait-free; performs no base-object steps in the paper's model.
#pragma once

#include <mutex>
#include <set>
#include <vector>

#include "activeset/active_set.h"

namespace psnap::activeset {

class LockActiveSet final : public ActiveSet {
 public:
  explicit LockActiveSet(std::uint32_t max_processes) : n_(max_processes) {}

  void join() override;
  void leave() override;
  void get_set(std::vector<std::uint32_t>& out) override;
  using ActiveSet::get_set;

  std::string_view name() const override { return "lock-as"; }
  std::uint32_t max_processes() const override { return n_; }

 private:
  std::uint32_t n_;
  std::mutex mu_;
  std::set<std::uint32_t> members_;
};

}  // namespace psnap::activeset
