// Register-only active set.
//
// This stands in for the adaptive collect of Afek, Stupp and Touitou [3]
// that the paper plugs into Figure 1 (see DESIGN.md, substitutions): one
// single-writer flag register per process, and a getSet that collects
// them.  join/leave are one register write (O(1)); getSet walks the dense
// pid prefix [0, PidBound) -- O(live population) with the default adaptive
// bound (exec/pid_bound.h), O(n) with PidBound::fixed(n) -- rather than
// the adaptive O(Cs^2) of [3], whose "cost tracks contention" shape the
// watermark bound reproduces at the population granularity.  The
// active-set *specification* is met exactly (the bound provably covers
// every pid in use; see pid_bound.h), so Figure 1's correctness is
// unchanged; only the additive active-set term of Theorem 1 differs, and
// the benches report that term separately.
//
// Templated over the primitives' runtime policy (see primitives.h):
// Instrumented for the theorem benches and sim tests, Release for the
// `fig1_register_fast` registry entry.  Release-mode soundness, both
// directions of the handshake: (a) an update whose getSet reads
// flag[p] == 1 synchronizes-with p's release join store and therefore
// sees p's earlier announcement; (b) a scanner fences (seq_cst) between
// its join and its collects, and getSet reads the flags with load_sync,
// so an update whose getSet walk runs after that fence cannot miss the
// scanner -- the Dekker half that acquire/release alone would lose (see
// the protocol-fence discussion in primitives.h).
#pragma once

#include <memory>
#include <vector>

#include "activeset/active_set.h"
#include "core/growth.h"
#include "exec/pid_bound.h"
#include "primitives/primitives.h"

namespace psnap::activeset {

template <class Policy = primitives::Instrumented>
class RegisterActiveSetT final : public ActiveSet {
 public:
  explicit RegisterActiveSetT(std::uint32_t max_processes,
                              exec::PidBound bound = {});

  void join() override;
  void leave() override;
  void get_set(std::vector<std::uint32_t>& out) override;
  using ActiveSet::get_set;

  std::string_view name() const override {
    return Policy::kCountsSteps ? "register-as" : "register-as-fast";
  }
  std::uint32_t max_processes() const override { return n_; }

 private:
  std::uint32_t n_;
  // The walk bound: getSet loops over [0, bound_.get(n_)), which covers
  // every pid in use (pid_bound.h) and equals the live-population
  // watermark under the default adaptive provider.
  exec::PidBound bound_;
  // One SWMR flag per process; 1 = active.  Grow-only per-pid storage:
  // a flag's segment materializes at the pid's first join, so the object
  // never pays for max_processes slots a dynamic thread population does
  // not use.  getSet walks (and step-counts, Instrumented runtime) each
  // slot of the bounded prefix exactly once -- an absent segment reads as
  // flag == 0 but still costs its one register step -- so step counts
  // equal the walked prefix length, independent of segment layout: the
  // paper's model sees a collect over min(n, watermark) registers.
  core::PerPidStorage<primitives::Register<std::uint64_t, Policy>> flags_;
};

using RegisterActiveSet = RegisterActiveSetT<primitives::Instrumented>;

}  // namespace psnap::activeset
