// Register-only active set.
//
// This stands in for the adaptive collect of Afek, Stupp and Touitou [3]
// that the paper plugs into Figure 1 (see DESIGN.md, substitutions): one
// single-writer flag register per process, and a getSet that collects all
// of them.  join/leave are one register write (O(1)); getSet is O(n) where
// n is the maximum number of processes, rather than the adaptive O(Cs^2)
// of [3].  The active-set *specification* is met exactly, so Figure 1's
// correctness is unchanged; only the additive active-set term of Theorem 1
// differs, and the benches report that term separately.
//
// Templated over the primitives' runtime policy (see primitives.h):
// Instrumented for the theorem benches and sim tests, Release for the
// `fig1_register_fast` registry entry.  Release-mode soundness, both
// directions of the handshake: (a) an update whose getSet reads
// flag[p] == 1 synchronizes-with p's release join store and therefore
// sees p's earlier announcement; (b) a scanner fences (seq_cst) between
// its join and its collects, and getSet reads the flags with load_sync,
// so an update whose getSet walk runs after that fence cannot miss the
// scanner -- the Dekker half that acquire/release alone would lose (see
// the protocol-fence discussion in primitives.h).
#pragma once

#include <memory>
#include <vector>

#include "activeset/active_set.h"
#include "core/growth.h"
#include "primitives/primitives.h"

namespace psnap::activeset {

template <class Policy = primitives::Instrumented>
class RegisterActiveSetT final : public ActiveSet {
 public:
  explicit RegisterActiveSetT(std::uint32_t max_processes);

  void join() override;
  void leave() override;
  void get_set(std::vector<std::uint32_t>& out) override;
  using ActiveSet::get_set;

  std::string_view name() const override {
    return Policy::kCountsSteps ? "register-as" : "register-as-fast";
  }
  std::uint32_t max_processes() const override { return n_; }

 private:
  std::uint32_t n_;
  // One SWMR flag per process; 1 = active.  Grow-only per-pid storage:
  // a flag's segment materializes at the pid's first join, so the object
  // never pays for max_processes slots a dynamic thread population does
  // not use.  getSet still walks (and step-counts) all n_ slots -- an
  // absent segment reads as flag == 0 -- so step counts are independent
  // of segment layout.
  core::PerPidStorage<primitives::Register<std::uint64_t, Policy>> flags_;
};

using RegisterActiveSet = RegisterActiveSetT<primitives::Instrumented>;

}  // namespace psnap::activeset
