#include "persist/crc32.h"

#include <array>

namespace psnap::persist {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> bytes) {
  for (std::byte b : bytes) {
    state = kTable[(state ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

std::uint32_t crc32_finish(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::byte> bytes) {
  return crc32_finish(crc32_update(crc32_init(), bytes));
}

}  // namespace psnap::persist
