// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for checkpoint
// frame integrity.
//
// The durability layer never trusts bytes it reads back from disk: a
// frame's CRC is computed over everything before the trailer and verified
// before a single field is believed (persist/checkpoint.h).  CRC-32
// detects every single-bit error and every burst up to 32 bits -- the
// torn-write and bit-rot shapes the torn-checkpoint tests inject -- which
// is the right tool for "reject and fall back", as opposed to a
// cryptographic hash, which would defend against an adversary the
// recovery model does not include.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace psnap::persist {

// One-shot CRC-32 of a byte range.  check("123456789") == 0xCBF43926.
std::uint32_t crc32(std::span<const std::byte> bytes);

// Incremental form: feed chunks with `state` threaded through, starting
// and finishing with crc32_init/crc32_finish.  Lets the frame writer
// checksum header and payload without concatenating them.
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> bytes);
std::uint32_t crc32_finish(std::uint32_t state);

}  // namespace psnap::persist
