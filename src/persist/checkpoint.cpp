#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "persist/crc32.h"

namespace psnap::persist {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'P', 'S', 'N', 'P', 'C', 'K', 'P', '1'};
constexpr std::size_t kCrcBytes = sizeof(std::uint32_t);
constexpr std::string_view kFramePrefix = "ckpt-";
constexpr std::string_view kFrameSuffix = ".psnap";

enum class Plane : std::uint32_t { kU64 = 0, kBlob = 1, kVersioned = 2 };

std::optional<Plane> plane_from_name(std::string_view name) {
  if (name == "u64") return Plane::kU64;
  if (name == "blob") return Plane::kBlob;
  if (name == "versioned") return Plane::kVersioned;
  return std::nullopt;
}

std::string_view plane_name(Plane plane) {
  switch (plane) {
    case Plane::kU64: return "u64";
    case Plane::kBlob: return "blob";
    case Plane::kVersioned: return "versioned";
  }
  return "u64";
}

template <class T>
void append_raw(std::vector<std::byte>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

void append_bytes(std::vector<std::byte>& out,
                  std::span<const std::byte> bytes) {
  // resize + memcpy instead of insert(end, first, last): GCC 12's -O2
  // stringop-overflow analysis misreads the range-insert over span
  // iterators as a write past the end and fails the -Werror release
  // build.
  if (bytes.empty()) return;
  const std::size_t old_size = out.size();
  out.resize(old_size + bytes.size());
  std::memcpy(out.data() + old_size, bytes.data(), bytes.size());
}

// Bounds-checked cursor over an untrusted byte image.  Every read is
// validated against the remaining length BEFORE dereferencing, so a
// bit-flipped length field can at worst make parsing fail, never read out
// of bounds or allocate absurd amounts.
struct Cursor {
  std::span<const std::byte> bytes;
  std::size_t pos = 0;

  std::size_t remaining() const { return bytes.size() - pos; }

  template <class T>
  bool read(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(&out, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool read_bytes(std::size_t n, std::span<const std::byte>& out) {
    if (remaining() < n) return false;
    out = bytes.subspan(pos, n);
    pos += n;
    return true;
  }
};

bool fail(std::string* error, std::string_view reason) {
  if (error != nullptr) *error = std::string(reason);
  return false;
}

// Parses "<prefix><seq><suffix>"; nullopt for anything else (tmp orphans,
// stray files).
std::optional<std::uint64_t> frame_sequence(std::string_view name) {
  if (name.size() <= kFramePrefix.size() + kFrameSuffix.size()) {
    return std::nullopt;
  }
  if (name.substr(0, kFramePrefix.size()) != kFramePrefix ||
      name.substr(name.size() - kFrameSuffix.size()) != kFrameSuffix) {
    return std::nullopt;
  }
  std::string_view digits = name.substr(
      kFramePrefix.size(),
      name.size() - kFramePrefix.size() - kFrameSuffix.size());
  std::uint64_t seq = 0;
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), seq);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return seq;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void fsync_path(const std::string& path, bool directory) {
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  if (directory) flags |= O_DIRECTORY;
#endif
  int fd = ::open(path.c_str(), flags);
  if (fd < 0) throw_errno("open for fsync " + path);
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync " + path);
  }
  ::close(fd);
}

}  // namespace

std::vector<std::byte> serialize_frame(const CheckpointData& frame) {
  auto plane = plane_from_name(frame.value_plane);
  if (!plane) {
    throw std::invalid_argument("serialize_frame: unknown value plane '" +
                                frame.value_plane + "'");
  }
  const std::size_t entries = frame.entry_count();
  const std::size_t payloads =
      *plane == Plane::kBlob ? frame.blobs.size() : frame.values.size();
  if (payloads != entries) {
    throw std::invalid_argument(
        "serialize_frame: " + std::to_string(payloads) + " payloads for " +
        std::to_string(entries) + " entries");
  }
  if (!frame.indices.empty()) {
    for (std::uint32_t i : frame.indices) {
      if (i >= frame.num_components) {
        throw std::invalid_argument(
            "serialize_frame: partial-frame index " + std::to_string(i) +
            " >= m=" + std::to_string(frame.num_components));
      }
    }
  }

  std::vector<std::byte> out;
  append_bytes(out, std::as_bytes(std::span(kMagic)));
  append_raw(out, frame.sequence);
  append_raw(out, frame.epoch);
  append_raw(out, static_cast<std::uint32_t>(*plane));
  append_raw(out, frame.initial_m);
  append_raw(out, frame.num_components);
  append_raw(out, frame.max_threads);
  append_raw(out, static_cast<std::uint32_t>(frame.impl_spec.size()));
  append_raw(out, static_cast<std::uint32_t>(frame.indices.size()));
  append_bytes(out, std::as_bytes(std::span(frame.impl_spec)));
  append_bytes(out, std::as_bytes(std::span(frame.indices)));
  if (*plane == Plane::kBlob) {
    for (const value::Blob& blob : frame.blobs) {
      append_raw(out, static_cast<std::uint32_t>(blob.size()));
      append_bytes(out, blob);
    }
  } else {
    append_bytes(out, std::as_bytes(std::span(frame.values)));
  }
  append_raw(out, crc32(out));
  return out;
}

std::optional<CheckpointData> parse_frame(std::span<const std::byte> bytes,
                                          std::string* error) {
  auto reject = [&](std::string_view why) -> std::optional<CheckpointData> {
    fail(error, why);
    return std::nullopt;
  };

  // Integrity first: nothing in the image is believed until the CRC over
  // everything before the trailer matches the trailer.
  if (bytes.size() < sizeof(kMagic) + kCrcBytes) {
    return reject("frame shorter than header + CRC trailer");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - kCrcBytes,
              kCrcBytes);
  if (crc32(bytes.first(bytes.size() - kCrcBytes)) != stored_crc) {
    return reject("CRC mismatch");
  }

  Cursor cur{bytes.first(bytes.size() - kCrcBytes)};
  std::span<const std::byte> magic;
  if (!cur.read_bytes(sizeof(kMagic), magic) ||
      std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic");
  }

  CheckpointData frame;
  std::uint32_t plane_id = 0, spec_len = 0, index_count = 0;
  if (!cur.read(frame.sequence) || !cur.read(frame.epoch) ||
      !cur.read(plane_id) || !cur.read(frame.initial_m) ||
      !cur.read(frame.num_components) || !cur.read(frame.max_threads) ||
      !cur.read(spec_len) || !cur.read(index_count)) {
    return reject("truncated header");
  }
  if (plane_id > static_cast<std::uint32_t>(Plane::kVersioned)) {
    return reject("unknown value plane id");
  }
  const Plane plane = static_cast<Plane>(plane_id);
  frame.value_plane = std::string(plane_name(plane));
  if (frame.initial_m > frame.num_components) {
    return reject("initial_m exceeds component count");
  }

  std::span<const std::byte> spec_bytes;
  if (!cur.read_bytes(spec_len, spec_bytes)) {
    return reject("truncated registry spec");
  }
  frame.impl_spec.assign(reinterpret_cast<const char*>(spec_bytes.data()),
                         spec_bytes.size());

  if (index_count > cur.remaining() / sizeof(std::uint32_t)) {
    return reject("truncated index list");
  }
  frame.indices.resize(index_count);
  for (std::uint32_t& i : frame.indices) {
    if (!cur.read(i)) return reject("truncated index list");
    if (i >= frame.num_components) return reject("index out of range");
  }

  const std::size_t entries = frame.entry_count();
  if (plane == Plane::kBlob) {
    frame.blobs.reserve(entries);
    for (std::size_t k = 0; k < entries; ++k) {
      std::uint32_t len = 0;
      std::span<const std::byte> payload;
      if (!cur.read(len) || !cur.read_bytes(len, payload)) {
        return reject("truncated blob payload");
      }
      frame.blobs.emplace_back(payload.begin(), payload.end());
    }
  } else {
    if (entries > cur.remaining() / sizeof(std::uint64_t)) {
      return reject("truncated value payload");
    }
    frame.values.resize(entries);
    for (std::uint64_t& v : frame.values) {
      if (!cur.read(v)) return reject("truncated value payload");
    }
  }
  if (cur.remaining() != 0) {
    return reject("trailing bytes after payload");
  }
  return frame;
}

CheckpointWriter::CheckpointWriter(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.keep_frames < 2) options_.keep_frames = 2;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("CheckpointWriter: cannot create '" + dir_ +
                             "': " + ec.message());
  }
}

std::string CheckpointWriter::commit(const CheckpointData& frame) {
  const std::vector<std::byte> image = serialize_frame(frame);
  const std::string final_name =
      std::string(kFramePrefix) + std::to_string(frame.sequence) +
      std::string(kFrameSuffix);
  const std::string final_path = dir_ + "/" + final_name;
  const std::string tmp_path = final_path + ".tmp";

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + tmp_path);
  const std::byte* p = image.data();
  std::size_t left = image.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("write " + tmp_path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (options_.sync && ::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync " + tmp_path);
  }
  ::close(fd);

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename " + tmp_path + " -> " + final_path);
  }
  if (options_.sync) fsync_path(dir_, /*directory=*/true);

  // Prune: keep the newest keep_frames committed frames.  Pruning after
  // the commit means a crash anywhere in here leaves MORE history than
  // asked for, never less.
  CheckpointLoader loader(dir_);
  std::vector<std::string> paths = loader.frame_paths();
  for (std::size_t k = options_.keep_frames; k < paths.size(); ++k) {
    std::error_code ec;
    fs::remove(paths[k], ec);  // best effort
  }
  return final_path;
}

CheckpointLoader::CheckpointLoader(std::string dir) : dir_(std::move(dir)) {}

std::vector<std::string> CheckpointLoader::frame_paths() const {
  std::vector<std::pair<std::uint64_t, std::string>> frames;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return {};
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    auto seq = frame_sequence(entry.path().filename().string());
    if (!seq) continue;
    frames.emplace_back(*seq, entry.path().string());
  }
  std::sort(frames.begin(), frames.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(frames.size());
  for (auto& [seq, path] : frames) out.push_back(std::move(path));
  return out;
}

std::optional<CheckpointData> CheckpointLoader::load_newest(
    Report* report) const {
  for (const std::string& path : frame_paths()) {
    std::vector<std::byte> image;
    {
      int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) {
        if (report != nullptr) {
          report->rejected.push_back(path + ": " + std::strerror(errno));
        }
        continue;
      }
      std::byte buf[1 << 16];
      ssize_t n;
      while ((n = ::read(fd, buf, sizeof buf)) > 0) {
        image.insert(image.end(), buf, buf + n);
      }
      ::close(fd);
      if (n < 0) {
        if (report != nullptr) {
          report->rejected.push_back(path + ": read failed");
        }
        continue;
      }
    }
    std::string error;
    if (auto frame = parse_frame(image, &error)) {
      return frame;
    }
    if (report != nullptr) {
      report->rejected.push_back(path + ": " + error);
    }
  }
  return std::nullopt;
}

}  // namespace psnap::persist
