// Durable checkpoint frames: the on-disk form of one consistent scan.
//
// The paper's headline application (Section 1) is "storing checkpoints
// for data recovery"; this layer is the durability half of that story.  A
// frame captures one linearizable scan of a snapshot object -- any value
// plane, including blob payloads and the versioned plane's camera epoch --
// plus everything restore() needs to rebuild the object: the registry
// spec, the construction-time component count (so growth is replayed, not
// faked), and the runtime bounds.
//
// Frame file layout (native-endian; a checkpoint restores on the machine
// that wrote it):
//
//   magic   "PSNPCKP1"                      8 bytes
//   u64     sequence   writer-monotone commit number (newest-frame order)
//   u64     epoch      versioned-plane camera epoch at the scan (else 0)
//   u32     plane      0 = u64, 1 = blob, 2 = versioned
//   u32     initial_m  components at construction
//   u32     m          components at the scan (restore grows from
//                      initial_m up to here)
//   u32     max_threads
//   u32     spec_len   + that many bytes of registry spec
//   u32     index_count  0 = full frame over [0, m); else that many u32
//                        component indices (a PARTIAL frame)
//   payload per entry: u64 value (planes 0/2) or u32 len + bytes (plane 1)
//   u32     crc32 over every byte above
//
// Commit protocol (CheckpointWriter): serialize to "<name>.tmp" in the
// checkpoint directory, fsync the file, rename(2) to "ckpt-<seq>.psnap",
// fsync the directory.  rename is atomic, so a reader (or a loader after
// kill -9) sees either no frame or a complete one; a crash mid-write
// leaves only a .tmp orphan the loader never considers.
//
// Load protocol (CheckpointLoader): walk frames newest-sequence-first and
// return the first that verifies -- magic, structural bounds, and CRC
// over the whole frame BEFORE any field is trusted.  A torn, truncated,
// or bit-flipped frame is rejected (with a reason, reported per file) and
// the walk falls back to the previous intact frame; if nothing intact
// remains the loader returns nullopt rather than ever returning garbage.
// tests/persist/torn_checkpoint_test.cpp enforces exactly that contract.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "primitives/value_plane.h"

namespace psnap::persist {

// One consistent scan, in memory.  `values` carries the payloads on the
// u64 and versioned planes, `blobs` on the blob plane; entry k belongs to
// component indices[k] (or to component k when the frame is full).
struct CheckpointData {
  std::string impl_spec;          // registry spec that rebuilds the object
  std::uint64_t sequence = 0;     // writer-side monotone commit number
  std::uint64_t epoch = 0;        // versioned-plane epoch (0 elsewhere)
  std::string value_plane = "u64";
  std::uint32_t initial_m = 0;    // m at construction
  std::uint32_t num_components = 0;  // m at the scan
  std::uint32_t max_threads = 0;
  std::vector<std::uint32_t> indices;  // empty = full frame over [0, m)
  std::vector<std::uint64_t> values;
  std::vector<psnap::value::Blob> blobs;

  bool is_full() const { return indices.empty(); }
  std::size_t entry_count() const {
    return is_full() ? num_components : indices.size();
  }

  bool operator==(const CheckpointData&) const = default;
};

// Serializes a frame to its on-disk byte image (including the CRC
// trailer).  Throws std::invalid_argument when the frame is malformed
// (unknown plane name, payload count != entry_count()).
std::vector<std::byte> serialize_frame(const CheckpointData& frame);

// Parses and VERIFIES a frame image; returns nullopt (with a reason in
// *error when non-null) on any magic, bounds, or CRC failure.  Never
// returns a partially-believed frame: the CRC is checked before the
// payload is decoded.
std::optional<CheckpointData> parse_frame(std::span<const std::byte> bytes,
                                          std::string* error = nullptr);

// Commits frames into a checkpoint directory via write-temp-then-rename.
class CheckpointWriter {
 public:
  struct Options {
    // Intact frames to retain; older ones are pruned after each commit.
    // At least 2, so one bad newest frame always leaves a fallback.
    std::uint32_t keep_frames = 4;
    // fsync file and directory on commit (off only for tests that
    // hammer the write path).
    bool sync = true;
  };

  // Creates the directory if absent.  Throws std::runtime_error on IO
  // failure.
  CheckpointWriter(std::string dir, Options options);
  explicit CheckpointWriter(std::string dir)
      : CheckpointWriter(std::move(dir), Options{}) {}

  // Atomically commits one frame; returns the committed path.  Throws
  // std::runtime_error on IO failure.
  std::string commit(const CheckpointData& frame);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  Options options_;
};

// Reads the newest intact frame from a checkpoint directory.
class CheckpointLoader {
 public:
  struct Report {
    // "path: reason" for every frame rejected during the walk.
    std::vector<std::string> rejected;
  };

  explicit CheckpointLoader(std::string dir);

  // Frame paths in the directory, newest sequence first (by filename; a
  // lying filename is caught later by the CRC'd in-frame sequence).
  std::vector<std::string> frame_paths() const;

  // The newest frame that verifies end to end, walking back past corrupt
  // ones; nullopt when the directory holds no intact frame (including
  // when it does not exist).
  std::optional<CheckpointData> load_newest(Report* report = nullptr) const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace psnap::persist
