#include "reclaim/ebr.h"

#include <unordered_map>

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::reclaim {

namespace {

std::uint64_t next_domain_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread cache for ANONYMOUS slots only: domain id -> slot index.
// Keyed by id, not pointer, so a domain reallocated at a previous domain's
// address cannot alias its slots.  (Pid-keyed slots need no cache: the slot
// IS the pid.)
std::unordered_map<std::uint64_t, std::uint32_t>& slot_cache() {
  thread_local std::unordered_map<std::uint64_t, std::uint32_t> cache;
  return cache;
}

// Retire-list length that triggers a reclamation attempt.
constexpr std::size_t kReclaimThreshold = 64;

}  // namespace

EbrDomain::EbrDomain() : domain_id_(next_domain_id()), slots_(kTotalSlots) {}

EbrDomain::~EbrDomain() {
  // Precondition: quiescent.  Free everything outstanding.  The callback
  // receives each node's own slot index: the destroying thread may never
  // have operated on this domain, so it must not need a slot of its own.
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    PSNAP_ASSERT_MSG(slot.epoch.load(std::memory_order_relaxed) == kIdle,
                     "EbrDomain destroyed while a thread is pinned");
    for (RetiredNode& node : slot.retired) {
      node.fn(node.ptr, node.ctx, *this, s);
      freed_.fetch_add(1, std::memory_order_relaxed);
    }
    slot.retired.clear();
  }
}

std::uint32_t EbrDomain::slot_for_this_thread() {
  // Registered threads: the slot is the pid.  Distinct live threads never
  // share a pid (exec::ThreadRegistry invariant), and a reused pid's slot
  // state is handed over through the registry's release/acquire pair.  A
  // thread must therefore not drop its pid (ThreadHandle destruction)
  // while pinned or mid-operation on this domain.
  std::uint32_t pid = exec::ctx().pid;
  if (pid != exec::kInvalidPid) {
    PSNAP_ASSERT_MSG(pid < kPidSlots, "pid exceeds the EBR pid-slot range");
    Slot& slot = slots_[pid];
    if (!slot.in_use.load(std::memory_order_relaxed)) {
      // Marks the slot live for try_reclaim's walk; never cleared (a slot
      // that held retired nodes stays scannable).  Only the pid's current
      // holder stores here, so the plain store cannot race another writer.
      slot.in_use.store(true, std::memory_order_release);
    }
    return pid;
  }
  // Anonymous threads: sticky CAS-claimed slots above the pid range,
  // cached per (thread, domain).
  auto& cache = slot_cache();
  auto it = cache.find(domain_id_);
  if (it != cache.end()) return it->second;
  for (std::uint32_t i = kPidSlots; i < kTotalSlots; ++i) {
    bool expected = false;
    if (slots_[i].in_use.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
      cache.emplace(domain_id_, i);
      return i;
    }
  }
  PSNAP_ASSERT_MSG(false, "EbrDomain anonymous-thread capacity exhausted");
  return 0;  // unreachable
}

std::uint32_t EbrDomain::enter() {
  std::uint32_t slot_index = slot_for_this_thread();
  Slot& slot = slots_[slot_index];
  ++slot.depth;
  if (slot.depth > 1) return slot_index;  // reentrant: already pinned
  // Publish the pinned epoch; re-check so we never pin an epoch that has
  // already been left behind (the classic EBR entry protocol).
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  while (true) {
    slot.epoch.store(e, std::memory_order_seq_cst);
    std::uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
    if (e2 == e) break;
    e = e2;
  }
  return slot_index;
}

void EbrDomain::exit(std::uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  PSNAP_ASSERT(slot.depth > 0);
  --slot.depth;
  if (slot.depth > 0) return;
  slot.epoch.store(kIdle, std::memory_order_seq_cst);
  if (slot.retired.size() >= kReclaimThreshold) {
    try_reclaim();
  }
}

EbrDomain::Guard::Guard(EbrDomain& domain)
    : domain_(domain), slot_(domain.enter()) {}

EbrDomain::Guard::~Guard() { domain_.exit(slot_); }

void EbrDomain::retire_raw(void* node, void* ctx, RecycleFn fn) {
  PSNAP_ASSERT(node != nullptr);
  Slot& slot = slots_[slot_for_this_thread()];
  slot.retired.push_back(
      RetiredNode{node, ctx, fn,
                  global_epoch_.load(std::memory_order_seq_cst)});
  retired_.fetch_add(1, std::memory_order_relaxed);
  if (slot.retired.size() >= kReclaimThreshold && slot.depth == 0) {
    try_reclaim();
  }
}

void EbrDomain::try_reclaim() {
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  bool can_advance = true;
  for (Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_acquire)) continue;
    std::uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
    if (pinned != kIdle && pinned != e) {
      can_advance = false;
      break;
    }
  }
  if (can_advance) {
    // Multiple threads may race here; compare_exchange keeps the epoch from
    // skipping generations.
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_seq_cst);
  }
  // Free this thread's eligible nodes: retired in an epoch at least two
  // generations behind the current one.
  std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
  if (now < 2) return;
  free_eligible(slot_for_this_thread(), now - 2);
}

void EbrDomain::free_eligible(std::uint32_t slot_index,
                              std::uint64_t safe_epoch) {
  Slot& slot = slots_[slot_index];
  std::size_t kept = 0;
  for (std::size_t i = 0; i < slot.retired.size(); ++i) {
    RetiredNode& node = slot.retired[i];
    if (node.epoch <= safe_epoch) {
      node.fn(node.ptr, node.ctx, *this, slot_index);
      freed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot.retired[kept++] = node;
    }
  }
  slot.retired.resize(kept);
}

}  // namespace psnap::reclaim
