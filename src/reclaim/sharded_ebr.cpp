#include "reclaim/sharded_ebr.h"

#include "common/assert.h"

namespace psnap::reclaim {

ShardedEbr::ShardedEbr(std::uint32_t shards, std::uint32_t segment_components)
    : shards_(shards), segment_components_(segment_components) {
  PSNAP_ASSERT_MSG(shards >= 1 && shards <= kMaxShards,
                   "ShardedEbr shard count out of range");
  PSNAP_ASSERT(segment_components > 0);
  domains_.reserve(shards_);
  for (std::uint32_t s = 0; s < shards_; ++s) {
    domains_.push_back(std::make_unique<EbrDomain>());
  }
}

std::uint64_t ShardedEbr::retired_count() const {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->retired_count();
  return total;
}

std::uint64_t ShardedEbr::freed_count() const {
  std::uint64_t total = 0;
  for (const auto& d : domains_) total += d->freed_count();
  return total;
}

}  // namespace psnap::reclaim
