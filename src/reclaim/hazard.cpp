#include "reclaim/hazard.h"

#include <algorithm>
#include <unordered_map>

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::reclaim {

namespace {

std::uint64_t next_domain_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread cache for ANONYMOUS slots only (see reclaim/ebr.cpp, which
// uses the identical layout): domain id -> slot index.
std::unordered_map<std::uint64_t, std::uint32_t>& slot_cache() {
  thread_local std::unordered_map<std::uint64_t, std::uint32_t> cache;
  return cache;
}

// Floor for the adaptive scan threshold: below this, scans would run so
// often their O(claimed * K) walk dominates.
constexpr std::size_t kMinScanThreshold = 64;

}  // namespace

HazardDomain::HazardDomain()
    : domain_id_(next_domain_id()), slots_(kTotalSlots) {}

HazardDomain::~HazardDomain() {
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    for (RetiredNode& node : slot.retired) {
      node.fn(node.ptr, node.ctx, s);
      freed_.fetch_add(1, std::memory_order_relaxed);
    }
    slot.retired.clear();
  }
}

std::uint32_t HazardDomain::slot_for_this_thread() {
  // Registered threads: the slot is the pid (shared layout with
  // EbrDomain; see reclaim/slots.h for why).
  std::uint32_t pid = exec::ctx().pid;
  if (pid != exec::kInvalidPid) {
    PSNAP_ASSERT_MSG(pid < kPidSlots, "pid exceeds the hazard pid-slot range");
    Slot& slot = slots_[pid];
    if (!slot.in_use.load(std::memory_order_relaxed)) {
      // Only the pid's current holder stores here, so the plain store
      // cannot race another writer; never cleared (a slot that held
      // retired nodes stays scannable).
      slot.in_use.store(true, std::memory_order_release);
      claimed_.fetch_add(1, std::memory_order_relaxed);
    }
    return pid;
  }
  // Anonymous threads: sticky CAS-claimed slots above the pid range.
  auto& cache = slot_cache();
  auto it = cache.find(domain_id_);
  if (it != cache.end()) return it->second;
  for (std::uint32_t i = kPidSlots; i < kTotalSlots; ++i) {
    bool expected = false;
    if (slots_[i].in_use.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
      claimed_.fetch_add(1, std::memory_order_relaxed);
      cache.emplace(domain_id_, i);
      return i;
    }
  }
  PSNAP_ASSERT_MSG(false, "HazardDomain anonymous-thread capacity exhausted");
  return 0;  // unreachable
}

void* HazardDomain::protect_raw(const std::atomic<void*>& src,
                                std::uint32_t index) {
  PSNAP_ASSERT(index < kHazardsPerThread);
  Slot& slot = slots_[slot_for_this_thread()];
  void* p = src.load(std::memory_order_seq_cst);
  while (true) {
    slot.hazards[index].store(p, std::memory_order_seq_cst);
    void* p2 = src.load(std::memory_order_seq_cst);
    if (p2 == p) return p;
    p = p2;
  }
}

void HazardDomain::set(std::uint32_t index, const void* p) {
  PSNAP_ASSERT(index < kHazardsPerThread);
  slots_[slot_for_this_thread()].hazards[index].store(
      const_cast<void*>(p), std::memory_order_seq_cst);
}

void HazardDomain::clear(std::uint32_t index) {
  PSNAP_ASSERT(index < kHazardsPerThread);
  slots_[slot_for_this_thread()].hazards[index].store(
      nullptr, std::memory_order_seq_cst);
}

void HazardDomain::clear_all() {
  Slot& slot = slots_[slot_for_this_thread()];
  for (auto& h : slot.hazards) h.store(nullptr, std::memory_order_seq_cst);
}

void HazardDomain::retire_raw(void* node, void* ctx, RecycleFn fn) {
  PSNAP_ASSERT(node != nullptr);
  Slot& slot = slots_[slot_for_this_thread()];
  slot.retired.push_back(RetiredNode{node, ctx, fn});
  retired_.fetch_add(1, std::memory_order_relaxed);
  // Michael's amortized bound, scaled to the slots actually claimed
  // rather than the full capacity (see the claimed_ comment in the
  // header): scan when the local list exceeds twice the live hazard
  // capacity, giving amortized O(1) and garbage bounded by
  // O(claimed^2 * K) across all threads.
  std::size_t threshold =
      2 * std::size_t{claimed_.load(std::memory_order_relaxed)} *
      kHazardsPerThread;
  if (slot.retired.size() >= std::max(threshold, kMinScanThreshold)) {
    scan_and_free();
  }
}

void HazardDomain::scan_and_free() {
  std::uint32_t my_slot = slot_for_this_thread();
  Slot& mine = slots_[my_slot];
  std::vector<void*>& protected_ptrs = mine.scan_scratch;
  protected_ptrs.clear();
  for (Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_acquire)) continue;
    for (auto& h : slot.hazards) {
      void* p = h.load(std::memory_order_seq_cst);
      if (p != nullptr) protected_ptrs.push_back(p);
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  std::size_t kept = 0;
  for (std::size_t i = 0; i < mine.retired.size(); ++i) {
    RetiredNode& node = mine.retired[i];
    if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                           node.ptr)) {
      mine.retired[kept++] = node;
    } else {
      node.fn(node.ptr, node.ctx, my_slot);
      freed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  mine.retired.resize(kept);
}

}  // namespace psnap::reclaim
