#include "reclaim/hazard.h"

#include <algorithm>
#include <unordered_map>

#include "common/assert.h"

namespace psnap::reclaim {

namespace {

std::uint64_t next_domain_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::unordered_map<std::uint64_t, std::uint32_t>& slot_cache() {
  thread_local std::unordered_map<std::uint64_t, std::uint32_t> cache;
  return cache;
}

}  // namespace

HazardDomain::HazardDomain() : domain_id_(next_domain_id()), slots_(kMaxThreads) {}

HazardDomain::~HazardDomain() {
  for (Slot& slot : slots_) {
    for (RetiredNode& node : slot.retired) {
      node.deleter(node.ptr);
      freed_.fetch_add(1, std::memory_order_relaxed);
    }
    slot.retired.clear();
  }
}

std::uint32_t HazardDomain::slot_for_this_thread() {
  auto& cache = slot_cache();
  auto it = cache.find(domain_id_);
  if (it != cache.end()) return it->second;
  for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (slots_[i].in_use.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
      cache.emplace(domain_id_, i);
      return i;
    }
  }
  PSNAP_ASSERT_MSG(false, "HazardDomain thread capacity exhausted");
  return 0;  // unreachable
}

void* HazardDomain::protect_raw(const std::atomic<void*>& src,
                                std::uint32_t index) {
  PSNAP_ASSERT(index < kHazardsPerThread);
  Slot& slot = slots_[slot_for_this_thread()];
  void* p = src.load(std::memory_order_seq_cst);
  while (true) {
    slot.hazards[index].store(p, std::memory_order_seq_cst);
    void* p2 = src.load(std::memory_order_seq_cst);
    if (p2 == p) return p;
    p = p2;
  }
}

void HazardDomain::clear(std::uint32_t index) {
  PSNAP_ASSERT(index < kHazardsPerThread);
  slots_[slot_for_this_thread()].hazards[index].store(
      nullptr, std::memory_order_seq_cst);
}

void HazardDomain::clear_all() {
  Slot& slot = slots_[slot_for_this_thread()];
  for (auto& h : slot.hazards) h.store(nullptr, std::memory_order_seq_cst);
}

void HazardDomain::retire_raw(void* node, void (*deleter)(void*)) {
  PSNAP_ASSERT(node != nullptr);
  Slot& slot = slots_[slot_for_this_thread()];
  slot.retired.push_back(RetiredNode{node, deleter});
  retired_.fetch_add(1, std::memory_order_relaxed);
  // Michael's bound: scan when the local list exceeds twice the global
  // hazard capacity, giving amortized O(1) and bounded garbage.
  if (slot.retired.size() >= 2 * kMaxThreads * kHazardsPerThread) {
    scan_and_free();
  }
}

void HazardDomain::scan_and_free() {
  std::vector<void*> protected_ptrs;
  protected_ptrs.reserve(kMaxThreads * kHazardsPerThread);
  for (Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_acquire)) continue;
    for (auto& h : slot.hazards) {
      void* p = h.load(std::memory_order_seq_cst);
      if (p != nullptr) protected_ptrs.push_back(p);
    }
  }
  std::sort(protected_ptrs.begin(), protected_ptrs.end());

  Slot& mine = slots_[slot_for_this_thread()];
  std::size_t kept = 0;
  for (std::size_t i = 0; i < mine.retired.size(); ++i) {
    RetiredNode& node = mine.retired[i];
    if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                           node.ptr)) {
      mine.retired[kept++] = node;
    } else {
      node.deleter(node.ptr);
      freed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  mine.retired.resize(kept);
}

}  // namespace psnap::reclaim
