// Epoch-based reclamation (EBR).
//
// The snapshot algorithms publish immutable heap records through atomic
// pointers (the paper's "large registers", or its explicit small-register
// variant that stores "a pointer to a set of registers").  A reader that
// loads such a pointer must be able to dereference it even if a concurrent
// update has already replaced it; EBR provides that guarantee.
//
// Scheme (Fraser-style, three logical generations):
//  * A global epoch counter advances when every pinned thread has observed
//    the current epoch.
//  * Threads pin the current epoch for the duration of one operation
//    (operations here are wait-free and short, so epochs advance quickly).
//  * A node retired in epoch e is freed once the global epoch reaches e+2:
//    at that point no pinned thread can still hold a reference from e.
//
// EBR pins and retires are memory management, not shared-object "steps" in
// the paper's model, so they deliberately do not call exec::on_step().
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/padding.h"
#include "reclaim/slots.h"

namespace psnap::reclaim {

class EbrDomain {
 public:
  // Per-thread state is keyed by the caller's *registered pid* when it has
  // one (exec::ThreadRegistry hands out pids below kPidSlots and reuses
  // them after release), so a churning thread population of any size works
  // as long as at most kPidSlots pids are live at once.  The release/
  // acquire CAS pair in the registry orders the hand-off, so a pid's
  // retired list simply transfers to the slot's next holder.  Threads
  // without a pid (direct reclaim tests, bookkeeping threads) fall back to
  // sticky CAS-claimed slots in [kPidSlots, kTotalSlots).  The layout is
  // the shared one in reclaim/slots.h, derived from the thread registry's
  // capacity constant; the aliases below are kept for existing callers.
  static constexpr std::uint32_t kPidSlots = reclaim::kPidSlots;
  static constexpr std::uint32_t kAnonSlots = reclaim::kAnonSlots;
  static constexpr std::uint32_t kTotalSlots = reclaim::kTotalSlots;

  EbrDomain();
  // Precondition: no thread is pinned and no operation is in flight.
  // Frees every outstanding retired node.
  ~EbrDomain();

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  // RAII pin.  Reentrant: nested guards on the same thread are no-ops, so
  // an update may pin and call helper code that also pins.
  class Guard {
   public:
    explicit Guard(EbrDomain& domain);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EbrDomain& domain_;
    std::uint32_t slot_;
  };

  Guard pin() { return Guard(*this); }

  // Non-RAII pin protocol, for holders that pin a DYNAMIC set of domains
  // (reclaim::ShardedEbr's multi-shard guard; a deliberately parked
  // reader).  enter() runs the Guard entry protocol and returns the
  // caller's slot; every enter() must be matched by an exit(slot) on the
  // same thread.  Reentrant like Guard: nested enters on the same thread
  // are depth-counted no-ops.
  std::uint32_t enter();
  void exit(std::uint32_t slot);

  // Grace-period callback: receives the node, the context registered with
  // it, the domain, and the EBR slot index that held the retired node (so
  // pooled recycling can index per-slot structures without claiming a
  // slot for the calling thread -- the domain DESTRUCTOR may flush from a
  // thread that never operated on the domain and so owns no slot).  Runs
  // either on the slot's owning thread or in the quiescent destructor.
  using RecycleFn = void (*)(void* node, void* ctx, EbrDomain& domain,
                             std::uint32_t slot);

  // Hands the node to the domain; it is deleted once no pinned thread can
  // still reference it.  May be called while pinned.
  template <class T>
  void retire(T* node) {
    retire_raw(node, nullptr, [](void* p, void*, EbrDomain&, std::uint32_t) {
      delete static_cast<T*>(p);
    });
  }

  // Generalized form: instead of deleting, the grace-period callback
  // decides what to do with the node.  reclaim::Pool uses this to recycle
  // nodes into a typed free list rather than returning them to the heap.
  void retire_raw(void* node, void* ctx, RecycleFn fn);

  // Per-thread slot index in [0, kTotalSlots) for this domain: the
  // caller's registered pid when it has one, a sticky anonymous slot
  // otherwise.  Used by Pool to give each thread its own free list without
  // a second thread-registration mechanism.
  std::uint32_t thread_slot() { return slot_for_this_thread(); }

  // Attempts to advance the epoch and free eligible nodes.  Called
  // automatically on retire-list pressure; exposed for tests.
  void try_reclaim();

  // --- observability (tests and the micro bench) ---
  std::uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_relaxed);
  }
  std::uint64_t retired_count() const {
    return retired_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const {
    return freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t outstanding() const { return retired_count() - freed_count(); }

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  struct RetiredNode {
    void* ptr;
    void* ctx;
    RecycleFn fn;
    std::uint64_t epoch;
  };

  struct alignas(kCachelineBytes) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
    std::atomic<bool> in_use{false};
    // Owner-thread-only state (the destructor is the one exception, and it
    // runs without concurrency by precondition).
    std::uint32_t depth = 0;
    std::vector<RetiredNode> retired;
  };

  std::uint32_t slot_for_this_thread();
  void free_eligible(std::uint32_t slot_index, std::uint64_t safe_epoch);

  std::atomic<std::uint64_t> global_epoch_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  const std::uint64_t domain_id_;
  std::vector<Slot> slots_;
};

}  // namespace psnap::reclaim
