// Per-thread slot layout shared by every reclamation domain.
//
// Both reclamation substrates (reclaim::EbrDomain, reclaim::HazardDomain)
// and the free-list pools on top of them (reclaim::Pool) key per-thread
// state by the same slot index:
//
//   * slots [0, kPidSlots): the caller's registered pid (the slot IS the
//     pid).  Derived from exec::kMaxPidCapacity -- the one constant the
//     thread registry sizes its bitmap from -- so any pid the registry
//     can hand out has a slot in every domain by construction.
//   * slots [kPidSlots, kTotalSlots): sticky CAS-claimed slots for
//     threads without a pid (direct reclaim tests, bookkeeping threads).
//
// Keying by pid (rather than per-domain claims) is what lets one Pool
// serve several domains: a registered thread resolves to the SAME slot in
// every domain, so nodes retired through any shard's domain surface on the
// retiring thread's one free list.
#pragma once

#include <cstdint>

#include "exec/capacity.h"

namespace psnap::reclaim {

inline constexpr std::uint32_t kPidSlots = exec::kMaxPidCapacity;
inline constexpr std::uint32_t kAnonSlots = 32;
inline constexpr std::uint32_t kTotalSlots = kPidSlots + kAnonSlots;

}  // namespace psnap::reclaim
