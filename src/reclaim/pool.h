// Typed free-list pooling on top of epoch-based reclamation.
//
// The snapshot algorithms publish one immutable heap record per update and
// one announcement per scan-shape change.  With plain EBR those nodes are
// `delete`d after their grace period and the next operation `new`s a fresh
// one -- two allocator round-trips on every hot-path operation, and (for
// Record) the loss of the embedded view vector's grown capacity each time.
//
// A Pool<T> replaces delete/new with recycle/acquire:
//
//   * recycle(domain, node) retires the node through the domain exactly
//     like EbrDomain::retire, but when the grace period expires the node is
//     pushed onto a free list instead of deleted.  Nodes are NOT destroyed:
//     a recycled Record keeps its view vector's capacity, so re-filling it
//     on the next acquire allocates nothing.
//   * acquire(domain) pops the calling thread's free list, falling back to
//     `new T()` only while the pool is still warming up.
//
// Free lists are per-thread (indexed by the domain's EBR slot), which makes
// every list owner-thread-only: recycled nodes surface on the thread that
// retired them (EBR frees a slot's nodes from that slot's owner), and
// acquire pops the caller's own list.  No atomics, no cross-thread free
// list, and therefore no Treiber-stack ABA problem to solve.  The flux is
// balanced in steady state because each update acquires exactly one record
// and retires exactly one (the one it replaced).
//
// ABA / tag-uniqueness: recycling reuses ADDRESSES no earlier than delete
// would have handed them back to malloc -- only after the grace period --
// so the algorithms' pointer-identity arguments (records observed while
// EBR-pinned are never reused under the reader's feet) are unchanged.  The
// paper's (pid, counter) content-uniqueness argument is also unchanged:
// counters increase monotonically per process, so a recycled Record is
// always republished with a tag no prior record carried.
// tests/reclaim/pool_test.cpp drives this under the sim scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "common/padding.h"
#include "reclaim/ebr.h"

namespace psnap::reclaim {

template <class T>
class Pool {
 public:
  Pool() : lists_(EbrDomain::kTotalSlots) {}

  // Precondition (same as ~EbrDomain): quiescent.  The domain whose nodes
  // recycle into this pool must be destroyed FIRST -- its destructor
  // flushes outstanding retired nodes into these lists -- so declare the
  // Pool before the EbrDomain in the owning class.
  ~Pool() {
    for (auto& padded : lists_) {
      for (void* p : padded.value.free) delete static_cast<T*>(p);
    }
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Owns a node from acquisition until publication.  On unwind (CAS
  // failure, injected halt before the publishing store) the node returns
  // to the acquiring thread's free list, skipping the grace period: no
  // other thread ever saw the pointer.  The thread slot is resolved once
  // at acquisition and cached, so the acquire/unwind round trip costs one
  // slot lookup, not three.  Single-operation scope on one thread; not
  // movable or copyable.
  class Handle {
   public:
    ~Handle() {
      if (node_ != nullptr) pool_.put_at(slot_, node_);
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    T* get() const { return node_; }
    T* operator->() const { return node_; }
    // Hands ownership to the caller (the publishing store).
    T* release() {
      T* node = node_;
      node_ = nullptr;
      return node;
    }

   private:
    friend class Pool;
    Handle(Pool& pool, std::uint32_t slot, T* node)
        : pool_(pool), slot_(slot), node_(node) {}

    Pool& pool_;
    std::uint32_t slot_;
    T* node_;
  };

  // Pops a recycled node, or heap-allocates while warming up.  The node is
  // whatever state its previous life left it in; callers overwrite every
  // field before publication.
  Handle acquire(EbrDomain& domain) {
    std::uint32_t slot = domain.thread_slot();
    PerThread& mine = lists_[slot].value;
    T* node;
    if (!mine.free.empty()) {
      node = static_cast<T*>(mine.free.back());
      mine.free.pop_back();
      ++mine.reused;
    } else {
      ++mine.fresh;
      node = new T();
    }
    return Handle(*this, slot, node);
  }

  // Returns a node that was never published: it skips the grace period
  // and is immediately reusable (see Handle; exposed for the EBR flush
  // path and tests).
  void put_local(EbrDomain& domain, T* node) {
    put_at(domain.thread_slot(), node);
  }

  // Retires a *published* node: it joins the free list once the domain's
  // grace period guarantees no pinned reader still references it.
  void recycle(EbrDomain& domain, T* node) {
    // The callback files the node under its retiring slot's list --
    // supplied by EBR, so the flushing thread (possibly the domain's
    // destructor running on a thread that owns no slot) never has to
    // claim one.
    domain.retire_raw(node, this,
                      [](void* p, void* ctx, EbrDomain&, std::uint32_t slot) {
                        static_cast<Pool*>(ctx)->put_at(slot,
                                                        static_cast<T*>(p));
                      });
  }

  // --- observability (tests; aggregate reads are quiescent-only) ---
  std::uint64_t reused_count() const {
    std::uint64_t total = 0;
    for (const auto& padded : lists_) total += padded.value.reused;
    return total;
  }
  std::uint64_t fresh_count() const {
    std::uint64_t total = 0;
    for (const auto& padded : lists_) total += padded.value.fresh;
    return total;
  }
  std::size_t pooled_count() const {
    std::size_t total = 0;
    for (const auto& padded : lists_) total += padded.value.free.size();
    return total;
  }

 private:
  struct PerThread {
    std::vector<void*> free;
    std::uint64_t reused = 0;
    std::uint64_t fresh = 0;
  };

  void put_at(std::uint32_t slot, T* node) {
    lists_[slot].value.free.push_back(node);
  }

  std::vector<CachelinePadded<PerThread>> lists_;
};

}  // namespace psnap::reclaim
