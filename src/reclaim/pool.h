// Typed free-list pooling on top of the reclamation substrates.
//
// The snapshot algorithms publish one immutable heap record per update and
// one announcement per scan-shape change.  With plain reclamation those
// nodes are `delete`d after their grace period and the next operation
// `new`s a fresh one -- two allocator round-trips on every hot-path
// operation, and (for Record) the loss of the embedded view vector's grown
// capacity each time.
//
// A Pool<T> replaces delete/new with recycle/acquire:
//
//   * recycle(domain, node) retires the node through the domain exactly
//     like the domain's own retire, but when the grace period expires the
//     node is pushed onto a free list instead of deleted.  Nodes are NOT
//     destroyed: a recycled Record keeps its view vector's capacity, so
//     re-filling it on the next acquire allocates nothing.
//   * acquire(domain) pops the calling thread's free list, falling back to
//     `new T()` only while the pool is still warming up.
//
// Free lists are per (shard, thread-slot).  Thread slots use the shared
// reclaim/slots.h layout -- a registered thread resolves to the SAME slot
// index in every EbrDomain and HazardDomain -- so one Pool serves all of a
// ShardedEbr's domains (and the hp plane): nodes retired through shard s
// surface on the retiring thread's list for shard s, and acquire(d, s)
// pops that same list.  Every list stays owner-thread-only: no atomics, no
// cross-thread free list, and therefore no Treiber-stack ABA problem to
// solve.  The flux is balanced in steady state because each update
// acquires exactly one record and retires exactly one (the one it
// replaced).
//
// ABA / tag-uniqueness: recycling reuses ADDRESSES no earlier than delete
// would have handed them back to malloc -- only after the grace period (or
// hazard scan) -- so the algorithms' pointer-identity arguments (records
// observed while protected are never reused under the reader's feet) are
// unchanged.  The paper's (pid, counter) content-uniqueness argument is
// also unchanged: counters increase monotonically per process, so a
// recycled Record is always republished with a tag no prior record
// carried.  tests/reclaim/pool_test.cpp drives this under the sim
// scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/padding.h"
#include "reclaim/ebr.h"
#include "reclaim/hazard.h"

namespace psnap::reclaim {

template <class T>
class Pool {
 public:
  // One bank of per-thread free lists per reclamation shard.  Owners that
  // reclaim through a single domain (the default everywhere) use the
  // one-bank default and never pass a shard index.
  explicit Pool(std::uint32_t shards = 1)
      : lists_(std::size_t{shards} * kTotalSlots), shard_ctx_(shards) {
    PSNAP_ASSERT(shards >= 1);
    for (std::uint32_t s = 0; s < shards; ++s) {
      shard_ctx_[s] = ShardCtx{this, s * kTotalSlots};
    }
  }

  // Precondition (same as the domains'): quiescent.  The domain whose
  // nodes recycle into this pool must be destroyed FIRST -- its destructor
  // flushes outstanding retired nodes into these lists -- so declare the
  // Pool before the domain in the owning class.
  ~Pool() {
    for (auto& padded : lists_) {
      for (void* p : padded.value.free) delete static_cast<T*>(p);
    }
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Owns a node from acquisition until publication.  On unwind (CAS
  // failure, injected halt before the publishing store) the node returns
  // to the acquiring thread's free list, skipping the grace period: no
  // other thread ever saw the pointer.  The flat list index is resolved
  // once at acquisition and cached, so the acquire/unwind round trip costs
  // one slot lookup, not three.  Single-operation scope on one thread;
  // movable (so a plane-dispatch helper can return one) but not copyable.
  class Handle {
   public:
    ~Handle() {
      if (node_ != nullptr) pool_.put_at(index_, node_);
    }
    Handle(Handle&& other) noexcept
        : pool_(other.pool_), index_(other.index_), node_(other.node_) {
      other.node_ = nullptr;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    Handle& operator=(Handle&&) = delete;

    T* get() const { return node_; }
    T* operator->() const { return node_; }
    // Hands ownership to the caller (the publishing store).
    T* release() {
      T* node = node_;
      node_ = nullptr;
      return node;
    }

   private:
    friend class Pool;
    Handle(Pool& pool, std::size_t index, T* node)
        : pool_(pool), index_(index), node_(node) {}

    Pool& pool_;
    std::size_t index_;
    T* node_;
  };

  // Pops a recycled node, or heap-allocates while warming up.  The node is
  // whatever state its previous life left it in; callers overwrite every
  // field before publication.  Domain is EbrDomain or HazardDomain (both
  // expose the shared thread_slot()).
  template <class Domain>
  Handle acquire(Domain& domain, std::uint32_t shard = 0) {
    std::size_t index = flat_index(shard, domain.thread_slot());
    PerThread& mine = lists_[index].value;
    T* node;
    if (!mine.free.empty()) {
      node = static_cast<T*>(mine.free.back());
      mine.free.pop_back();
      ++mine.reused;
    } else {
      ++mine.fresh;
      node = new T();
    }
    return Handle(*this, index, node);
  }

  // Returns a node that was never published: it skips the grace period
  // and is immediately reusable (see Handle; exposed for tests).
  template <class Domain>
  void put_local(Domain& domain, T* node, std::uint32_t shard = 0) {
    put_at(flat_index(shard, domain.thread_slot()), node);
  }

  // Retires a *published* node through an EBR domain: it joins the free
  // list once the grace period guarantees no pinned reader still
  // references it.  `shard` names the bank this domain feeds (pass the
  // ShardedEbr shard index; 0 for a lone domain).
  void recycle(EbrDomain& domain, T* node, std::uint32_t shard = 0) {
    // The callback files the node under its retiring slot's list in this
    // shard's bank.  The slot is supplied by EBR, so the flushing thread
    // (possibly the domain's destructor running on a thread that owns no
    // slot) never has to claim one; the bank base rides in ctx.
    domain.retire_raw(
        node, &shard_ctx_[shard],
        [](void* p, void* ctx, EbrDomain&, std::uint32_t slot) {
          auto* sc = static_cast<ShardCtx*>(ctx);
          sc->pool->put_at(sc->base + slot, static_cast<T*>(p));
        });
  }

  // Retires a *published* node through a hazard domain: it joins the free
  // list once a hazard scan proves no published hazard covers it.
  void recycle_hp(HazardDomain& domain, T* node, std::uint32_t shard = 0) {
    domain.retire_raw(node, &shard_ctx_[shard],
                      [](void* p, void* ctx, std::uint32_t slot) {
                        auto* sc = static_cast<ShardCtx*>(ctx);
                        sc->pool->put_at(sc->base + slot, static_cast<T*>(p));
                      });
  }

  // --- observability (tests; aggregate reads are quiescent-only) ---
  std::uint64_t reused_count() const {
    std::uint64_t total = 0;
    for (const auto& padded : lists_) total += padded.value.reused;
    return total;
  }
  std::uint64_t fresh_count() const {
    std::uint64_t total = 0;
    for (const auto& padded : lists_) total += padded.value.fresh;
    return total;
  }
  std::size_t pooled_count() const {
    std::size_t total = 0;
    for (const auto& padded : lists_) total += padded.value.free.size();
    return total;
  }

 private:
  struct PerThread {
    std::vector<void*> free;
    std::uint64_t reused = 0;
    std::uint64_t fresh = 0;
  };

  // Stable per-shard retire context: the recycle callbacks receive only a
  // slot index, so the bank base must ride in ctx.  The vector is sized in
  // the constructor and never resized, so the addresses stay valid for the
  // pool's lifetime.
  struct ShardCtx {
    Pool* pool;
    std::uint32_t base;
  };

  std::size_t flat_index(std::uint32_t shard, std::uint32_t slot) const {
    return std::size_t{shard} * kTotalSlots + slot;
  }

  void put_at(std::size_t index, T* node) {
    lists_[index].value.free.push_back(node);
  }

  std::vector<CachelinePadded<PerThread>> lists_;
  std::vector<ShardCtx> shard_ctx_;
};

}  // namespace psnap::reclaim
