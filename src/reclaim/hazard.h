// Hazard pointers (Michael, 2004).
//
// The library's second reclamation substrate, selectable per snapshot
// instance through the registry's `reclaim=hp` option.  EBR's pins are
// operation-scoped: one stalled (or deliberately parked) reader freezes
// reclamation for every record retired after its pinned epoch.  Hazard
// pointers instead protect individual records -- a stalled reader blocks
// reclamation of AT MOST kHazardsPerThread records, which is what bounds
// pool residency under the RCL bench's parked-scanner workload.
//
// Per-thread slots use the shared reclaim/slots.h layout (the slot is the
// registered pid, with CAS-claimed anonymous slots above the pid range),
// so reclaim::Pool can key free lists the same way it does for EBR
// domains.
//
// Two usage styles:
//   * protect(src, index): the classic self-validating protect loop.
//   * set(index, p) + caller-side validation: for protocols that must
//     validate against something other than a plain reload of `src`
//     (the snapshot's protect_component validates against a seq_cst peek
//     of the component register so the retry read is not a counted step).
//
// Like EBR, hazard publication and retirement are memory management, not
// shared-object "steps" in the paper's model; nothing here calls
// exec::on_step().
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/padding.h"
#include "reclaim/slots.h"

namespace psnap::reclaim {

class HazardDomain {
 public:
  static constexpr std::uint32_t kHazardsPerThread = 4;

  HazardDomain();
  // Precondition: quiescent.  Frees all retired nodes, passing each node's
  // own slot index to its recycle callback (the destroying thread may own
  // no slot).
  ~HazardDomain();

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Repeatedly loads src and publishes the value as hazardous until the
  // publication is stable (classic protect loop).  index selects one of the
  // calling thread's hazard slots.
  template <class T>
  T* protect(const std::atomic<T*>& src, std::uint32_t index) {
    return static_cast<T*>(protect_raw(
        reinterpret_cast<const std::atomic<void*>&>(src), index));
  }

  void* protect_raw(const std::atomic<void*>& src, std::uint32_t index);

  // Publishes p in one of the calling thread's hazard slots WITHOUT
  // validation: the caller must re-read the source pointer afterwards and
  // retry if it moved (see the header comment).  seq_cst so the
  // publication is ordered before the caller's validating reload.
  void set(std::uint32_t index, const void* p);

  // Clears one hazard slot of the calling thread.
  void clear(std::uint32_t index);
  // Clears all hazard slots of the calling thread.
  void clear_all();

  // Grace callback: receives the node, the context registered with it, and
  // the slot index that held the retired node (so pooled recycling can
  // index per-slot free lists; the domain destructor may flush from a
  // thread that owns no slot).
  using RecycleFn = void (*)(void* node, void* ctx, std::uint32_t slot);

  template <class T>
  void retire(T* node) {
    retire_raw(node, nullptr, [](void* p, void*, std::uint32_t) {
      delete static_cast<T*>(p);
    });
  }

  // Hands the node to the domain; the callback runs once no published
  // hazard covers it.  The node must already be unreachable from the
  // shared structure (standard hazard-pointer contract).
  void retire_raw(void* node, void* ctx, RecycleFn fn);

  // Frees every retired node of the calling thread not currently
  // protected.  Called automatically on retire pressure; exposed for
  // tests.
  void scan_and_free();

  // Per-thread slot index in [0, kTotalSlots): the caller's registered pid
  // when it has one, a sticky anonymous slot otherwise.  Shared layout
  // with EbrDomain::thread_slot() so one Pool serves both substrates.
  std::uint32_t thread_slot() { return slot_for_this_thread(); }

  std::uint64_t retired_count() const {
    return retired_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const {
    return freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t outstanding() const { return retired_count() - freed_count(); }

 private:
  struct RetiredNode {
    void* ptr;
    void* ctx;
    RecycleFn fn;
  };

  struct alignas(kCachelineBytes) Slot {
    std::atomic<void*> hazards[kHazardsPerThread] = {};
    std::atomic<bool> in_use{false};
    // Owner-thread-only state (the destructor is the one exception, and it
    // runs without concurrency by precondition).
    std::vector<RetiredNode> retired;
    // Reusable scratch for scan_and_free: scans must not allocate once
    // warm, or the zero-allocation steady-state proofs
    // (tests/core/update_alloc_test.cpp) would fail on the hp plane.
    std::vector<void*> scan_scratch;
  };

  std::uint32_t slot_for_this_thread();

  const std::uint64_t domain_id_;
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  // Slots ever claimed (pid or anonymous); drives the adaptive scan
  // threshold.  Michael's 2*capacity*K bound with the full kTotalSlots
  // capacity (~1800 nodes) would never trigger inside a short test's
  // warmup; scaling by slots actually claimed keeps garbage proportional
  // to the real thread population.
  std::atomic<std::uint32_t> claimed_{0};
  std::vector<Slot> slots_;
};

}  // namespace psnap::reclaim
