// Hazard pointers (Michael, 2004).  EXPERIMENTAL -- not part of the
// library proper.
//
// Alternative reclamation substrate.  The snapshot algorithms use EBR
// (coarse, operation-scoped pins suit their short wait-free operations);
// hazard pointers trade per-pointer bookkeeping for bounded garbage, which
// matters for long-running scans.  No shipped implementation uses this
// substrate, so it is built as the separate `psnap_experimental` target
// (see src/CMakeLists.txt); tests/reclaim/hazard_test.cpp keeps it honest
// and the micro bench keeps the EBR-vs-HP trade-off visible.  Promote it
// into psnap proper only together with an implementation that reclaims
// through it.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/padding.h"

namespace psnap::reclaim {

class HazardDomain {
 public:
  static constexpr std::uint32_t kMaxThreads = 128;
  static constexpr std::uint32_t kHazardsPerThread = 4;

  HazardDomain();
  // Precondition: quiescent.  Frees all retired nodes.
  ~HazardDomain();

  HazardDomain(const HazardDomain&) = delete;
  HazardDomain& operator=(const HazardDomain&) = delete;

  // Repeatedly loads src and publishes the value as hazardous until the
  // publication is stable (classic protect loop).  index selects one of the
  // calling thread's hazard slots.
  template <class T>
  T* protect(const std::atomic<T*>& src, std::uint32_t index) {
    return static_cast<T*>(protect_raw(
        reinterpret_cast<const std::atomic<void*>&>(src), index));
  }

  void* protect_raw(const std::atomic<void*>& src, std::uint32_t index);

  // Clears one hazard slot of the calling thread.
  void clear(std::uint32_t index);
  // Clears all hazard slots of the calling thread.
  void clear_all();

  template <class T>
  void retire(T* node) {
    retire_raw(node, [](void* p) { delete static_cast<T*>(p); });
  }

  void retire_raw(void* node, void (*deleter)(void*));

  // Frees every retired node not currently protected.  Called automatically
  // on retire pressure; exposed for tests.
  void scan_and_free();

  std::uint64_t retired_count() const {
    return retired_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_count() const {
    return freed_.load(std::memory_order_relaxed);
  }
  std::uint64_t outstanding() const { return retired_count() - freed_count(); }

 private:
  struct RetiredNode {
    void* ptr;
    void (*deleter)(void*);
  };

  struct alignas(kCachelineBytes) Slot {
    std::atomic<void*> hazards[kHazardsPerThread] = {};
    std::atomic<bool> in_use{false};
    std::vector<RetiredNode> retired;  // owner-thread-only
  };

  std::uint32_t slot_for_this_thread();

  const std::uint64_t domain_id_;
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::vector<Slot> slots_;
};

}  // namespace psnap::reclaim
