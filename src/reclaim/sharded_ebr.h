// Sharded epoch-based reclamation: one EbrDomain per component-segment
// group.
//
// A single process-global EbrDomain funnels every pin, every grace period,
// and every retire through one epoch counter and one slot table: at large
// component counts and thread counts, one long-pinned reader (a parked
// scan) freezes reclamation for EVERYTHING, and unrelated writers contend
// on the same epoch cacheline.  ShardedEbr splits the domain by the
// component space's natural boundary -- the segmented storage's segments
// (core::kComponentSegmentSize components each) -- so:
//
//   * a single-segment operation (the common update) pins only its own
//     shard's epoch: one cheap shard-local pin, no interaction with other
//     shards' readers or grace periods;
//   * a cross-segment scan pins exactly the shards its argument set
//     touches, through the MultiGuard below;
//   * a stalled pin delays reclamation only for its own shard's records --
//     the blast radius the RCL bench measures.
//
// Shard mapping: component i lives in segment i / segment_components, and
// segments round-robin over the shards, so shard_of(i) =
// (i / segment_components) % num_shards.  Round-robin (rather than block)
// keeps all shards warm while the component space grows.
//
// Shard 0 doubles as the META shard: state that is not per-component
// (announcement IndexSets, batch descriptors) retires through it.
//
// Like the underlying domains, pins and retires here are memory
// management, not shared-object steps; nothing calls exec::on_step().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "reclaim/ebr.h"

namespace psnap::reclaim {

class ShardedEbr {
 public:
  static constexpr std::uint32_t kMaxShards = 16;

  // `shards` domains over segments of `segment_components` components
  // (callers pass core::kComponentSegmentSize so reclamation shards follow
  // the storage segments).  shards == 1 degenerates to the classic single
  // global domain.
  explicit ShardedEbr(std::uint32_t shards = 1,
                      std::uint32_t segment_components = 1024);

  ShardedEbr(const ShardedEbr&) = delete;
  ShardedEbr& operator=(const ShardedEbr&) = delete;

  std::uint32_t num_shards() const { return shards_; }
  std::uint32_t shard_of(std::uint32_t component) const {
    return (component / segment_components_) % shards_;
  }

  EbrDomain& domain(std::uint32_t shard) { return *domains_[shard]; }
  EbrDomain& domain_of(std::uint32_t component) {
    return *domains_[shard_of(component)];
  }
  // The meta shard: non-component state (announcements, descriptors).
  EbrDomain& meta() { return *domains_[0]; }

  // Pins a dynamic set of shards for one operation.  pin() is idempotent
  // per shard (at most one enter per shard per guard), so a scan can pin
  // progressively as it resolves its argument set.  Construct and destroy
  // on the same thread.
  class MultiGuard {
   public:
    explicit MultiGuard(ShardedEbr& sharded) : sharded_(sharded) {}
    ~MultiGuard() {
      for (std::uint32_t s = 0; s < sharded_.shards_; ++s) {
        if (engaged_[s]) sharded_.domains_[s]->exit(slots_[s]);
      }
    }

    MultiGuard(const MultiGuard&) = delete;
    MultiGuard& operator=(const MultiGuard&) = delete;

    void pin(std::uint32_t shard) {
      if (engaged_[shard]) return;
      slots_[shard] = sharded_.domains_[shard]->enter();
      engaged_[shard] = true;
    }
    void pin_meta() { pin(0); }
    void pin_component(std::uint32_t component) {
      pin(sharded_.shard_of(component));
    }
    void pin_components(std::span<const std::uint32_t> components) {
      for (std::uint32_t c : components) pin_component(c);
    }
    void pin_all() {
      for (std::uint32_t s = 0; s < sharded_.shards_; ++s) pin(s);
    }

   private:
    ShardedEbr& sharded_;
    std::uint32_t slots_[kMaxShards] = {};
    bool engaged_[kMaxShards] = {};
  };

  // --- observability (aggregates over the shards) ---
  std::uint64_t retired_count() const;
  std::uint64_t freed_count() const;
  std::uint64_t outstanding() const {
    return retired_count() - freed_count();
  }

 private:
  std::uint32_t shards_;
  std::uint32_t segment_components_;
  // unique_ptr: EbrDomain is neither movable nor copyable, and the slot
  // tables are big enough that inline storage would bloat every owner.
  std::vector<std::unique_ptr<EbrDomain>> domains_;
};

}  // namespace psnap::reclaim
