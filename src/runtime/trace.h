// Hermes-style execution tracing: bounded per-pid rings of typed events,
// drained to JSONL after quiescence, audited offline.
//
// The sim fuzzer (verify/fuzz/) proves protocol properties on small
// schedules; tracing covers the other regime -- full-speed wall-clock runs
// (benches, examples) too long to linearizability-check.  Every traced
// operation appends one fixed-size typed event to its thread's OWN ring
// (single writer, so recording is race-free by construction and never
// blocks the traced operation on another thread) stamped with a global
// fetch&add ticket for cross-thread merge order.  Rings are bounded:
// recording never allocates after construction, and a ring that wraps
// overwrites its oldest events, counting drops rather than stalling the
// hot path.
//
// After the run quiesces (worker threads joined), drain() merges the
// rings by ticket and dump_jsonl() writes one self-describing artifact:
// a header line (impl, m0, per-pid drop counts), one line per event, and
// a footer (final component count).  tools/trace_audit replays the checks
// in audit_trace() over such an artifact:
//
//   * epoch regressions: per-pid scan_versioned epochs strictly increase
//     (the camera hands every scan a fresh ticket);
//   * torn batches: per-pid batch_begin/batch_end strictly alternate with
//     matching entry counts (skipped for a pid whose ring dropped events
//     -- the pair may have been overwritten, not torn);
//   * watermark violations: grow blocks are disjoint, start at or above
//     m0, end at or below final_m; every recorded index stays below
//     final_m.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/partial_snapshot.h"

namespace psnap::runtime {

enum class TraceEventKind : std::uint8_t {
  kUpdate,
  kBatchBegin,
  kBatchEnd,
  kScan,
  kScanVersioned,
  kGrow,
};

// One fixed-size event.  Payload meaning by kind:
//   kUpdate         a=index      b=value
//   kBatchBegin/End a=entries    b=max index in the batch
//   kScan           a=max index  b=r (0 reads nothing)
//   kScanVersioned  a=epoch      b=max index   c=r
//   kGrow           a=first      b=count
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kUpdate;
  std::uint32_t pid = 0;
  std::uint64_t seq = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class TraceSink {
 public:
  // events_per_pid is rounded up to a power of two; total memory is
  // max_pids * events_per_pid * sizeof(TraceEvent), allocated up front.
  TraceSink(std::uint32_t max_pids, std::uint32_t events_per_pid);

  // Appends one event to exec::ctx().pid's ring.  Wait-free: one relaxed
  // fetch&add for the ticket plus plain stores into the single-writer
  // ring.  Never called concurrently for the SAME pid (per-pid rings are
  // single-writer; that is the exec pid contract).
  void emit(TraceEventKind kind, std::uint64_t a, std::uint64_t b,
            std::uint64_t c = 0);

  struct Drained {
    std::vector<TraceEvent> events;       // merged, ascending seq
    std::uint64_t emitted = 0;            // total emits across rings
    std::vector<std::uint64_t> dropped;   // per-pid overwrite counts
  };

  // Quiescent drain: call only after every traced thread is done.
  Drained drain() const;

 private:
  struct Ring {
    std::vector<TraceEvent> slots;
    std::uint64_t count = 0;  // total appends; slot = count % capacity
  };

  std::uint32_t capacity_;
  std::atomic<std::uint64_t> ticket_{0};
  std::vector<Ring> rings_;
};

// PartialSnapshot decorator that traces every operation into a sink.
// The event is emitted AFTER the delegate call returns (epochs and grow
// bases are results), except batches, which bracket the delegate with
// begin/end so a crash or exception inside the batch leaves a visible
// unmatched begin.
class TracingSnapshot final : public core::PartialSnapshot {
 public:
  TracingSnapshot(core::PartialSnapshot& delegate, TraceSink& sink)
      : delegate_(delegate), sink_(sink) {}

  std::uint32_t num_components() const override {
    return delegate_.num_components();
  }
  std::string_view name() const override { return delegate_.name(); }
  bool is_wait_free() const override { return delegate_.is_wait_free(); }
  bool is_local() const override { return delegate_.is_local(); }
  std::string_view value_plane() const override {
    return delegate_.value_plane();
  }
  core::BatchAtomicity batch_atomicity() const override {
    return delegate_.batch_atomicity();
  }

  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void update_blob(std::uint32_t i, std::span<const std::byte> bytes) override;
  void update_batch(std::span<const core::BatchEntry> entries) override;
  using core::PartialSnapshot::update_batch;
  void update_batch_blob(
      std::span<const core::BlobBatchEntry> entries) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan;
  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out,
                               core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan_versioned;
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<value::Blob>& out,
                  core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan_blobs;

 private:
  core::PartialSnapshot& delegate_;
  TraceSink& sink_;
};

// ---------------------------------------------------------------------------
// JSONL artifact + offline audit.
// ---------------------------------------------------------------------------

struct TraceArtifact {
  std::string impl;
  std::uint32_t m0 = 0;
  std::uint32_t final_m = 0;
  std::uint64_t emitted = 0;
  std::vector<std::uint64_t> dropped;  // per-pid
  std::vector<TraceEvent> events;
};

// header line, one event per line, footer line.
void dump_jsonl(const TraceArtifact& artifact, std::ostream& os);

// Parses what dump_jsonl wrote.  Throws std::invalid_argument on
// malformed input (missing header/footer, unknown kind, bad number).
TraceArtifact parse_jsonl(std::istream& is);

struct TraceAuditReport {
  bool ok = true;
  std::vector<std::string> violations;
  std::uint64_t events_checked = 0;
};

TraceAuditReport audit_trace(const TraceArtifact& artifact);

}  // namespace psnap::runtime
