#include "runtime/explore.h"

#include "common/assert.h"

namespace psnap::runtime {

ExploreStats explore_dfs(
    const std::function<SimScheduler::RunResult(
        const std::vector<std::uint32_t>& script)>& run_one,
    ExploreOptions options) {
  ExploreStats stats;
  std::vector<std::uint32_t> script;

  while (stats.schedules_run < options.max_schedules) {
    SimScheduler::RunResult result = run_one(script);
    ++stats.schedules_run;
    PSNAP_ASSERT(result.chosen_rank.size() == result.num_runnable.size());

    // Backtrack: deepest choice point with an untried alternative.
    std::size_t depth = result.chosen_rank.size();
    while (depth > 0 &&
           result.chosen_rank[depth - 1] + 1 >= result.num_runnable[depth - 1]) {
      --depth;
    }
    if (depth == 0) {
      stats.exhausted = true;
      return stats;
    }
    script.assign(result.chosen_rank.begin(),
                  result.chosen_rank.begin() +
                      static_cast<std::ptrdiff_t>(depth));
    ++script.back();
  }
  return stats;
}

void explore_random(const std::function<void(std::uint64_t seed)>& run_one,
                    std::uint64_t runs, std::uint64_t seed_base) {
  for (std::uint64_t i = 0; i < runs; ++i) {
    run_one(seed_base + i);
  }
}

}  // namespace psnap::runtime
