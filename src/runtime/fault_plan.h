// Reusable fault-injection plans over the sim scheduler's crash hook.
//
// SimScheduler::Options::crashes implements the paper's Section 2 halting
// failures: {pid, k} makes process pid's k-th base-object step never
// execute and the process never run again.  The crash suites have been
// hand-building those vectors; a FaultPlan names the recurring shapes so
// recovery tests can say what they mean:
//
//   * crash_at(pid, step)      -- die at an absolute step of the process;
//   * stall_after(pid, steps)  -- a STOP-COOPERATING worker: it keeps
//     every announcement, active-set membership, and pid it holds,
//     forever.  Mechanically identical to a crash (the process never
//     steps again), which is exactly the adversary the wait-free
//     protocols are proved against: survivors must finish while the
//     stalled worker's announcement stays pending and its pid stays
//     stranded at the watermark;
//   * sweep(pid, first, last)  -- one plan per crash step, covering every
//     window of the victim's execution (just-before-publish, mid
//     embedded-scan, ...);
//   * sweep_during(pid, before, during) -- the call-site-relative form:
//     crash somewhere inside the victim's (k+1)-th..-ish operation, with
//     `before` the steps its preceding operations take and `during` the
//     steps of the operation under attack.  Pair with measure_steps(),
//     which counts an operation's solo steps, to phrase
//     "crash during update / scan / add_components" without hard-coding
//     step counts that drift with the implementation.
//
// Plans compose: one FaultPlan can crash several processes (the
// multi-failure suites), and apply() merges into an existing Options so
// schedule policy and crash plan stay independently owned.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/sim_scheduler.h"

namespace psnap::runtime {

class FaultPlan {
 public:
  FaultPlan() = default;

  // Process `pid` halts at its `step`-th base-object step (1-based); the
  // step never executes.
  FaultPlan& crash_at(std::uint32_t pid, std::uint64_t step) {
    crashes_.push_back({pid, step});
    return *this;
  }

  // Stop cooperating after `steps` completed steps (i.e. halt at step
  // steps+1): the worker stays registered everywhere it was registered.
  FaultPlan& stall_after(std::uint32_t pid, std::uint64_t steps) {
    return crash_at(pid, steps + 1);
  }

  bool empty() const { return crashes_.empty(); }
  const std::vector<SimScheduler::Options::Crash>& crashes() const {
    return crashes_;
  }

  // Merges this plan into a scheduler option set (keeping any crashes
  // already there) and returns it.
  SimScheduler::Options apply(SimScheduler::Options base = {}) const {
    base.crashes.insert(base.crashes.end(), crashes_.begin(), crashes_.end());
    return base;
  }

  // One single-crash plan per step in [first, last] for `pid`.
  static std::vector<FaultPlan> sweep(std::uint32_t pid, std::uint64_t first,
                                      std::uint64_t last) {
    std::vector<FaultPlan> plans;
    for (std::uint64_t step = first; step <= last; ++step) {
      plans.push_back(FaultPlan{}.crash_at(pid, step));
    }
    return plans;
  }

  // Plans crashing `pid` at every step of the operation that starts after
  // `steps_before` completed steps and runs for `steps_during` steps.
  static std::vector<FaultPlan> sweep_during(std::uint32_t pid,
                                             std::uint64_t steps_before,
                                             std::uint64_t steps_during) {
    return sweep(pid, steps_before + 1, steps_before + steps_during);
  }

  // Counts the base-object steps `op` takes when run solo (pid 0) under
  // the deterministic scheduler.  The count is schedule-independent for a
  // solo run, so it anchors sweep_during() windows: measure the ops
  // preceding the target, measure the target, sweep inside it.
  static std::uint64_t measure_steps(const std::function<void()>& op) {
    SimScheduler sched;
    sched.add_process(op);
    return sched.run().total_steps;
  }

 private:
  std::vector<SimScheduler::Options::Crash> crashes_;
};

}  // namespace psnap::runtime
