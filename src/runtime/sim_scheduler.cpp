#include "runtime/sim_scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/assert.h"

namespace psnap::runtime {

namespace {
enum class ProcState : std::uint8_t {
  kNotStarted,  // thread not yet launched
  kRunning,     // executing between steps (scheduler must wait)
  kReady,       // parked at a step boundary, waiting for a grant
  kDone,        // body returned (or crashed)
};

// Thrown through the process body to simulate a halting failure; caught by
// the process wrapper.  The algorithms' RAII guards (EBR pins, scoped
// state) unwind cleanly, which mirrors a real crash as far as *shared*
// state is concerned: everything the process published stays published,
// everything it had not yet written never appears.
struct SimCrash {};
}  // namespace

// Shared coordination block.  One mutex serializes all state transitions;
// simplicity over throughput is the right trade for a model checker.
struct SimScheduler::Proc {
  std::uint32_t pid;
  std::function<void()> body;
  std::thread thread;

  // Guarded by the scheduler-wide mutex (stored here for locality).
  ProcState state = ProcState::kNotStarted;
  bool granted = false;
  bool crash_granted = false;     // next grant is a crash, not a step
  std::uint64_t steps_taken = 0;  // this process's own step count
  std::uint64_t crash_at = 0;     // 0 = never crash
};

namespace {

struct SchedulerCore {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t total_steps = 0;
};

}  // namespace

class SimScheduler::Hook final : public exec::SimHook {
 public:
  Hook(SchedulerCore& core, Proc& proc) : core_(core), proc_(proc) {}

  void on_step(exec::ObjKind, std::uint64_t) override {
    std::unique_lock lock(core_.mu);
    proc_.state = ProcState::kReady;
    core_.cv.notify_all();
    core_.cv.wait(lock, [&] { return proc_.granted; });
    proc_.granted = false;
    if (proc_.crash_granted) {
      // Halting failure: unwind the body without executing this step.
      lock.unlock();
      throw SimCrash{};
    }
    proc_.state = ProcState::kRunning;
    ++proc_.steps_taken;
    ++core_.total_steps;
  }

 private:
  SchedulerCore& core_;
  Proc& proc_;
};

SimScheduler::SimScheduler() : SimScheduler(Options{}) {}

SimScheduler::SimScheduler(Options options) : options_(std::move(options)) {}

SimScheduler::~SimScheduler() {
  for (auto& proc : procs_) {
    PSNAP_ASSERT_MSG(!proc->thread.joinable(),
                     "SimScheduler destroyed with unjoined processes");
  }
}

void SimScheduler::add_process(std::function<void()> body) {
  auto proc = std::make_unique<Proc>();
  proc->pid = static_cast<std::uint32_t>(procs_.size());
  proc->body = std::move(body);
  procs_.push_back(std::move(proc));
}

SimScheduler::RunResult SimScheduler::run() {
  PSNAP_ASSERT_MSG(!procs_.empty(), "no processes registered");
  SchedulerCore core;
  RunResult result;
  Xoshiro256 rng(options_.seed);

  // Launch every process; each parks at its first step (or finishes
  // immediately if it performs none).
  std::vector<std::unique_ptr<Hook>> hooks;
  hooks.reserve(procs_.size());
  for (auto& proc : procs_) {
    hooks.push_back(std::make_unique<Hook>(core, *proc));
  }
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    Proc& proc = *procs_[i];
    Hook* hook = hooks[i].get();
    {
      std::scoped_lock lock(core.mu);
      proc.state = ProcState::kRunning;
    }
    proc.crash_at = 0;
    for (const Options::Crash& crash : options_.crashes) {
      if (crash.pid == proc.pid) proc.crash_at = crash.at_step;
    }
    proc.thread = std::thread([&proc, hook, &core] {
      exec::ScopedPid pid_guard(proc.pid);
      exec::ThreadCtx& ctx = exec::ctx();
      exec::SimHook* saved = ctx.hook;
      ctx.hook = hook;
      try {
        proc.body();
      } catch (const SimCrash&) {
        // Halting failure injected by the scheduler; RAII state unwound.
      }
      ctx.hook = saved;
      std::scoped_lock lock(core.mu);
      proc.state = ProcState::kDone;
      core.cv.notify_all();
    });
  }

  std::size_t script_pos = 0;
  {
    std::unique_lock lock(core.mu);
    while (true) {
      // Wait until no process is mid-execution: each is Ready or Done.
      core.cv.wait(lock, [&] {
        return std::all_of(procs_.begin(), procs_.end(), [](const auto& p) {
          return p->state == ProcState::kReady || p->state == ProcState::kDone;
        });
      });

      // Crash processes whose budget is exhausted before considering them
      // runnable: the fatal grant unwinds them without executing a step.
      for (auto& proc : procs_) {
        if (proc->state == ProcState::kReady && proc->crash_at != 0 &&
            proc->steps_taken + 1 >= proc->crash_at) {
          proc->crash_granted = true;
          proc->granted = true;
          core.cv.notify_all();
        }
      }
      // Block until every crash-granted process has finished unwinding.
      // This wait must have a *blocking* predicate: the generic
      // all-ready-or-done predicate above is already true while the
      // victim is still parked, and a wait with a true predicate does not
      // release the mutex -- the victim could then never acquire it to
      // transition to kDone (a livelock found the hard way).
      core.cv.wait(lock, [&] {
        return std::all_of(procs_.begin(), procs_.end(), [](const auto& p) {
          return !p->crash_granted || p->state == ProcState::kDone;
        });
      });

      std::vector<Proc*> runnable;
      for (auto& proc : procs_) {
        if (proc->state == ProcState::kReady) runnable.push_back(proc.get());
      }
      if (runnable.empty()) break;  // all done

      if (core.total_steps >= options_.max_total_steps) {
        result.hit_step_limit = true;
        // Drain: grant everything round-robin so threads can finish;
        // callers treat the run as inconclusive.  (Only reachable when
        // exploring non-wait-free algorithms.)
        PSNAP_ASSERT_MSG(false, "sim run exceeded max_total_steps");
      }

      std::uint32_t rank = 0;
      if (options_.policy == Policy::kScriptThenLowest) {
        if (script_pos < options_.script.size()) {
          rank = options_.script[script_pos];
          PSNAP_ASSERT_MSG(rank < runnable.size(),
                           "schedule script rank out of range");
        }
        ++script_pos;
      } else if (options_.policy == Policy::kRandomBiased) {
        rank = static_cast<std::uint32_t>(rng.next_below(runnable.size()));
        if (rng.next_bool(options_.bias_probability)) {
          for (std::uint32_t r = 0; r < runnable.size(); ++r) {
            if (runnable[r]->pid == options_.bias_pid) {
              rank = r;
              break;
            }
          }
        }
      } else {
        rank = static_cast<std::uint32_t>(rng.next_below(runnable.size()));
      }
      result.chosen_rank.push_back(rank);
      result.num_runnable.push_back(
          static_cast<std::uint32_t>(runnable.size()));

      Proc* chosen = runnable[rank];
      chosen->granted = true;
      chosen->state = ProcState::kRunning;
      core.cv.notify_all();
    }
    result.total_steps = core.total_steps;
  }

  for (auto& proc : procs_) proc->thread.join();
  return result;
}

}  // namespace psnap::runtime
