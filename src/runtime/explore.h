// Systematic and randomized schedule exploration.
//
// explore_dfs enumerates schedules depth-first with replay: each run
// returns the choice trace it took; the explorer backtracks to the deepest
// choice point with an untried alternative and re-runs with that prefix.
// Every interleaving of the scenario is eventually visited (subject to the
// schedule budget) -- stateless model checking in the style of VeriSoft,
// without partial-order reduction (scenarios are kept small instead).
//
// explore_random runs the scenario under independent seeded random
// schedules; cheaper per-run coverage for bigger scenarios.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/sim_scheduler.h"

namespace psnap::runtime {

struct ExploreOptions {
  // Upper bound on schedules to run; exploration stops early when the
  // space is exhausted.
  std::uint64_t max_schedules = 10000;
};

struct ExploreStats {
  std::uint64_t schedules_run = 0;
  // True if every interleaving was covered within the budget.
  bool exhausted = false;
};

// run_one must build a fresh scenario, run it under a SimScheduler
// configured with the given script (Policy::kScriptThenLowest), perform its
// correctness checks, and return the scheduler's RunResult.
ExploreStats explore_dfs(
    const std::function<SimScheduler::RunResult(
        const std::vector<std::uint32_t>& script)>& run_one,
    ExploreOptions options = ExploreOptions{});

// Runs the scenario `runs` times with seeds seed_base, seed_base+1, ...
// run_one receives the seed and should configure Policy::kRandom.
void explore_random(const std::function<void(std::uint64_t seed)>& run_one,
                    std::uint64_t runs, std::uint64_t seed_base = 1);

}  // namespace psnap::runtime
