#include "runtime/trace.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"
#include "exec/exec.h"

namespace psnap::runtime {

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t max_index(std::span<const std::uint32_t> indices) {
  std::uint64_t m = 0;
  for (std::uint32_t i : indices) m = std::max<std::uint64_t>(m, i);
  return m;
}

std::uint64_t max_batch_index(std::span<const core::BatchEntry> entries) {
  std::uint64_t m = 0;
  for (const core::BatchEntry& e : entries) {
    m = std::max<std::uint64_t>(m, e.index);
  }
  return m;
}

const char* kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kUpdate:
      return "update";
    case TraceEventKind::kBatchBegin:
      return "batch_begin";
    case TraceEventKind::kBatchEnd:
      return "batch_end";
    case TraceEventKind::kScan:
      return "scan";
    case TraceEventKind::kScanVersioned:
      return "scan_versioned";
    case TraceEventKind::kGrow:
      return "grow";
  }
  return "?";
}

bool kind_from_name(std::string_view name, TraceEventKind* kind) {
  for (TraceEventKind k :
       {TraceEventKind::kUpdate, TraceEventKind::kBatchBegin,
        TraceEventKind::kBatchEnd, TraceEventKind::kScan,
        TraceEventKind::kScanVersioned, TraceEventKind::kGrow}) {
    if (name == kind_name(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

}  // namespace

TraceSink::TraceSink(std::uint32_t max_pids, std::uint32_t events_per_pid)
    : capacity_(round_up_pow2(std::max<std::uint32_t>(events_per_pid, 2))),
      rings_(max_pids) {
  for (Ring& ring : rings_) ring.slots.resize(capacity_);
}

void TraceSink::emit(TraceEventKind kind, std::uint64_t a, std::uint64_t b,
                     std::uint64_t c) {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT_MSG(pid < rings_.size(), "trace sink pid out of range");
  Ring& ring = rings_[pid];
  TraceEvent& slot = ring.slots[ring.count % capacity_];
  slot.kind = kind;
  slot.pid = pid;
  slot.seq = ticket_.fetch_add(1, std::memory_order_relaxed);
  slot.a = a;
  slot.b = b;
  slot.c = c;
  ++ring.count;
}

TraceSink::Drained TraceSink::drain() const {
  Drained drained;
  drained.dropped.resize(rings_.size(), 0);
  for (std::size_t pid = 0; pid < rings_.size(); ++pid) {
    const Ring& ring = rings_[pid];
    std::uint64_t kept = std::min<std::uint64_t>(ring.count, capacity_);
    drained.emitted += ring.count;
    drained.dropped[pid] = ring.count - kept;
    for (std::uint64_t k = ring.count - kept; k < ring.count; ++k) {
      drained.events.push_back(ring.slots[k % capacity_]);
    }
  }
  std::sort(drained.events.begin(), drained.events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return drained;
}

// ---------------------------------------------------------------------------
// TracingSnapshot
// ---------------------------------------------------------------------------

std::uint32_t TracingSnapshot::add_components(std::uint32_t count) {
  std::uint32_t first = delegate_.add_components(count);
  sink_.emit(TraceEventKind::kGrow, first, count);
  return first;
}

void TracingSnapshot::update(std::uint32_t i, std::uint64_t v) {
  delegate_.update(i, v);
  sink_.emit(TraceEventKind::kUpdate, i, v);
}

void TracingSnapshot::update_blob(std::uint32_t i,
                                  std::span<const std::byte> bytes) {
  delegate_.update_blob(i, bytes);
  sink_.emit(TraceEventKind::kUpdate, i, 0);
}

void TracingSnapshot::update_batch(std::span<const core::BatchEntry> entries) {
  if (entries.empty()) {
    delegate_.update_batch(entries);
    return;
  }
  std::uint64_t top = max_batch_index(entries);
  sink_.emit(TraceEventKind::kBatchBegin, entries.size(), top);
  delegate_.update_batch(entries);
  sink_.emit(TraceEventKind::kBatchEnd, entries.size(), top);
}

void TracingSnapshot::update_batch_blob(
    std::span<const core::BlobBatchEntry> entries) {
  if (entries.empty()) {
    delegate_.update_batch_blob(entries);
    return;
  }
  std::uint64_t top = 0;
  for (const core::BlobBatchEntry& e : entries) {
    top = std::max<std::uint64_t>(top, e.index);
  }
  sink_.emit(TraceEventKind::kBatchBegin, entries.size(), top);
  delegate_.update_batch_blob(entries);
  sink_.emit(TraceEventKind::kBatchEnd, entries.size(), top);
}

void TracingSnapshot::scan(std::span<const std::uint32_t> indices,
                           std::vector<std::uint64_t>& out,
                           core::ScanContext& ctx) {
  delegate_.scan(indices, out, ctx);
  sink_.emit(TraceEventKind::kScan, max_index(indices), indices.size());
}

std::uint64_t TracingSnapshot::scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    core::ScanContext& ctx) {
  std::uint64_t epoch = delegate_.scan_versioned(indices, out, ctx);
  sink_.emit(TraceEventKind::kScanVersioned, epoch, max_index(indices),
             indices.size());
  return epoch;
}

void TracingSnapshot::scan_blobs(std::span<const std::uint32_t> indices,
                                 std::vector<value::Blob>& out,
                                 core::ScanContext& ctx) {
  delegate_.scan_blobs(indices, out, ctx);
  sink_.emit(TraceEventKind::kScan, max_index(indices), indices.size());
}

// ---------------------------------------------------------------------------
// JSONL artifact
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_line(const std::string& line, const std::string& why) {
  throw std::invalid_argument("malformed trace line '" + line + "': " + why);
}

std::uint64_t get_u64(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) bad_line(line, "missing field " + key);
  pos += needle.size();
  std::uint64_t value = 0;
  auto [end, ec] =
      std::from_chars(line.data() + pos, line.data() + line.size(), value);
  if (ec != std::errc{} || end == line.data() + pos) {
    bad_line(line, "field " + key + " is not an unsigned integer");
  }
  return value;
}

std::string get_string(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) bad_line(line, "missing field " + key);
  pos += needle.size();
  std::size_t end = line.find('"', pos);
  if (end == std::string::npos) bad_line(line, "unterminated string " + key);
  return line.substr(pos, end - pos);
}

std::vector<std::uint64_t> get_array(const std::string& line,
                                     const std::string& key) {
  std::string needle = "\"" + key + "\":[";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) bad_line(line, "missing field " + key);
  pos += needle.size();
  std::size_t end = line.find(']', pos);
  if (end == std::string::npos) bad_line(line, "unterminated array " + key);
  std::vector<std::uint64_t> values;
  while (pos < end) {
    std::uint64_t value = 0;
    auto [p, ec] = std::from_chars(line.data() + pos, line.data() + end, value);
    if (ec != std::errc{}) bad_line(line, "bad array element in " + key);
    values.push_back(value);
    pos = static_cast<std::size_t>(p - line.data());
    if (pos < end && line[pos] == ',') ++pos;
  }
  return values;
}

}  // namespace

void dump_jsonl(const TraceArtifact& artifact, std::ostream& os) {
  os << "{\"type\":\"header\",\"impl\":\"" << artifact.impl
     << "\",\"m0\":" << artifact.m0 << ",\"emitted\":" << artifact.emitted
     << ",\"dropped\":[";
  for (std::size_t i = 0; i < artifact.dropped.size(); ++i) {
    if (i) os << ",";
    os << artifact.dropped[i];
  }
  os << "]}\n";
  for (const TraceEvent& e : artifact.events) {
    os << "{\"type\":\"event\",\"kind\":\"" << kind_name(e.kind)
       << "\",\"pid\":" << e.pid << ",\"seq\":" << e.seq << ",\"a\":" << e.a
       << ",\"b\":" << e.b << ",\"c\":" << e.c << "}\n";
  }
  os << "{\"type\":\"footer\",\"final_m\":" << artifact.final_m << "}\n";
}

TraceArtifact parse_jsonl(std::istream& is) {
  TraceArtifact artifact;
  bool saw_header = false;
  bool saw_footer = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.find("\"type\":\"header\"") != std::string::npos) {
      if (saw_header) bad_line(line, "duplicate header");
      saw_header = true;
      artifact.impl = get_string(line, "impl");
      artifact.m0 = static_cast<std::uint32_t>(get_u64(line, "m0"));
      artifact.emitted = get_u64(line, "emitted");
      artifact.dropped = get_array(line, "dropped");
    } else if (line.find("\"type\":\"footer\"") != std::string::npos) {
      if (!saw_header) bad_line(line, "footer before header");
      if (saw_footer) bad_line(line, "duplicate footer");
      saw_footer = true;
      artifact.final_m = static_cast<std::uint32_t>(get_u64(line, "final_m"));
    } else if (line.find("\"type\":\"event\"") != std::string::npos) {
      if (!saw_header) bad_line(line, "event before header");
      if (saw_footer) bad_line(line, "event after footer");
      TraceEvent e;
      std::string kind = get_string(line, "kind");
      if (!kind_from_name(kind, &e.kind)) {
        bad_line(line, "unknown event kind '" + kind + "'");
      }
      e.pid = static_cast<std::uint32_t>(get_u64(line, "pid"));
      e.seq = get_u64(line, "seq");
      e.a = get_u64(line, "a");
      e.b = get_u64(line, "b");
      e.c = get_u64(line, "c");
      artifact.events.push_back(e);
    } else {
      bad_line(line, "unknown line type");
    }
  }
  if (!saw_header) throw std::invalid_argument("trace has no header line");
  if (!saw_footer) throw std::invalid_argument("trace has no footer line");
  return artifact;
}

// ---------------------------------------------------------------------------
// Offline audit
// ---------------------------------------------------------------------------

TraceAuditReport audit_trace(const TraceArtifact& artifact) {
  TraceAuditReport report;
  auto violate = [&report](std::string what) {
    report.ok = false;
    report.violations.push_back(std::move(what));
  };
  auto dropped_for = [&artifact](std::uint32_t pid) {
    return pid < artifact.dropped.size() ? artifact.dropped[pid] : 0;
  };
  auto describe = [](const TraceEvent& e) {
    std::ostringstream os;
    os << kind_name(e.kind) << " pid=" << e.pid << " seq=" << e.seq
       << " a=" << e.a << " b=" << e.b << " c=" << e.c;
    return os.str();
  };

  std::vector<TraceEvent> events = artifact.events;
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });

  struct PidState {
    bool has_epoch = false;
    std::uint64_t last_epoch = 0;
    bool batch_open = false;
    std::uint64_t batch_entries = 0;
  };
  std::map<std::uint32_t, PidState> pids;
  struct Block {
    std::uint64_t first;
    std::uint64_t count;
  };
  std::vector<Block> grow_blocks;

  for (const TraceEvent& e : events) {
    ++report.events_checked;
    PidState& state = pids[e.pid];
    std::uint64_t top_index = 0;
    bool check_index = false;
    switch (e.kind) {
      case TraceEventKind::kUpdate:
        top_index = e.a;
        check_index = true;
        break;
      case TraceEventKind::kBatchBegin:
        top_index = e.b;
        check_index = true;
        if (state.batch_open && dropped_for(e.pid) == 0) {
          violate("batch_begin while a batch is already open: " + describe(e));
        }
        state.batch_open = true;
        state.batch_entries = e.a;
        break;
      case TraceEventKind::kBatchEnd:
        top_index = e.b;
        check_index = true;
        if (!state.batch_open) {
          if (dropped_for(e.pid) == 0) {
            violate("batch_end without batch_begin: " + describe(e));
          }
        } else if (state.batch_entries != e.a) {
          violate("torn batch: begin announced " +
                  std::to_string(state.batch_entries) + " entries, end saw " +
                  std::to_string(e.a) + ": " + describe(e));
        }
        state.batch_open = false;
        break;
      case TraceEventKind::kScan:
        if (e.b > 0) {
          top_index = e.a;
          check_index = true;
        }
        break;
      case TraceEventKind::kScanVersioned:
        if (e.c > 0) {
          top_index = e.b;
          check_index = true;
        }
        if (state.has_epoch && e.a <= state.last_epoch) {
          violate("epoch regression: pid " + std::to_string(e.pid) +
                  " saw epoch " + std::to_string(state.last_epoch) +
                  " then " + std::to_string(e.a) + ": " + describe(e));
        }
        state.has_epoch = true;
        state.last_epoch = e.a;
        break;
      case TraceEventKind::kGrow:
        grow_blocks.push_back({e.a, e.b});
        break;
    }
    if (check_index && top_index >= artifact.final_m) {
      violate("index beyond the final component count " +
              std::to_string(artifact.final_m) + ": " + describe(e));
    }
  }

  for (const auto& [pid, state] : pids) {
    if (state.batch_open && dropped_for(pid) == 0) {
      violate("torn batch publish: pid " + std::to_string(pid) +
              " ends the trace inside an open batch");
    }
  }

  std::sort(grow_blocks.begin(), grow_blocks.end(),
            [](const Block& x, const Block& y) { return x.first < y.first; });
  std::uint64_t prev_end = artifact.m0;
  for (const Block& b : grow_blocks) {
    if (b.first < prev_end) {
      violate("watermark violation: grow block [" + std::to_string(b.first) +
              ", " + std::to_string(b.first + b.count) +
              ") overlaps earlier components (watermark " +
              std::to_string(prev_end) + ")");
    }
    prev_end = std::max(prev_end, b.first + b.count);
    if (b.first + b.count > artifact.final_m) {
      violate("watermark violation: grow block ends at " +
              std::to_string(b.first + b.count) +
              " beyond final_m=" + std::to_string(artifact.final_m));
    }
  }

  return report;
}

}  // namespace psnap::runtime
