// Deterministic scheduler for model-checking concurrent algorithms.
//
// Every base-object operation in src/primitives reports to exec::on_step();
// under SimScheduler each such step becomes a scheduling point: the calling
// thread parks until the scheduler grants it, and the scheduler runs
// exactly one logical process between consecutive grants.  The resulting
// execution is a fully serialized sequence of base-object steps -- exactly
// the interleaving model of the paper's Section 2 -- chosen by a policy:
//
//   * kScript+fallback: follow an explicit choice list, then lowest-index
//     runnable (used by the DFS explorer in explore.h for systematic
//     enumeration with replay);
//   * kRandom: seeded uniform choice (used by randomized sweeps).
//
// The full choice sequence actually taken is returned by run(), making any
// failing schedule reproducible byte-for-byte.
//
// Code between steps runs unserialized, which is sound because all shared
// state in the algorithms under test is accessed through step-counted
// primitives (or through the EBR internals, which are racefree on their
// own atomics).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/exec.h"

namespace psnap::runtime {

class SimScheduler {
 public:
  enum class Policy {
    kScriptThenLowest,  // follow script_; afterwards pick lowest runnable
    kRandom,            // seeded uniform choice among runnable processes
    // Like kRandom, but with probability bias_probability the process with
    // pid bias_pid is granted (when runnable).  Used to drive adversarial
    // asymmetric schedules, e.g. a fast updater starving a scanner into
    // the helping path.
    kRandomBiased,
  };

  struct Options {
    Policy policy = Policy::kScriptThenLowest;
    std::uint64_t seed = 1;
    // Choice ranks (index into the sorted runnable set) consumed in order.
    std::vector<std::uint32_t> script;
    // kRandomBiased parameters.
    std::uint32_t bias_pid = 0;
    double bias_probability = 0.9;
    // Halting-failure injection (the paper's Section 2 failure model):
    // entry {pid, k} crashes process pid at its k-th base-object step --
    // the step never executes and the process never runs again, leaving
    // whatever operation it was inside permanently pending.  The other
    // processes must still terminate (wait-freedom) and the history must
    // still check out (linearizability with pending operations).
    struct Crash {
      std::uint32_t pid;
      std::uint64_t at_step;  // 1-based count of the process's own steps
    };
    std::vector<Crash> crashes;
    // Abort the run if any single process exceeds this many steps
    // (guards against livelock when exploring non-wait-free algorithms).
    std::uint64_t max_total_steps = 1u << 20;
  };

  struct RunResult {
    // Rank chosen at every choice point, with the number of runnable
    // processes at that point (for DFS backtracking).
    std::vector<std::uint32_t> chosen_rank;
    std::vector<std::uint32_t> num_runnable;
    std::uint64_t total_steps = 0;
    bool hit_step_limit = false;
  };

  SimScheduler();
  explicit SimScheduler(Options options);
  ~SimScheduler();

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  // Registers a logical process; its pid is the order of addition.  The
  // body runs on a dedicated thread with exec::ctx().pid set accordingly.
  void add_process(std::function<void()> body);

  // Runs all processes to completion under the policy.
  RunResult run();

 private:
  struct Proc;
  class Hook;

  Options options_;
  std::vector<std::unique_ptr<Proc>> procs_;
};

}  // namespace psnap::runtime
