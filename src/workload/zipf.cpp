#include "workload/zipf.h"

#include <cmath>

#include "common/assert.h"

namespace psnap::workload {

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

// Gray et al.'s rejection-free approximation (the YCSB generator).
ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  PSNAP_ASSERT(n > 0);
  PSNAP_ASSERT(theta >= 0.0 && theta < 1.0);
  zeta2_ = zeta(2, theta);
  zetan_ = zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const {
  if (theta_ == 0.0) return rng.next_below(n_);
  double u = rng.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<std::uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

}  // namespace psnap::workload
