// Zipfian sampling over [0, n).
//
// The paper's motivating workload -- stock databases queried for small,
// overlapping, unpredictable portfolios -- has skewed popularity; the
// benchmark harness uses Zipf-distributed component choices to model it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace psnap::workload {

class ZipfSampler {
 public:
  // theta in [0, 1): 0 is uniform; 0.99 is the YCSB-style heavy skew.
  ZipfSampler(std::uint64_t n, double theta);

  // Samples a rank in [0, n); rank 0 is the most popular.
  std::uint64_t sample(Xoshiro256& rng) const;

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace psnap::workload
