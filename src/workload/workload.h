// Workload generation for the benchmark harness and stress tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workload/zipf.h"

namespace psnap::workload {

enum class ScanSetKind : std::uint8_t {
  kUniform,     // r distinct components uniformly from [0, m)
  kContiguous,  // a window [start, start + r) with uniform start
  kZipfian,     // r distinct components, Zipf-popular ones more likely
};

// Generates the component sets partial scans ask for.
class ScanSetGenerator {
 public:
  ScanSetGenerator(ScanSetKind kind, std::uint32_t m, std::uint32_t r,
                   double zipf_theta = 0.8);

  // Fills out with r distinct sorted indices.
  void next(Xoshiro256& rng, std::vector<std::uint32_t>& out) const;

  std::uint32_t r() const { return r_; }

 private:
  ScanSetKind kind_;
  std::uint32_t m_;
  std::uint32_t r_;
  ZipfSampler zipf_;
};

// Mixed operation stream description for throughput benches.
struct OpMix {
  double update_fraction = 0.5;  // remainder are scans
  ScanSetKind scan_kind = ScanSetKind::kUniform;
  std::uint32_t scan_r = 4;
  // Component choice for updates.
  bool zipfian_updates = false;
  double zipf_theta = 0.8;
};

struct Op {
  bool is_update;
  std::uint32_t update_index;      // valid if is_update
  std::vector<std::uint32_t> scan_set;  // valid if !is_update
};

class OpStream {
 public:
  OpStream(const OpMix& mix, std::uint32_t m, std::uint64_t seed);

  // Generates the next operation (deterministic given the seed).
  void next(Op& op);

 private:
  OpMix mix_;
  std::uint32_t m_;
  Xoshiro256 rng_;
  ScanSetGenerator scan_gen_;
  ZipfSampler update_zipf_;
};

}  // namespace psnap::workload
