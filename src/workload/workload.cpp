#include "workload/workload.h"

#include <algorithm>

#include "common/assert.h"

namespace psnap::workload {

ScanSetGenerator::ScanSetGenerator(ScanSetKind kind, std::uint32_t m,
                                   std::uint32_t r, double zipf_theta)
    : kind_(kind), m_(m), r_(r), zipf_(m, kind == ScanSetKind::kZipfian
                                              ? zipf_theta
                                              : 0.0) {
  PSNAP_ASSERT(r >= 1 && r <= m);
}

void ScanSetGenerator::next(Xoshiro256& rng,
                            std::vector<std::uint32_t>& out) const {
  out.clear();
  switch (kind_) {
    case ScanSetKind::kUniform: {
      auto sample = rng.sample_without_replacement(m_, r_);
      out.assign(sample.begin(), sample.end());
      break;
    }
    case ScanSetKind::kContiguous: {
      std::uint32_t start =
          static_cast<std::uint32_t>(rng.next_below(m_ - r_ + 1));
      for (std::uint32_t k = 0; k < r_; ++k) out.push_back(start + k);
      break;
    }
    case ScanSetKind::kZipfian: {
      // Rejection sampling of r distinct Zipf picks; r << m in practice so
      // collisions are rare.
      while (out.size() < r_) {
        auto c = static_cast<std::uint32_t>(zipf_.sample(rng));
        if (std::find(out.begin(), out.end(), c) == out.end()) {
          out.push_back(c);
        }
      }
      std::sort(out.begin(), out.end());
      break;
    }
  }
}

OpStream::OpStream(const OpMix& mix, std::uint32_t m, std::uint64_t seed)
    : mix_(mix),
      m_(m),
      rng_(seed),
      scan_gen_(mix.scan_kind, m, mix.scan_r, mix.zipf_theta),
      update_zipf_(m, mix.zipfian_updates ? mix.zipf_theta : 0.0) {}

void OpStream::next(Op& op) {
  op.is_update = rng_.next_bool(mix_.update_fraction);
  if (op.is_update) {
    op.update_index = static_cast<std::uint32_t>(update_zipf_.sample(rng_));
  } else {
    scan_gen_.next(rng_, op.scan_set);
  }
}

}  // namespace psnap::workload
