#include "recovery/checkpointer.h"

#include <algorithm>
#include <thread>

#include "baseline/double_collect.h"  // StarvationError
#include "core/scan_context.h"

namespace psnap::recovery {

Checkpointer::Checkpointer(core::PartialSnapshot& snapshot,
                           persist::CheckpointWriter& writer, Options options)
    : snapshot_(snapshot), writer_(writer), options_(std::move(options)) {
  if (options_.backoff.max_attempts == 0) options_.backoff.max_attempts = 1;
  if (!options_.sleep) {
    options_.sleep = [](std::chrono::microseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
}

void Checkpointer::capture(persist::CheckpointData& out) {
  capture_impl({}, /*full=*/true, out);
}

void Checkpointer::capture(std::span<const std::uint32_t> indices,
                           persist::CheckpointData& out) {
  capture_impl(indices, /*full=*/false, out);
}

void Checkpointer::capture_impl(std::span<const std::uint32_t> indices,
                                bool full, persist::CheckpointData& out) {
  out.impl_spec = options_.impl_spec;
  out.initial_m = options_.initial_m;
  out.max_threads = options_.max_threads;
  out.value_plane = std::string(snapshot_.value_plane());
  out.epoch = 0;

  std::chrono::microseconds delay = options_.backoff.initial;
  for (std::uint64_t attempt = 1;; ++attempt) {
    ++stats_.scan_attempts;
    try {
      // Recaptured every attempt: the object may have grown between
      // retries, and a full frame must cover the count its own scan ran
      // against.
      const std::uint32_t m = snapshot_.num_components();
      out.num_components = m;
      std::span<const std::uint32_t> idx = indices;
      if (full) {
        if (all_indices_.size() != m) {
          all_indices_.resize(m);
          for (std::uint32_t i = 0; i < m; ++i) all_indices_[i] = i;
        }
        idx = all_indices_;
        out.indices.clear();
      } else {
        out.indices.assign(indices.begin(), indices.end());
      }
      const std::string_view plane = snapshot_.value_plane();
      if (plane == "blob") {
        snapshot_.scan_blobs(idx, out.blobs);
        out.values.clear();
      } else if (plane == "versioned") {
        out.epoch = snapshot_.scan_versioned(idx, out.values);
        out.blobs.clear();
      } else {
        snapshot_.scan(idx, out.values);
        out.blobs.clear();
      }
      return;
    } catch (const baseline::StarvationError&) {
      ++stats_.starved_scans;
      if (attempt >= options_.backoff.max_attempts) {
        ++stats_.abandoned;
        throw CheckpointAbandoned(attempt);
      }
      options_.sleep(delay);
      stats_.backoff_us += static_cast<std::uint64_t>(delay.count());
      auto next = std::chrono::microseconds(static_cast<std::int64_t>(
          static_cast<double>(delay.count()) * options_.backoff.multiplier));
      delay = std::min(next, options_.backoff.max);
    }
  }
}

std::string Checkpointer::checkpoint_now() {
  persist::CheckpointData frame;
  capture(frame);
  frame.sequence = next_sequence_;
  std::string path = writer_.commit(frame);
  ++next_sequence_;
  ++stats_.frames_committed;
  return path;
}

void Checkpointer::run(const std::atomic<bool>& stop,
                       std::chrono::microseconds interval) {
  while (!stop.load(std::memory_order_acquire)) {
    try {
      checkpoint_now();
    } catch (const CheckpointAbandoned&) {
      // Counted in stats_; the last durable frame stays the recovery
      // point and the next interval tries again.
    }
    // Sleep in small slices so stop is honored promptly even with long
    // intervals.
    auto left = interval;
    constexpr std::chrono::microseconds kSlice{1000};
    while (left.count() > 0 && !stop.load(std::memory_order_acquire)) {
      auto step = std::min(left, kSlice);
      options_.sleep(step);
      left -= step;
    }
  }
}

}  // namespace psnap::recovery
