#include "recovery/restore.h"

#include <stdexcept>
#include <string>

#include "exec/exec.h"
#include "registry/registry.h"

namespace psnap::recovery {

std::unique_ptr<core::PartialSnapshot> restore(
    const persist::CheckpointData& frame) {
  if (!frame.is_full()) {
    throw std::invalid_argument(
        "restore: partial frame (covers " +
        std::to_string(frame.indices.size()) + " of " +
        std::to_string(frame.num_components) +
        " components); only full frames are restorable");
  }
  if (exec::ctx().pid == exec::kInvalidPid) {
    throw std::logic_error(
        "restore: calling thread holds no pid; replaying a frame is made "
        "of ordinary updates (register via exec::ThreadHandle)");
  }

  std::uint32_t max_threads = frame.max_threads != 0 ? frame.max_threads : 1;
  auto snap =
      registry::make_snapshot(frame.impl_spec, frame.initial_m, max_threads);
  if (snap->value_plane() != frame.value_plane) {
    throw std::invalid_argument("restore: spec '" + frame.impl_spec +
                                "' builds value plane '" +
                                std::string(snap->value_plane()) +
                                "' but the frame holds '" +
                                frame.value_plane + "'");
  }

  // Replay growth: the spec (its m0= option included) decides the
  // constructed count; the frame decides where the grow-only lifecycle
  // had got to.
  const std::uint32_t constructed = snap->num_components();
  if (constructed > frame.num_components) {
    throw std::invalid_argument(
        "restore: spec constructs m=" + std::to_string(constructed) +
        " but the frame captured m=" + std::to_string(frame.num_components) +
        " (growth is grow-only; the spec and frame disagree)");
  }
  if (constructed < frame.num_components) {
    snap->add_components(frame.num_components - constructed);
  }

  if (frame.value_plane == "blob") {
    for (std::uint32_t i = 0; i < frame.num_components; ++i) {
      snap->update_blob(i, frame.blobs[i]);
    }
  } else {
    for (std::uint32_t i = 0; i < frame.num_components; ++i) {
      snap->update(i, frame.values[i]);
    }
  }
  return snap;
}

}  // namespace psnap::recovery
