// Rollback restore: rebuild a live snapshot object from a durable frame.
//
// restore() is the contract the checkpoint format exists for: given a
// FULL frame (persist/checkpoint.h) it reconstructs a registry-spec'd
// object whose observable state -- value plane, component count, growth
// watermark, and every component's payload -- matches the consistent scan
// the frame captured:
//
//   1. build: registry::make_snapshot(frame.impl_spec, frame.initial_m,
//      frame.max_threads), i.e. the SAME spec string the checkpointed
//      service was built from (options, ablations, and plane included);
//   2. regrow: add_components() from the constructed count up to
//      frame.num_components, so growth is REPLAYED -- post-restore the
//      object sits at the same point of its grow-only lifecycle and
//      further add_components() calls continue from there;
//   3. replay: update (or update_blob) every component with the frame's
//      payload, on behalf of the calling thread's pid.
//
// Requirements, enforced loudly: the frame must be full (a partial frame
// cannot define the unlisted components -- std::invalid_argument), the
// spec must rebuild on the frame's value plane (a frame written from a
// blob object does not restore into a u64 spec -- std::invalid_argument),
// and the caller must hold a registered pid (std::logic_error), because
// the replay is made of ordinary update operations.
#pragma once

#include <memory>

#include "core/partial_snapshot.h"
#include "persist/checkpoint.h"

namespace psnap::recovery {

std::unique_ptr<core::PartialSnapshot> restore(
    const persist::CheckpointData& frame);

}  // namespace psnap::recovery
