// The Checkpointer: periodic consistent scans committed as durable frames.
//
// A recovery service points one of these at a live snapshot object and a
// checkpoint directory; each checkpoint_now() takes one consistent scan
// (full or partial, on whichever value plane the object speaks -- the
// versioned plane's camera epoch is captured into the frame) and commits
// it through persist::CheckpointWriter's atomic-rename protocol.
//
// Graceful degradation is the point: the capped baselines (seqlock,
// double_collect with max_attempts= set) throw baseline::StarvationError
// when a scan loses too many races -- and a stop-cooperating worker can
// make a capped scan lose them indefinitely.  Rather than aborting the
// service, the Checkpointer backs off exponentially (initial delay,
// doubling to a max) and retries the whole scan; only after
// backoff.max_attempts scan attempts does it give up, throwing
// CheckpointAbandoned.  The periodic run() loop survives even that: an
// abandoned checkpoint is counted and the next interval tries again --
// the last durable frame simply stays the recovery point a little longer.
//
// Wait-free implementations never throw StarvationError, so with them the
// retry machinery is dormant and every checkpoint is one scan.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/partial_snapshot.h"
#include "persist/checkpoint.h"

namespace psnap::recovery {

// Exponential backoff between scan attempts of one checkpoint.
struct BackoffPolicy {
  // Scan attempts per checkpoint before giving up (>= 1).
  std::uint64_t max_attempts = 8;
  std::chrono::microseconds initial{100};
  std::chrono::microseconds max{50'000};
  // Delay grows by this factor after every starved attempt.
  double multiplier = 2.0;
};

// Thrown when one checkpoint exhausted its scan attempts.
class CheckpointAbandoned : public std::runtime_error {
 public:
  explicit CheckpointAbandoned(std::uint64_t attempts)
      : std::runtime_error("checkpoint abandoned after " +
                           std::to_string(attempts) + " starved scans"),
        attempts(attempts) {}

  std::uint64_t attempts;
};

class Checkpointer {
 public:
  struct Options {
    BackoffPolicy backoff;
    // Recorded into every frame so restore() can rebuild the object.
    std::string impl_spec;
    std::uint32_t initial_m = 0;
    std::uint32_t max_threads = 0;
    // Sleep used for backoff and the run() interval; tests inject a
    // recording fake.  Defaults to std::this_thread::sleep_for.
    std::function<void(std::chrono::microseconds)> sleep;
  };

  struct Stats {
    std::uint64_t frames_committed = 0;
    std::uint64_t scan_attempts = 0;
    std::uint64_t starved_scans = 0;      // attempts that threw
    std::uint64_t abandoned = 0;          // checkpoints given up
    std::uint64_t backoff_us = 0;         // total backoff slept
  };

  // The snapshot and writer must outlive the Checkpointer.  The calling
  // thread of every capture/checkpoint must hold a registered pid
  // (exec::ThreadHandle / ScopedPid): a scan is an ordinary snapshot
  // operation.
  Checkpointer(core::PartialSnapshot& snapshot,
               persist::CheckpointWriter& writer, Options options);

  // One consistent FULL scan (all components) into `out`, with the
  // retry/backoff policy applied.  Fills every field except `sequence`.
  void capture(persist::CheckpointData& out);

  // Partial form: scan only `indices` (the paper's partial snapshot as a
  // partial checkpoint).  The resulting frame is not restorable on its
  // own (recovery::restore rejects it) but is durable and verifiable.
  void capture(std::span<const std::uint32_t> indices,
               persist::CheckpointData& out);

  // capture + assign the next sequence number + commit.  Returns the
  // committed frame path.  Throws CheckpointAbandoned (scan attempts
  // exhausted) or std::runtime_error (IO).
  std::string checkpoint_now();

  // Periodic loop: checkpoint, sleep `interval`, repeat until `stop` is
  // set.  Abandoned checkpoints are counted and the loop continues; IO
  // errors propagate (a broken checkpoint directory is fatal).
  void run(const std::atomic<bool>& stop, std::chrono::microseconds interval);

  // Resume sequence numbering after a restore: the next committed frame
  // gets `next` (frames must supersede the one the service loaded).
  void set_next_sequence(std::uint64_t next) { next_sequence_ = next; }
  std::uint64_t next_sequence() const { return next_sequence_; }

  const Stats& stats() const { return stats_; }

 private:
  void capture_impl(std::span<const std::uint32_t> indices, bool full,
                    persist::CheckpointData& out);

  core::PartialSnapshot& snapshot_;
  persist::CheckpointWriter& writer_;
  Options options_;
  Stats stats_;
  std::uint64_t next_sequence_ = 1;
  std::vector<std::uint32_t> all_indices_;  // reused full-scan index set
};

}  // namespace psnap::recovery
