#include "intervals/interval_set.h"

#include <algorithm>

#include "common/assert.h"

namespace psnap::intervals {

namespace {

// Normalizes a sorted-by-lo interval vector: merges overlapping intervals,
// and adjacent ones too when merge_adjacent is set.
std::vector<Interval> coalesce_sorted(std::vector<Interval> v,
                                      bool merge_adjacent) {
  std::vector<Interval> out;
  out.reserve(v.size());
  for (const Interval& iv : v) {
    PSNAP_ASSERT(iv.lo <= iv.hi);
    if (!out.empty()) {
      Interval& last = out.back();
      // The adjacency disjunct only evaluates when iv.lo > last.hi, so
      // last.hi + 1 cannot overflow there.
      if (iv.lo <= last.hi || (merge_adjacent && iv.lo == last.hi + 1)) {
        last.hi = std::max(last.hi, iv.hi);
        continue;
      }
    }
    out.push_back(iv);
  }
  return out;
}

}  // namespace

IntervalSet IntervalSet::from_intervals(std::vector<Interval> raw,
                                        bool merge_adjacent) {
  std::sort(raw.begin(), raw.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  IntervalSet set;
  set.intervals_ = coalesce_sorted(std::move(raw), merge_adjacent);
  return set;
}

IntervalSet IntervalSet::from_points(std::vector<std::uint64_t> points,
                                     bool merge_adjacent) {
  std::vector<Interval> raw;
  raw.reserve(points.size());
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  for (std::uint64_t p : points) raw.push_back(Interval{p, p});
  IntervalSet set;
  set.intervals_ = coalesce_sorted(std::move(raw), merge_adjacent);
  return set;
}

IntervalSet IntervalSet::merged_with_points(std::vector<std::uint64_t> points,
                                            bool merge_adjacent) const {
  return merged_with(IntervalSet::from_points(std::move(points), merge_adjacent),
                     merge_adjacent);
}

IntervalSet IntervalSet::merged_with(const IntervalSet& other,
                                     bool merge_adjacent) const {
  // Standard sorted two-way merge, then a coalescing pass.
  std::vector<Interval> merged;
  merged.reserve(intervals_.size() + other.intervals_.size());
  std::merge(intervals_.begin(), intervals_.end(), other.intervals_.begin(),
             other.intervals_.end(), std::back_inserter(merged),
             [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  IntervalSet set;
  set.intervals_ = coalesce_sorted(std::move(merged), merge_adjacent);
  return set;
}

bool IntervalSet::contains(std::uint64_t x) const {
  // Binary search on interval lower bounds.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](std::uint64_t v, const Interval& iv) { return v < iv.lo; });
  if (it == intervals_.begin()) return false;
  --it;
  return x >= it->lo && x <= it->hi;
}

std::uint64_t IntervalSet::cardinality() const {
  std::uint64_t n = 0;
  for (const Interval& iv : intervals_) n += iv.hi - iv.lo + 1;
  return n;
}

bool IntervalSet::is_canonical() const {
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].lo > intervals_[i].hi) return false;
    if (i > 0) {
      // Strictly increasing with a gap of at least one point: otherwise the
      // intervals should have been coalesced.
      if (intervals_[i].lo <= intervals_[i - 1].hi) return false;
      if (intervals_[i].lo == intervals_[i - 1].hi + 1) return false;
    }
  }
  return true;
}

std::string IntervalSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    // Appended piecewise: GCC 12's -Wrestrict false-positives on the
    // chained operator+ form at -O3 (PR105651), which -Werror promotes.
    if (i) out += ", ";
    out += '[';
    out += std::to_string(intervals_[i].lo);
    out += ',';
    out += std::to_string(intervals_[i].hi);
    out += ']';
  }
  out += "}";
  return out;
}

}  // namespace psnap::intervals
