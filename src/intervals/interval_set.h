// Sorted, coalesced interval sets over array indices.
//
// Figure 2's active set publishes, through a compare&swap object, "a list of
// intervals of array indices that are known to contain only 0's".  The paper
// requires the list to be kept sorted and for "consecutive intervals that
// have no gaps between them [to] be coalesced into a single interval in
// order to keep the length of the list as small as possible" (Section 4.1).
//
// IntervalSet is that list: an immutable-after-build, sorted vector of
// disjoint, non-adjacent closed intervals [lo, hi].  Immutability matters:
// the published object is shared by racing getSet operations and is only
// ever replaced wholesale via CAS, never mutated in place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psnap::intervals {

struct Interval {
  std::uint64_t lo;
  std::uint64_t hi;  // inclusive

  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  IntervalSet() = default;

  // Builds from arbitrary (possibly overlapping, unsorted) intervals,
  // normalizing to the canonical sorted coalesced form.  When
  // merge_adjacent is false, overlapping intervals are still merged (that
  // is a correctness requirement) but touching intervals are kept separate
  // -- the "no coalescing" configuration exercised by the ABL-1 ablation
  // bench, which measures how much Section 4.1's coalescing rule matters.
  static IntervalSet from_intervals(std::vector<Interval> raw,
                                    bool merge_adjacent = true);

  // Builds from single points.
  static IntervalSet from_points(std::vector<std::uint64_t> points,
                                 bool merge_adjacent = true);

  // Returns the union of this set and `points`, coalesced.  This is the
  // getSet path: start from the currently published set, add every newly
  // observed vacated index, coalesce.  O(|this| + |points| log |points|).
  IntervalSet merged_with_points(std::vector<std::uint64_t> points,
                                 bool merge_adjacent = true) const;

  // Set union of two interval sets.
  IntervalSet merged_with(const IntervalSet& other,
                          bool merge_adjacent = true) const;

  bool contains(std::uint64_t x) const;

  bool empty() const { return intervals_.empty(); }
  std::size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  // Total number of points covered.
  std::uint64_t cardinality() const;

  // Iterates over every x in [lo, hi] NOT covered by this set, in
  // increasing order.  This is the getSet scan loop: walk the array slots
  // that are not known-vacated.  O(gaps + size) total, not O(hi - lo) when
  // large stretches are covered.
  template <class Fn>
  void for_each_gap(std::uint64_t lo, std::uint64_t hi, Fn&& fn) const {
    std::uint64_t cursor = lo;
    for (const Interval& iv : intervals_) {
      if (iv.hi < cursor) continue;
      if (iv.lo > hi) break;
      for (std::uint64_t x = cursor; x < iv.lo && x <= hi; ++x) fn(x);
      cursor = iv.hi + 1;
      if (cursor > hi) return;
    }
    for (std::uint64_t x = cursor; x <= hi; ++x) fn(x);
  }

  // True iff the representation invariant holds (sorted, disjoint,
  // non-adjacent, lo <= hi).  Checked by tests and debug assertions.
  bool is_canonical() const;

  std::string to_string() const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace psnap::intervals
