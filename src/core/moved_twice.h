// Population-adaptive table for the condition-(2) "moved twice" helping
// rule (Figure 1, the full-snapshot baseline, and Figure 3's
// write-ablation mode all share it; see the multi-writer soundness
// discussion in register_psnap.cpp).
//
// The table has one slot per pid that publishes during the scan.  The seed
// implementation arena-took max_processes slots -- an O(max_threads)
// zero-fill on EVERY embedded scan, even with two threads live out of 128.
// This version sizes the table at the PidBound walk bound and regrows
// mid-scan on the rare occasion a record from a fresher pid appears:
//
//   * sizing by the bound is usually exact -- a record observed during the
//     scan was published by a live pid, and live pids are below the
//     watermark the bound read returned... unless the publisher acquired
//     its pid after that read;
//   * in that one case (pid >= table size) the table re-takes a larger
//     zero-filled span from the arena and copies itself over.  The copy is
//     O(current size), happens at most a handful of times per scan (sizes
//     double, capped at max_processes), and only when the thread
//     population is actively growing -- never in steady state, so the
//     allocation-free guarantees (scan_alloc_test / update_alloc_test)
//     and the collect-bound asserts are unaffected.
//
// Rec must expose `pid`, `counter`, and `is_initial()`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/assert.h"
#include "core/scan_context.h"

namespace psnap::core {

template <class Rec>
class MovedTwiceTable {
 public:
  // `initial` is the PidBound walk bound at scan start; `capacity` the
  // hard pid ceiling (max_processes).
  MovedTwiceTable(ScanArena& arena, std::uint32_t initial,
                  std::uint32_t capacity)
      : arena_(arena),
        capacity_(capacity),
        seen_(arena.take<Slot>(std::min(std::max(initial, 1u), capacity))) {}

  // Called for a record that just appeared as a change at some location;
  // returns the record to borrow from once its process has two moves --
  // the later of the two ("the one with the highest counter field"): its
  // update began after the earlier move's write, hence after this scan
  // began.
  //
  // A move is an OPERATION, keyed by (pid, counter), not a record: the
  // records of one update_batch share a counter because they share one
  // embedded scan, and counting them as separate moves would let a scan
  // borrow a view whose collect predates it (two "moves" from a single
  // batch prove nothing about when that batch's scan began).  For
  // singleton updates -- one record per operation -- the counter key
  // degenerates to the historical record identity.
  const Rec* note_move(const Rec* rec) {
    PSNAP_ASSERT(!rec->is_initial());  // initial records are never published
    Slot& s = slot(rec->pid);
    for (std::uint32_t k = 0; k < s.count; ++k) {
      if (s.moved[k]->counter == rec->counter) return nullptr;  // same op
    }
    s.moved[s.count++] = rec;
    if (s.count < 2) return nullptr;
    return s.moved[0]->counter > s.moved[1]->counter ? s.moved[0]
                                                     : s.moved[1];
  }

 private:
  // Zero-filled arena storage is the empty state.
  struct Slot {
    const Rec* moved[2];
    std::uint32_t count;
  };

  Slot& slot(std::uint32_t pid) {
    PSNAP_ASSERT_MSG(pid < capacity_,
                     "record published by a pid beyond max_processes");
    if (pid >= seen_.size()) {
      // A pid acquired after our bound read published during this scan:
      // re-take wider (doubling, so regrowth is logarithmic in the
      // population) and carry the bookkeeping over.
      std::uint32_t want = std::min(
          capacity_,
          std::max(pid + 1, 2 * static_cast<std::uint32_t>(seen_.size())));
      std::span<Slot> wider = arena_.take<Slot>(want);
      std::copy(seen_.begin(), seen_.end(), wider.begin());
      seen_ = wider;
    }
    return seen_[pid];
  }

  ScanArena& arena_;
  std::uint32_t capacity_;
  std::span<Slot> seen_;
};

}  // namespace psnap::core
