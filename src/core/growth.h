// Monotone component count with in-order publication.
//
// add_components(k) on a snapshot object has two halves: reserving a block
// of indices (one fetch-add, so concurrent growers get disjoint blocks)
// and publishing the new count once the block's slots are initialized.
// Publication must be IN ORDER -- the count may only advance past a block
// whose slots are ready, or a concurrent scan of index < num_components()
// could read an uninitialized slot.  A grower whose predecessor block is
// still initializing therefore waits for the count to reach its own first
// index before swinging it forward.
//
// The wait is a scheduling point: each retry performs one exec::on_step,
// so under the deterministic simulator a waiting grower parks and lets the
// predecessor run instead of livelocking the cooperative scheduler (the
// same reason every potentially-waiting loop in this library steps).
// Growth is memory management, not one of the paper's measured operations,
// so the extra steps never land inside a theorem bench's measurement.
//
// Readers call load(): one seq_cst load (plain mov on x86, ldar on
// AArch64), once per operation.  seq_cst rather than acquire so counts
// observed by different operations are ordered consistently with the
// Instrumented runtime's step order -- the full-snapshot borrow argument
// compares the counts captured by two racing operations (see
// baseline/full_snapshot.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/assert.h"
#include "exec/exec.h"
#include "segarray/segmented_array.h"

namespace psnap::core {

// Components per storage segment.  Doubles as the sharded reclamation
// plane's shard-mapping unit (reclaim::ShardedEbr groups whole segments
// into shards), so the reclamation topology follows the same boundaries
// that make growth reader-safe.
inline constexpr std::uint32_t kComponentSegmentSize = 1024;

// Grow-only storage for per-component state: stable addresses forever (a
// concurrent reader's pointer is never invalidated by growth), two loads
// on the hot path (segment directory + slot).  Capacity 4M components,
// the same envelope as Figure 2's slot array.
template <class T>
using ComponentStorage =
    segarray::SegmentedArray<T, kComponentSegmentSize,
                             (std::size_t{1} << 12)>;

// Grow-only storage for per-pid state (announcement registers, publication
// counters, active-set flags).  Pids are dense -- the thread registry
// hands out the lowest free pid -- and bounded by its capacity, so the
// segments are small and only the low ones ever materialize.
template <class T>
using PerPidStorage = segarray::SegmentedArray<T, 64, 64>;

class GrowableSize {
 public:
  explicit GrowableSize(std::uint32_t initial)
      : reserved_(initial), ready_(initial) {}

  GrowableSize(const GrowableSize&) = delete;
  GrowableSize& operator=(const GrowableSize&) = delete;

  // The published component count; monotone.
  std::uint32_t load() const {
    return ready_.load(std::memory_order_seq_cst);
  }

  // Reserves k fresh indices; returns the first.  The caller must
  // initialize slots [first, first+k) and then publish(first, k).
  std::uint32_t reserve(std::uint32_t k) {
    PSNAP_ASSERT(k > 0);
    return reserved_.fetch_add(k, std::memory_order_acq_rel);
  }

  // Publishes the reserved block, waiting out any unfinished predecessor
  // block (each retry is one schedule step; see the header comment).
  void publish(std::uint32_t first, std::uint32_t k) {
    // compare_exchange_strong, not weak: a spurious failure would inject a
    // schedule point that breaks the DFS explorer's deterministic replay.
    std::uint32_t expected = first;
    while (!ready_.compare_exchange_strong(expected, first + k,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
      expected = first;
      exec::on_step(exec::ObjKind::kRegister, exec::kNoLabel);
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<std::uint32_t> reserved_;
  std::atomic<std::uint32_t> ready_;
};

// The one add_components body shared by every implementation: reserve a
// block, initialize its slots (init(slot, index) for each new index, with
// the slot reference coming from the grow-only storage), publish in
// order, return the first index.  Keeping the protocol here means a fix
// to the ordering or the capacity check lands everywhere at once.
template <class Storage, class InitFn>
std::uint32_t grow_components(GrowableSize& size, Storage& storage,
                              std::uint32_t count, InitFn&& init) {
  PSNAP_ASSERT(count > 0);
  std::uint32_t first = size.reserve(count);
  PSNAP_ASSERT_MSG(std::uint64_t{first} + count <= Storage::capacity(),
                   "component capacity exceeded");
  for (std::uint32_t i = first; i < first + count; ++i) {
    init(storage.at(i), i);
  }
  size.publish(first, count);
  return first;
}

}  // namespace psnap::core
