#include "core/register_psnap.h"

#include <algorithm>
#include <memory>

#include "activeset/register_active_set.h"
#include "common/assert.h"
#include "core/moved_twice.h"
#include "core/op_stats.h"
#include "exec/exec.h"

namespace psnap::core {

template <class Policy, class Value>
RegisterPartialSnapshotT<Policy, Value>::RegisterPartialSnapshotT(
    std::uint32_t initial_components, std::uint32_t max_processes,
    std::unique_ptr<activeset::ActiveSet> active_set,
    std::uint64_t initial_value, exec::PidBound bound)
    : size_(initial_components),
      n_(max_processes),
      bound_(bound),
      initial_value_(initial_value),
      as_(active_set
              ? std::move(active_set)
              : std::make_unique<activeset::RegisterActiveSetT<Policy>>(
                    max_processes, bound)) {
  PSNAP_ASSERT(initial_components > 0 && n_ > 0);
  PSNAP_ASSERT_MSG(n_ <= reclaim::EbrDomain::kPidSlots,
                   "max_processes exceeds the pid-slot capacity");
  PSNAP_ASSERT(as_->max_processes() >= n_);
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    // Initial records carry the sentinel pid and the component index as the
    // counter, which keeps every record tag unique.
    r_.at(i)->init(make_initial_record<Value>(initial_value, i), /*label=*/i);
  }
}

template <class Policy, class Value>
RegisterPartialSnapshotT<Policy, Value>::~RegisterPartialSnapshotT() {
  const std::uint32_t m = size_.load();
  for (std::uint32_t i = 0; i < m; ++i) delete r_.at(i)->peek();
  // Any pid that ever announced is below the bound (its acquisition
  // raised the watermark first; destruction is quiescent), so the sweep
  // is population-bounded too.
  const std::uint32_t pids = bound_.get(n_);
  for (std::uint32_t p = 0; p < pids; ++p) {
    if (const auto* reg = a_.try_at(p)) delete (*reg)->peek();
  }
}

template <class Policy, class Value>
std::uint32_t RegisterPartialSnapshotT<Policy, Value>::add_components(
    std::uint32_t count) {
  // Same initial-record construction as the constructor; nobody can read
  // a new slot until grow_components publishes the count.
  return grow_components(size_, r_, count, [this](auto& slot, std::uint32_t i) {
    slot->init(make_initial_record<Value>(initial_value_, i), /*label=*/i);
  });
}

template <class Policy, class Value>
auto RegisterPartialSnapshotT<Policy, Value>::embedded_scan(
    std::span<const std::uint32_t> args, ScanContext& ctx) -> const ViewV& {
  OpStats& stats = tls_op_stats();
  stats.embedded_args = args.size();
  ViewV& view = view_for<ValueType>(ctx);
  if (args.empty()) {
    view.clear();
    return view;
  }

  // Condition-(2) bookkeeping.  The paper phrases the rule as "three
  // different values written by the same process have been seen (in any
  // locations)", which is the classic single-writer formulation: with one
  // register per process, three distinct values can only be observed as
  // two *changes* over time, proving two writes happened during this scan.
  // In the multi-writer object a process's old records can sit in several
  // components simultaneously, so three distinct values may all predate
  // the scan and borrowing would be unsound (the borrowed view could miss
  // updates that completed before we started).  We therefore implement the
  // rule the proof actually uses: a process must be observed to *move*
  // twice -- publish two distinct records that each appeared as a change
  // between consecutive collects of this scan.  Both moves then happened
  // during the scan, so the later of the two belongs to an update whose
  // embedded scan (and getSet) started after ours -- precisely the
  // condition the paper's correctness argument requires.
  //
  // Pointer identity is sound throughout: we are EBR-pinned for the whole
  // operation, so no observed record can be freed -- or, with pooling,
  // recycled -- and its address reused.  Release-mode note: "appeared as a
  // change" compares two acquire loads of the SAME location, so only
  // per-location coherence is consumed; the borrow dereference pairs with
  // the publishing release exchange.
  //
  // The table is population-adaptive: sized at the PidBound walk bound
  // (O(live pids) to zero-fill, not O(max_threads)) and regrown mid-scan
  // if a fresher pid publishes -- see core/moved_twice.h.
  MovedTwiceTable<Rec> seen(ctx.arena, bound_.get(n_), n_);
  auto note_move = [&seen](const Rec* rec) { return seen.note_move(rec); };

  std::span<const Rec*> prev = ctx.arena.take<const Rec*>(args.size());
  std::span<const Rec*> cur = ctx.arena.take<const Rec*>(args.size());
  bool have_prev = false;

  while (true) {
    ++stats.collects;
    // Wait-freedom bound (Section 3): every differing pair of consecutive
    // collects contributes at least one fresh move, and 2n+1 moves force
    // some process to two moves.  The assert turns a lost helping path
    // into a loud failure instead of an unbounded loop.
    PSNAP_ASSERT_MSG(stats.collects <= 2ull * n_ + 3,
                     "figure-1 embedded scan exceeded its collect bound");
    const Rec* borrow = nullptr;
    for (std::size_t j = 0; j < args.size(); ++j) {
      cur[j] = r_.at(args[j])->load();
      if (have_prev && cur[j] != prev[j] && borrow == nullptr) {
        borrow = note_move(cur[j]);
      }
    }
    if (borrow != nullptr) {
      // Condition (2): borrow the embedded-scan result of an update that
      // started after we did.  Copied (capacity-reusing, down to the blob
      // plane's per-entry byte buffers) because the view must outlive the
      // borrowed record's EBR grace period.
      stats.borrowed = true;
      view = borrow->view;
      return view;
    }
    if (have_prev && std::equal(cur.begin(), cur.end(), prev.begin())) {
      // Condition (1): both collects saw the same records, so those values
      // coexisted at every instant between the collects.  resize+assign
      // rather than clear+push_back keeps existing entries' payload
      // capacity (a blob-plane entry re-fills its byte buffer in place).
      view.resize(args.size());
      for (std::size_t j = 0; j < args.size(); ++j) {
        view[j].index = args[j];
        Value::copy(cur[j]->value, view[j].value);
      }
      return view;
    }
    std::swap(prev, cur);
    have_prev = true;
  }
}

template <class Policy, class Value>
template <class Fill>
void RegisterPartialSnapshotT<Policy, Value>::do_update(std::uint32_t i,
                                                        Fill&& fill) {
  PSNAP_ASSERT(i < size_.load());
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  tls_op_stats().reset();
  ScanContext& ctx = tls_scan_context();
  ctx.begin();
  auto guard = ebr_.pin();

  // Gather the components needed by announced scanners; the embedded scan
  // reads exactly those (the whole point of *partial* helping).
  as_->get_set(ctx.scanners);
  tls_op_stats().getset_size = ctx.scanners.size();

  ctx.union_args.clear();
  for (std::uint32_t p : ctx.scanners) {
    // try_at: a pid that joined without ever announcing has no slot; an
    // absent segment reads as "no announcement" without allocating on the
    // update path.  (A scanner always announces before joining, and its
    // segment install happens-before the join its getSet observed.)
    const auto* slot = a_.try_at(p);
    const IndexSet* announced = slot ? (*slot)->load() : nullptr;
    if (announced != nullptr) {
      ctx.union_args.insert(ctx.union_args.end(), announced->indices.begin(),
                            announced->indices.end());
    }
  }
  std::sort(ctx.union_args.begin(), ctx.union_args.end());
  ctx.union_args.erase(
      std::unique(ctx.union_args.begin(), ctx.union_args.end()),
      ctx.union_args.end());

  const ViewV& view = embedded_scan(ctx.union_args, ctx);

  // Pool-backed record, owned by the Handle until publication: if this
  // process halts at the publish step (crash injection, Section 2's
  // failure model), the unpublished record -- payload included -- returns
  // to the pool instead of leaking, skipping the grace period (nobody
  // ever saw the pointer).
  auto rec = record_pool_.acquire(ebr_);
  fill(rec->value);
  rec->counter = ++counter_.at(pid).value;
  rec->pid = pid;
  rec->view = view;  // capacity-reusing copy into the recycled vector

  // The write that linearizes the update.  exchange (one register step,
  // see primitives.h) returns the replaced record so exactly one thread
  // retires it.  Release mode: acq_rel -- release publishes the immutable
  // record to acquire collects, acquire covers the replaced record handed
  // to reclamation.
  const Rec* old = r_.at(i)->exchange(rec.get());
  rec.release();
  record_pool_.recycle(ebr_, const_cast<Rec*>(old));
}

template <class Policy, class Value>
void RegisterPartialSnapshotT<Policy, Value>::update(std::uint32_t i,
                                                     std::uint64_t v) {
  do_update(i, [v](ValueType& out) { Value::encode(v, out); });
}

template <class Policy, class Value>
void RegisterPartialSnapshotT<Policy, Value>::update_blob(
    std::uint32_t i, std::span<const std::byte> bytes) {
  if constexpr (Value::kIndirect) {
    do_update(i, [bytes](ValueType& out) { Value::assign(out, bytes); });
  } else {
    PartialSnapshot::update_blob(i, bytes);
  }
}

template <class Policy, class Value>
template <class Extract>
void RegisterPartialSnapshotT<Policy, Value>::do_scan(
    std::span<const std::uint32_t> indices, ScanContext& ctx,
    Extract&& extract) {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  const std::uint32_t m = size_.load();
  for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
  tls_op_stats().reset();
  ctx.begin();
  auto guard = ebr_.pin();

  canonical_indices_into(indices, ctx.canonical);

  // Announce, then join: an update whose getSet sees us joined is
  // guaranteed to read our announcement (in Release mode: the join store
  // is release and sequenced after this exchange, so a getSet that
  // acquire-reads the joined flag also sees the announcement).
  // Re-publish only when the set changed: A[pid] is single-writer (ours),
  // so peeking our own register is local state, and an unchanged
  // announcement already covers this scan's components.  Announcements are
  // pooled, so even shape-alternating scans allocate nothing in steady
  // state.
  const IndexSet* announced = a_.at(pid)->peek();
  if (announced == nullptr || announced->indices != ctx.canonical) {
    auto announce = announce_pool_.acquire(ebr_);
    announce->indices.assign(ctx.canonical.begin(), ctx.canonical.end());
    const IndexSet* old_announce = a_.at(pid)->exchange(announce.get());
    announce.release();
    if (old_announce != nullptr) {
      announce_pool_.recycle(ebr_, const_cast<IndexSet*>(old_announce));
    }
  }
  as_->join();
  // Scanner end of the announce/join-vs-getSet handshake (see
  // primitives.h): the announcement exchange and the join store must
  // drain before our collect loads run, or a concurrent update's getSet
  // could miss us after our embedded scan has already begun -- which
  // would break the condition-(2) borrow coverage argument.
  primitives::protocol_fence<Policy>();
  const ViewV& view = embedded_scan(ctx.canonical, ctx);
  as_->leave();

  extract(view);
}

template <class Policy, class Value>
void RegisterPartialSnapshotT<Policy, Value>::scan(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  do_scan(indices, ctx, [&](const ViewV& view) {
    // Extract the requested components, in the caller's order, by binary
    // search (the paper's small-register remark after Theorem 1).  The
    // correctness argument guarantees every announced index is present.
    out.reserve(indices.size());
    for (std::uint32_t i : indices) {
      const ViewEntryT<ValueType>* e = view_find(view, i);
      PSNAP_ASSERT_MSG(e != nullptr,
                       "borrowed view is missing an announced component");
      out.push_back(Value::decode(e->value));
    }
  });
}

template <class Policy, class Value>
void RegisterPartialSnapshotT<Policy, Value>::scan_blobs(
    std::span<const std::uint32_t> indices, std::vector<value::Blob>& out,
    ScanContext& ctx) {
  if constexpr (Value::kIndirect) {
    if (indices.empty()) {
      out.clear();
      return;
    }
    // resize, not clear: surviving elements keep their byte capacity, so a
    // shape-stable caller's result buffers stop allocating after warm-up.
    out.resize(indices.size());
    do_scan(indices, ctx, [&](const ViewV& view) {
      for (std::size_t k = 0; k < indices.size(); ++k) {
        const ViewEntryT<ValueType>* e = view_find(view, indices[k]);
        PSNAP_ASSERT_MSG(e != nullptr,
                         "borrowed view is missing an announced component");
        Value::copy(e->value, out[k]);
      }
    });
  } else {
    PartialSnapshot::scan_blobs(indices, out, ctx);
  }
}

template class RegisterPartialSnapshotT<primitives::Instrumented,
                                        value::DirectU64>;
template class RegisterPartialSnapshotT<primitives::Release,
                                        value::DirectU64>;
template class RegisterPartialSnapshotT<primitives::Instrumented,
                                        value::IndirectBlob>;
template class RegisterPartialSnapshotT<primitives::Release,
                                        value::IndirectBlob>;

}  // namespace psnap::core
