// The partial snapshot object interface (paper Section 2.1).
//
// A partial snapshot object stores a vector of m components from a domain D
// (here: uint64_t) and provides two linearizable operations:
//
//   * update(i, v): set component i to v;
//   * scan(i1..ir): atomically read components i1..ir -- the returned
//     values must all have been simultaneously present at the scan's
//     linearization point.
//
// Implementations in this library:
//   core::RegisterPartialSnapshot  -- Figure 1 (registers only)
//   core::CasPartialSnapshot       -- Figure 3 (CAS + F&I; local scans)
//   baseline::FullSnapshot         -- complete-scan extraction baseline
//   baseline::DoubleCollectSnapshot-- lock-free, no helping (not wait-free)
//   baseline::LockSnapshot         -- global mutex reference
//   baseline::SeqlockSnapshot      -- global seqlock reference
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

#include "primitives/value_plane.h"

namespace psnap::core {

struct ScanContext;

// One component write of a batched update (update_batch below).
struct BatchEntry {
  std::uint32_t index;
  std::uint64_t value;
};

// The blob plane's batch entry: the bytes are borrowed for the duration of
// the update_batch_blob call, like update_blob's span.
struct BlobBatchEntry {
  std::uint32_t index;
  std::span<const std::byte> bytes;
};

// What a scan can observe of a k-entry batch (batch_atomicity below):
//
//   kUnsupported -- the implementation has no batch path (fig1); the batch
//                   entry points throw std::logic_error.
//   kAmortized   -- the k writes share one announcement/helping round/grace
//                   period (the cost amortization), but each entry
//                   linearizes individually: a concurrent scan may observe
//                   a prefix of the batch.
//   kAtomic      -- the whole batch linearizes at one point: no scan ever
//                   observes some of the batch's writes without the others.
enum class BatchAtomicity { kUnsupported, kAmortized, kAtomic };

class PartialSnapshot {
 public:
  virtual ~PartialSnapshot() = default;

  // The current component count.  Monotone at runtime: construction sets
  // the initial count and add_components() grows it; there is no shrink.
  virtual std::uint32_t num_components() const = 0;
  virtual std::string_view name() const = 0;

  // True if every operation completes in a bounded number of its own steps.
  virtual bool is_wait_free() const = 0;
  // True if scan complexity depends only on r (never on m) -- the property
  // the paper is after.
  virtual bool is_local() const = 0;

  // Appends `count` fresh components (initialized to the object's initial
  // value) and returns the index of the first; the new indices are
  // [first, first+count).  Concurrent with updates and scans: an operation
  // that began before the grow may or may not observe the enlarged count,
  // but every index below the count it DID observe is valid for its whole
  // duration (grow-only segmented storage -- no reader's pointer is ever
  // invalidated).  Concurrent add_components calls receive disjoint
  // blocks.  Lock-free for the wait-free implementations; the lock/seqlock
  // baselines serialize growth through their global writer section, in
  // character for those baselines.
  virtual std::uint32_t add_components(std::uint32_t count) = 0;

  // Sets component i (0-based, < num_components) to v on behalf of
  // exec::ctx().pid.
  virtual void update(std::uint32_t i, std::uint64_t v) = 0;

  // ---- Batched updates ----
  //
  // Applies k component writes as ONE protocol instance: one EBR pin, one
  // announcement-set read + helping round (collect planes), one version
  // stamp (versioned planes), one grace period -- the per-write cost of
  // the singleton protocol amortizes over the batch.  Entries are applied
  // in order; when two entries name the same component the later one wins.
  // An empty span is a no-op.
  //
  // Consistency is per-implementation, reported by batch_atomicity():
  // kAtomic implementations guarantee no scan observes a torn batch;
  // kAmortized ones only share the protocol cost.  On the versioned plane
  // a batch RETRIES until every entry is applied (lock-free), unlike the
  // singleton update's wait-free try-once CAS -- ingest batches must not
  // silently drop writes.
  //
  // The default implementations throw std::logic_error (fig1 has no batch
  // path; update_batch_blob additionally requires the blob plane).
  virtual void update_batch(std::span<const BatchEntry> entries);
  virtual void update_batch_blob(std::span<const BlobBatchEntry> entries);

  // What a concurrent scan can observe of a batch (kUnsupported when the
  // entry points above throw).
  virtual BatchAtomicity batch_atomicity() const {
    return BatchAtomicity::kUnsupported;
  }

  void update_batch(std::initializer_list<BatchEntry> il) {
    update_batch(std::span<const BatchEntry>(il.begin(), il.size()));
  }

  // Reads the given components atomically; out[k] receives the value of
  // indices[k] (indices may be unsorted and may contain duplicates; an
  // empty set yields an empty result).  Clears and fills `out`.
  //
  // `ctx` provides the operation's scratch storage (collect buffers,
  // canonical index set, embedded-scan view); reusing one context across
  // calls makes the steady-state scan allocation-free.  The two-argument
  // overload forwards a thread-local context.
  virtual void scan(std::span<const std::uint32_t> indices,
                    std::vector<std::uint64_t>& out, ScanContext& ctx) = 0;

  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out);

  // ---- The value plane (primitives/value_plane.h) ----
  //
  // Every implementation stores one of the payload planes, chosen at
  // construction (registry option value=u64|blob|versioned): "u64" keeps
  // today's word components; "blob" stores variable-size byte payloads
  // behind the object's record indirection; "versioned" keeps word
  // payloads but publishes them through per-component version chains
  // ordered by a global camera epoch (primitives/version_chain.h), which
  // turns scans constant-time per component.  On EVERY plane the u64
  // operations above work -- on the blob plane update(i, v) publishes an
  // 8-byte payload encoding v and scan decodes a payload's first 8 bytes
  // (native-endian, zero-extended); on the versioned plane scan() routes
  // through the epoch walk -- so u64-driven harnesses exercise any plane
  // unchanged.
  virtual std::string_view value_plane() const { return "u64"; }

  // ---- The reclamation plane (reclaim/) ----
  //
  // How published records are reclaimed, chosen at construction (registry
  // option reclaim=ebr|hp on the implementations that support both):
  // "ebr" pins an epoch per operation (cheap, but a stalled reader delays
  // every later retirement in its domain -- or its shard, with shards>1);
  // "hp" protects individual records with hazard pointers (a stalled
  // reader delays at most the handful of records it protects).  Purely an
  // engineering axis: the protocol's step counts and linearizability are
  // identical on either plane.
  virtual std::string_view reclaim_plane() const { return "ebr"; }
  // Number of independent reclamation domains (EBR sharding; 1 everywhere
  // except fig3_cas instances built with shards=k).
  virtual std::uint32_t reclaim_shards() const { return 1; }
  // Retired-but-not-yet-freed records, aggregated over the instance's
  // domains.  Quiescent-read observability for the RCL bench and tests; 0
  // for implementations that do not expose it.
  virtual std::uint64_t reclaim_outstanding() const { return 0; }

  // Sets component i to an arbitrary byte payload, atomically, on behalf
  // of exec::ctx().pid.  Blob plane only: the u64 plane (the default
  // implementation here) throws std::logic_error.
  virtual void update_blob(std::uint32_t i, std::span<const std::byte> bytes);

  // Reads the given components' payloads atomically (same consistency
  // contract as scan, same index semantics); out[k] receives a copy of
  // indices[k]'s payload, reusing out's element capacity.  Blob plane
  // only: the u64 plane throws std::logic_error.
  virtual void scan_blobs(std::span<const std::uint32_t> indices,
                          std::vector<value::Blob>& out, ScanContext& ctx);

  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<value::Blob>& out);

  // Reads the given components atomically through the version-chain walk
  // (same consistency contract and index semantics as scan) and returns
  // the epoch the scan linearized at: one camera fetch-add, then per
  // component the newest version at or below that epoch.  Epochs returned
  // to one thread are strictly increasing, and a value stamped at epoch e
  // is visible to every scan with epoch >= e -- the "camera" semantics
  // callers can key retries/merges off.  Versioned plane only: the other
  // planes (the default implementation here) throw std::logic_error.
  virtual std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                                       std::vector<std::uint64_t>& out,
                                       ScanContext& ctx);

  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out);

  // Convenience forms.
  std::vector<std::uint64_t> scan(std::span<const std::uint32_t> indices) {
    std::vector<std::uint64_t> out;
    scan(indices, out);
    return out;
  }
  std::vector<std::uint64_t> scan(std::initializer_list<std::uint32_t> il) {
    std::vector<std::uint32_t> idx(il);
    return scan(std::span<const std::uint32_t>(idx));
  }
  // Complete scan (partial scan of all components).
  std::vector<std::uint64_t> scan_all();
};

}  // namespace psnap::core
