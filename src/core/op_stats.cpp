#include "core/op_stats.h"

namespace psnap::core {

OpStats& tls_op_stats() {
  thread_local OpStats stats;
  return stats;
}

}  // namespace psnap::core
