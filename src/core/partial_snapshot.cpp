#include "core/partial_snapshot.h"

#include <numeric>
#include <stdexcept>
#include <string>

#include "core/scan_context.h"

namespace psnap::core {

namespace {

[[noreturn]] void reject_blob_op(const PartialSnapshot& snap,
                                 const char* op) {
  throw std::logic_error(
      std::string(op) + " requires the blob value plane, but '" +
      std::string(snap.name()) + "' stores value=" +
      std::string(snap.value_plane()) +
      " (construct with the registry option value=blob)");
}

[[noreturn]] void reject_versioned_op(const PartialSnapshot& snap,
                                      const char* op) {
  throw std::logic_error(
      std::string(op) + " requires the versioned value plane, but '" +
      std::string(snap.name()) + "' stores value=" +
      std::string(snap.value_plane()) +
      " (construct with the registry option value=versioned)");
}

}  // namespace

void PartialSnapshot::scan(std::span<const std::uint32_t> indices,
                           std::vector<std::uint64_t>& out) {
  scan(indices, out, tls_scan_context());
}

void PartialSnapshot::update_blob(std::uint32_t i,
                                  std::span<const std::byte> /*bytes*/) {
  (void)i;
  reject_blob_op(*this, "update_blob");
}

void PartialSnapshot::update_batch(std::span<const BatchEntry> /*entries*/) {
  throw std::logic_error(
      "update_batch is not supported by '" + std::string(name()) +
      "' (batch_atomicity() == kUnsupported); pick an implementation whose "
      "registry entry lists the batch capability");
}

void PartialSnapshot::update_batch_blob(
    std::span<const BlobBatchEntry> /*entries*/) {
  if (value_plane() != "blob") {
    reject_blob_op(*this, "update_batch_blob");
  }
  throw std::logic_error(
      "update_batch_blob is not supported by '" + std::string(name()) +
      "' (batch_atomicity() == kUnsupported); pick an implementation whose "
      "registry entry lists the batch capability");
}

void PartialSnapshot::scan_blobs(std::span<const std::uint32_t> /*indices*/,
                                 std::vector<value::Blob>& /*out*/,
                                 ScanContext& /*ctx*/) {
  reject_blob_op(*this, "scan_blobs");
}

void PartialSnapshot::scan_blobs(std::span<const std::uint32_t> indices,
                                 std::vector<value::Blob>& out) {
  scan_blobs(indices, out, tls_scan_context());
}

std::uint64_t PartialSnapshot::scan_versioned(
    std::span<const std::uint32_t> /*indices*/,
    std::vector<std::uint64_t>& /*out*/, ScanContext& /*ctx*/) {
  reject_versioned_op(*this, "scan_versioned");
}

std::uint64_t PartialSnapshot::scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out) {
  return scan_versioned(indices, out, tls_scan_context());
}

std::vector<std::uint64_t> PartialSnapshot::scan_all() {
  std::vector<std::uint32_t> indices(num_components());
  std::iota(indices.begin(), indices.end(), 0u);
  return scan(std::span<const std::uint32_t>(indices));
}

}  // namespace psnap::core
