#include "core/partial_snapshot.h"

#include <numeric>

#include "core/scan_context.h"

namespace psnap::core {

void PartialSnapshot::scan(std::span<const std::uint32_t> indices,
                           std::vector<std::uint64_t>& out) {
  scan(indices, out, tls_scan_context());
}

std::vector<std::uint64_t> PartialSnapshot::scan_all() {
  std::vector<std::uint32_t> indices(num_components());
  std::iota(indices.begin(), indices.end(), 0u);
  return scan(std::span<const std::uint32_t>(indices));
}

}  // namespace psnap::core
