#include "core/scan_context.h"

#include <algorithm>

#include "common/assert.h"

namespace psnap::core {

namespace {
constexpr std::size_t kMinBlockBytes = 4096;
}  // namespace

void* ScanArena::take_bytes(std::size_t bytes, std::size_t align) {
  PSNAP_ASSERT(bytes > 0);
  // Walk forward from the current block until one fits; alignment is
  // handled by bumping `used` up to the next boundary (block bases are
  // max-aligned by operator new[]).
  while (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    std::size_t aligned = (block.used + align - 1) & ~(align - 1);
    if (aligned + bytes <= block.size) {
      block.used = aligned + bytes;
      return block.data.get() + aligned;
    }
    ++current_;
  }
  std::size_t size = std::max(
      {bytes, kMinBlockBytes,
       blocks_.empty() ? std::size_t{0} : blocks_.back().size * 2});
  blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size, bytes});
  current_ = blocks_.size() - 1;
  return blocks_.back().data.get();
}

void ScanArena::reset() {
  for (Block& block : blocks_) block.used = 0;
  current_ = 0;
}

std::size_t ScanArena::allocated_bytes() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

ScanContext& tls_scan_context() {
  thread_local ScanContext ctx;
  return ctx;
}

}  // namespace psnap::core
