// Figure 3: partial snapshot with local scans, from compare&swap and
// fetch&increment (Section 4.2) -- the paper's headline algorithm.
//
// Differences from Figure 1:
//
//   * each component R[i] is a compare&swap object; an update reads the old
//     record first and publishes with CAS(old, new).  A failed CAS leaves
//     no trace and the update linearizes immediately before the competing
//     successful CAS on the same component;
//   * the embedded scan's condition (2) triggers on three different values
//     seen *in some single location* (rather than by one process anywhere),
//     and borrows the view of the *third* value seen there.  Because
//     updates publish with CAS, the update that installed the third value
//     read the component after the second value was installed -- i.e. after
//     this embedded scan began -- so its embedded scan (and getSet) started
//     after ours, making the borrow safe;
//   * the active set is the Figure 2 algorithm, making join/leave O(1).
//
// Consequence (Theorem 3): a partial scan of r components terminates within
// 2r+1 collects of r reads each -- O(r^2) worst case, independent of both m
// and the contention.  That locality is what the LOC/T3 benches measure and
// what the access-log tests assert.
#pragma once

#include <memory>
#include <vector>

#include "activeset/faicas_active_set.h"
#include "common/padding.h"
#include "core/partial_snapshot.h"
#include "core/record.h"
#include "core/scan_context.h"
#include "primitives/primitives.h"
#include "reclaim/ebr.h"

namespace psnap::core {

class CasPartialSnapshot final : public PartialSnapshot {
 public:
  struct Options {
    // Options forwarded to the embedded Figure 2 active set.
    activeset::FaiCasActiveSet::Options active_set;
    // ABL-3 ablation: publish updates with a plain overwrite (register
    // semantics) instead of CAS.  Correctness is preserved by falling back
    // to the Figure 1 condition (2) (three values by one process), but
    // scans lose their O(r^2) locality bound -- the bench shows collects
    // growing with update contention.
    bool use_cas = true;
  };

  CasPartialSnapshot(std::uint32_t num_components,
                     std::uint32_t max_processes);
  CasPartialSnapshot(std::uint32_t num_components, std::uint32_t max_processes,
                     Options options, std::uint64_t initial_value = 0);
  ~CasPartialSnapshot() override;

  std::uint32_t num_components() const override { return m_; }
  std::string_view name() const override {
    return options_.use_cas ? "fig3-cas" : "fig3-write(ablation)";
  }
  bool is_wait_free() const override { return true; }
  bool is_local() const override { return true; }

  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, ScanContext& ctx) override;
  using PartialSnapshot::scan;

  activeset::FaiCasActiveSet& active_set() { return *as_; }

 private:
  // Fills ctx.view with the embedded-scan result and returns it.
  const View& embedded_scan(std::span<const std::uint32_t> args,
                            ScanContext& ctx);

  std::uint32_t m_;
  std::uint32_t n_;
  Options options_;
  std::vector<primitives::CasObject<const Record*>> r_;
  // The paper's S[1..n] announcement registers.
  std::vector<primitives::Register<const IndexSet*>> s_;
  std::unique_ptr<activeset::FaiCasActiveSet> as_;
  reclaim::EbrDomain ebr_;
  std::vector<CachelinePadded<std::uint64_t>> counter_;
};

}  // namespace psnap::core
