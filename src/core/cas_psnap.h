// Figure 3: partial snapshot with local scans, from compare&swap and
// fetch&increment (Section 4.2) -- the paper's headline algorithm.
//
// Differences from Figure 1:
//
//   * each component R[i] is a compare&swap object; an update reads the old
//     record first and publishes with CAS(old, new).  A failed CAS leaves
//     no trace and the update linearizes immediately before the competing
//     successful CAS on the same component;
//   * the embedded scan's condition (2) triggers on three different values
//     seen *in some single location* (rather than by one process anywhere),
//     and borrows the view of the *third* value seen there.  Because
//     updates publish with CAS, the update that installed the third value
//     read the component after the second value was installed -- i.e. after
//     this embedded scan began -- so its embedded scan (and getSet) started
//     after ours, making the borrow safe;
//   * the active set is the Figure 2 algorithm, making join/leave O(1).
//
// Consequence (Theorem 3): a partial scan of r components terminates within
// 2r+1 collects of r reads each -- O(r^2) worst case, independent of both m
// and the contention.  That locality is what the LOC/T3 benches measure and
// what the access-log tests assert.
//
// Runtime policy (see primitives.h): CasPartialSnapshotT<Instrumented> is
// the step-counted, sim-safe build; CasPartialSnapshotT<Release>
// ("fig3_cas_fast") swaps seq_cst for acquire/release and drops the
// accounting.  Release-mode soundness is argued at each use site in
// cas_psnap.cpp; the skeleton is that every synchronization decision here
// is (a) publication of an immutable record through one atomic word, read
// with acquire, or (b) a CAS/F&I, which remains an RMW on the newest value
// in its location's modification order even at acq_rel.
//
// Value plane (see primitives/value_plane.h): the second template
// parameter picks the payload representation -- DirectU64 (the historical
// word component, bit-identical) or IndirectBlob (variable-size byte
// payloads embedded in the CAS'd record).  The CAS compares record
// IDENTITY, not payload bytes, so the protocol -- including the per-
// location condition (2) -- is untouched, and step counts are
// plane-invariant.
//
// Versioned plane (VersionedU64; see primitives/version_chain.h): the
// records double as version-chain nodes and a camera epoch replaces the
// whole announce/join/collect machinery on BOTH sides.  An update becomes
// help-stamp + one CAS + lazy chain trim (constant interference,
// independent of how many scanners are live -- collect-mode updates pay
// an embedded scan over the union of all announced sets); a scan becomes
// one camera fetch-add plus one chain read per requested component (O(r),
// beating Theorem 3's O(r^2) collect bound, with no helping round at
// all).  Wait-freedom is preserved: the update keeps fig3's try-once CAS
// (a failed update still linearizes immediately before the winner), and
// the chain walk is bounded by the nodes stamped after the scan's epoch.
//
// Steady-state updates and scans are allocation-free: Records and
// announcement IndexSets are recycled through reclaim::Pool free lists
// (their embedded vectors -- and the blob plane's payload buffers -- keep
// capacity across lives), and all transient scratch lives in the caller's
// ScanContext.
//
// Reclamation plane (options use_hp / reclaim_shards): records reclaim
// either through EBR -- sharded by component segment
// (reclaim::ShardedEbr), so an operation pins only the shards its
// components map to and a stalled reader's blast radius is one shard --
// or through hazard pointers (reclaim::HazardDomain), where a stalled
// reader blocks at most the handful of records it has protected.  The
// protocol is IDENTICAL on either plane: every counted step is the same
// base-object operation; hp's extra hazard publications and validation
// re-reads are non-steps (peek_sync), exactly like EBR's pins.  The two
// restrictions, both enforced at construction: hp requires use_cas (the
// write-ablation's moved-twice borrow may return a record nothing
// protects), and the versioned plane requires reclaim_shards == 1 (batch
// helping crosses components, hence shards; hp is the versioned plane's
// tail-latency answer instead).
// Dynamic runtime: components live in grow-only segmented storage
// (add_components() never invalidates a concurrent reader's pointers,
// num_components() is a monotone count) and per-pid state keys off
// dynamically registered pids -- see core/growth.h and
// exec/thread_registry.h.
#pragma once

#include <algorithm>
#include <memory>
#include <type_traits>
#include <vector>

#include "activeset/faicas_active_set.h"
#include "common/padding.h"
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/record.h"
#include "core/scan_context.h"
#include "primitives/primitives.h"
#include "primitives/value_plane.h"
#include "reclaim/ebr.h"
#include "reclaim/hazard.h"
#include "reclaim/pool.h"
#include "reclaim/sharded_ebr.h"

namespace psnap::core {

// Construction options, shared by every (Policy, Value) instantiation --
// a standalone type so registry factories can build one Options and hand
// it to whichever plane the spec selected.
struct CasSnapshotOptions {
  // Options forwarded to the embedded Figure 2 active set.
  activeset::FaiCasOptions active_set;
  // ABL-3 ablation: publish updates with a plain overwrite (register
  // semantics) instead of CAS.  Correctness is preserved by falling back
  // to the Figure 1 condition (2) (three values by one process), but
  // scans lose their O(r^2) locality bound -- the bench shows collects
  // growing with update contention.
  bool use_cas = true;
  // Per-pid walk bound (exec/pid_bound.h): sizes the write-ablation
  // mode's moved-twice table and bounds the destructor's announcement
  // sweep.  The registry factories mirror it into active_set.bound.
  exec::PidBound bound;
  // Reclaim through hazard pointers instead of EBR (registry option
  // reclaim=hp).  Requires use_cas; forces reclaim_shards == 1.
  bool use_hp = false;
  // EBR shard count (registry option shards=<k>): independent reclamation
  // domains keyed by component segment.  1 = the classic global domain.
  // Rejected on the versioned plane (batch helping crosses shards).
  std::uint32_t reclaim_shards = 1;
};

template <class Policy = primitives::Instrumented,
          class Value = value::DirectU64>
class CasPartialSnapshotT final : public PartialSnapshot {
 public:
  using ValueType = typename Value::ValueType;
  using Rec = RecordFor<Value>;
  using ViewV = ViewT<ValueType>;
  using Options = CasSnapshotOptions;

  CasPartialSnapshotT(std::uint32_t initial_components,
                      std::uint32_t max_processes);
  CasPartialSnapshotT(std::uint32_t initial_components,
                      std::uint32_t max_processes, Options options,
                      std::uint64_t initial_value = 0);
  ~CasPartialSnapshotT() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override {
    if (!options_.use_cas) return "fig3-write(ablation)";
    if constexpr (Value::kVersioned) {
      if (options_.use_hp) {
        return Policy::kCountsSteps ? "fig3-cas-versioned-hp"
                                    : "fig3-cas-versioned-hp-fast";
      }
      return Policy::kCountsSteps ? "fig3-cas-versioned"
                                  : "fig3-cas-versioned-fast";
    } else if constexpr (Value::kIndirect) {
      if (options_.use_hp) {
        return Policy::kCountsSteps ? "fig3-cas-blob-hp"
                                    : "fig3-cas-blob-hp-fast";
      }
      return Policy::kCountsSteps ? "fig3-cas-blob" : "fig3-cas-blob-fast";
    } else {
      if (options_.use_hp) {
        return Policy::kCountsSteps ? "fig3-cas-hp" : "fig3-cas-hp-fast";
      }
      return Policy::kCountsSteps ? "fig3-cas" : "fig3-cas-fast";
    }
  }
  // The collect protocol stays wait-free on either reclamation plane (hp
  // validation re-reads are non-steps, and each hazard publication is
  // validated against the one counted load it protects).  The versioned
  // plane under hp is only lock-free: a scan whose component's chain
  // outruns its protected depth restarts with a fresh epoch, which some
  // concurrent update's progress caused.
  bool is_wait_free() const override {
    return !(Value::kVersioned && options_.use_hp);
  }
  bool is_local() const override { return true; }
  std::string_view value_plane() const override { return Value::kName; }
  std::string_view reclaim_plane() const override {
    return options_.use_hp ? "hp" : "ebr";
  }
  std::uint32_t reclaim_shards() const override { return ebr_.num_shards(); }
  std::uint64_t reclaim_outstanding() const override {
    return ebr_.outstanding() + (hp_ ? hp_->outstanding() : 0);
  }

  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, ScanContext& ctx) override;
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  // Batched updates.  Collect planes amortize: ONE getSet + announced-set
  // union + embedded scan (the helping round) is shared by all k records,
  // which then publish with fig3's per-entry try-once CAS -- kAmortized.
  // The versioned plane is kAtomic: the k chain nodes share one stamp
  // through a pooled batch descriptor, fixed only after every node is
  // installed (helpers included), so a scan's epoch falls entirely before
  // or entirely after the whole batch.
  void update_batch(std::span<const BatchEntry> entries) override;
  void update_batch_blob(std::span<const BlobBatchEntry> entries) override;
  // Under hp the versioned batch path falls back to per-entry singleton
  // publication (the descriptor's install helping would dereference other
  // components' heads unprotected), so only ebr-reclaimed versioned
  // batches are atomic; entries still never drop (each retries to CAS
  // success).
  BatchAtomicity batch_atomicity() const override {
    return (Value::kVersioned && !options_.use_hp) ? BatchAtomicity::kAtomic
                                                   : BatchAtomicity::kAmortized;
  }
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<value::Blob>& out, ScanContext& ctx) override;
  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out,
                               ScanContext& ctx) override;
  using PartialSnapshot::scan;
  using PartialSnapshot::scan_blobs;
  using PartialSnapshot::scan_versioned;

  activeset::FaiCasActiveSetT<Policy>& active_set() { return *as_; }

  // Pool observability for the allocation tests.
  const reclaim::Pool<Rec>& record_pool() const { return record_pool_; }

  // A deliberately stalled reader, for the RCL bench and the reclamation
  // tests: simulates a scan that loaded its protection and then parked
  // mid-operation.  On the EBR plane it enters the meta shard plus the
  // shards of `indices` and holds the pins (freezing exactly those shards'
  // reclamation); on the hp plane it protects the current heads of up to
  // kHazardsPerThread of the given components (blocking exactly those
  // records).  Construct and destroy on the same thread; no real operation
  // may run on that thread while parked (it would reuse the hazard slots /
  // stack another pin depth).
  class ParkedReader {
   public:
    ParkedReader(CasPartialSnapshotT& snap,
                 std::span<const std::uint32_t> indices)
        : snap_(snap) {
      if (snap_.hp_ != nullptr) {
        count_ = static_cast<std::uint32_t>(
            std::min<std::size_t>(indices.size(),
                                  reclaim::HazardDomain::kHazardsPerThread));
        for (std::uint32_t k = 0; k < count_; ++k) {
          snap_.protect_component(indices[k], k);
        }
      } else {
        slots_[0] = snap_.ebr_.meta().enter();
        engaged_[0] = true;
        for (std::uint32_t i : indices) {
          std::uint32_t s = snap_.ebr_.shard_of(i);
          if (!engaged_[s]) {
            slots_[s] = snap_.ebr_.domain(s).enter();
            engaged_[s] = true;
          }
        }
      }
    }
    ~ParkedReader() {
      if (snap_.hp_ != nullptr) {
        for (std::uint32_t k = 0; k < count_; ++k) snap_.hp_->clear(k);
      } else {
        for (std::uint32_t s = 0; s < reclaim::ShardedEbr::kMaxShards; ++s) {
          if (engaged_[s]) snap_.ebr_.domain(s).exit(slots_[s]);
        }
      }
    }
    ParkedReader(const ParkedReader&) = delete;
    ParkedReader& operator=(const ParkedReader&) = delete;

   private:
    CasPartialSnapshotT& snap_;
    std::uint32_t count_ = 0;
    std::uint32_t slots_[reclaim::ShardedEbr::kMaxShards] = {};
    bool engaged_[reclaim::ShardedEbr::kMaxShards] = {};
  };

 private:
  // The versioned plane's batch descriptor (primitives::BatchControl):
  // entry table + shared stamp, pooled like the records it publishes.
  // resolve() routes helpers (readers/updaters that hit an unresolved
  // member through ensure_stamped) into the owner's install engine.
  struct BatchDesc final : primitives::BatchControl {
    CasPartialSnapshotT* owner = nullptr;
    primitives::BatchSlots<Rec> slots;
    void resolve() const override { owner->resolve_batch(*this); }
  };

  // Installs every pending entry and fixes the shared stamp (the engine in
  // version_chain.h); safe to call from any pinned thread.
  void resolve_batch(const BatchDesc& desc);

  // The one batch-update body; `fill(slot, value_out)` writes entry
  // `slot`'s payload.
  template <class EntryT, class Fill>
  void do_update_batch(std::span<const EntryT> entries, Fill&& fill);
  // Fills the context's plane view with the embedded-scan result and
  // returns it.
  const ViewV& embedded_scan(std::span<const std::uint32_t> args,
                             ScanContext& ctx);

  // The one update body; `fill` writes the new payload into the record.
  template <class Fill>
  void do_update(std::uint32_t i, Fill&& fill);
  // The versioned plane's singleton update; returns whether the CAS
  // published (false = linearized immediately before the winner).  Batch
  // code retries it until true -- versioned batches must not drop writes.
  template <class Fill>
  bool do_update_versioned(std::uint32_t i, Fill&& fill);
  // The one scan body; `extract` pulls the caller's components out of the
  // final view.
  template <class Extract>
  void do_scan(std::span<const std::uint32_t> indices, ScanContext& ctx,
               Extract&& extract);
  // The versioned plane's scan body: camera fetch-add + one chain read
  // per requested component.  Returns the epoch.
  std::uint64_t do_scan_versioned(std::span<const std::uint32_t> indices,
                                  std::vector<std::uint64_t>& out);

  // ---- reclamation-plane dispatch (the ONE place ebr-vs-hp routing
  // lives; every operation body calls through these) ----

  // The calling thread's hazard-slot convention (hp plane).  One slot per
  // concurrently-live protection a single operation needs: the old record
  // held through an update's CAS, the announcement being copied, the
  // record a collect is reading, and a chain predecessor / post-CAS
  // self-stamp target.
  static constexpr std::uint32_t kHazOld = 0;
  static constexpr std::uint32_t kHazAnnounce = 1;
  static constexpr std::uint32_t kHazRecord = 2;
  static constexpr std::uint32_t kHazPrev = 3;

  // Clears every hazard of the calling thread on operation exit --
  // including exception unwinds (the crash sweep injects halts mid-op), so
  // a halted operation's residual protection is bounded by the slots it
  // had published, and a later operation on the reused pid starts clean.
  struct HpClear {
    reclaim::HazardDomain* hp;
    ~HpClear() {
      if (hp != nullptr) hp->clear_all();
    }
  };

  // Reads component i's current record, protected for dereference: under
  // EBR the caller's shard pin suffices and this is one plain load; under
  // hp the load's value is published in hazard slot `hz` and validated
  // with a non-step peek_sync re-read (retrying -- with the newer head --
  // until stable, which under the sim scheduler succeeds first try since
  // no schedule point separates publication from validation).  Exactly ONE
  // counted step on either plane.
  const Rec* protect_component(std::uint32_t i, std::uint32_t hz);

  typename reclaim::Pool<Rec>::Handle acquire_record(std::uint32_t i) {
    return hp_ ? record_pool_.acquire(*hp_)
               : record_pool_.acquire(ebr_.domain_of(i), ebr_.shard_of(i));
  }
  void recycle_record(std::uint32_t i, const Rec* node) {
    if (hp_) {
      record_pool_.recycle_hp(*hp_, const_cast<Rec*>(node));
    } else {
      record_pool_.recycle(ebr_.domain_of(i), const_cast<Rec*>(node),
                           ebr_.shard_of(i));
    }
  }
  // Announcements and batch descriptors are not per-component state; they
  // retire through the meta shard (or hp).
  typename reclaim::Pool<IndexSet>::Handle acquire_announce() {
    return hp_ ? announce_pool_.acquire(*hp_)
               : announce_pool_.acquire(ebr_.meta());
  }
  void recycle_announce(const IndexSet* set) {
    if (hp_) {
      announce_pool_.recycle_hp(*hp_, const_cast<IndexSet*>(set));
    } else {
      announce_pool_.recycle(ebr_.meta(), const_cast<IndexSet*>(set));
    }
  }

  // Published component count (monotone; see core/growth.h).
  GrowableSize size_;
  std::uint32_t n_;
  std::uint64_t initial_value_;
  Options options_;
  // Pools are declared before ebr_ on purpose: ~EbrDomain flushes retired
  // nodes into them, so they must be destroyed after it.
  reclaim::Pool<Rec> record_pool_;
  reclaim::Pool<IndexSet> announce_pool_;
  reclaim::Pool<BatchDesc> batch_pool_;
  // CachelinePadded: a CasObject is 16 bytes, so four components would
  // share a line and concurrent updates to distinct components would
  // false-share; per-component isolation matches counter_'s treatment.
  // Segmented (grow-only) storage: slot addresses are stable forever, so
  // concurrent readers survive growth.
  ComponentStorage<
      CachelinePadded<primitives::CasObject<const Rec*, Policy>>>
      r_;
  // The paper's S[1..n] announcement registers (per-process single-writer,
  // padded for the same reason), keyed by registered pid.
  PerPidStorage<
      CachelinePadded<primitives::Register<const IndexSet*, Policy>>>
      s_;
  std::unique_ptr<activeset::FaiCasActiveSetT<Policy>> as_;
  // The EBR plane: one domain per component-segment shard (one total by
  // default).  Constructed with 1 shard in hp mode, where it sees no
  // traffic but keeps the observability and ParkedReader paths uniform.
  reclaim::ShardedEbr ebr_;
  // The hp plane; null unless options.use_hp.  Declared AFTER ebr_ (and
  // after the pools) so its destructor -- which flushes retired nodes into
  // the pools -- runs first.
  std::unique_ptr<reclaim::HazardDomain> hp_;
  PerPidStorage<CachelinePadded<std::uint64_t>> counter_;
  // The owner's in-flight batch descriptor, per pid (versioned plane): set
  // before the first install, cleared after the descriptor retires.  Its
  // only readers are the destructor's crash sweep (an injected halt
  // mid-batch leaves the descriptor here, so the quiescent teardown can
  // free the uninstalled nodes) -- helpers reach the descriptor through
  // the member nodes' batch pointers, never through this slot.
  PerPidStorage<CachelinePadded<std::atomic<BatchDesc*>>> active_batch_;
  // The versioned plane's camera (empty on the other planes).
  [[no_unique_address]] std::conditional_t<Value::kVersioned,
                                           primitives::VersionCamera<Policy>,
                                           primitives::NoCamera>
      camera_;
};

using CasPartialSnapshot = CasPartialSnapshotT<primitives::Instrumented>;
using CasPartialSnapshotFast = CasPartialSnapshotT<primitives::Release>;
using CasPartialSnapshotBlob =
    CasPartialSnapshotT<primitives::Instrumented, value::IndirectBlob>;
using CasPartialSnapshotBlobFast =
    CasPartialSnapshotT<primitives::Release, value::IndirectBlob>;
using CasPartialSnapshotVersioned =
    CasPartialSnapshotT<primitives::Instrumented, value::VersionedU64>;
using CasPartialSnapshotVersionedFast =
    CasPartialSnapshotT<primitives::Release, value::VersionedU64>;

}  // namespace psnap::core
