// Figure 1: wait-free partial snapshot from registers.
//
// Per component i, a register R[i] holds (a pointer to) an immutable record
// (value, view, counter, id).  Updates write a fresh record whose view is
// the result of an *embedded partial scan* covering the union of the
// component sets announced by currently-active scanners; scanners announce
// in A[pid] and register themselves in an active set around their embedded
// scan.  An embedded scan terminates when either
//
//   (1) two consecutive collects are identical (the values were
//       simultaneously present between the collects), or
//   (2) the same process has been observed to publish two records that
//       each *appeared as a change* during this scan ("moved twice"): the
//       later of the two belongs to an update whose own embedded scan
//       started after this one, so its view may be borrowed (it covers our
//       announced components -- asserted at extraction time).  This is the
//       multi-writer-sound reading of the paper's "three different values
//       written by the same process have been seen (in any locations)";
//       see the implementation comment for why the literal reading is a
//       single-writer artifact.
//
// Linearization (paper Section 3): updates at their register write; a
// condition-(1) embedded scan between its two identical collects; a
// condition-(2) embedded scan at the linearization point of the embedded
// scan it borrows from; a scan at its embedded scan.
//
// Runtime policy (see primitives.h): RegisterPartialSnapshotT<Instrumented>
// is the step-counted, sim-safe build; the Release instantiation
// ("fig1_register_fast") publishes records with release exchanges and
// collects with acquire loads -- the memory-order downgrade arguments are
// at the use sites in register_psnap.cpp and tabulated in README.md.
//
// Value plane (see primitives/value_plane.h): the second template
// parameter picks the payload representation.  DirectU64 is the paper's
// word component, bit-identical to the historical code; IndirectBlob
// embeds a variable-size byte payload in the record, riding the same
// publication, helping, pooling, and crash-unwind machinery -- the
// algorithm synchronizes on record identity, never on payload shape, so
// nothing in the protocol changes and step counts are plane-invariant.
//
// Steady-state updates and scans are allocation-free: Records and
// announcement IndexSets recycle through reclaim::Pool free lists (on the
// blob plane the payload buffers keep their capacity across record lives).
//
// Dynamic runtime: components live in grow-only segmented storage, so
// add_components() extends the vector at runtime (never invalidating a
// concurrent reader's pointers) and num_components() is a monotone count;
// per-pid state (announcements, counters) is likewise segment-backed and
// keyed by dynamically registered pids (exec::ThreadRegistry), with
// max_processes only an upper bound on concurrently live pids.
#pragma once

#include <memory>
#include <vector>

#include "activeset/active_set.h"
#include "common/padding.h"
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/record.h"
#include "core/scan_context.h"
#include "exec/pid_bound.h"
#include "primitives/primitives.h"
#include "primitives/value_plane.h"
#include "reclaim/ebr.h"
#include "reclaim/pool.h"

namespace psnap::core {

template <class Policy = primitives::Instrumented,
          class Value = value::DirectU64>
class RegisterPartialSnapshotT final : public PartialSnapshot {
 public:
  using ValueType = typename Value::ValueType;
  using Rec = RecordT<ValueType>;
  using ViewV = ViewT<ValueType>;

  // active_set defaults to the register-only implementation in the same
  // runtime policy (the paper's Figure 1 uses a register-based active
  // set); injectable so benches can pair Figure 1 with the Figure 2 active
  // set too.
  // `bound` is the per-pid walk bound (exec/pid_bound.h): it reaches the
  // default-constructed active set's collect and sizes the condition-(2)
  // helping table, so both cost O(live pids) under the default adaptive
  // provider.  An injected active_set carries its own bound.
  RegisterPartialSnapshotT(std::uint32_t initial_components,
                           std::uint32_t max_processes,
                           std::unique_ptr<activeset::ActiveSet> active_set =
                               nullptr,
                           std::uint64_t initial_value = 0,
                           exec::PidBound bound = {});
  ~RegisterPartialSnapshotT() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override {
    if constexpr (Value::kIndirect) {
      return Policy::kCountsSteps ? "fig1-register-blob"
                                  : "fig1-register-blob-fast";
    } else {
      return Policy::kCountsSteps ? "fig1-register" : "fig1-register-fast";
    }
  }
  bool is_wait_free() const override { return true; }
  // Scans are contention-local but the helping machinery makes update cost
  // depend on scanner announcements, not on m; scan steps never depend on
  // m either.  (The active-set term of the default register active set is
  // O(n); see DESIGN.md substitutions.)
  bool is_local() const override { return true; }
  std::string_view value_plane() const override { return Value::kName; }

  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, ScanContext& ctx) override;
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<value::Blob>& out, ScanContext& ctx) override;
  using PartialSnapshot::scan;
  using PartialSnapshot::scan_blobs;

  activeset::ActiveSet& active_set() { return *as_; }

  // Pool observability for the allocation tests.
  const reclaim::Pool<Rec>& record_pool() const { return record_pool_; }

 private:
  // Runs the embedded partial scan over `args` (sorted unique), filling
  // the context's plane view with a sorted view covering at least
  // `args`... for condition (1) exactly `args`; for condition (2) whatever
  // the borrowed view covers (a superset of every set announced by
  // scanners that joined before this embedded scan began -- which is what
  // scan() relies on).
  const ViewV& embedded_scan(std::span<const std::uint32_t> args,
                             ScanContext& ctx);

  // The one update body; `fill` writes the new payload into the record
  // (u64 encoding or blob bytes).
  template <class Fill>
  void do_update(std::uint32_t i, Fill&& fill);
  // The one scan body; `extract` pulls the caller's components out of the
  // final view (u64 decoding or blob copies).
  template <class Extract>
  void do_scan(std::span<const std::uint32_t> indices, ScanContext& ctx,
               Extract&& extract);

  // Published component count (monotone; see core/growth.h).
  GrowableSize size_;
  std::uint32_t n_;
  // Per-pid walk bound: sizes the embedded scan's moved-twice table (with
  // mid-scan regrowth when a fresh pid publishes; see seen_tracker in
  // register_psnap.cpp) and bounds the destructor's announcement sweep.
  exec::PidBound bound_;
  std::uint64_t initial_value_;
  // Pools before ebr_: ~EbrDomain flushes retired nodes into them.
  reclaim::Pool<Rec> record_pool_;
  reclaim::Pool<IndexSet> announce_pool_;
  // CachelinePadded: a Register is 16 bytes; without padding four
  // components (or four processes' announcement slots) would share a line
  // and false-share under concurrent traffic, matching counter_'s
  // treatment.  Segmented (grow-only) storage: slot addresses are stable
  // forever, so concurrent readers survive growth.
  ComponentStorage<
      CachelinePadded<primitives::Register<const Rec*, Policy>>>
      r_;
  PerPidStorage<
      CachelinePadded<primitives::Register<const IndexSet*, Policy>>>
      a_;
  std::unique_ptr<activeset::ActiveSet> as_;
  reclaim::EbrDomain ebr_;
  // Per-process publication counters (only the owner writes; reads by the
  // owner only), giving unique (pid, counter) record tags.  Counters are
  // keyed by pid, so a thread that re-registers under a reused pid simply
  // continues that pid's counter sequence -- tags stay unique.
  PerPidStorage<CachelinePadded<std::uint64_t>> counter_;
};

using RegisterPartialSnapshot =
    RegisterPartialSnapshotT<primitives::Instrumented>;
using RegisterPartialSnapshotFast =
    RegisterPartialSnapshotT<primitives::Release>;
using RegisterPartialSnapshotBlob =
    RegisterPartialSnapshotT<primitives::Instrumented, value::IndirectBlob>;
using RegisterPartialSnapshotBlobFast =
    RegisterPartialSnapshotT<primitives::Release, value::IndirectBlob>;

}  // namespace psnap::core
