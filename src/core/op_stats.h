// Per-operation observability counters.
//
// Reset at the start of every update/scan and filled in as the operation
// runs.  The benchmark harness reads them after each call to reproduce the
// quantities Theorems 1-3 are stated in (collects per embedded scan,
// embedded-scan argument counts, getSet sizes) without perturbing the
// algorithms.  Thread-local, so concurrent benchmark threads see their own.
#pragma once

#include <cstdint>

namespace psnap::core {

struct OpStats {
  // Collects performed by the operation's embedded scan.
  std::uint64_t collects = 0;
  // Operation terminated through condition (2) (borrowed a view).
  bool borrowed = false;
  // Number of argument components of the embedded scan (for updates: the
  // size of the union of announced scan sets).
  std::uint64_t embedded_args = 0;
  // Number of scanners returned by getSet (updates only).
  std::uint64_t getset_size = 0;
  // The update's compare&swap failed (CAS-based algorithm only).
  bool cas_failed = false;
  // Versioned plane: the longest version-chain walk any component of the
  // scan needed (1 = every head was already at or below the epoch -- the
  // quiescent steady state the chain-boundedness tests pin down).
  std::uint64_t chain_nodes = 0;
  // Versioned plane: the epoch the scan linearized at.
  std::uint64_t epoch = 0;
  // update_batch: number of distinct components the batch wrote (after
  // last-wins coalescing of duplicate indices).  0 for singleton ops.
  std::uint64_t batch_size = 0;

  void reset() { *this = OpStats{}; }
};

// Stats of the most recent operation performed by this thread.
OpStats& tls_op_stats();

}  // namespace psnap::core
