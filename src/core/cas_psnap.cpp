#include "core/cas_psnap.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/assert.h"
#include "core/moved_twice.h"
#include "core/op_stats.h"
#include "exec/exec.h"

namespace psnap::core {

namespace {

// CAS-mode condition-(2) bookkeeping record: per location, the distinct
// record TAGS seen there in first-seen order.  Tags ((pid, counter) pairs)
// rather than pointers, because tag equality is record identity on BOTH
// reclamation planes: published tags are never reused, initial records'
// (kInitPid, index) can collide with no real pid, and -- unlike pointers
// under hp, where an address can be recycled into a fresh publication
// between collects -- a tag read from a protected record stays meaningful
// after the protection moves on.  Arena storage zero-fills this, which is
// exactly its empty state.  The write-ablation mode's per-pid table is
// core::MovedTwiceTable.
struct PerLocation {
  std::uint64_t ctrs[3];
  std::uint32_t pids[3];
  std::uint32_t count;
};

}  // namespace

template <class Policy, class Value>
CasPartialSnapshotT<Policy, Value>::CasPartialSnapshotT(
    std::uint32_t initial_components, std::uint32_t max_processes)
    : CasPartialSnapshotT(initial_components, max_processes, Options{}) {}

template <class Policy, class Value>
CasPartialSnapshotT<Policy, Value>::CasPartialSnapshotT(
    std::uint32_t initial_components, std::uint32_t max_processes,
    Options options, std::uint64_t initial_value)
    : size_(initial_components),
      n_(max_processes),
      initial_value_(initial_value),
      options_(options),
      record_pool_(options.use_hp ? 1 : options.reclaim_shards),
      as_(std::make_unique<activeset::FaiCasActiveSetT<Policy>>(
          max_processes, options.active_set)),
      ebr_(options.use_hp ? 1 : options.reclaim_shards,
           kComponentSegmentSize),
      hp_(options.use_hp ? std::make_unique<reclaim::HazardDomain>()
                         : nullptr) {
  PSNAP_ASSERT(initial_components > 0 && n_ > 0);
  PSNAP_ASSERT_MSG(n_ <= reclaim::kPidSlots,
                   "max_processes exceeds the pid-slot capacity");
  // The registry rejects these spellings before construction; the asserts
  // are the backstop for direct construction.
  PSNAP_ASSERT_MSG(!(options.use_hp && !options.use_cas),
                   "reclaim=hp requires CAS publication: the write "
                   "ablation's moved-twice borrow may return a record no "
                   "hazard protects");
  PSNAP_ASSERT_MSG(!(Value::kVersioned && options.reclaim_shards > 1),
                   "the versioned plane requires shards == 1 (batch "
                   "helping dereferences records on arbitrary components; "
                   "use reclaim=hp for bounded tail latency instead)");
  PSNAP_ASSERT_MSG(!(options.use_hp && options.reclaim_shards > 1),
                   "reclaim=hp already bounds a stalled reader per record; "
                   "shards apply to the ebr plane only");
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    r_.at(i)->init(make_initial_record<Value>(initial_value, i), /*label=*/i);
  }
}

template <class Policy, class Value>
CasPartialSnapshotT<Policy, Value>::~CasPartialSnapshotT() {
  // Published records/announcements are owned here; everything in flight
  // through ebr_ drains into the pools when ebr_ is destroyed.
  const std::uint32_t m = size_.load();
  for (std::uint32_t i = 0; i < m; ++i) {
    const Rec* head = r_.at(i)->peek();
    if constexpr (Value::kVersioned) {
      // Chain-trim invariant: the only unretired nodes of a chain are the
      // head and its prev (everything older went through the pool when it
      // was displaced), so the destructor owns exactly those two.
      delete head->prev.load(std::memory_order_relaxed);
    }
    delete head;
  }
  // Any pid that ever announced is below the bound (its acquisition
  // raised the watermark first; destruction is quiescent).
  const std::uint32_t pids = options_.bound.get(n_);
  for (std::uint32_t p = 0; p < pids; ++p) {
    if (const auto* reg = s_.try_at(p)) delete (*reg)->peek();
  }
  if constexpr (Value::kVersioned) {
    // Crash sweep: a thread halted mid-update_batch leaves its descriptor
    // in the per-pid slot.  Installed members belong to their chains
    // (freed above or already recycled); the never-installed nodes and the
    // descriptor itself are reachable only from here.
    for (std::uint32_t p = 0; p < pids; ++p) {
      auto* slot = active_batch_.try_at(p);
      if (slot == nullptr) continue;
      BatchDesc* desc = (*slot)->load(std::memory_order_relaxed);
      if (desc == nullptr) continue;
      for (std::uint32_t e = 0; e < desc->slots.size(); ++e) {
        auto& entry = desc->slots[e];
        if (entry.node != nullptr &&
            !entry.installed.load(std::memory_order_relaxed)) {
          delete entry.node;
        }
      }
      delete desc;
    }
  }
}

template <class Policy, class Value>
std::uint32_t CasPartialSnapshotT<Policy, Value>::add_components(
    std::uint32_t count) {
  // Same initial-record construction as the constructor; nobody can read
  // a new slot until grow_components publishes the count.
  return grow_components(size_, r_, count, [this](auto& slot, std::uint32_t i) {
    slot->init(make_initial_record<Value>(initial_value_, i), /*label=*/i);
  });
}

template <class Policy, class Value>
auto CasPartialSnapshotT<Policy, Value>::embedded_scan(
    std::span<const std::uint32_t> args, ScanContext& ctx) -> const ViewV& {
  OpStats& stats = tls_op_stats();
  stats.embedded_args = args.size();
  ViewV& view = view_for<ValueType>(ctx);
  if (args.empty()) {
    view.clear();
    return view;
  }

  // Condition-(2) bookkeeping.
  //
  // CAS mode (the paper's Figure 3): per *location*, the distinct records
  // seen there in first-seen order; the third one's view is borrowed.
  // Three distinct values in one location are necessarily two changes over
  // time (a location shows one value per collect), so the second and third
  // were installed during this scan, and -- because updates publish with
  // CAS -- the third value's updater read the component after the second
  // was installed, i.e. after this scan began (Section 4.2's argument).
  // Release-mode note: "distinct values" is pointer inequality on one
  // location, and the borrow dereferences a pointer obtained by an acquire
  // load from that location, so the borrowed record's view is fully
  // visible; no cross-location ordering is consumed here.
  //
  // Write mode (ABL-3 ablation, plain-overwrite updates): the CAS argument
  // is unavailable, so we fall back to Figure 1's moved-twice per-process
  // rule, population-adaptively sized like Figure 1's (core/moved_twice.h).
  // The table only exists in that mode; CAS-mode scans pay nothing for it.
  std::span<PerLocation> seen_loc;
  std::optional<MovedTwiceTable<Rec>> seen_pid;
  if (options_.use_cas) {
    seen_loc = ctx.arena.take<PerLocation>(args.size());
  } else {
    seen_pid.emplace(ctx.arena, options_.bound.get(n_), n_);
  }

  // Paper: "let (v, view, c, id) be the third value seen in that
  // location".  Unlike Figure 1 this is by observation order, not by
  // highest counter.  Distinctness is judged by tag (see PerLocation).
  auto note_loc = [&seen_loc](std::size_t j, std::uint32_t rec_pid,
                              std::uint64_t rec_ctr) -> bool {
    PerLocation& s = seen_loc[j];
    for (std::uint32_t k = 0; k < s.count; ++k) {
      if (s.pids[k] == rec_pid && s.ctrs[k] == rec_ctr) return false;
    }
    s.pids[s.count] = rec_pid;
    s.ctrs[s.count] = rec_ctr;
    ++s.count;
    return s.count == 3;
  };
  auto note_move = [&seen_pid](const Rec* rec) {
    return seen_pid->note_move(rec);
  };

  // Double-buffered collect state: record pointers plus their tags.  The
  // change-detection and double-collect-exit comparisons use the TAGS --
  // under hp a prev-collect pointer may already dangle (and its address may
  // even have been recycled into a fresh publication), while tags read from
  // protected records stay meaningful forever.  The pointers are only
  // dereferenced where protection is live: cur[j] inside the collect that
  // loaded it (EBR: the whole function is pinned).
  std::span<const Rec*> prev = ctx.arena.take<const Rec*>(args.size());
  std::span<const Rec*> cur = ctx.arena.take<const Rec*>(args.size());
  std::span<std::uint64_t> prev_ctr = ctx.arena.take<std::uint64_t>(args.size());
  std::span<std::uint64_t> cur_ctr = ctx.arena.take<std::uint64_t>(args.size());
  std::span<std::uint32_t> prev_pid = ctx.arena.take<std::uint32_t>(args.size());
  std::span<std::uint32_t> cur_pid = ctx.arena.take<std::uint32_t>(args.size());
  bool have_prev = false;

  const std::uint64_t collect_bound =
      options_.use_cas ? 2ull * args.size() + 3 : 2ull * n_ + 3;

  while (true) {
    ++stats.collects;
    // Theorem 3's wait-freedom argument: every pair of differing
    // consecutive collects means some location changed, and a location can
    // change at most twice before its third distinct value fires
    // condition (2); hence at most 2r+1 collects in CAS mode.
    PSNAP_ASSERT_MSG(stats.collects <= collect_bound,
                     "figure-3 embedded scan exceeded its collect bound");
    if (hp_ != nullptr) view.resize(args.size());
    const Rec* borrow = nullptr;
    for (std::size_t j = 0; j < args.size(); ++j) {
      if (borrow != nullptr) {
        // Collect-length parity after the borrow fired: the remaining
        // locations are still read (one counted step each, as always), but
        // nothing is noted or dereferenced -- under hp these loads carry
        // no hazard.
        (void)r_.at(args[j])->load();
        continue;
      }
      const Rec* rec = hp_ ? protect_component(args[j], kHazRecord)
                           : r_.at(args[j])->load();
      cur[j] = rec;
      cur_pid[j] = rec->pid;
      cur_ctr[j] = rec->counter;
      if (hp_ != nullptr) {
        // Copy the entry NOW, while the kHazRecord hazard still covers
        // rec.  At the double-collect exit these per-entry copies ARE the
        // result: tag equality across the last two collects proves both
        // read the same records, but the records themselves may be
        // recycled the moment the hazard moves to the next location.
        view[j].index = args[j];
        Value::copy(rec->value, view[j].value);
      }
      if (options_.use_cas) {
        if (note_loc(j, cur_pid[j], cur_ctr[j])) borrow = rec;
      } else if (have_prev && (cur_pid[j] != prev_pid[j] ||
                               cur_ctr[j] != prev_ctr[j])) {
        borrow = note_move(rec);
      }
      if (borrow != nullptr) {
        stats.borrowed = true;
        // Copy (capacity-reusing, down to the blob plane's per-entry byte
        // buffers) rather than reference, and IMMEDIATELY: under EBR the
        // borrowed record is only guaranteed live while this operation
        // stays pinned; under hp it is only safe while the hazard that
        // just validated it still stands.  (A write-ablation borrow -- a
        // record remembered from an earlier collect -- is EBR-only: hp
        // rejects use_cas=false at construction.)
        view = borrow->view;
      }
    }
    if (borrow != nullptr) return view;
    if (have_prev &&
        std::equal(cur_pid.begin(), cur_pid.end(), prev_pid.begin()) &&
        std::equal(cur_ctr.begin(), cur_ctr.end(), prev_ctr.begin())) {
      if (hp_ != nullptr) return view;  // filled under protection above
      // resize+assign rather than clear+push_back keeps existing entries'
      // payload capacity (a blob-plane entry re-fills in place).
      view.resize(args.size());
      for (std::size_t j = 0; j < args.size(); ++j) {
        view[j].index = args[j];
        Value::copy(cur[j]->value, view[j].value);
      }
      return view;
    }
    std::swap(prev, cur);
    std::swap(prev_pid, cur_pid);
    std::swap(prev_ctr, cur_ctr);
    have_prev = true;
  }
}

template <class Policy, class Value>
auto CasPartialSnapshotT<Policy, Value>::protect_component(std::uint32_t i,
                                                           std::uint32_t hz)
    -> const Rec* {
  const Rec* p = r_.at(i)->load();
  if (hp_ == nullptr) return p;
  while (true) {
    hp_->set(hz, p);
    // Michael's protect protocol: republish until the location still holds
    // the protected pointer AFTER the hazard store is visible (both
    // seq_cst), so a reclaimer's scan that missed our hazard must have run
    // before we could have read its victim.  The re-read is a non-step
    // (peek_sync): under the sim scheduler no schedule point separates the
    // store from the validation, so this loop exits first try and step
    // counts stay plane-invariant.
    const Rec* q = r_.at(i)->peek_sync();
    if (q == p) return p;
    // The head moved before our hazard settled; adopt the newer head.
    // Returning a newer record than the counted load read is sound: the
    // component read linearizes at the validating re-read, which is still
    // inside this operation.
    p = q;
  }
}

template <class Policy, class Value>
template <class Fill>
void CasPartialSnapshotT<Policy, Value>::do_update(std::uint32_t i,
                                                   Fill&& fill) {
  if constexpr (Value::kVersioned) {
    tls_op_stats().reset();
    // fig3's try-once publication, unchanged: a failed singleton update
    // has already linearized immediately before its winner, so it does
    // not retry (batch code does -- see do_update_batch).
    (void)do_update_versioned(i, fill);
    return;
  }

  PSNAP_ASSERT(i < size_.load());
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  tls_op_stats().reset();
  ScanContext& ctx = tls_scan_context();
  ctx.begin();
  reclaim::ShardedEbr::MultiGuard guard(ebr_);
  HpClear hp_clear{hp_.get()};
  if (hp_ == nullptr) guard.pin_component(i);

  // Figure 3 reads the current record before anything else; the CAS at the
  // end succeeds only if the component was not updated in between.
  // Release mode: acquire load; the record is only compared by address
  // until the CAS, and if dereferenced (retire path) the acquire pairs
  // with the publishing CAS's release.  hp: the head stays protected in
  // kHazOld through the CAS below, which also closes the ABA window -- a
  // protected record cannot be recycled, so the CAS can only succeed
  // against the very record this load read.
  const Rec* old = protect_component(i, kHazOld);

  as_->get_set(ctx.scanners);
  tls_op_stats().getset_size = ctx.scanners.size();

  if (hp_ == nullptr) guard.pin_meta();
  ctx.union_args.clear();
  for (std::uint32_t p : ctx.scanners) {
    // try_at: a pid that joined without ever announcing has no slot; an
    // absent segment reads as "no announcement" without allocating on the
    // update path.  (A scanner always announces before joining, and its
    // segment install happens-before the join its getSet observed.)
    const auto* slot = s_.try_at(p);
    const IndexSet* announced = slot ? (*slot)->load() : nullptr;
    if (hp_ != nullptr) {
      // Validated hazard over the announcement while its indices are
      // copied (EBR: the meta pin above protects announcements wholesale).
      // The load above is the counted step; the validation re-reads are
      // non-step peeks, as in protect_component.
      while (announced != nullptr) {
        hp_->set(kHazAnnounce, announced);
        const IndexSet* again = (*slot)->peek_sync();
        if (again == announced) break;
        announced = again;
      }
    }
    if (announced != nullptr) {
      ctx.union_args.insert(ctx.union_args.end(), announced->indices.begin(),
                            announced->indices.end());
    }
  }
  if (hp_ != nullptr) hp_->clear(kHazAnnounce);
  std::sort(ctx.union_args.begin(), ctx.union_args.end());
  ctx.union_args.erase(
      std::unique(ctx.union_args.begin(), ctx.union_args.end()),
      ctx.union_args.end());

  if (hp_ == nullptr) guard.pin_components(ctx.union_args);
  const ViewV& view = embedded_scan(ctx.union_args, ctx);

  // Counter is bumped only when the record is actually published
  // (paper: "if the compare&swap was successful then counter++"); tags of
  // *published* records stay unique either way, because a failed record is
  // never visible to anyone.
  //
  // The record comes from the pool (capacity-reusing; zero steady-state
  // allocations) and goes back to it on every non-publishing exit -- the
  // CAS-failure path and an injected halt at the publish step both unwind
  // through the Handle instead of leaking.
  auto rec = acquire_record(i);
  fill(rec->value);
  rec->counter = counter_.at(pid).value + 1;
  rec->pid = pid;
  rec->view = view;  // capacity-reusing copy into the recycled vector

  if (options_.use_cas) {
    // Release mode: the CAS is acq_rel -- release so the record built
    // above is visible to any acquire load of R[i] that sees it, acquire
    // so the returned `prev` may be handed to reclamation.
    const Rec* prev = r_.at(i)->compare_and_swap(old, rec.get());
    if (prev == old) {
      rec.release();
      ++counter_.at(pid).value;
      recycle_record(i, old);
    } else {
      // Linearized immediately before the update that beat us; our record
      // was never published, so it returns straight to the pool.
      tls_op_stats().cas_failed = true;
    }
  } else {
    // ABL-3 ablation: publish with a plain overwrite, as Figure 1 does.
    // A CasObject has no store operation, so emulate the register write
    // with a CAS retry loop; this path exists only to measure what the
    // paper's switch to CAS buys (Section 4's second modification).
    // EBR-only (hp rejects use_cas=false), so `cur` needs no hazard.
    ++counter_.at(pid).value;
    const Rec* cur = old;
    while (true) {
      const Rec* prev = r_.at(i)->compare_and_swap(cur, rec.get());
      if (prev == cur) break;
      cur = prev;
    }
    rec.release();
    recycle_record(i, cur);
  }
}

template <class Policy, class Value>
template <class Fill>
bool CasPartialSnapshotT<Policy, Value>::do_update_versioned(std::uint32_t i,
                                                             Fill&& fill) {
  if constexpr (!Value::kVersioned) {
    (void)i;
    (void)fill;
    PSNAP_ASSERT_MSG(false, "do_update_versioned on a non-versioned plane");
    return true;
  } else {
    // Versioned plane: append one node to the component's version chain.
    // No getSet, no embedded scan -- the write path's interference is a
    // constant handful of steps no matter how many scanners are live.
    // Callers reset tls_op_stats(); batch code invokes this in a retry
    // loop, so the stats accumulate across attempts by design.
    PSNAP_ASSERT(i < size_.load());
    std::uint32_t pid = exec::ctx().pid;
    PSNAP_ASSERT(pid < n_);
    reclaim::ShardedEbr::MultiGuard guard(ebr_);
    HpClear hp_clear{hp_.get()};
    if (hp_ == nullptr) guard.pin_component(i);  // == pin(0): one shard

    // hp: the head stays protected in kHazOld through the stamp fix and
    // the CAS (which also closes the ABA window, as in the collect path).
    const Rec* old = protect_component(i, kHazOld);
    // Fix the displaced head's version BEFORE publishing over it: chain
    // versions then never decrease in publication order, which is what
    // the reader walk's termination and cut arguments rest on
    // (version_chain.h).
    primitives::ensure_stamped<Policy>(*old, camera_);

    auto rec = acquire_record(i);
    fill(rec->value);
    rec->counter = counter_.at(pid).value + 1;
    rec->pid = pid;
    rec->view.clear();  // versioned updates carry no helping view
    rec->version.store(primitives::kUnstamped, std::memory_order_relaxed);
    rec->prev.store(old, std::memory_order_relaxed);
    // A recycled record may have been a batch member in a previous life;
    // a singleton publication must not route stampers to a stale
    // descriptor.
    rec->batch.store(nullptr, std::memory_order_relaxed);

    // A failed update's node -- never published -- unwinds straight back
    // to the pool through the Handle.
    Rec* node = rec.get();
    const Rec* prev = r_.at(i)->compare_and_swap(old, node);
    if (prev == old) {
      rec.release();
      ++counter_.at(pid).value;
      // Lazy chain trim.  With `node` now head and `old` its prev, no
      // reader pinned from here on can reach past `old` (its stamp
      // predates every future epoch), so exactly old->prev retires; the
      // live unretired set per component stays {head, head->prev}.  This
      // runs before the self-stamp's first step on purpose: an injected
      // halt below can orphan no node.  old->prev is safe to read on both
      // planes: old is still protected (kHazOld / the pin).
      if (const Rec* trim = old->prev.load(std::memory_order_relaxed)) {
        recycle_record(i, trim);
      }
      // Self-stamp (the update's linearization point, unless a racing
      // reader or displacer already fixed it).
      if (hp_ != nullptr) {
        // `node` left our ownership at the CAS; re-protect before
        // dereferencing.  If the head is still `node` the hazard is valid
        // (a head is never retired).  If it moved on, skip: whoever
        // displaced `node` ensure_stamped it BEFORE its CAS, so the stamp
        // is already fixed.  (If node's address was recycled into a fresh
        // publication on this same component, the stamp call lands on a
        // live head -- exactly what any concurrent reader may do, and a
        // no-op once that record is stamped.)
        hp_->set(kHazPrev, node);
        if (r_.at(i)->peek_sync() == node) {
          primitives::ensure_stamped<Policy>(*node, camera_);
        }
      } else {
        primitives::ensure_stamped<Policy>(*node, camera_);
      }
      return true;
    }
    tls_op_stats().cas_failed = true;
    // A failed update linearizes immediately before the update that
    // beat it, so the winner's linearization point -- its stamp fix,
    // which lazy stamping would otherwise leave floating -- must be
    // pinned before this op responds.  Otherwise a scan invoked after
    // our response can fetch an epoch below the winner's eventual
    // stamp and observe the pre-race value, ordering both updates
    // after an operation that real-time-follows this one.  `prev` is
    // the head our CAS observed: either the winner itself (stamp it
    // here), or a later node whose publisher already fixed the
    // winner's stamp before displacing it -- ensure_stamped settles
    // both, and resolves the batch first when the winner is a batch
    // member.  hp cannot deref the unprotected `prev`; it re-reads the
    // CURRENT head under a hazard instead, which settles the winner by
    // the same induction (every displaced node was stamped by its
    // displacer pre-CAS, so stamping the current head pins the whole
    // prefix, the winner included).
    if (hp_ != nullptr) {
      const Rec* head = protect_component(i, kHazPrev);
      primitives::ensure_stamped<Policy>(*head, camera_);
    } else {
      primitives::ensure_stamped<Policy>(*prev, camera_);
    }
    return false;
  }
}

template <class Policy, class Value>
void CasPartialSnapshotT<Policy, Value>::update(std::uint32_t i,
                                                std::uint64_t v) {
  do_update(i, [v](ValueType& out) { Value::encode(v, out); });
}

template <class Policy, class Value>
void CasPartialSnapshotT<Policy, Value>::resolve_batch(const BatchDesc& desc) {
  if constexpr (Value::kVersioned) {
    primitives::batch_install_and_resolve<Policy>(
        desc.slots.data(), desc.slots.size(), desc, camera_,
        [this](std::uint32_t i) -> auto& { return *r_.at(i); },
        [this](const Rec* displaced) {
          // Lazy chain trim, as in the singleton update: with the batch
          // node now head and `displaced` its prev, nothing older than
          // `displaced` is reachable by any future reader.
          if (const Rec* trim =
                  displaced->prev.load(std::memory_order_relaxed)) {
            // Descriptors exist only in ebr mode (hp batches fall back to
            // singleton publication), and the versioned plane forces one
            // shard, so meta() is THE domain here.
            record_pool_.recycle(ebr_.meta(), const_cast<Rec*>(trim));
          }
        });
  } else {
    (void)desc;
    PSNAP_ASSERT_MSG(false, "resolve_batch on a non-versioned plane");
  }
}

template <class Policy, class Value>
template <class EntryT, class Fill>
void CasPartialSnapshotT<Policy, Value>::do_update_batch(
    std::span<const EntryT> entries, Fill&& fill) {
  if (entries.empty()) return;
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  const std::uint32_t m = size_.load();
  for (const EntryT& e : entries) PSNAP_ASSERT(e.index < m);

  if (hp_ != nullptr) {
    // hp fallback: per-entry singleton publication, decided BEFORE the
    // ScanContext is touched (do_update/do_update_versioned begin() the
    // shared context themselves, which would clobber any merged-entry
    // scratch held across them).  Entries apply in order, so duplicate
    // indices degenerate to last-wins exactly like the merged path below.
    // The versioned batch contract -- no dropped writes -- is kept by
    // retrying each entry to CAS success; collect entries keep fig3's
    // try-once CAS.  No descriptor is ever created under hp, so the
    // install engine's cross-component helping (which dereferences other
    // components' heads without a hazard) never runs -- the atomicity
    // downgrade batch_atomicity() reports.
    for (const EntryT& e : entries) {
      if constexpr (Value::kVersioned) {
        tls_op_stats().reset();
        while (!do_update_versioned(e.index,
                                    [&](ValueType& out) { fill(e, out); })) {
        }
      } else {
        do_update(e.index, [&](ValueType& out) { fill(e, out); });
      }
    }
    // batch_size reports DISTINCT components, like the merged path.
    std::uint32_t distinct = 0;
    for (std::size_t a = 0; a < entries.size(); ++a) {
      bool seen = false;
      for (std::size_t b = 0; b < a && !seen; ++b) {
        seen = entries[b].index == entries[a].index;
      }
      if (!seen) ++distinct;
    }
    tls_op_stats().batch_size = distinct;
    return;
  }

  OpStats& stats = tls_op_stats();
  stats.reset();
  ScanContext& ctx = tls_scan_context();
  ctx.begin();
  reclaim::ShardedEbr::MultiGuard guard(ebr_);
  guard.pin_meta();
  for (const EntryT& e : entries) guard.pin_component(e.index);

  // Coalesce duplicate indices, later entries winning -- a batch is one
  // protocol instance, so "apply in order" degenerates to last-wins per
  // component.  Linear scan: batches are small (the coalescing front-end
  // caps them) and the scratch is arena storage, so this is branchy but
  // allocation-free.
  std::span<const EntryT*> merged =
      ctx.arena.take<const EntryT*>(entries.size());
  std::uint32_t count = 0;
  for (const EntryT& e : entries) {
    std::uint32_t j = 0;
    while (j < count && merged[j]->index != e.index) ++j;
    merged[j] = &e;
    if (j == count) ++count;
  }
  stats.batch_size = count;

  if constexpr (Value::kVersioned) {
    // Ascending component order is the install engine's help-ordering
    // invariant (version_chain.h): recursion across overlapping batches
    // strictly increases the index, so helping terminates.
    std::sort(merged.begin(), merged.begin() + count,
              [](const EntryT* a, const EntryT* b) {
                return a->index < b->index;
              });

    auto desc_handle = batch_pool_.acquire(ebr_.meta());
    BatchDesc* desc = desc_handle.get();
    desc->owner = this;
    desc->version.store(primitives::kUnstamped, std::memory_order_relaxed);
    desc->slots.reset(count);
    for (std::uint32_t j = 0; j < count; ++j) {
      desc->slots[j].index = merged[j]->index;
    }
    // Publish the descriptor for the crash sweep BEFORE any node leaves
    // the pool: from here on, every acquired node is reachable from the
    // slot table, so an injected halt anywhere below leaks nothing (the
    // destructor frees never-installed nodes; helpers finish the rest).
    active_batch_.at(pid)->store(desc_handle.release(),
                                 std::memory_order_release);

    for (std::uint32_t j = 0; j < count; ++j) {
      auto rec = acquire_record(merged[j]->index);
      fill(*merged[j], rec->value);
      // Tags of published records stay unique: one counter stride per
      // member, bumped below once the whole table is handed over.
      rec->counter = counter_.at(pid).value + 1 + j;
      rec->pid = pid;
      rec->view.clear();
      rec->version.store(primitives::kUnstamped, std::memory_order_relaxed);
      rec->prev.store(nullptr, std::memory_order_relaxed);
      rec->batch.store(desc, std::memory_order_relaxed);
      desc->slots[j].node = rec.release();
    }
    counter_.at(pid).value += count;

    // ONE helping round for the k writes: install every entry (ascending,
    // with concurrent helpers), then fix the one shared stamp -- the
    // batch's linearization point.
    resolve_batch(*desc);

    // Copy the shared stamp into each member's own version word so the
    // read fast path never dereferences the descriptor again, then retire
    // the descriptor through its pool (one grace period for the batch).
    const std::uint64_t stamp =
        desc->version.load(std::memory_order_acquire);
    stats.epoch = stamp;
    for (std::uint32_t j = 0; j < count; ++j) {
      primitives::stamp_version<Policy>(*desc->slots[j].node, stamp);
    }
    active_batch_.at(pid)->store(nullptr, std::memory_order_relaxed);
    batch_pool_.recycle(ebr_.meta(), desc);
    return;
  } else {
    // Collect planes: the amortization is ONE getSet + announced-set
    // union + embedded scan (the helping round) shared by every record of
    // the batch.  Each record still publishes with fig3's try-once CAS,
    // so entries linearize individually (kAmortized).
    //
    // Phase 1: read each component's current record BEFORE the helping
    // round -- the condition-(2) borrow argument needs a published
    // record's embedded scan to have started after its old-value read,
    // exactly as in the singleton protocol.
    std::span<const Rec*> olds = ctx.arena.take<const Rec*>(count);
    for (std::uint32_t j = 0; j < count; ++j) {
      olds[j] = r_.at(merged[j]->index)->load();
    }

    // Phase 2: the shared helping round.
    as_->get_set(ctx.scanners);
    stats.getset_size = ctx.scanners.size();
    ctx.union_args.clear();
    for (std::uint32_t p : ctx.scanners) {
      const auto* slot = s_.try_at(p);
      const IndexSet* announced = slot ? (*slot)->load() : nullptr;
      if (announced != nullptr) {
        ctx.union_args.insert(ctx.union_args.end(),
                              announced->indices.begin(),
                              announced->indices.end());
      }
    }
    std::sort(ctx.union_args.begin(), ctx.union_args.end());
    ctx.union_args.erase(
        std::unique(ctx.union_args.begin(), ctx.union_args.end()),
        ctx.union_args.end());
    guard.pin_components(ctx.union_args);
    const ViewV& view = embedded_scan(ctx.union_args, ctx);

    // Phase 3: one pooled record and one publication per entry.  Every
    // record of the batch carries the SAME counter -- the counter is an
    // operation sequence number, and the moved-twice table (write-ablation
    // mode and the full-snapshot baseline) counts moves per operation, so
    // a batch's k publications must read as one move.  Record identity
    // (the CAS compare, condition (2)'s per-location values) is pointer
    // identity under EBR, which same-tag records do not perturb.
    const std::uint64_t batch_counter = counter_.at(pid).value + 1;
    ++counter_.at(pid).value;
    for (std::uint32_t j = 0; j < count; ++j) {
      const std::uint32_t i = merged[j]->index;
      auto rec = acquire_record(i);
      fill(*merged[j], rec->value);
      rec->counter = batch_counter;
      rec->pid = pid;
      rec->view = view;
      if (options_.use_cas) {
        const Rec* prev = r_.at(i)->compare_and_swap(olds[j], rec.get());
        if (prev == olds[j]) {
          rec.release();
          recycle_record(i, olds[j]);
        } else {
          // Linearized immediately before the update that beat us; the
          // record unwinds to the pool through its Handle.
          stats.cas_failed = true;
        }
      } else {
        // ABL-3 ablation: register-style overwrite via CAS retry.
        const Rec* cur = olds[j];
        while (true) {
          const Rec* prev = r_.at(i)->compare_and_swap(cur, rec.get());
          if (prev == cur) break;
          cur = prev;
        }
        rec.release();
        recycle_record(i, cur);
      }
    }
  }
}

template <class Policy, class Value>
void CasPartialSnapshotT<Policy, Value>::update_batch(
    std::span<const BatchEntry> entries) {
  do_update_batch(entries, [](const BatchEntry& e, ValueType& out) {
    Value::encode(e.value, out);
  });
}

template <class Policy, class Value>
void CasPartialSnapshotT<Policy, Value>::update_batch_blob(
    std::span<const BlobBatchEntry> entries) {
  if constexpr (Value::kIndirect) {
    do_update_batch(entries, [](const BlobBatchEntry& e, ValueType& out) {
      Value::assign(out, e.bytes);
    });
  } else {
    PartialSnapshot::update_batch_blob(entries);
  }
}

template <class Policy, class Value>
void CasPartialSnapshotT<Policy, Value>::update_blob(
    std::uint32_t i, std::span<const std::byte> bytes) {
  if constexpr (Value::kIndirect) {
    do_update(i, [bytes](ValueType& out) { Value::assign(out, bytes); });
  } else {
    PartialSnapshot::update_blob(i, bytes);
  }
}

template <class Policy, class Value>
template <class Extract>
void CasPartialSnapshotT<Policy, Value>::do_scan(
    std::span<const std::uint32_t> indices, ScanContext& ctx,
    Extract&& extract) {
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  const std::uint32_t m = size_.load();
  for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
  tls_op_stats().reset();
  ctx.begin();
  reclaim::ShardedEbr::MultiGuard guard(ebr_);
  HpClear hp_clear{hp_.get()};

  canonical_indices_into(indices, ctx.canonical);
  if (hp_ == nullptr) {
    guard.pin_meta();
    guard.pin_components(ctx.canonical);
  }

  // Publish the announcement only when the set actually changed.  S[pid]
  // is single-writer (only this process stores to it), so peeking our own
  // register is local state, not a shared-object step; when the canonical
  // set matches what is already announced, re-publishing an identical
  // IndexSet would only churn the pool and the EBR retire list.  The
  // announcement itself is pooled: republishing a changed set reuses a
  // recycled IndexSet's capacity, so steady-state scans -- even ones that
  // alternate between shapes -- allocate nothing.
  // Dereferencing our own announcement needs no protection on EITHER
  // plane: S[pid] is single-writer, so only this process ever retires it,
  // and it has not done so yet.
  const IndexSet* announced = s_.at(pid)->peek();
  if (announced == nullptr || announced->indices != ctx.canonical) {
    auto announce = acquire_announce();
    announce->indices.assign(ctx.canonical.begin(), ctx.canonical.end());
    const IndexSet* old_announce = s_.at(pid)->exchange(announce.get());
    announce.release();
    if (old_announce != nullptr) {
      recycle_announce(old_announce);
    }
  }
  as_->join();
  // Scanner end of the announce/join-vs-getSet handshake (see
  // primitives.h): the announcement exchange and the join's stores must
  // drain before our collect loads run, or a concurrent update's getSet
  // could miss us after our embedded scan has already begun -- which
  // would break the condition-(2) borrow coverage argument.
  primitives::protocol_fence<Policy>();
  const ViewV& view = embedded_scan(ctx.canonical, ctx);
  as_->leave();

  extract(view);
}

template <class Policy, class Value>
std::uint64_t CasPartialSnapshotT<Policy, Value>::do_scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out) {
  if constexpr (Value::kVersioned) {
    PSNAP_ASSERT(exec::ctx().pid < n_);
    const std::uint32_t m = size_.load();
    for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
    OpStats& stats = tls_op_stats();
    stats.reset();
    reclaim::ShardedEbr::MultiGuard guard(ebr_);
    HpClear hp_clear{hp_.get()};
    out.resize(indices.size());

    if (hp_ == nullptr) {
      guard.pin_components(indices);  // one shard on this plane
      // The scan's linearization point: every stamp fixed before this
      // fetch-add is <= epoch, every later one is > epoch, so the values
      // extracted below form a consistent cut -- no announce, no join, no
      // collect, O(1) steps per requested component.
      const std::uint64_t epoch = camera_.new_epoch();
      stats.epoch = epoch;
      for (std::size_t k = 0; k < indices.size(); ++k) {
        std::uint64_t walked = 0;
        const Rec* node = primitives::chain_read<Policy>(
            r_.at(indices[k])->load(), epoch, camera_, walked);
        out[k] = Value::decode(node->value);
        stats.chain_nodes = std::max(stats.chain_nodes, walked);
      }
      return epoch;
    }

    // hp: hazards can protect at most {head, head->prev} per component --
    // anything older may already be freed (the lazy trim retires
    // old->prev on every publication), so the walk cannot go deeper.
    // Depth 2 is exactly the chain-trim invariant's live set; needing the
    // third node means at least two updates published on this component
    // AFTER our fetch-add, and we restart the WHOLE scan with a fresh
    // epoch rather than walk unprotected memory.  Every stamp fixed
    // before the new fetch-add is <= the new epoch, so a quiescent
    // component always satisfies the depth-2 read; the scan only loops
    // while concurrent updates keep landing -- lock-free, not wait-free
    // (is_wait_free() reports this).
    while (true) {
      const std::uint64_t epoch = camera_.new_epoch();
      stats.epoch = epoch;
      bool restart = false;
      for (std::size_t k = 0; k < indices.size() && !restart; ++k) {
        const std::uint32_t i = indices[k];
        const Rec* head = protect_component(i, kHazOld);
        // A head is live by definition; stamp-fix it like chain_read does.
        const std::uint64_t vh =
            primitives::ensure_stamped<Policy>(*head, camera_);
        if (vh <= epoch) {
          out[k] = Value::decode(head->value);
          stats.chain_nodes = std::max<std::uint64_t>(stats.chain_nodes, 1);
          continue;
        }
        const Rec* w = head->prev.load(std::memory_order_acquire);
        // vh > epoch rules out the initial record (stamped 0 < every
        // epoch), and every published update carries a non-null prev.
        PSNAP_ASSERT(w != nullptr);
        hp_->set(kHazPrev, w);
        // Validate the pair-hazard: if the component still heads `head`
        // AFTER our hazard on `w` is visible, then `w` (== head->prev, an
        // immutable field) has not been retired -- only the update that
        // displaces `head` retires it -- so the hazard caught it in time.
        if (r_.at(i)->peek_sync() != head) {
          restart = true;
          break;
        }
        // w's stamp was fixed by head's publisher BEFORE head went live,
        // so this ensure_stamped is a pure read on the fast path.
        const std::uint64_t vw =
            primitives::ensure_stamped<Policy>(*w, camera_);
        if (vw <= epoch) {
          out[k] = Value::decode(w->value);
          stats.chain_nodes = std::max<std::uint64_t>(stats.chain_nodes, 2);
        } else {
          restart = true;
        }
      }
      if (!restart) return epoch;
    }
  } else {
    (void)indices;
    (void)out;
    PSNAP_ASSERT_MSG(false, "do_scan_versioned on a non-versioned plane");
    return 0;
  }
}

template <class Policy, class Value>
std::uint64_t CasPartialSnapshotT<Policy, Value>::scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    ScanContext& ctx) {
  if constexpr (Value::kVersioned) {
    (void)ctx;  // the versioned walk needs no scratch
    return do_scan_versioned(indices, out);
  } else {
    return PartialSnapshot::scan_versioned(indices, out, ctx);
  }
}

template <class Policy, class Value>
void CasPartialSnapshotT<Policy, Value>::scan(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    ScanContext& ctx) {
  if constexpr (Value::kVersioned) {
    // Every u64-driven harness exercises the versioned read path.
    do_scan_versioned(indices, out);
    return;
  }
  out.clear();
  if (indices.empty()) return;
  do_scan(indices, ctx, [&](const ViewV& view) {
    out.reserve(indices.size());
    for (std::uint32_t i : indices) {
      const ViewEntryT<ValueType>* e = view_find(view, i);
      PSNAP_ASSERT_MSG(e != nullptr,
                       "borrowed view is missing an announced component");
      out.push_back(Value::decode(e->value));
    }
  });
}

template <class Policy, class Value>
void CasPartialSnapshotT<Policy, Value>::scan_blobs(
    std::span<const std::uint32_t> indices, std::vector<value::Blob>& out,
    ScanContext& ctx) {
  if constexpr (Value::kIndirect) {
    if (indices.empty()) {
      out.clear();
      return;
    }
    // resize, not clear: surviving elements keep their byte capacity.
    out.resize(indices.size());
    do_scan(indices, ctx, [&](const ViewV& view) {
      for (std::size_t k = 0; k < indices.size(); ++k) {
        const ViewEntryT<ValueType>* e = view_find(view, indices[k]);
        PSNAP_ASSERT_MSG(e != nullptr,
                         "borrowed view is missing an announced component");
        Value::copy(e->value, out[k]);
      }
    });
  } else {
    PartialSnapshot::scan_blobs(indices, out, ctx);
  }
}

template class CasPartialSnapshotT<primitives::Instrumented,
                                   value::DirectU64>;
template class CasPartialSnapshotT<primitives::Release, value::DirectU64>;
template class CasPartialSnapshotT<primitives::Instrumented,
                                   value::IndirectBlob>;
template class CasPartialSnapshotT<primitives::Release, value::IndirectBlob>;
template class CasPartialSnapshotT<primitives::Instrumented,
                                   value::VersionedU64>;
template class CasPartialSnapshotT<primitives::Release, value::VersionedU64>;

}  // namespace psnap::core
