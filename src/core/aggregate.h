// Consistent aggregation over partial scans.
//
// The paper's related-work section (Section 5) discusses Jayanti's
// f-array, which returns a function of *all* components.  The partial
// snapshot object gives the natural generalization for free: evaluate f
// over an atomic view of any chosen subset.  These helpers package that
// pattern -- they are exactly "partial scan, then fold locally", so every
// guarantee (linearizability, wait-freedom, locality) carries over from
// the underlying scan unchanged: the aggregate equals f applied to the
// component values at the scan's linearization point.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "core/partial_snapshot.h"

namespace psnap::core {

// Folds f over a consistent view of the given components.
// f: (Accumulator, std::uint64_t value) -> Accumulator.
template <class Accumulator, class Fn>
Accumulator scan_reduce(PartialSnapshot& snapshot,
                        std::span<const std::uint32_t> indices,
                        Accumulator init, Fn&& f) {
  thread_local std::vector<std::uint64_t> scratch;
  snapshot.scan(indices, scratch);
  Accumulator acc = std::move(init);
  for (std::uint64_t v : scratch) {
    acc = f(std::move(acc), v);
  }
  return acc;
}

// Sum of a consistent view (the stock-portfolio valuation of Section 1).
inline std::uint64_t scan_sum(PartialSnapshot& snapshot,
                              std::span<const std::uint32_t> indices) {
  return scan_reduce(snapshot, indices, std::uint64_t{0},
                     [](std::uint64_t acc, std::uint64_t v) { return acc + v; });
}

// Minimum and maximum of a consistent view.  Requires a non-empty subset.
std::pair<std::uint64_t, std::uint64_t> scan_min_max(
    PartialSnapshot& snapshot, std::span<const std::uint32_t> indices);

}  // namespace psnap::core
