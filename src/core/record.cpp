#include "core/record.h"

#include <algorithm>

namespace psnap::core {

const ViewEntry* view_find(const View& view, std::uint32_t index) {
  auto it = std::lower_bound(
      view.begin(), view.end(), index,
      [](const ViewEntry& e, std::uint32_t i) { return e.index < i; });
  if (it == view.end() || it->index != index) return nullptr;
  return &*it;
}

std::vector<std::uint32_t> canonical_indices(
    std::span<const std::uint32_t> indices) {
  std::vector<std::uint32_t> out;
  canonical_indices_into(indices, out);
  return out;
}

void canonical_indices_into(std::span<const std::uint32_t> indices,
                            std::vector<std::uint32_t>& out) {
  out.assign(indices.begin(), indices.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace psnap::core
