#include "core/record.h"

#include <algorithm>

namespace psnap::core {

template <class V>
const ViewEntryT<V>* view_find(const ViewT<V>& view, std::uint32_t index) {
  auto it = std::lower_bound(
      view.begin(), view.end(), index,
      [](const ViewEntryT<V>& e, std::uint32_t i) { return e.index < i; });
  if (it == view.end() || it->index != index) return nullptr;
  return &*it;
}

template const ViewEntryT<std::uint64_t>* view_find(
    const ViewT<std::uint64_t>& view, std::uint32_t index);
template const ViewEntryT<value::Blob>* view_find(
    const ViewT<value::Blob>& view, std::uint32_t index);

std::vector<std::uint32_t> canonical_indices(
    std::span<const std::uint32_t> indices) {
  std::vector<std::uint32_t> out;
  canonical_indices_into(indices, out);
  return out;
}

void canonical_indices_into(std::span<const std::uint32_t> indices,
                            std::vector<std::uint32_t>& out) {
  out.assign(indices.begin(), indices.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace psnap::core
