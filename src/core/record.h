// Shared record types for the snapshot algorithms.
//
// Both algorithms store, per component, a pointer to an immutable heap
// record carrying (value, view, counter, id) -- the paper's large register
// contents, realized as its own suggested variant "store a pointer to a set
// of registers" (Section 3).  Records are:
//
//   * immutable after publication: a record is fully built before the
//     store/CAS that publishes it, and never written again;
//   * uniquely tagged: (pid, counter) pairs are never reused across
//     *published* records, reproducing the paper's "no two write operations
//     write exactly the same contents" ABA argument;
//   * reclaimed through EBR: readers dereference records only while pinned,
//     so pointer identity is also ABA-safe within one operation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace psnap::core {

// pid value used for the pre-installed initial records (not a real process).
inline constexpr std::uint32_t kInitPid = ~std::uint32_t{0};

// One (component, value) pair of an embedded-scan result.
struct ViewEntry {
  std::uint32_t index;
  std::uint64_t value;

  friend bool operator==(const ViewEntry&, const ViewEntry&) = default;
};

// A view is a vector of ViewEntry sorted by component index.  Scans that
// terminate by borrowing (condition (2)) binary-search it, per the paper's
// small-register remark after Theorem 1.
using View = std::vector<ViewEntry>;

// Looks up `index` in a sorted view; returns nullptr if absent.
const ViewEntry* view_find(const View& view, std::uint32_t index);

struct Record {
  std::uint64_t value = 0;
  std::uint64_t counter = 0;     // per-process publication counter
  std::uint32_t pid = kInitPid;  // writing process
  View view;                     // the update's embedded-scan result

  bool is_initial() const { return pid == kInitPid; }
};

// An announced index set (the contents of the paper's A[p] / S[p]
// registers): sorted, duplicate-free component indices, heap-allocated and
// published by pointer.
struct IndexSet {
  std::vector<std::uint32_t> indices;
};

// Canonicalizes an arbitrary index list: sorted, duplicates removed.
std::vector<std::uint32_t> canonical_indices(
    std::span<const std::uint32_t> indices);

// Allocation-free variant: canonicalizes into `out` (cleared first),
// reusing its capacity.  The hot-path form used with ScanContext buffers.
void canonical_indices_into(std::span<const std::uint32_t> indices,
                            std::vector<std::uint32_t>& out);

}  // namespace psnap::core
