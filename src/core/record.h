// Shared record types for the snapshot algorithms.
//
// Both algorithms store, per component, a pointer to an immutable heap
// record carrying (value, view, counter, id) -- the paper's large register
// contents, realized as its own suggested variant "store a pointer to a set
// of registers" (Section 3).  Records are:
//
//   * immutable after publication: a record is fully built before the
//     store/CAS that publishes it, and never written again;
//   * uniquely tagged: (pid, counter) pairs are never reused across
//     *published* records, reproducing the paper's "no two write operations
//     write exactly the same contents" ABA argument;
//   * reclaimed through EBR: readers dereference records only while pinned,
//     so pointer identity is also ABA-safe within one operation.
//
// Everything here is templated over the payload type V of the value plane
// (primitives/value_plane.h): V = std::uint64_t on the direct plane (the
// historical types keep their names as aliases), V = value::Blob on the
// indirect plane.  The record is the indirection the blob plane rides: an
// update builds the payload inside the (pooled) record and publishes both
// with the one atomic store/CAS the algorithm already performs.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "primitives/value_plane.h"
#include "primitives/version_chain.h"

namespace psnap::core {

// pid value used for the pre-installed initial records (not a real process).
inline constexpr std::uint32_t kInitPid = ~std::uint32_t{0};

// One (component, value) pair of an embedded-scan result.
template <class V>
struct ViewEntryT {
  std::uint32_t index;
  V value;

  friend bool operator==(const ViewEntryT&, const ViewEntryT&) = default;
};

// A view is a vector of ViewEntryT sorted by component index.  Scans that
// terminate by borrowing (condition (2)) binary-search it, per the paper's
// small-register remark after Theorem 1.
template <class V>
using ViewT = std::vector<ViewEntryT<V>>;

using ViewEntry = ViewEntryT<std::uint64_t>;
using View = ViewT<std::uint64_t>;
using BlobViewEntry = ViewEntryT<value::Blob>;
using BlobView = ViewT<value::Blob>;

// Looks up `index` in a sorted view; returns nullptr if absent.
template <class V>
const ViewEntryT<V>* view_find(const ViewT<V>& view, std::uint32_t index);

template <class V>
struct RecordT {
  V value{};
  std::uint64_t counter = 0;     // per-process publication counter
  std::uint32_t pid = kInitPid;  // writing process
  ViewT<V> view;                 // the update's embedded-scan result

  bool is_initial() const { return pid == kInitPid; }
};

using Record = RecordT<std::uint64_t>;

// The versioned plane's record (primitives/version_chain.h): the same
// pooled immutable record, extended with the chain fields.  A publication
// appends the record to its component's version chain (prev set before the
// publishing CAS, version fixed afterwards by the publish-then-stamp
// protocol), so the record doubles as the plane's version node -- no
// second allocation, same Pool/EBR lifecycle.
template <class V>
struct VersionedRecordT : RecordT<V> {
  mutable std::atomic<std::uint64_t> version{primitives::kUnstamped};
  std::atomic<const VersionedRecordT<V>*> prev{nullptr};
  // Non-null while the record is an unresolved update_batch member
  // (primitives::BatchControl); singleton publications clear it.
  std::atomic<const primitives::BatchControl*> batch{nullptr};
};

// The record type a value plane publishes: versioned planes carry the
// chain fields, the others are plain RecordT.
template <class Value>
using RecordFor =
    std::conditional_t<Value::kVersioned,
                       VersionedRecordT<typename Value::ValueType>,
                       RecordT<typename Value::ValueType>>;

// Builds a pre-installed initial record (constructor / add_components
// paths of fig1 and fig3): sentinel pid, the component index as the
// counter, which keeps every record tag unique.  On the versioned plane
// the initial record roots its chain: version 0 (older than every epoch),
// no predecessor.
template <class Value>
RecordFor<Value>* make_initial_record(std::uint64_t initial_value,
                                      std::uint32_t index) {
  auto* rec = new RecordFor<Value>();
  Value::encode(initial_value, rec->value);
  rec->counter = index;
  rec->pid = kInitPid;
  if constexpr (Value::kVersioned) {
    rec->version.store(primitives::kInitialVersion,
                       std::memory_order_relaxed);
  }
  return rec;
}

// An announced index set (the contents of the paper's A[p] / S[p]
// registers): sorted, duplicate-free component indices, heap-allocated and
// published by pointer.
struct IndexSet {
  std::vector<std::uint32_t> indices;
};

// Canonicalizes an arbitrary index list: sorted, duplicates removed.
std::vector<std::uint32_t> canonical_indices(
    std::span<const std::uint32_t> indices);

// Allocation-free variant: canonicalizes into `out` (cleared first),
// reusing its capacity.  The hot-path form used with ScanContext buffers.
void canonical_indices_into(std::span<const std::uint32_t> indices,
                            std::vector<std::uint32_t>& out);

}  // namespace psnap::core
