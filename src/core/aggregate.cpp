#include "core/aggregate.h"

#include <algorithm>

#include "common/assert.h"

namespace psnap::core {

std::pair<std::uint64_t, std::uint64_t> scan_min_max(
    PartialSnapshot& snapshot, std::span<const std::uint32_t> indices) {
  PSNAP_ASSERT_MSG(!indices.empty(), "scan_min_max needs components");
  using MinMax = std::pair<std::uint64_t, std::uint64_t>;
  return scan_reduce(
      snapshot, indices,
      MinMax{~std::uint64_t{0}, 0},
      [](MinMax acc, std::uint64_t v) {
        return MinMax{std::min(acc.first, v), std::max(acc.second, v)};
      });
}

}  // namespace psnap::core
