// Reusable per-operation scratch state for the scan hot path.
//
// Every snapshot operation needs transient working storage: collect
// buffers (one record pointer per argument component, double-buffered),
// condition-(2) bookkeeping tables, the canonicalized index set, and the
// embedded-scan result view.  The seed implementation allocated all of it
// with fresh std::vectors on every call, which the benches measured as
// allocator noise on top of the step counts the paper's theorems are
// stated in.
//
// A ScanContext owns that storage and is threaded through
// PartialSnapshot::scan and each implementation's embedded scan/collect
// loops.  Buffers are cleared-but-kept between operations, so a steady
// state scan (same thread, same argument-set shape) performs no heap
// allocation at all -- asserted by tests/core/scan_alloc_test.cpp with a
// counting global allocator.
//
// Callers that do not care pass nothing: the two-argument
// PartialSnapshot::scan overload forwards a thread-local context.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/record.h"

namespace psnap::core {

// Chunked bump allocator for one operation's trivially-copyable scratch
// arrays.  take<T>(n) returns a zero-filled span valid until the next
// reset(); blocks are never shrunk, so after warm-up an operation of the
// same shape takes from existing blocks without touching the heap.
// Chunking (rather than one growable buffer) keeps previously returned
// spans valid when a later take() has to grow the arena.
class ScanArena {
 public:
  template <class T>
  std::span<T> take(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena storage is memset-initialized and never destroyed");
    static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "block bases are new[]-aligned; over-aligned types (e.g. "
                  "CachelinePadded) would come back misaligned");
    if (n == 0) return {};
    void* p = take_bytes(n * sizeof(T), alignof(T));
    std::memset(p, 0, n * sizeof(T));
    return std::span<T>(static_cast<T*>(p), n);
  }

  // Invalidates all outstanding spans; keeps every block's capacity.
  void reset();

  // Observability for tests.
  std::size_t allocated_bytes() const;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* take_bytes(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // index of the block being bumped
};

// Scratch buffers shared by every PartialSnapshot implementation.  One
// context serves one operation at a time; operations on the same thread
// reuse it (via tls_scan_context()) so capacity accumulates to the
// steady-state watermark and stays there.
struct ScanContext {
  // Canonicalized (sorted, duplicate-free) argument indices of a scan.
  std::vector<std::uint32_t> canonical;
  // Update path: getSet result and the union of announced index sets.
  std::vector<std::uint32_t> scanners;
  std::vector<std::uint32_t> union_args;
  // Value scratch for implementations whose views are plain value arrays
  // (full-snapshot extraction, seqlock collect buffer).
  std::vector<std::uint64_t> values;
  // The embedded scan's result view (condition (1) builds it here;
  // condition (2) copies the borrowed view into it).
  View view;
  // Blob-plane twins of `view`/`values` (primitives/value_plane.h): a
  // context serves either plane, so the one tls_scan_context() covers
  // direct and indirect objects alike.  Blob entries retain their byte
  // buffers' capacity across operations, keeping the indirect steady
  // state allocation-free too.
  BlobView blob_view;
  std::vector<value::Blob> blob_values;
  // Collect buffers and condition-(2) tables live here.
  ScanArena arena;

  // Called once at the start of every operation.
  void begin() { arena.reset(); }
};

// Plane-generic access to the context's view/values scratch, keyed by the
// value plane's payload type (std::uint64_t or value::Blob).
template <class V>
ViewT<V>& view_for(ScanContext& ctx);
template <>
inline View& view_for<std::uint64_t>(ScanContext& ctx) { return ctx.view; }
template <>
inline BlobView& view_for<value::Blob>(ScanContext& ctx) {
  return ctx.blob_view;
}

template <class V>
std::vector<V>& values_for(ScanContext& ctx);
template <>
inline std::vector<std::uint64_t>& values_for<std::uint64_t>(
    ScanContext& ctx) {
  return ctx.values;
}
template <>
inline std::vector<value::Blob>& values_for<value::Blob>(ScanContext& ctx) {
  return ctx.blob_values;
}

// The context used by the convenience PartialSnapshot::scan overload and
// by update()'s embedded machinery.  One per thread, lazily constructed.
ScanContext& tls_scan_context();

}  // namespace psnap::core
