// Global-mutex partial snapshot.
//
// The practical strawman: one lock serializes everything, so consistency is
// trivial and per-operation cost is O(r) plus lock traffic.  Blocking (a
// suspended lock holder stalls the system) and performs no base-object
// steps in the paper's model; the CMP bench reports wall-clock only.
//
// Value plane (primitives/value_plane.h): the mutex already serializes all
// access, so the blob plane needs no indirection here at all -- payloads
// live directly in the guarded vector, the honest lock-based counterpart.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "core/partial_snapshot.h"
#include "core/scan_context.h"
#include "primitives/value_plane.h"

namespace psnap::baseline {

template <class Value = psnap::value::DirectU64>
class LockSnapshotT final : public core::PartialSnapshot {
 public:
  using ValueType = typename Value::ValueType;

  LockSnapshotT(std::uint32_t initial_components,
                std::uint64_t initial_value = 0)
      : count_(initial_components),
        initial_value_(initial_value),
        data_(initial_components) {
    for (ValueType& v : data_) Value::encode(initial_value, v);
  }

  std::uint32_t num_components() const override {
    return count_.load(std::memory_order_acquire);
  }
  std::string_view name() const override {
    return Value::kIndirect ? "lock-blob" : "lock";
  }
  bool is_wait_free() const override { return false; }
  bool is_local() const override { return true; }
  std::string_view value_plane() const override { return Value::kName; }

  // Growth is serialized by the global mutex (in character for this
  // baseline); the count is mirrored in an atomic so num_components() does
  // not need the lock.
  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<psnap::value::Blob>& out,
                  core::ScanContext& ctx) override;
  // One critical section covers all k writes, so batches are trivially
  // atomic -- the lock baseline is the reference implementation the
  // batch-atomicity oracle checks the clever ones against.
  void update_batch(std::span<const core::BatchEntry> entries) override;
  void update_batch_blob(
      std::span<const core::BlobBatchEntry> entries) override;
  core::BatchAtomicity batch_atomicity() const override {
    return core::BatchAtomicity::kAtomic;
  }
  using core::PartialSnapshot::scan;
  using core::PartialSnapshot::scan_blobs;

 private:
  std::mutex mu_;
  std::atomic<std::uint32_t> count_;
  std::uint64_t initial_value_;
  std::vector<ValueType> data_;
};

using LockSnapshot = LockSnapshotT<psnap::value::DirectU64>;
using LockSnapshotBlob = LockSnapshotT<psnap::value::IndirectBlob>;

}  // namespace psnap::baseline
