#include "baseline/lock_snapshot.h"

#include "common/assert.h"

namespace psnap::baseline {

template <class Value>
std::uint32_t LockSnapshotT<Value>::add_components(std::uint32_t count) {
  PSNAP_ASSERT(count > 0);
  std::scoped_lock lock(mu_);
  std::uint32_t first = static_cast<std::uint32_t>(data_.size());
  data_.resize(data_.size() + count);
  for (std::uint32_t i = first; i < first + count; ++i) {
    Value::encode(initial_value_, data_[i]);
  }
  count_.store(first + count, std::memory_order_release);
  return first;
}

template <class Value>
void LockSnapshotT<Value>::update(std::uint32_t i, std::uint64_t v) {
  std::scoped_lock lock(mu_);
  // Bounds check under the lock: add_components resizes data_ under mu_,
  // so an unlocked size() read would race the resize.
  PSNAP_ASSERT(i < data_.size());
  Value::encode(v, data_[i]);
}

template <class Value>
void LockSnapshotT<Value>::update_blob(std::uint32_t i,
                                       std::span<const std::byte> bytes) {
  if constexpr (Value::kIndirect) {
    std::scoped_lock lock(mu_);
    PSNAP_ASSERT(i < data_.size());
    Value::assign(data_[i], bytes);
  } else {
    core::PartialSnapshot::update_blob(i, bytes);
  }
}

template <class Value>
void LockSnapshotT<Value>::update_batch(
    std::span<const core::BatchEntry> entries) {
  std::scoped_lock lock(mu_);
  // Applying in argument order makes duplicate indices last-wins without
  // a merge pass.
  for (const core::BatchEntry& e : entries) {
    PSNAP_ASSERT(e.index < data_.size());
    Value::encode(e.value, data_[e.index]);
  }
}

template <class Value>
void LockSnapshotT<Value>::update_batch_blob(
    std::span<const core::BlobBatchEntry> entries) {
  if constexpr (Value::kIndirect) {
    std::scoped_lock lock(mu_);
    for (const core::BlobBatchEntry& e : entries) {
      PSNAP_ASSERT(e.index < data_.size());
      Value::assign(data_[e.index], e.bytes);
    }
  } else {
    core::PartialSnapshot::update_batch_blob(entries);
  }
}

template <class Value>
void LockSnapshotT<Value>::scan(std::span<const std::uint32_t> indices,
                                std::vector<std::uint64_t>& out,
                                core::ScanContext& /*ctx*/) {
  out.clear();
  out.reserve(indices.size());
  std::scoped_lock lock(mu_);
  for (std::uint32_t i : indices) {
    PSNAP_ASSERT(i < data_.size());
    out.push_back(Value::decode(data_[i]));
  }
}

template <class Value>
void LockSnapshotT<Value>::scan_blobs(std::span<const std::uint32_t> indices,
                                      std::vector<psnap::value::Blob>& out,
                                      core::ScanContext& ctx) {
  if constexpr (Value::kIndirect) {
    out.resize(indices.size());  // keeps element byte capacity
    std::scoped_lock lock(mu_);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      PSNAP_ASSERT(indices[k] < data_.size());
      Value::copy(data_[indices[k]], out[k]);
    }
  } else {
    core::PartialSnapshot::scan_blobs(indices, out, ctx);
  }
}

template class LockSnapshotT<psnap::value::DirectU64>;
template class LockSnapshotT<psnap::value::IndirectBlob>;

}  // namespace psnap::baseline
