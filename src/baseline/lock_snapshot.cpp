#include "baseline/lock_snapshot.h"

#include "common/assert.h"

namespace psnap::baseline {

void LockSnapshot::update(std::uint32_t i, std::uint64_t v) {
  PSNAP_ASSERT(i < data_.size());
  std::scoped_lock lock(mu_);
  data_[i] = v;
}

void LockSnapshot::scan(std::span<const std::uint32_t> indices,
                        std::vector<std::uint64_t>& out,
                        core::ScanContext& /*ctx*/) {
  out.clear();
  out.reserve(indices.size());
  std::scoped_lock lock(mu_);
  for (std::uint32_t i : indices) {
    PSNAP_ASSERT(i < data_.size());
    out.push_back(data_[i]);
  }
}

}  // namespace psnap::baseline
