#include "baseline/lock_snapshot.h"

#include "common/assert.h"

namespace psnap::baseline {

std::uint32_t LockSnapshot::add_components(std::uint32_t count) {
  PSNAP_ASSERT(count > 0);
  std::scoped_lock lock(mu_);
  std::uint32_t first = static_cast<std::uint32_t>(data_.size());
  data_.resize(data_.size() + count, initial_value_);
  count_.store(first + count, std::memory_order_release);
  return first;
}

void LockSnapshot::update(std::uint32_t i, std::uint64_t v) {
  std::scoped_lock lock(mu_);
  // Bounds check under the lock: add_components resizes data_ under mu_,
  // so an unlocked size() read would race the resize.
  PSNAP_ASSERT(i < data_.size());
  data_[i] = v;
}

void LockSnapshot::scan(std::span<const std::uint32_t> indices,
                        std::vector<std::uint64_t>& out,
                        core::ScanContext& /*ctx*/) {
  out.clear();
  out.reserve(indices.size());
  std::scoped_lock lock(mu_);
  for (std::uint32_t i : indices) {
    PSNAP_ASSERT(i < data_.size());
    out.push_back(data_[i]);
  }
}

}  // namespace psnap::baseline
