// Global-seqlock partial snapshot.
//
// A single version counter guards the whole vector: writers make it odd,
// write, make it even; readers retry whenever the version moved.  Readers
// are invisible (no writes), which makes scans cheap at low update rates
// -- and starvation-prone at high ones, exactly like the double-collect
// algorithm but with a single global conflict domain instead of a per-
// component one.  A scan exceeding the retry cap throws StarvationError.
//
// Value plane (primitives/value_plane.h): this baseline stored RAW WORDS
// in its component registers, so it is the one implementation that needs
// primitives::ValueCell -- on the blob plane each cell becomes an atomic
// pointer to an immutable, pooled, EBR-reclaimed BlobNode.  An update
// builds the node and exchange()s it in inside the writer section; a
// reader dereferences under an EBR pin (held across the retry loop).
// Cost of the indirection: one extra acquire dereference per read, one
// pool acquire per update; step counts are unchanged.
//
// Versioned plane (VersionedU64; primitives/version_chain.h): the plane
// that cures the seqlock's reader pathology.  Cells publish version-chain
// heads; writers still serialize through the global writer section (which
// is what makes an exchange-based chain append sound), but READERS no
// longer touch the seqlock at all -- a scan grabs a camera epoch and
// walks its chains, so a stalled or preempted writer never makes a single
// reader retry, the exact failure mode the collect-based seqlock scan is
// starvation-prone to.  max_attempts_per_scan becomes irrelevant to scans
// (they are wait-free given the writer-serialized chains).
#pragma once

#include <type_traits>
#include <vector>

#include "baseline/double_collect.h"  // StarvationError
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/scan_context.h"
#include "primitives/primitives.h"
#include "primitives/value_cell.h"
#include "primitives/value_plane.h"
#include "primitives/version_chain.h"
#include "reclaim/ebr.h"
#include "reclaim/pool.h"

namespace psnap::baseline {

template <class Value = psnap::value::DirectU64>
class SeqlockSnapshotT final : public core::PartialSnapshot {
 public:
  using ValueType = typename Value::ValueType;

  // max_attempts_per_scan == 0 means retry forever.
  SeqlockSnapshotT(std::uint32_t initial_components,
                   std::uint64_t max_attempts_per_scan = 0,
                   std::uint64_t initial_value = 0);
  ~SeqlockSnapshotT() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override {
    if constexpr (Value::kVersioned) {
      return "seqlock-versioned";
    } else if constexpr (Value::kIndirect) {
      return "seqlock-blob";
    } else {
      return "seqlock";
    }
  }
  bool is_wait_free() const override { return false; }
  bool is_local() const override { return true; }
  std::string_view value_plane() const override { return Value::kName; }

  // Growth needs no version bump: new slots are initialized before the
  // count is published, and a reader only collects indices below the count
  // it captured at scan entry, so no value a reader has collected ever
  // changes because of a grow.
  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<psnap::value::Blob>& out,
                  core::ScanContext& ctx) override;
  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out,
                               core::ScanContext& ctx) override;
  // Batched updates: every plane is kAtomic here, because the global
  // writer section is a natural multi-component critical section -- all k
  // writes land inside one odd/even window, so a collect-plane scan either
  // retries past the whole batch or sees none of it.  The versioned plane
  // additionally shares one stamp through a descriptor (readers bypass the
  // seqlock, so the window alone would not protect them).
  void update_batch(std::span<const core::BatchEntry> entries) override;
  void update_batch_blob(
      std::span<const core::BlobBatchEntry> entries) override;
  core::BatchAtomicity batch_atomicity() const override {
    return core::BatchAtomicity::kAtomic;
  }
  using core::PartialSnapshot::scan;
  using core::PartialSnapshot::scan_blobs;
  using core::PartialSnapshot::scan_versioned;

 private:
  using Cell = primitives::ValueCell<Value, primitives::Instrumented>;

  // Reclamation state of the indirect plane (absent on the direct plane).
  // Pool before ebr: ~EbrDomain flushes retired nodes into the pool.
  struct BlobPlane {
    reclaim::Pool<primitives::BlobNode> pool;
    reclaim::EbrDomain ebr;
  };
  // Versioned batch descriptor.  Unlike fig3's (cas_psnap.h), no install
  // engine is needed: the writer section already serializes the k chain
  // appends, so a helper that reaches an unresolved member through
  // ensure_stamped only has to WAIT for the owner's installs (the
  // `installed` flag, set before the owner leaves the section) and then
  // fix the one shared stamp.  The spin is blocking, but so is the
  // seqlock itself -- this baseline never claimed lock-freedom.
  struct SeqBatchDesc final : primitives::BatchControl {
    primitives::VersionCamera<primitives::Instrumented>* camera = nullptr;
    std::atomic<bool> installed{false};
    void resolve() const override {
      while (!installed.load(std::memory_order_acquire)) {
      }
      std::uint64_t expected = primitives::kUnstamped;
      version.compare_exchange_strong(expected, camera->now(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
    }
  };

  // Reclamation + camera state of the versioned plane (version_chain.h).
  struct VersionedPlane {
    reclaim::Pool<primitives::VersionNodeU64> pool;
    reclaim::Pool<SeqBatchDesc> batch_pool;
    reclaim::EbrDomain ebr;
    primitives::VersionCamera<primitives::Instrumented> camera;
  };
  struct NoPlane {};

  void init_cell(Cell& cell, std::uint32_t index);

  template <class Fill>
  void do_update(std::uint32_t i, Fill&& fill);
  template <class EntryT, class Fill>
  void do_update_batch(std::span<const EntryT> entries, Fill&& fill);
  // Runs the versioned retry loop; `collect` re-reads the components into
  // the caller's buffers on each attempt (overwriting in place).
  template <class Collect>
  void do_scan(std::span<const std::uint32_t> indices, std::uint32_t m,
               Collect&& collect);
  // The versioned plane's scan body (seqlock-free; see the header
  // comment); returns the epoch.
  std::uint64_t do_scan_versioned(std::span<const std::uint32_t> indices,
                                  std::vector<std::uint64_t>& out);

  core::GrowableSize size_;
  std::uint64_t initial_value_;
  std::uint64_t max_attempts_;
  primitives::CasObject<std::uint64_t> version_;
  core::ComponentStorage<Cell> data_;
  [[no_unique_address]] std::conditional_t<
      Value::kVersioned, VersionedPlane,
      std::conditional_t<Value::kIndirect, BlobPlane, NoPlane>>
      plane_;
};

using SeqlockSnapshot = SeqlockSnapshotT<psnap::value::DirectU64>;
using SeqlockSnapshotBlob = SeqlockSnapshotT<psnap::value::IndirectBlob>;
using SeqlockSnapshotVersioned = SeqlockSnapshotT<psnap::value::VersionedU64>;

}  // namespace psnap::baseline
