// Global-seqlock partial snapshot.
//
// A single version counter guards the whole vector: writers make it odd,
// write, make it even; readers retry whenever the version moved.  Readers
// are invisible (no writes), which makes scans cheap at low update rates
// -- and starvation-prone at high ones, exactly like the double-collect
// algorithm but with a single global conflict domain instead of a per-
// component one.  A scan exceeding the retry cap throws StarvationError.
#pragma once

#include <vector>

#include "baseline/double_collect.h"  // StarvationError
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/scan_context.h"
#include "primitives/primitives.h"

namespace psnap::baseline {

class SeqlockSnapshot final : public core::PartialSnapshot {
 public:
  // max_attempts_per_scan == 0 means retry forever.
  SeqlockSnapshot(std::uint32_t initial_components,
                  std::uint64_t max_attempts_per_scan = 0,
                  std::uint64_t initial_value = 0);

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override { return "seqlock"; }
  bool is_wait_free() const override { return false; }
  bool is_local() const override { return true; }

  // Growth needs no version bump: new slots are initialized before the
  // count is published, and a reader only collects indices below the count
  // it captured at scan entry, so no value a reader has collected ever
  // changes because of a grow.
  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan;

 private:
  core::GrowableSize size_;
  std::uint64_t initial_value_;
  std::uint64_t max_attempts_;
  primitives::CasObject<std::uint64_t> version_;
  core::ComponentStorage<primitives::Register<std::uint64_t>> data_;
};

}  // namespace psnap::baseline
