// Global-seqlock partial snapshot.
//
// A single version counter guards the whole vector: writers make it odd,
// write, make it even; readers retry whenever the version moved.  Readers
// are invisible (no writes), which makes scans cheap at low update rates
// -- and starvation-prone at high ones, exactly like the double-collect
// algorithm but with a single global conflict domain instead of a per-
// component one.  A scan exceeding the retry cap throws StarvationError.
//
// Value plane (primitives/value_plane.h): this baseline stored RAW WORDS
// in its component registers, so it is the one implementation that needs
// primitives::ValueCell -- on the blob plane each cell becomes an atomic
// pointer to an immutable, pooled, EBR-reclaimed BlobNode.  An update
// builds the node and exchange()s it in inside the writer section; a
// reader dereferences under an EBR pin (held across the retry loop).
// Cost of the indirection: one extra acquire dereference per read, one
// pool acquire per update; step counts are unchanged.
#pragma once

#include <type_traits>
#include <vector>

#include "baseline/double_collect.h"  // StarvationError
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/scan_context.h"
#include "primitives/primitives.h"
#include "primitives/value_cell.h"
#include "primitives/value_plane.h"
#include "reclaim/ebr.h"
#include "reclaim/pool.h"

namespace psnap::baseline {

template <class Value = psnap::value::DirectU64>
class SeqlockSnapshotT final : public core::PartialSnapshot {
 public:
  using ValueType = typename Value::ValueType;

  // max_attempts_per_scan == 0 means retry forever.
  SeqlockSnapshotT(std::uint32_t initial_components,
                   std::uint64_t max_attempts_per_scan = 0,
                   std::uint64_t initial_value = 0);
  ~SeqlockSnapshotT() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override {
    return Value::kIndirect ? "seqlock-blob" : "seqlock";
  }
  bool is_wait_free() const override { return false; }
  bool is_local() const override { return true; }
  std::string_view value_plane() const override { return Value::kName; }

  // Growth needs no version bump: new slots are initialized before the
  // count is published, and a reader only collects indices below the count
  // it captured at scan entry, so no value a reader has collected ever
  // changes because of a grow.
  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<psnap::value::Blob>& out,
                  core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan;
  using core::PartialSnapshot::scan_blobs;

 private:
  using Cell = primitives::ValueCell<Value, primitives::Instrumented>;

  // Reclamation state of the indirect plane (absent on the direct plane).
  // Pool before ebr: ~EbrDomain flushes retired nodes into the pool.
  struct BlobPlane {
    reclaim::Pool<primitives::BlobNode> pool;
    reclaim::EbrDomain ebr;
  };
  struct NoPlane {};

  void init_cell(Cell& cell, std::uint32_t index);

  template <class Fill>
  void do_update(std::uint32_t i, Fill&& fill);
  // Runs the versioned retry loop; `collect` re-reads the components into
  // the caller's buffers on each attempt (overwriting in place).
  template <class Collect>
  void do_scan(std::span<const std::uint32_t> indices, std::uint32_t m,
               Collect&& collect);

  core::GrowableSize size_;
  std::uint64_t initial_value_;
  std::uint64_t max_attempts_;
  primitives::CasObject<std::uint64_t> version_;
  core::ComponentStorage<Cell> data_;
  [[no_unique_address]] std::conditional_t<Value::kIndirect, BlobPlane,
                                           NoPlane>
      plane_;
};

using SeqlockSnapshot = SeqlockSnapshotT<psnap::value::DirectU64>;
using SeqlockSnapshotBlob = SeqlockSnapshotT<psnap::value::IndirectBlob>;

}  // namespace psnap::baseline
