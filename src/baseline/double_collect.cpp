#include "baseline/double_collect.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "core/op_stats.h"
#include "exec/exec.h"

namespace psnap::baseline {

template <class Value>
DoubleCollectSnapshotT<Value>::DoubleCollectSnapshotT(
    std::uint32_t initial_components, std::uint32_t max_processes,
    std::uint64_t max_collects_per_scan, std::uint64_t initial_value)
    : size_(initial_components),
      n_(max_processes),
      initial_value_(initial_value),
      max_collects_(max_collects_per_scan) {
  PSNAP_ASSERT(initial_components > 0 && n_ > 0);
  PSNAP_ASSERT_MSG(n_ <= reclaim::EbrDomain::kPidSlots,
                   "max_processes exceeds the pid-slot capacity");
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    SimpleRecord* rec = make_record(/*counter=*/i, core::kInitPid);
    Value::encode(initial_value, rec->value);
    r_.at(i).init(rec, /*label=*/i);
  }
}

template <class Value>
DoubleCollectSnapshotT<Value>::~DoubleCollectSnapshotT() {
  const std::uint32_t m = size_.load();
  for (std::uint32_t i = 0; i < m; ++i) delete r_.at(i).peek();
}

template <class Value>
std::uint32_t DoubleCollectSnapshotT<Value>::add_components(
    std::uint32_t count) {
  return core::grow_components(
      size_, r_, count, [this](auto& slot, std::uint32_t i) {
        SimpleRecord* rec = make_record(/*counter=*/i, core::kInitPid);
        Value::encode(initial_value_, rec->value);
        slot.init(rec, /*label=*/i);
      });
}

template <class Value>
template <class Fill>
void DoubleCollectSnapshotT<Value>::do_update(std::uint32_t i, Fill&& fill) {
  PSNAP_ASSERT(i < size_.load());
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::tls_op_stats().reset();
  auto guard = ebr_.pin();
  std::unique_ptr<SimpleRecord> rec(
      make_record(++counter_.at(pid).value, pid));
  fill(rec->value);
  const SimpleRecord* old = r_.at(i).exchange(rec.get());
  rec.release();
  ebr_.retire(const_cast<SimpleRecord*>(old));
}

template <class Value>
void DoubleCollectSnapshotT<Value>::update(std::uint32_t i,
                                           std::uint64_t v) {
  do_update(i, [v](ValueType& out) { Value::encode(v, out); });
}

template <class Value>
void DoubleCollectSnapshotT<Value>::update_blob(
    std::uint32_t i, std::span<const std::byte> bytes) {
  if constexpr (Value::kIndirect) {
    do_update(i, [bytes](ValueType& out) { Value::assign(out, bytes); });
  } else {
    core::PartialSnapshot::update_blob(i, bytes);
  }
}

template <class Value>
template <class EntryT, class Fill>
void DoubleCollectSnapshotT<Value>::do_update_batch(
    std::span<const EntryT> entries, Fill&& fill) {
  if (entries.empty()) return;
  const std::uint32_t m = size_.load();
  for (const EntryT& e : entries) PSNAP_ASSERT(e.index < m);
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::OpStats& stats = core::tls_op_stats();
  stats.reset();
  core::ScanContext& ctx = core::tls_scan_context();
  ctx.begin();
  auto guard = ebr_.pin();

  // Coalesce duplicate indices, later entries winning.
  std::span<const EntryT*> merged =
      ctx.arena.take<const EntryT*>(entries.size());
  std::uint32_t count = 0;
  for (const EntryT& e : entries) {
    std::uint32_t j = 0;
    while (j < count && merged[j]->index != e.index) ++j;
    merged[j] = &e;
    if (j == count) ++count;
  }
  stats.batch_size = count;

  for (std::uint32_t j = 0; j < count; ++j) {
    std::unique_ptr<SimpleRecord> rec(
        make_record(++counter_.at(pid).value, pid));
    fill(*merged[j], rec->value);
    const SimpleRecord* old = r_.at(merged[j]->index).exchange(rec.get());
    rec.release();
    ebr_.retire(const_cast<SimpleRecord*>(old));
  }
}

template <class Value>
void DoubleCollectSnapshotT<Value>::update_batch(
    std::span<const core::BatchEntry> entries) {
  do_update_batch(entries, [](const core::BatchEntry& e, ValueType& out) {
    Value::encode(e.value, out);
  });
}

template <class Value>
void DoubleCollectSnapshotT<Value>::update_batch_blob(
    std::span<const core::BlobBatchEntry> entries) {
  if constexpr (Value::kIndirect) {
    do_update_batch(entries, [](const core::BlobBatchEntry& e, ValueType& out) {
      Value::assign(out, e.bytes);
    });
  } else {
    core::PartialSnapshot::update_batch_blob(entries);
  }
}

template <class Value>
template <class Extract>
void DoubleCollectSnapshotT<Value>::do_scan(
    std::span<const std::uint32_t> indices, core::ScanContext& ctx,
    Extract&& extract) {
  const std::uint32_t m = size_.load();
  for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
  core::OpStats& stats = core::tls_op_stats();
  stats.reset();
  ctx.begin();
  auto guard = ebr_.pin();

  core::canonical_indices_into(indices, ctx.canonical);
  std::span<const SimpleRecord*> prev =
      ctx.arena.take<const SimpleRecord*>(ctx.canonical.size());
  std::span<const SimpleRecord*> cur =
      ctx.arena.take<const SimpleRecord*>(ctx.canonical.size());
  bool have_prev = false;

  while (true) {
    ++stats.collects;
    if (max_collects_ != 0 && stats.collects > max_collects_) {
      throw StarvationError(stats.collects - 1);
    }
    for (std::size_t j = 0; j < ctx.canonical.size(); ++j) {
      cur[j] = r_.at(ctx.canonical[j]).load();
    }
    if (have_prev && std::equal(cur.begin(), cur.end(), prev.begin())) {
      break;
    }
    std::swap(prev, cur);
    have_prev = true;
  }

  // Still pinned: the collected records cannot be reclaimed under us, so
  // the extractor may copy payloads straight out of them.
  extract(ctx.canonical, cur);
}

template <class Value>
void DoubleCollectSnapshotT<Value>::scan(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    core::ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  do_scan(indices, ctx,
          [&](const std::vector<std::uint32_t>& canonical,
              std::span<const SimpleRecord*> cur) {
            out.reserve(indices.size());
            for (std::uint32_t i : indices) {
              auto it =
                  std::lower_bound(canonical.begin(), canonical.end(), i);
              out.push_back(Value::decode(
                  cur[static_cast<std::size_t>(it - canonical.begin())]
                      ->value));
            }
          });
}

template <class Value>
void DoubleCollectSnapshotT<Value>::scan_blobs(
    std::span<const std::uint32_t> indices,
    std::vector<psnap::value::Blob>& out, core::ScanContext& ctx) {
  if constexpr (Value::kIndirect) {
    if (indices.empty()) {
      out.clear();
      return;
    }
    out.resize(indices.size());  // keeps element byte capacity
    try {
      do_scan(indices, ctx,
              [&](const std::vector<std::uint32_t>& canonical,
                  std::span<const SimpleRecord*> cur) {
                for (std::size_t k = 0; k < indices.size(); ++k) {
                  auto it = std::lower_bound(canonical.begin(),
                                             canonical.end(), indices[k]);
                  Value::copy(
                      cur[static_cast<std::size_t>(it - canonical.begin())]
                          ->value,
                      out[k]);
                }
              });
    } catch (...) {
      // Starvation path: never hand back a buffer of stale payloads (the
      // u64 scan leaves `out` empty on throw; match it).
      out.clear();
      throw;
    }
  } else {
    core::PartialSnapshot::scan_blobs(indices, out, ctx);
  }
}

template class DoubleCollectSnapshotT<psnap::value::DirectU64>;
template class DoubleCollectSnapshotT<psnap::value::IndirectBlob>;

}  // namespace psnap::baseline
