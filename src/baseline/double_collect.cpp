#include "baseline/double_collect.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "core/op_stats.h"
#include "exec/exec.h"

namespace psnap::baseline {

DoubleCollectSnapshot::DoubleCollectSnapshot(std::uint32_t initial_components,
                                             std::uint32_t max_processes,
                                             std::uint64_t max_collects_per_scan,
                                             std::uint64_t initial_value)
    : size_(initial_components),
      n_(max_processes),
      initial_value_(initial_value),
      max_collects_(max_collects_per_scan) {
  PSNAP_ASSERT(initial_components > 0 && n_ > 0);
  PSNAP_ASSERT_MSG(n_ <= reclaim::EbrDomain::kPidSlots,
                   "max_processes exceeds the pid-slot capacity");
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    r_.at(i).init(new SimpleRecord{initial_value, i, core::kInitPid},
                  /*label=*/i);
  }
}

DoubleCollectSnapshot::~DoubleCollectSnapshot() {
  const std::uint32_t m = size_.load();
  for (std::uint32_t i = 0; i < m; ++i) delete r_.at(i).peek();
}

std::uint32_t DoubleCollectSnapshot::add_components(std::uint32_t count) {
  return core::grow_components(
      size_, r_, count, [this](auto& slot, std::uint32_t i) {
        slot.init(new SimpleRecord{initial_value_, i, core::kInitPid},
                  /*label=*/i);
      });
}

void DoubleCollectSnapshot::update(std::uint32_t i, std::uint64_t v) {
  PSNAP_ASSERT(i < size_.load());
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::tls_op_stats().reset();
  auto guard = ebr_.pin();
  std::unique_ptr<SimpleRecord> rec(
      new SimpleRecord{v, ++counter_.at(pid).value, pid});
  const SimpleRecord* old = r_.at(i).exchange(rec.get());
  rec.release();
  ebr_.retire(const_cast<SimpleRecord*>(old));
}

void DoubleCollectSnapshot::scan(std::span<const std::uint32_t> indices,
                                 std::vector<std::uint64_t>& out,
                                 core::ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  const std::uint32_t m = size_.load();
  for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
  core::OpStats& stats = core::tls_op_stats();
  stats.reset();
  ctx.begin();
  auto guard = ebr_.pin();

  core::canonical_indices_into(indices, ctx.canonical);
  std::span<const SimpleRecord*> prev =
      ctx.arena.take<const SimpleRecord*>(ctx.canonical.size());
  std::span<const SimpleRecord*> cur =
      ctx.arena.take<const SimpleRecord*>(ctx.canonical.size());
  bool have_prev = false;

  while (true) {
    ++stats.collects;
    if (max_collects_ != 0 && stats.collects > max_collects_) {
      throw StarvationError(stats.collects - 1);
    }
    for (std::size_t j = 0; j < ctx.canonical.size(); ++j) {
      cur[j] = r_.at(ctx.canonical[j]).load();
    }
    if (have_prev && std::equal(cur.begin(), cur.end(), prev.begin())) {
      break;
    }
    std::swap(prev, cur);
    have_prev = true;
  }

  out.reserve(indices.size());
  for (std::uint32_t i : indices) {
    auto it = std::lower_bound(ctx.canonical.begin(), ctx.canonical.end(), i);
    out.push_back(
        cur[static_cast<std::size_t>(it - ctx.canonical.begin())]->value);
  }
}

}  // namespace psnap::baseline
