#include "baseline/full_snapshot.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "core/moved_twice.h"
#include "core/op_stats.h"
#include "exec/exec.h"

namespace psnap::baseline {

FullSnapshot::FullSnapshot(std::uint32_t initial_components,
                           std::uint32_t max_processes,
                           std::uint64_t initial_value, exec::PidBound bound)
    : size_(initial_components),
      n_(max_processes),
      bound_(bound),
      initial_value_(initial_value) {
  PSNAP_ASSERT(initial_components > 0 && n_ > 0);
  PSNAP_ASSERT_MSG(n_ <= reclaim::EbrDomain::kPidSlots,
                   "max_processes exceeds the pid-slot capacity");
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    r_.at(i).init(new FullRecord{initial_value, i, core::kInitPid, {}},
                  /*label=*/i);
  }
}

FullSnapshot::~FullSnapshot() {
  const std::uint32_t m = size_.load();
  for (std::uint32_t i = 0; i < m; ++i) delete r_.at(i).peek();
}

std::uint32_t FullSnapshot::add_components(std::uint32_t count) {
  return core::grow_components(
      size_, r_, count, [this](auto& slot, std::uint32_t i) {
        slot.init(new FullRecord{initial_value_, i, core::kInitPid, {}},
                  /*label=*/i);
      });
}

void FullSnapshot::embedded_full_scan(core::ScanContext& ctx,
                                      std::uint32_t m) {
  core::OpStats& stats = core::tls_op_stats();
  stats.embedded_args = m;

  // "Moved twice" helping rule bookkeeping; see the condition-(2)
  // discussion in register_psnap.cpp -- the same multi-writer soundness
  // argument applies here verbatim.  Population-adaptively sized, like
  // the local algorithms' tables (core/moved_twice.h): even the Omega(m)
  // baseline need not pay O(max_threads) bookkeeping per collect.
  core::MovedTwiceTable<FullRecord> seen(ctx.arena, bound_.get(n_), n_);
  auto note_move = [&seen](const FullRecord* rec) {
    return seen.note_move(rec);
  };

  std::span<const FullRecord*> prev = ctx.arena.take<const FullRecord*>(m);
  std::span<const FullRecord*> cur = ctx.arena.take<const FullRecord*>(m);
  bool have_prev = false;

  while (true) {
    ++stats.collects;
    PSNAP_ASSERT_MSG(stats.collects <= 2ull * n_ + 3,
                     "full-snapshot embedded scan exceeded its collect bound");
    const FullRecord* borrow = nullptr;
    for (std::uint32_t j = 0; j < m; ++j) {
      cur[j] = r_.at(j).load();
      if (have_prev && cur[j] != prev[j] && borrow == nullptr) {
        borrow = note_move(cur[j]);
      }
    }
    if (borrow != nullptr) {
      stats.borrowed = true;
      // The borrowed operation captured its count AFTER we captured ours
      // (it started during our scan; counts are monotone seq_cst), so its
      // full_view covers at least our m components.
      PSNAP_ASSERT(borrow->full_view.size() >= m);
      ctx.values = borrow->full_view;  // capacity-reusing copy
      return;
    }
    if (have_prev && std::equal(cur.begin(), cur.end(), prev.begin())) {
      ctx.values.clear();
      ctx.values.reserve(m);
      for (std::uint32_t j = 0; j < m; ++j) {
        ctx.values.push_back(cur[j]->value);
      }
      return;
    }
    std::swap(prev, cur);
    have_prev = true;
  }
}

void FullSnapshot::update(std::uint32_t i, std::uint64_t v) {
  const std::uint32_t m = size_.load();
  PSNAP_ASSERT(i < m);
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::tls_op_stats().reset();
  core::ScanContext& ctx = core::tls_scan_context();
  ctx.begin();
  auto guard = ebr_.pin();

  embedded_full_scan(ctx, m);
  // Pool-backed record, owned by the Handle until publication (an
  // injected halt at the publish step returns it to the pool instead of
  // leaking).
  auto rec = record_pool_.acquire(ebr_);
  rec->value = v;
  rec->counter = ++counter_.at(pid).value;
  rec->pid = pid;
  rec->full_view = ctx.values;  // capacity-reusing copy
  const FullRecord* old = r_.at(i).exchange(rec.get());
  rec.release();
  record_pool_.recycle(ebr_, const_cast<FullRecord*>(old));
}

void FullSnapshot::scan(std::span<const std::uint32_t> indices,
                        std::vector<std::uint64_t>& out,
                        core::ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  const std::uint32_t m = size_.load();
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::tls_op_stats().reset();
  ctx.begin();
  auto guard = ebr_.pin();

  embedded_full_scan(ctx, m);
  out.reserve(indices.size());
  for (std::uint32_t i : indices) {
    PSNAP_ASSERT(i < m);
    out.push_back(ctx.values[i]);
  }
}

}  // namespace psnap::baseline
