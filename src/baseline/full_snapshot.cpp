#include "baseline/full_snapshot.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "core/op_stats.h"
#include "exec/exec.h"

namespace psnap::baseline {

FullSnapshot::FullSnapshot(std::uint32_t num_components,
                           std::uint32_t max_processes,
                           std::uint64_t initial_value)
    : m_(num_components),
      n_(max_processes),
      r_(num_components),
      counter_(max_processes) {
  PSNAP_ASSERT(m_ > 0 && n_ > 0);
  for (std::uint32_t i = 0; i < m_; ++i) {
    r_[i].init(new FullRecord{initial_value, i, core::kInitPid, {}},
               /*label=*/i);
  }
}

FullSnapshot::~FullSnapshot() {
  for (auto& reg : r_) delete reg.peek();
}

void FullSnapshot::embedded_full_scan(core::ScanContext& ctx) {
  core::OpStats& stats = core::tls_op_stats();
  stats.embedded_args = m_;

  // "Moved twice" helping rule bookkeeping; see the condition-(2)
  // discussion in register_psnap.cpp -- the same multi-writer soundness
  // argument applies here verbatim.  Zero-filled arena storage is the
  // empty state.  (Function-local so it can name the private FullRecord.)
  struct PerPid {
    const FullRecord* moved[2];
    std::uint32_t count;
  };
  std::span<PerPid> seen = ctx.arena.take<PerPid>(n_);
  auto note_move = [&seen](const FullRecord* rec) -> const FullRecord* {
    PerPid& s = seen[rec->pid];
    for (std::uint32_t k = 0; k < s.count; ++k) {
      if (s.moved[k] == rec) return nullptr;
    }
    s.moved[s.count++] = rec;
    if (s.count < 2) return nullptr;
    return s.moved[0]->counter > s.moved[1]->counter ? s.moved[0]
                                                     : s.moved[1];
  };

  std::span<const FullRecord*> prev = ctx.arena.take<const FullRecord*>(m_);
  std::span<const FullRecord*> cur = ctx.arena.take<const FullRecord*>(m_);
  bool have_prev = false;

  while (true) {
    ++stats.collects;
    PSNAP_ASSERT_MSG(stats.collects <= 2ull * n_ + 3,
                     "full-snapshot embedded scan exceeded its collect bound");
    const FullRecord* borrow = nullptr;
    for (std::uint32_t j = 0; j < m_; ++j) {
      cur[j] = r_[j].load();
      if (have_prev && cur[j] != prev[j] && borrow == nullptr) {
        borrow = note_move(cur[j]);
      }
    }
    if (borrow != nullptr) {
      stats.borrowed = true;
      ctx.values = borrow->full_view;  // capacity-reusing copy
      return;
    }
    if (have_prev && std::equal(cur.begin(), cur.end(), prev.begin())) {
      ctx.values.clear();
      ctx.values.reserve(m_);
      for (std::uint32_t j = 0; j < m_; ++j) {
        ctx.values.push_back(cur[j]->value);
      }
      return;
    }
    std::swap(prev, cur);
    have_prev = true;
  }
}

void FullSnapshot::update(std::uint32_t i, std::uint64_t v) {
  PSNAP_ASSERT(i < m_);
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::tls_op_stats().reset();
  core::ScanContext& ctx = core::tls_scan_context();
  ctx.begin();
  auto guard = ebr_.pin();

  embedded_full_scan(ctx);
  // Pool-backed record, owned by the Handle until publication (an
  // injected halt at the publish step returns it to the pool instead of
  // leaking).
  auto rec = record_pool_.acquire(ebr_);
  rec->value = v;
  rec->counter = ++counter_[pid].value;
  rec->pid = pid;
  rec->full_view = ctx.values;  // capacity-reusing copy
  const FullRecord* old = r_[i].exchange(rec.get());
  rec.release();
  record_pool_.recycle(ebr_, const_cast<FullRecord*>(old));
}

void FullSnapshot::scan(std::span<const std::uint32_t> indices,
                        std::vector<std::uint64_t>& out,
                        core::ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::tls_op_stats().reset();
  ctx.begin();
  auto guard = ebr_.pin();

  embedded_full_scan(ctx);
  out.reserve(indices.size());
  for (std::uint32_t i : indices) {
    PSNAP_ASSERT(i < m_);
    out.push_back(ctx.values[i]);
  }
}

}  // namespace psnap::baseline
