#include "baseline/full_snapshot.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "core/moved_twice.h"
#include "core/op_stats.h"
#include "exec/exec.h"

namespace psnap::baseline {

template <class Value>
FullSnapshotT<Value>::FullSnapshotT(std::uint32_t initial_components,
                                    std::uint32_t max_processes,
                                    std::uint64_t initial_value,
                                    exec::PidBound bound)
    : size_(initial_components),
      n_(max_processes),
      bound_(bound),
      initial_value_(initial_value) {
  PSNAP_ASSERT(initial_components > 0 && n_ > 0);
  PSNAP_ASSERT_MSG(n_ <= reclaim::EbrDomain::kPidSlots,
                   "max_processes exceeds the pid-slot capacity");
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    r_.at(i).init(make_initial(initial_value, i), /*label=*/i);
  }
}

template <class Value>
FullSnapshotT<Value>::~FullSnapshotT() {
  const std::uint32_t m = size_.load();
  for (std::uint32_t i = 0; i < m; ++i) {
    const FullRecord* head = r_.at(i).peek();
    if constexpr (Value::kVersioned) {
      // Chain-trim invariant: {head, head->prev} are the only unretired
      // nodes of a chain (see version_chain.h); everything older already
      // recycled through the pool.
      delete head->prev.load(std::memory_order_relaxed);
    }
    delete head;
  }
  if constexpr (Value::kVersioned) {
    // Crash sweep: a thread halted mid-update_batch leaves its descriptor
    // in the per-pid slot.  Installed members belong to their chains
    // (freed above or already recycled); the never-installed nodes and the
    // descriptor itself are reachable only from here.
    const std::uint32_t pids = bound_.get(n_);
    for (std::uint32_t p = 0; p < pids; ++p) {
      auto* slot = active_batch_.try_at(p);
      if (slot == nullptr) continue;
      BatchDesc* desc = (*slot)->load(std::memory_order_relaxed);
      if (desc == nullptr) continue;
      for (std::uint32_t e = 0; e < desc->slots.size(); ++e) {
        auto& entry = desc->slots[e];
        if (entry.node != nullptr &&
            !entry.installed.load(std::memory_order_relaxed)) {
          delete entry.node;
        }
      }
      delete desc;
    }
  }
}

template <class Value>
std::uint32_t FullSnapshotT<Value>::add_components(std::uint32_t count) {
  return core::grow_components(
      size_, r_, count, [this](auto& slot, std::uint32_t i) {
        slot.init(make_initial(initial_value_, i), /*label=*/i);
      });
}

template <class Value>
auto FullSnapshotT<Value>::embedded_full_scan(core::ScanContext& ctx,
                                              std::uint32_t m)
    -> std::vector<ValueType>& {
  core::OpStats& stats = core::tls_op_stats();
  stats.embedded_args = m;
  std::vector<ValueType>& vals = core::values_for<ValueType>(ctx);

  // "Moved twice" helping rule bookkeeping; see the condition-(2)
  // discussion in register_psnap.cpp -- the same multi-writer soundness
  // argument applies here verbatim.  Population-adaptively sized, like
  // the local algorithms' tables (core/moved_twice.h): even the Omega(m)
  // baseline need not pay O(max_threads) bookkeeping per collect.
  core::MovedTwiceTable<FullRecord> seen(ctx.arena, bound_.get(n_), n_);
  auto note_move = [&seen](const FullRecord* rec) {
    return seen.note_move(rec);
  };

  std::span<const FullRecord*> prev = ctx.arena.take<const FullRecord*>(m);
  std::span<const FullRecord*> cur = ctx.arena.take<const FullRecord*>(m);
  bool have_prev = false;

  while (true) {
    ++stats.collects;
    PSNAP_ASSERT_MSG(stats.collects <= 2ull * n_ + 3,
                     "full-snapshot embedded scan exceeded its collect bound");
    const FullRecord* borrow = nullptr;
    for (std::uint32_t j = 0; j < m; ++j) {
      cur[j] = r_.at(j).load();
      if (have_prev && cur[j] != prev[j] && borrow == nullptr) {
        borrow = note_move(cur[j]);
      }
    }
    if (borrow != nullptr) {
      stats.borrowed = true;
      // The borrowed operation captured its count AFTER we captured ours
      // (it started during our scan; counts are monotone seq_cst), so its
      // full_view covers at least our m components.
      PSNAP_ASSERT(borrow->full_view.size() >= m);
      vals = borrow->full_view;  // capacity-reusing copy
      return vals;
    }
    if (have_prev && std::equal(cur.begin(), cur.end(), prev.begin())) {
      // resize+assign keeps element payload capacity on the blob plane.
      vals.resize(m);
      for (std::uint32_t j = 0; j < m; ++j) {
        Value::copy(cur[j]->value, vals[j]);
      }
      return vals;
    }
    std::swap(prev, cur);
    have_prev = true;
  }
}

template <class Value>
template <class Fill>
void FullSnapshotT<Value>::do_update(std::uint32_t i, Fill&& fill) {
  if constexpr (Value::kVersioned) {
    // Versioned plane: no complete collect, no full view -- append one
    // node to the component's chain.  The register exchange becomes a CAS
    // retry loop (a chain append must name its predecessor); a retry
    // means another update published, so the loop is lock-free.
    PSNAP_ASSERT(i < size_.load());
    std::uint32_t pid = exec::ctx().pid;
    PSNAP_ASSERT(pid < n_);
    core::tls_op_stats().reset();
    auto guard = ebr_.pin();

    auto rec = record_pool_.acquire(ebr_);
    fill(rec->value);
    rec->counter = ++counter_.at(pid).value;
    rec->pid = pid;
    rec->full_view.clear();  // versioned records carry no helping view
    // A recycled record may have been a batch member in a prior life.
    rec->batch.store(nullptr, std::memory_order_relaxed);
    FullRecord* node = rec.get();
    const FullRecord* old = r_.at(i).load();
    while (true) {
      // Fix the displaced head's version before publishing over it
      // (chain stamps must never decrease in publication order).
      primitives::ensure_stamped<primitives::Instrumented>(*old, camera_);
      node->version.store(primitives::kUnstamped, std::memory_order_relaxed);
      node->prev.store(old, std::memory_order_relaxed);
      const FullRecord* prev = r_.at(i).compare_and_swap(old, node);
      if (prev == old) break;
      old = prev;
    }
    rec.release();
    // Lazy chain trim: keeps the unretired set at {head, head->prev}.
    if (const FullRecord* trim = old->prev.load(std::memory_order_relaxed)) {
      record_pool_.recycle(ebr_, const_cast<FullRecord*>(trim));
    }
    primitives::ensure_stamped<primitives::Instrumented>(*node, camera_);
  } else {
    const std::uint32_t m = size_.load();
    PSNAP_ASSERT(i < m);
    std::uint32_t pid = exec::ctx().pid;
    PSNAP_ASSERT(pid < n_);
    core::tls_op_stats().reset();
    core::ScanContext& ctx = core::tls_scan_context();
    ctx.begin();
    auto guard = ebr_.pin();

    std::vector<ValueType>& vals = embedded_full_scan(ctx, m);
    // Pool-backed record, owned by the Handle until publication (an
    // injected halt at the publish step returns it to the pool instead of
    // leaking).
    auto rec = record_pool_.acquire(ebr_);
    fill(rec->value);
    rec->counter = ++counter_.at(pid).value;
    rec->pid = pid;
    rec->full_view = vals;  // capacity-reusing copy
    const FullRecord* old = r_.at(i).exchange(rec.get());
    rec.release();
    record_pool_.recycle(ebr_, const_cast<FullRecord*>(old));
  }
}

template <class Value>
void FullSnapshotT<Value>::update(std::uint32_t i, std::uint64_t v) {
  do_update(i, [v](ValueType& out) { Value::encode(v, out); });
}

template <class Value>
void FullSnapshotT<Value>::update_blob(std::uint32_t i,
                                       std::span<const std::byte> bytes) {
  if constexpr (Value::kIndirect) {
    do_update(i, [bytes](ValueType& out) { Value::assign(out, bytes); });
  } else {
    core::PartialSnapshot::update_blob(i, bytes);
  }
}

template <class Value>
void FullSnapshotT<Value>::resolve_batch(const BatchDesc& desc) {
  if constexpr (Value::kVersioned) {
    primitives::batch_install_and_resolve<primitives::Instrumented>(
        desc.slots.data(), desc.slots.size(), desc, camera_,
        [this](std::uint32_t i) -> auto& { return r_.at(i); },
        [this](const FullRecord* displaced) {
          // Lazy chain trim, as in the singleton update.
          if (const FullRecord* trim =
                  displaced->prev.load(std::memory_order_relaxed)) {
            record_pool_.recycle(ebr_, const_cast<FullRecord*>(trim));
          }
        });
  } else {
    (void)desc;
    PSNAP_ASSERT_MSG(false, "resolve_batch on a non-versioned plane");
  }
}

template <class Value>
template <class EntryT, class Fill>
void FullSnapshotT<Value>::do_update_batch(std::span<const EntryT> entries,
                                           Fill&& fill) {
  if (entries.empty()) return;
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  const std::uint32_t m = size_.load();
  for (const EntryT& e : entries) PSNAP_ASSERT(e.index < m);
  core::OpStats& stats = core::tls_op_stats();
  stats.reset();
  core::ScanContext& ctx = core::tls_scan_context();
  ctx.begin();
  auto guard = ebr_.pin();

  // Coalesce duplicate indices, later entries winning (one protocol
  // instance, so per-component order degenerates to last-wins).
  std::span<const EntryT*> merged =
      ctx.arena.take<const EntryT*>(entries.size());
  std::uint32_t count = 0;
  for (const EntryT& e : entries) {
    std::uint32_t j = 0;
    while (j < count && merged[j]->index != e.index) ++j;
    merged[j] = &e;
    if (j == count) ++count;
  }
  stats.batch_size = count;

  if constexpr (Value::kVersioned) {
    // Ascending component order is the install engine's help-ordering
    // invariant (version_chain.h).
    std::sort(merged.begin(), merged.begin() + count,
              [](const EntryT* a, const EntryT* b) {
                return a->index < b->index;
              });

    auto desc_handle = batch_pool_.acquire(ebr_);
    BatchDesc* desc = desc_handle.get();
    desc->owner = this;
    desc->version.store(primitives::kUnstamped, std::memory_order_relaxed);
    desc->slots.reset(count);
    for (std::uint32_t j = 0; j < count; ++j) {
      desc->slots[j].index = merged[j]->index;
    }
    // Publish the descriptor for the crash sweep BEFORE any node leaves
    // the pool (see the twin in cas_psnap.cpp).
    active_batch_.at(pid)->store(desc_handle.release(),
                                 std::memory_order_release);

    for (std::uint32_t j = 0; j < count; ++j) {
      auto rec = record_pool_.acquire(ebr_);
      fill(*merged[j], rec->value);
      rec->counter = counter_.at(pid).value + 1 + j;
      rec->pid = pid;
      rec->full_view.clear();
      rec->version.store(primitives::kUnstamped, std::memory_order_relaxed);
      rec->prev.store(nullptr, std::memory_order_relaxed);
      rec->batch.store(desc, std::memory_order_relaxed);
      desc->slots[j].node = rec.release();
    }
    counter_.at(pid).value += count;

    // ONE helping round for the k appends, then the one shared stamp --
    // the batch's linearization point.
    resolve_batch(*desc);

    const std::uint64_t stamp = desc->version.load(std::memory_order_acquire);
    stats.epoch = stamp;
    for (std::uint32_t j = 0; j < count; ++j) {
      primitives::stamp_version<primitives::Instrumented>(
          *desc->slots[j].node, stamp);
    }
    active_batch_.at(pid)->store(nullptr, std::memory_order_relaxed);
    batch_pool_.recycle(ebr_, desc);
  } else {
    // Collect planes: ONE embedded full scan (the Omega(m) helping cost,
    // the whole point of batching here) shared by k exchange
    // publications.  All k records carry the batch's one counter -- a
    // batch is one operation, and the moved-twice rule counts moves per
    // operation (core/moved_twice.h), so its k publications read as one
    // move; the borrow argument then holds verbatim with "operation"
    // substituted for "record".
    std::vector<ValueType>& vals = embedded_full_scan(ctx, m);
    const std::uint64_t batch_counter = ++counter_.at(pid).value;
    for (std::uint32_t j = 0; j < count; ++j) {
      auto rec = record_pool_.acquire(ebr_);
      fill(*merged[j], rec->value);
      rec->counter = batch_counter;
      rec->pid = pid;
      rec->full_view = vals;  // capacity-reusing copy
      const FullRecord* old = r_.at(merged[j]->index).exchange(rec.get());
      rec.release();
      record_pool_.recycle(ebr_, const_cast<FullRecord*>(old));
    }
  }
}

template <class Value>
void FullSnapshotT<Value>::update_batch(
    std::span<const core::BatchEntry> entries) {
  do_update_batch(entries, [](const core::BatchEntry& e, ValueType& out) {
    Value::encode(e.value, out);
  });
}

template <class Value>
void FullSnapshotT<Value>::update_batch_blob(
    std::span<const core::BlobBatchEntry> entries) {
  if constexpr (Value::kIndirect) {
    do_update_batch(entries, [](const core::BlobBatchEntry& e, ValueType& out) {
      Value::assign(out, e.bytes);
    });
  } else {
    core::PartialSnapshot::update_batch_blob(entries);
  }
}

template <class Value>
template <class Extract>
void FullSnapshotT<Value>::do_scan(std::span<const std::uint32_t> indices,
                                   core::ScanContext& ctx,
                                   Extract&& extract) {
  const std::uint32_t m = size_.load();
  for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
  std::uint32_t pid = exec::ctx().pid;
  PSNAP_ASSERT(pid < n_);
  core::tls_op_stats().reset();
  ctx.begin();
  auto guard = ebr_.pin();

  extract(embedded_full_scan(ctx, m));
}

template <class Value>
std::uint64_t FullSnapshotT<Value>::do_scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out) {
  if constexpr (Value::kVersioned) {
    PSNAP_ASSERT(exec::ctx().pid < n_);
    const std::uint32_t m = size_.load();
    for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
    core::OpStats& stats = core::tls_op_stats();
    stats.reset();
    auto guard = ebr_.pin();

    // One camera fetch-add, then only the r requested chains -- the
    // baseline's Omega(m) scan cost is gone (see the header comment).
    const std::uint64_t epoch = camera_.new_epoch();
    stats.epoch = epoch;
    out.resize(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      std::uint64_t walked = 0;
      const FullRecord* node =
          primitives::chain_read<primitives::Instrumented>(
              r_.at(indices[k]).load(), epoch, camera_, walked);
      out[k] = Value::decode(node->value);
      stats.chain_nodes = std::max(stats.chain_nodes, walked);
    }
    return epoch;
  } else {
    (void)indices;
    (void)out;
    PSNAP_ASSERT_MSG(false, "do_scan_versioned on a non-versioned plane");
    return 0;
  }
}

template <class Value>
std::uint64_t FullSnapshotT<Value>::scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    core::ScanContext& ctx) {
  if constexpr (Value::kVersioned) {
    (void)ctx;
    return do_scan_versioned(indices, out);
  } else {
    return core::PartialSnapshot::scan_versioned(indices, out, ctx);
  }
}

template <class Value>
void FullSnapshotT<Value>::scan(std::span<const std::uint32_t> indices,
                                std::vector<std::uint64_t>& out,
                                core::ScanContext& ctx) {
  if constexpr (Value::kVersioned) {
    do_scan_versioned(indices, out);
    return;
  } else {
    out.clear();
    if (indices.empty()) return;
    do_scan(indices, ctx, [&](const std::vector<ValueType>& vals) {
      out.reserve(indices.size());
      for (std::uint32_t i : indices) out.push_back(Value::decode(vals[i]));
    });
  }
}

template <class Value>
void FullSnapshotT<Value>::scan_blobs(std::span<const std::uint32_t> indices,
                                      std::vector<psnap::value::Blob>& out,
                                      core::ScanContext& ctx) {
  if constexpr (Value::kIndirect) {
    if (indices.empty()) {
      out.clear();
      return;
    }
    out.resize(indices.size());  // keeps element byte capacity
    do_scan(indices, ctx, [&](const std::vector<ValueType>& vals) {
      for (std::size_t k = 0; k < indices.size(); ++k) {
        Value::copy(vals[indices[k]], out[k]);
      }
    });
  } else {
    core::PartialSnapshot::scan_blobs(indices, out, ctx);
  }
}

template class FullSnapshotT<psnap::value::DirectU64>;
template class FullSnapshotT<psnap::value::IndirectBlob>;
template class FullSnapshotT<psnap::value::VersionedU64>;

}  // namespace psnap::baseline
