// Double-collect partial snapshot: the paper's Section 1 "simple variant of
// the original non-blocking snapshot algorithm of Afek et al.".
//
// A scan repeatedly collects the requested components and returns once two
// consecutive collects are identical.  There is no helping, so "individual
// scans may never terminate: a slow scanner can keep seeing different
// collects if fast updates are concurrently being performed" -- the
// implementation is lock-free (updates always make progress) but NOT
// wait-free.  Used as a correctness baseline at low contention, and by the
// ABL-2 ablation bench to demonstrate the starvation the helping mechanism
// exists to prevent.
//
// A scan that exceeds the configured collect cap throws StarvationError
// rather than returning an inconsistent result.
#pragma once

#include <stdexcept>
#include <vector>

#include "common/padding.h"
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/record.h"
#include "core/scan_context.h"
#include "primitives/primitives.h"
#include "reclaim/ebr.h"

namespace psnap::baseline {

class StarvationError : public std::runtime_error {
 public:
  explicit StarvationError(std::uint64_t collects)
      : std::runtime_error("scan starved after " + std::to_string(collects) +
                           " collects"),
        collects(collects) {}

  std::uint64_t collects;
};

class DoubleCollectSnapshot final : public core::PartialSnapshot {
 public:
  // max_collects_per_scan == 0 means retry forever.
  DoubleCollectSnapshot(std::uint32_t initial_components,
                        std::uint32_t max_processes,
                        std::uint64_t max_collects_per_scan = 0,
                        std::uint64_t initial_value = 0);
  ~DoubleCollectSnapshot() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override { return "double-collect"; }
  bool is_wait_free() const override { return false; }
  bool is_local() const override { return true; }

  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan;

 private:
  // Plain (value, tag) records: no embedded views, that is the point.
  struct SimpleRecord {
    std::uint64_t value;
    std::uint64_t counter;
    std::uint32_t pid;
  };

  core::GrowableSize size_;
  std::uint32_t n_;
  std::uint64_t initial_value_;
  std::uint64_t max_collects_;
  core::ComponentStorage<primitives::Register<const SimpleRecord*>> r_;
  reclaim::EbrDomain ebr_;
  core::PerPidStorage<CachelinePadded<std::uint64_t>> counter_;
};

}  // namespace psnap::baseline
