// Double-collect partial snapshot: the paper's Section 1 "simple variant of
// the original non-blocking snapshot algorithm of Afek et al.".
//
// A scan repeatedly collects the requested components and returns once two
// consecutive collects are identical.  There is no helping, so "individual
// scans may never terminate: a slow scanner can keep seeing different
// collects if fast updates are concurrently being performed" -- the
// implementation is lock-free (updates always make progress) but NOT
// wait-free.  Used as a correctness baseline at low contention, and by the
// ABL-2 ablation bench to demonstrate the starvation the helping mechanism
// exists to prevent.
//
// A scan that exceeds the configured collect cap throws StarvationError
// rather than returning an inconsistent result.
//
// Value plane (primitives/value_plane.h): the record already carries the
// payload behind the published pointer, so the blob plane just swaps the
// record's value field for an owned byte buffer.
#pragma once

#include <stdexcept>
#include <vector>

#include "common/padding.h"
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/record.h"
#include "core/scan_context.h"
#include "primitives/primitives.h"
#include "primitives/value_plane.h"
#include "reclaim/ebr.h"

namespace psnap::baseline {

class StarvationError : public std::runtime_error {
 public:
  explicit StarvationError(std::uint64_t collects)
      : std::runtime_error("scan starved after " + std::to_string(collects) +
                           " collects"),
        collects(collects) {}

  std::uint64_t collects;
};

template <class Value = psnap::value::DirectU64>
class DoubleCollectSnapshotT final : public core::PartialSnapshot {
 public:
  using ValueType = typename Value::ValueType;

  // max_collects_per_scan == 0 means retry forever.
  DoubleCollectSnapshotT(std::uint32_t initial_components,
                         std::uint32_t max_processes,
                         std::uint64_t max_collects_per_scan = 0,
                         std::uint64_t initial_value = 0);
  ~DoubleCollectSnapshotT() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override {
    return Value::kIndirect ? "double-collect-blob" : "double-collect";
  }
  bool is_wait_free() const override { return false; }
  bool is_local() const override { return true; }
  std::string_view value_plane() const override { return Value::kName; }

  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<psnap::value::Blob>& out,
                  core::ScanContext& ctx) override;
  // Batched updates share one EBR pin and one retire wave, but each of
  // the k exchanges still linearizes on its own (there is no helping
  // round here to amortize) -- kAmortized.
  void update_batch(std::span<const core::BatchEntry> entries) override;
  void update_batch_blob(
      std::span<const core::BlobBatchEntry> entries) override;
  core::BatchAtomicity batch_atomicity() const override {
    return core::BatchAtomicity::kAmortized;
  }
  using core::PartialSnapshot::scan;
  using core::PartialSnapshot::scan_blobs;

 private:
  // Plain (value, tag) records: no embedded views, that is the point.
  struct SimpleRecord {
    ValueType value{};
    std::uint64_t counter = 0;
    std::uint32_t pid = core::kInitPid;
  };

  SimpleRecord* make_record(std::uint64_t counter, std::uint32_t pid) {
    auto* rec = new SimpleRecord();
    rec->counter = counter;
    rec->pid = pid;
    return rec;
  }

  template <class Fill>
  void do_update(std::uint32_t i, Fill&& fill);
  template <class EntryT, class Fill>
  void do_update_batch(std::span<const EntryT> entries, Fill&& fill);
  // Runs the double collect; `extract` receives the stable collect (record
  // pointers, still EBR-pinned) and the canonical index set.
  template <class Extract>
  void do_scan(std::span<const std::uint32_t> indices,
               core::ScanContext& ctx, Extract&& extract);

  core::GrowableSize size_;
  std::uint32_t n_;
  std::uint64_t initial_value_;
  std::uint64_t max_collects_;
  core::ComponentStorage<primitives::Register<const SimpleRecord*>> r_;
  reclaim::EbrDomain ebr_;
  core::PerPidStorage<CachelinePadded<std::uint64_t>> counter_;
};

using DoubleCollectSnapshot = DoubleCollectSnapshotT<psnap::value::DirectU64>;
using DoubleCollectSnapshotBlob =
    DoubleCollectSnapshotT<psnap::value::IndirectBlob>;

}  // namespace psnap::baseline
