#include "baseline/seqlock_snapshot.h"

#include <algorithm>
#include <atomic>

#include "common/assert.h"
#include "core/op_stats.h"

namespace psnap::baseline {

template <class Value>
void SeqlockSnapshotT<Value>::init_cell(Cell& cell, std::uint32_t index) {
  if constexpr (Value::kVersioned) {
    auto* node = new primitives::VersionNodeU64();
    node->value = initial_value_;
    node->version.store(primitives::kInitialVersion,
                        std::memory_order_relaxed);
    cell.init(node, /*label=*/index);
  } else if constexpr (Value::kIndirect) {
    auto* node = new primitives::BlobNode();
    Value::encode(initial_value_, node->bytes);
    cell.init(node, /*label=*/index);
  } else {
    cell.init(initial_value_, /*label=*/index);
  }
}

template <class Value>
SeqlockSnapshotT<Value>::SeqlockSnapshotT(std::uint32_t initial_components,
                                          std::uint64_t max_attempts_per_scan,
                                          std::uint64_t initial_value)
    : size_(initial_components),
      initial_value_(initial_value),
      max_attempts_(max_attempts_per_scan) {
  PSNAP_ASSERT(initial_components > 0);
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    init_cell(data_.at(i), i);
  }
}

template <class Value>
SeqlockSnapshotT<Value>::~SeqlockSnapshotT() {
  if constexpr (Value::kVersioned) {
    // Chain-trim invariant: {head, head->prev} are the only unretired
    // nodes per chain (version_chain.h); older nodes already recycled.
    const std::uint32_t m = size_.load();
    for (std::uint32_t i = 0; i < m; ++i) {
      const primitives::VersionNodeU64* head = data_.at(i).peek();
      delete head->prev.load(std::memory_order_relaxed);
      delete head;
    }
  } else if constexpr (Value::kIndirect) {
    // Quiescent: the published nodes are owned here; in-flight retired
    // nodes drain into the pool when plane_.ebr is destroyed.
    const std::uint32_t m = size_.load();
    for (std::uint32_t i = 0; i < m; ++i) delete data_.at(i).peek();
  }
}

template <class Value>
std::uint32_t SeqlockSnapshotT<Value>::add_components(std::uint32_t count) {
  return core::grow_components(size_, data_, count,
                               [this](auto& slot, std::uint32_t i) {
                                 init_cell(slot, i);
                               });
}

template <class Value>
template <class Fill>
void SeqlockSnapshotT<Value>::do_update(std::uint32_t i, Fill&& fill) {
  PSNAP_ASSERT(i < size_.load());
  core::tls_op_stats().reset();
  if constexpr (Value::kVersioned) {
    // Versioned plane: the writer section serializes chain appends, which
    // is what lets the cell publish with a plain exchange (value_cell.h).
    // Build the node outside the section, publish inside it, stamp and
    // trim after releasing it -- stalled stamps are fixed by readers and
    // later writers (ensure_stamped), so holding the lock across them
    // would buy nothing.
    auto guard = plane_.ebr.pin();
    auto node = plane_.pool.acquire(plane_.ebr);
    fill(node->value);
    // A recycled node may have been a batch member in a prior life.
    node->batch.store(nullptr, std::memory_order_relaxed);
    const primitives::VersionNodeU64* old = nullptr;
    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (version_.compare_and_swap_bool(v0, v0 + 1)) {
        old = data_.at(i).load();
        // Fix the displaced head's version before publishing over it
        // (chain stamps must never decrease in publication order).
        primitives::ensure_stamped<primitives::Instrumented>(*old,
                                                             plane_.camera);
        node->version.store(primitives::kUnstamped,
                            std::memory_order_relaxed);
        node->prev.store(old, std::memory_order_relaxed);
        const primitives::VersionNodeU64* displaced =
            data_.at(i).exchange(node.get());
        PSNAP_ASSERT(displaced == old);
        // Only the holder modifies an odd version, so this CAS cannot fail.
        bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
        PSNAP_ASSERT(released);
        break;
      }
    }
    primitives::VersionNodeU64* published = node.release();
    // Lazy chain trim: keeps the unretired set at {head, head->prev}.
    if (const primitives::VersionNodeU64* trim =
            old->prev.load(std::memory_order_relaxed)) {
      plane_.pool.recycle(plane_.ebr,
                          const_cast<primitives::VersionNodeU64*>(trim));
    }
    primitives::ensure_stamped<primitives::Instrumented>(*published,
                                                         plane_.camera);
  } else if constexpr (Value::kIndirect) {
    // Build the immutable node before taking the writer section (pool-
    // backed: the byte buffer keeps its capacity across lives, and an
    // unwind before publication returns the node without a grace period).
    auto guard = plane_.ebr.pin();
    auto node = plane_.pool.acquire(plane_.ebr);
    fill(node->bytes);
    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (version_.compare_and_swap_bool(v0, v0 + 1)) {
        const primitives::BlobNode* old = data_.at(i).exchange(node.get());
        node.release();
        // Only the holder modifies an odd version, so this CAS cannot fail.
        bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
        PSNAP_ASSERT(released);
        // Retire outside the writer section: a pinned reader may still
        // dereference the replaced node until its grace period expires.
        plane_.pool.recycle(plane_.ebr,
                            const_cast<primitives::BlobNode*>(old));
        return;
      }
    }
  } else {
    ValueType v{};
    fill(v);
    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (version_.compare_and_swap_bool(v0, v0 + 1)) {
        data_.at(i).store(v);
        // Only the holder modifies an odd version, so this CAS cannot fail.
        bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
        PSNAP_ASSERT(released);
        return;
      }
    }
  }
}

template <class Value>
void SeqlockSnapshotT<Value>::update(std::uint32_t i, std::uint64_t v) {
  do_update(i, [v](ValueType& out) { Value::encode(v, out); });
}

template <class Value>
void SeqlockSnapshotT<Value>::update_blob(std::uint32_t i,
                                          std::span<const std::byte> bytes) {
  if constexpr (Value::kIndirect) {
    do_update(i, [bytes](ValueType& out) { Value::assign(out, bytes); });
  } else {
    core::PartialSnapshot::update_blob(i, bytes);
  }
}

template <class Value>
template <class EntryT, class Fill>
void SeqlockSnapshotT<Value>::do_update_batch(std::span<const EntryT> entries,
                                              Fill&& fill) {
  if (entries.empty()) return;
  const std::uint32_t m = size_.load();
  for (const EntryT& e : entries) PSNAP_ASSERT(e.index < m);
  core::OpStats& stats = core::tls_op_stats();
  stats.reset();
  core::ScanContext& ctx = core::tls_scan_context();
  ctx.begin();

  // Coalesce duplicate indices, later entries winning.
  std::span<const EntryT*> merged =
      ctx.arena.take<const EntryT*>(entries.size());
  std::uint32_t count = 0;
  for (const EntryT& e : entries) {
    std::uint32_t j = 0;
    while (j < count && merged[j]->index != e.index) ++j;
    merged[j] = &e;
    if (j == count) ++count;
  }
  stats.batch_size = count;

  if constexpr (Value::kVersioned) {
    using Node = primitives::VersionNodeU64;
    auto guard = plane_.ebr.pin();
    auto desc_handle = plane_.batch_pool.acquire(plane_.ebr);
    SeqBatchDesc* desc = desc_handle.get();
    desc->camera = &plane_.camera;
    desc->version.store(primitives::kUnstamped, std::memory_order_relaxed);
    desc->installed.store(false, std::memory_order_relaxed);
    std::span<const Node*> olds = ctx.arena.take<const Node*>(count);
    std::span<Node*> nodes = ctx.arena.take<Node*>(count);

    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (!version_.compare_and_swap_bool(v0, v0 + 1)) continue;
      // One writer section for the k chain appends.
      for (std::uint32_t j = 0; j < count; ++j) {
        auto node = plane_.pool.acquire(plane_.ebr);
        fill(*merged[j], node->value);
        const Node* old = data_.at(merged[j]->index).load();
        primitives::ensure_stamped<primitives::Instrumented>(*old,
                                                             plane_.camera);
        node->version.store(primitives::kUnstamped,
                            std::memory_order_relaxed);
        node->prev.store(old, std::memory_order_relaxed);
        node->batch.store(desc, std::memory_order_relaxed);
        olds[j] = old;
        nodes[j] = node.get();
        data_.at(merged[j]->index).exchange(node.release());
      }
      // All members reachable: the descriptor is now published (every
      // node's batch pointer names it), so ownership passes from the
      // handle to the recycle below -- and any helper spinning in
      // resolve() is released before the lock goes back even.
      desc_handle.release();
      desc->installed.store(true, std::memory_order_release);
      bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
      PSNAP_ASSERT(released);
      break;
    }

    // Fix the one shared stamp -- the batch's linearization point -- then
    // copy it into the members' own version words and trim the chains.
    desc->resolve();
    const std::uint64_t stamp = desc->version.load(std::memory_order_acquire);
    stats.epoch = stamp;
    for (std::uint32_t j = 0; j < count; ++j) {
      primitives::stamp_version<primitives::Instrumented>(*nodes[j], stamp);
    }
    for (std::uint32_t j = 0; j < count; ++j) {
      if (const Node* trim = olds[j]->prev.load(std::memory_order_relaxed)) {
        plane_.pool.recycle(plane_.ebr, const_cast<Node*>(trim));
      }
    }
    plane_.batch_pool.recycle(plane_.ebr, desc);
  } else if constexpr (Value::kIndirect) {
    auto guard = plane_.ebr.pin();
    std::span<const primitives::BlobNode*> olds =
        ctx.arena.take<const primitives::BlobNode*>(count);
    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (!version_.compare_and_swap_bool(v0, v0 + 1)) continue;
      for (std::uint32_t j = 0; j < count; ++j) {
        auto node = plane_.pool.acquire(plane_.ebr);
        fill(*merged[j], node->bytes);
        olds[j] = data_.at(merged[j]->index).exchange(node.release());
      }
      bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
      PSNAP_ASSERT(released);
      break;
    }
    // Retire outside the writer section, as in the singleton update.
    for (std::uint32_t j = 0; j < count; ++j) {
      plane_.pool.recycle(plane_.ebr,
                          const_cast<primitives::BlobNode*>(olds[j]));
    }
  } else {
    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (!version_.compare_and_swap_bool(v0, v0 + 1)) continue;
      for (std::uint32_t j = 0; j < count; ++j) {
        ValueType v{};
        fill(*merged[j], v);
        data_.at(merged[j]->index).store(v);
      }
      bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
      PSNAP_ASSERT(released);
      return;
    }
  }
}

template <class Value>
void SeqlockSnapshotT<Value>::update_batch(
    std::span<const core::BatchEntry> entries) {
  do_update_batch(entries, [](const core::BatchEntry& e, ValueType& out) {
    Value::encode(e.value, out);
  });
}

template <class Value>
void SeqlockSnapshotT<Value>::update_batch_blob(
    std::span<const core::BlobBatchEntry> entries) {
  if constexpr (Value::kIndirect) {
    do_update_batch(entries, [](const core::BlobBatchEntry& e, ValueType& out) {
      Value::assign(out, e.bytes);
    });
  } else {
    core::PartialSnapshot::update_batch_blob(entries);
  }
}

template <class Value>
template <class Collect>
void SeqlockSnapshotT<Value>::do_scan(std::span<const std::uint32_t> indices,
                                      std::uint32_t m, Collect&& collect) {
  core::OpStats& stats = core::tls_op_stats();
  while (true) {
    ++stats.collects;
    if (max_attempts_ != 0 && stats.collects > max_attempts_) {
      throw StarvationError(stats.collects - 1);
    }
    std::uint64_t v0 = version_.load();
    if (v0 % 2 == 1) continue;
    for (std::size_t j = 0; j < indices.size(); ++j) {
      PSNAP_ASSERT(indices[j] < m);
      collect(j, indices[j]);
    }
    std::uint64_t v1 = version_.load();
    if (v1 == v0) return;
  }
}

template <class Value>
std::uint64_t SeqlockSnapshotT<Value>::do_scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out) {
  if constexpr (Value::kVersioned) {
    const std::uint32_t m = size_.load();
    for (std::uint32_t i : indices) PSNAP_ASSERT(i < m);
    core::OpStats& stats = core::tls_op_stats();
    stats.reset();
    auto guard = plane_.ebr.pin();

    // No seqlock reads at all: a camera epoch plus per-component chain
    // walks -- readers never retry, however contended the writer lock is.
    const std::uint64_t epoch = plane_.camera.new_epoch();
    stats.epoch = epoch;
    out.resize(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      std::uint64_t walked = 0;
      const primitives::VersionNodeU64* node =
          primitives::chain_read<primitives::Instrumented>(
              data_.at(indices[k]).load(), epoch, plane_.camera, walked);
      out[k] = node->value;
      stats.chain_nodes = std::max(stats.chain_nodes, walked);
    }
    return epoch;
  } else {
    (void)indices;
    (void)out;
    PSNAP_ASSERT_MSG(false, "do_scan_versioned on a non-versioned plane");
    return 0;
  }
}

template <class Value>
std::uint64_t SeqlockSnapshotT<Value>::scan_versioned(
    std::span<const std::uint32_t> indices, std::vector<std::uint64_t>& out,
    core::ScanContext& ctx) {
  if constexpr (Value::kVersioned) {
    (void)ctx;
    return do_scan_versioned(indices, out);
  } else {
    return core::PartialSnapshot::scan_versioned(indices, out, ctx);
  }
}

template <class Value>
void SeqlockSnapshotT<Value>::scan(std::span<const std::uint32_t> indices,
                                   std::vector<std::uint64_t>& out,
                                   core::ScanContext& ctx) {
  if constexpr (Value::kVersioned) {
    (void)ctx;
    do_scan_versioned(indices, out);
    return;
  } else {
    out.clear();
    if (indices.empty()) return;
    const std::uint32_t m = size_.load();
    core::tls_op_stats().reset();
    ctx.begin();
    // Collect straight into `out` (capacity-reusing); a retry overwrites in
    // place, and the starvation path clears the partial collect.
    out.resize(indices.size());
    try {
      if constexpr (Value::kIndirect) {
        // Pinned across the retry loop: every pointer loaded inside is
        // dereferenceable even if the writer that replaced it has already
        // retired it (a version mismatch only discards the copied bytes).
        auto guard = plane_.ebr.pin();
        do_scan(indices, m, [&](std::size_t j, std::uint32_t index) {
          out[j] = Value::decode(data_.at(index).load()->bytes);
        });
      } else {
        do_scan(indices, m, [&](std::size_t j, std::uint32_t index) {
          out[j] = data_.at(index).load();
        });
      }
    } catch (...) {
      out.clear();
      throw;
    }
  }
}

template <class Value>
void SeqlockSnapshotT<Value>::scan_blobs(
    std::span<const std::uint32_t> indices,
    std::vector<psnap::value::Blob>& out, core::ScanContext& ctx) {
  if constexpr (Value::kIndirect) {
    if (indices.empty()) {
      out.clear();
      return;
    }
    const std::uint32_t m = size_.load();
    core::tls_op_stats().reset();
    ctx.begin();
    out.resize(indices.size());  // keeps element byte capacity
    try {
      auto guard = plane_.ebr.pin();
      do_scan(indices, m, [&](std::size_t j, std::uint32_t index) {
        Value::copy(data_.at(index).load()->bytes, out[j]);
      });
    } catch (...) {
      out.clear();
      throw;
    }
  } else {
    core::PartialSnapshot::scan_blobs(indices, out, ctx);
  }
}

template class SeqlockSnapshotT<psnap::value::DirectU64>;
template class SeqlockSnapshotT<psnap::value::IndirectBlob>;
template class SeqlockSnapshotT<psnap::value::VersionedU64>;

}  // namespace psnap::baseline
