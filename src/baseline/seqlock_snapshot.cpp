#include "baseline/seqlock_snapshot.h"

#include "common/assert.h"
#include "core/op_stats.h"

namespace psnap::baseline {

SeqlockSnapshot::SeqlockSnapshot(std::uint32_t initial_components,
                                 std::uint64_t max_attempts_per_scan,
                                 std::uint64_t initial_value)
    : size_(initial_components),
      initial_value_(initial_value),
      max_attempts_(max_attempts_per_scan) {
  PSNAP_ASSERT(initial_components > 0);
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    data_.at(i).init(initial_value, /*label=*/i);
  }
}

std::uint32_t SeqlockSnapshot::add_components(std::uint32_t count) {
  return core::grow_components(size_, data_, count,
                               [this](auto& slot, std::uint32_t i) {
                                 slot.init(initial_value_, /*label=*/i);
                               });
}

void SeqlockSnapshot::update(std::uint32_t i, std::uint64_t v) {
  PSNAP_ASSERT(i < size_.load());
  core::tls_op_stats().reset();
  // Acquire the writer "lock" by making the version odd.
  while (true) {
    std::uint64_t v0 = version_.load();
    if (v0 % 2 == 1) continue;  // another writer holds it
    if (version_.compare_and_swap_bool(v0, v0 + 1)) {
      data_.at(i).store(v);
      // Only the holder modifies an odd version, so this CAS cannot fail.
      bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
      PSNAP_ASSERT(released);
      return;
    }
  }
}

void SeqlockSnapshot::scan(std::span<const std::uint32_t> indices,
                           std::vector<std::uint64_t>& out,
                           core::ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  const std::uint32_t m = size_.load();
  core::OpStats& stats = core::tls_op_stats();
  stats.reset();
  ctx.begin();
  // Collect straight into `out` (capacity-reusing); a retry overwrites in
  // place, and the starvation path clears the partial collect.
  out.resize(indices.size());
  while (true) {
    ++stats.collects;
    if (max_attempts_ != 0 && stats.collects > max_attempts_) {
      out.clear();
      throw StarvationError(stats.collects - 1);
    }
    std::uint64_t v0 = version_.load();
    if (v0 % 2 == 1) continue;
    for (std::size_t j = 0; j < indices.size(); ++j) {
      PSNAP_ASSERT(indices[j] < m);
      out[j] = data_.at(indices[j]).load();
    }
    std::uint64_t v1 = version_.load();
    if (v1 == v0) break;
  }
}

}  // namespace psnap::baseline
