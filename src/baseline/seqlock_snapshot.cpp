#include "baseline/seqlock_snapshot.h"

#include "common/assert.h"
#include "core/op_stats.h"

namespace psnap::baseline {

template <class Value>
void SeqlockSnapshotT<Value>::init_cell(Cell& cell, std::uint32_t index) {
  if constexpr (Value::kIndirect) {
    auto* node = new primitives::BlobNode();
    Value::encode(initial_value_, node->bytes);
    cell.init(node, /*label=*/index);
  } else {
    cell.init(initial_value_, /*label=*/index);
  }
}

template <class Value>
SeqlockSnapshotT<Value>::SeqlockSnapshotT(std::uint32_t initial_components,
                                          std::uint64_t max_attempts_per_scan,
                                          std::uint64_t initial_value)
    : size_(initial_components),
      initial_value_(initial_value),
      max_attempts_(max_attempts_per_scan) {
  PSNAP_ASSERT(initial_components > 0);
  for (std::uint32_t i = 0; i < initial_components; ++i) {
    init_cell(data_.at(i), i);
  }
}

template <class Value>
SeqlockSnapshotT<Value>::~SeqlockSnapshotT() {
  if constexpr (Value::kIndirect) {
    // Quiescent: the published nodes are owned here; in-flight retired
    // nodes drain into the pool when plane_.ebr is destroyed.
    const std::uint32_t m = size_.load();
    for (std::uint32_t i = 0; i < m; ++i) delete data_.at(i).peek();
  }
}

template <class Value>
std::uint32_t SeqlockSnapshotT<Value>::add_components(std::uint32_t count) {
  return core::grow_components(size_, data_, count,
                               [this](auto& slot, std::uint32_t i) {
                                 init_cell(slot, i);
                               });
}

template <class Value>
template <class Fill>
void SeqlockSnapshotT<Value>::do_update(std::uint32_t i, Fill&& fill) {
  PSNAP_ASSERT(i < size_.load());
  core::tls_op_stats().reset();
  if constexpr (Value::kIndirect) {
    // Build the immutable node before taking the writer section (pool-
    // backed: the byte buffer keeps its capacity across lives, and an
    // unwind before publication returns the node without a grace period).
    auto guard = plane_.ebr.pin();
    auto node = plane_.pool.acquire(plane_.ebr);
    fill(node->bytes);
    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (version_.compare_and_swap_bool(v0, v0 + 1)) {
        const primitives::BlobNode* old = data_.at(i).exchange(node.get());
        node.release();
        // Only the holder modifies an odd version, so this CAS cannot fail.
        bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
        PSNAP_ASSERT(released);
        // Retire outside the writer section: a pinned reader may still
        // dereference the replaced node until its grace period expires.
        plane_.pool.recycle(plane_.ebr,
                            const_cast<primitives::BlobNode*>(old));
        return;
      }
    }
  } else {
    ValueType v{};
    fill(v);
    while (true) {
      std::uint64_t v0 = version_.load();
      if (v0 % 2 == 1) continue;  // another writer holds it
      if (version_.compare_and_swap_bool(v0, v0 + 1)) {
        data_.at(i).store(v);
        // Only the holder modifies an odd version, so this CAS cannot fail.
        bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
        PSNAP_ASSERT(released);
        return;
      }
    }
  }
}

template <class Value>
void SeqlockSnapshotT<Value>::update(std::uint32_t i, std::uint64_t v) {
  do_update(i, [v](ValueType& out) { Value::encode(v, out); });
}

template <class Value>
void SeqlockSnapshotT<Value>::update_blob(std::uint32_t i,
                                          std::span<const std::byte> bytes) {
  if constexpr (Value::kIndirect) {
    do_update(i, [bytes](ValueType& out) { Value::assign(out, bytes); });
  } else {
    core::PartialSnapshot::update_blob(i, bytes);
  }
}

template <class Value>
template <class Collect>
void SeqlockSnapshotT<Value>::do_scan(std::span<const std::uint32_t> indices,
                                      std::uint32_t m, Collect&& collect) {
  core::OpStats& stats = core::tls_op_stats();
  while (true) {
    ++stats.collects;
    if (max_attempts_ != 0 && stats.collects > max_attempts_) {
      throw StarvationError(stats.collects - 1);
    }
    std::uint64_t v0 = version_.load();
    if (v0 % 2 == 1) continue;
    for (std::size_t j = 0; j < indices.size(); ++j) {
      PSNAP_ASSERT(indices[j] < m);
      collect(j, indices[j]);
    }
    std::uint64_t v1 = version_.load();
    if (v1 == v0) return;
  }
}

template <class Value>
void SeqlockSnapshotT<Value>::scan(std::span<const std::uint32_t> indices,
                                   std::vector<std::uint64_t>& out,
                                   core::ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  const std::uint32_t m = size_.load();
  core::tls_op_stats().reset();
  ctx.begin();
  // Collect straight into `out` (capacity-reusing); a retry overwrites in
  // place, and the starvation path clears the partial collect.
  out.resize(indices.size());
  try {
    if constexpr (Value::kIndirect) {
      // Pinned across the retry loop: every pointer loaded inside is
      // dereferenceable even if the writer that replaced it has already
      // retired it (a version mismatch only discards the copied bytes).
      auto guard = plane_.ebr.pin();
      do_scan(indices, m, [&](std::size_t j, std::uint32_t index) {
        out[j] = Value::decode(data_.at(index).load()->bytes);
      });
    } else {
      do_scan(indices, m, [&](std::size_t j, std::uint32_t index) {
        out[j] = data_.at(index).load();
      });
    }
  } catch (...) {
    out.clear();
    throw;
  }
}

template <class Value>
void SeqlockSnapshotT<Value>::scan_blobs(
    std::span<const std::uint32_t> indices,
    std::vector<psnap::value::Blob>& out, core::ScanContext& ctx) {
  if constexpr (Value::kIndirect) {
    if (indices.empty()) {
      out.clear();
      return;
    }
    const std::uint32_t m = size_.load();
    core::tls_op_stats().reset();
    ctx.begin();
    out.resize(indices.size());  // keeps element byte capacity
    try {
      auto guard = plane_.ebr.pin();
      do_scan(indices, m, [&](std::size_t j, std::uint32_t index) {
        Value::copy(data_.at(index).load()->bytes, out[j]);
      });
    } catch (...) {
      out.clear();
      throw;
    }
  } else {
    core::PartialSnapshot::scan_blobs(indices, out, ctx);
  }
}

template class SeqlockSnapshotT<psnap::value::DirectU64>;
template class SeqlockSnapshotT<psnap::value::IndirectBlob>;

}  // namespace psnap::baseline
