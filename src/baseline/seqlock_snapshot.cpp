#include "baseline/seqlock_snapshot.h"

#include "common/assert.h"
#include "core/op_stats.h"

namespace psnap::baseline {

SeqlockSnapshot::SeqlockSnapshot(std::uint32_t num_components,
                                 std::uint64_t max_attempts_per_scan,
                                 std::uint64_t initial_value)
    : m_(num_components), max_attempts_(max_attempts_per_scan), data_(m_) {
  PSNAP_ASSERT(m_ > 0);
  for (std::uint32_t i = 0; i < m_; ++i) {
    data_[i].init(initial_value, /*label=*/i);
  }
}

void SeqlockSnapshot::update(std::uint32_t i, std::uint64_t v) {
  PSNAP_ASSERT(i < m_);
  core::tls_op_stats().reset();
  // Acquire the writer "lock" by making the version odd.
  while (true) {
    std::uint64_t v0 = version_.load();
    if (v0 % 2 == 1) continue;  // another writer holds it
    if (version_.compare_and_swap_bool(v0, v0 + 1)) {
      data_[i].store(v);
      // Only the holder modifies an odd version, so this CAS cannot fail.
      bool released = version_.compare_and_swap_bool(v0 + 1, v0 + 2);
      PSNAP_ASSERT(released);
      return;
    }
  }
}

void SeqlockSnapshot::scan(std::span<const std::uint32_t> indices,
                           std::vector<std::uint64_t>& out,
                           core::ScanContext& ctx) {
  out.clear();
  if (indices.empty()) return;
  core::OpStats& stats = core::tls_op_stats();
  stats.reset();
  ctx.begin();
  // Collect straight into `out` (capacity-reusing); a retry overwrites in
  // place, and the starvation path clears the partial collect.
  out.resize(indices.size());
  while (true) {
    ++stats.collects;
    if (max_attempts_ != 0 && stats.collects > max_attempts_) {
      out.clear();
      throw StarvationError(stats.collects - 1);
    }
    std::uint64_t v0 = version_.load();
    if (v0 % 2 == 1) continue;
    for (std::size_t j = 0; j < indices.size(); ++j) {
      PSNAP_ASSERT(indices[j] < m_);
      out[j] = data_[indices[j]].load();
    }
    std::uint64_t v1 = version_.load();
    if (v1 == v0) break;
  }
}

}  // namespace psnap::baseline
