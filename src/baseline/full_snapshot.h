// Complete-scan snapshot baseline (Afek et al. [1], as recapped in the
// paper's Section 3, with the Section 3 helping rule).
//
// This is the implementation the paper calls "wasteful": a snapshot object
// trivially implements a partial snapshot object by extracting the
// requested components from a complete scan (Section 1).  Every embedded
// scan reads all m components, every update carries a full m-entry view,
// and therefore both operations cost Omega(m) no matter how small the
// partial scan's argument set is.  The LOC and CMP benches plot it against
// the paper's algorithms to reproduce the locality argument.
#pragma once

#include <memory>
#include <vector>

#include "common/padding.h"
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/record.h"  // kInitPid
#include "core/scan_context.h"
#include "exec/pid_bound.h"
#include "primitives/primitives.h"
#include "reclaim/ebr.h"
#include "reclaim/pool.h"

namespace psnap::baseline {

class FullSnapshot final : public core::PartialSnapshot {
 public:
  // `bound` sizes the helping rule's moved-twice table (the one per-pid
  // cost here; scans are Omega(m) by design, that is the baseline's
  // point).
  FullSnapshot(std::uint32_t initial_components, std::uint32_t max_processes,
               std::uint64_t initial_value = 0,
               exec::PidBound bound = {});
  ~FullSnapshot() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override { return "full-snapshot"; }
  bool is_wait_free() const override { return true; }
  bool is_local() const override { return false; }

  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  using core::PartialSnapshot::scan;

 private:
  struct FullRecord {
    std::uint64_t value;
    std::uint64_t counter;
    std::uint32_t pid;
    // All components up to the count the publishing operation captured.
    // Growth keeps this sound: a borrowed record belongs to an operation
    // that started after the borrower, so its full_view covers at least
    // the borrower's captured count (counts are monotone and captured
    // with seq_cst loads -- see embedded_full_scan).
    std::vector<std::uint64_t> full_view;

    bool is_initial() const { return pid == core::kInitPid; }
  };

  // Fills ctx.values with the values of components [0, m) for the count m
  // the caller captured at operation start.
  void embedded_full_scan(core::ScanContext& ctx, std::uint32_t m);

  core::GrowableSize size_;
  std::uint32_t n_;
  exec::PidBound bound_;
  std::uint64_t initial_value_;
  // Pool before ebr_: ~EbrDomain flushes retired records into it.  Pooled
  // records keep their full_view capacity, so steady-state updates are
  // allocation-free even though every record carries all m values.
  reclaim::Pool<FullRecord> record_pool_;
  core::ComponentStorage<primitives::Register<const FullRecord*>> r_;
  reclaim::EbrDomain ebr_;
  core::PerPidStorage<CachelinePadded<std::uint64_t>> counter_;
};

}  // namespace psnap::baseline
