// Complete-scan snapshot baseline (Afek et al. [1], as recapped in the
// paper's Section 3, with the Section 3 helping rule).
//
// This is the implementation the paper calls "wasteful": a snapshot object
// trivially implements a partial snapshot object by extracting the
// requested components from a complete scan (Section 1).  Every embedded
// scan reads all m components, every update carries a full m-entry view,
// and therefore both operations cost Omega(m) no matter how small the
// partial scan's argument set is.  The LOC and CMP benches plot it against
// the paper's algorithms to reproduce the locality argument.
//
// Value plane (primitives/value_plane.h): templated over the payload
// policy like the paper's algorithms -- the full view simply becomes a
// vector of payloads, so the Omega(m) cost scales with payload size too
// (which is exactly the "wasteful" point, sharpened).
//
// Versioned plane (VersionedU64; primitives/version_chain.h): the plane
// that rescues the wasteful baseline.  Records become version-chain nodes,
// a camera epoch replaces the complete collect, and a scan reads only its
// r requested chains -- the Omega(m) scan cost disappears entirely, so the
// versioned twin reports is_local() = true.  The price is on the write
// side: this baseline published with a plain register exchange, but a
// chain append must know its predecessor, so versioned updates publish
// with a CAS retry loop -- lock-free (a retry means another update
// succeeded), not wait-free, and the twin honestly reports that.
#pragma once

#include <atomic>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/padding.h"
#include "core/growth.h"
#include "core/partial_snapshot.h"
#include "core/record.h"  // kInitPid
#include "core/scan_context.h"
#include "exec/pid_bound.h"
#include "primitives/primitives.h"
#include "primitives/value_plane.h"
#include "primitives/version_chain.h"
#include "reclaim/ebr.h"
#include "reclaim/pool.h"

namespace psnap::baseline {

template <class Value = psnap::value::DirectU64>
class FullSnapshotT final : public core::PartialSnapshot {
 public:
  using ValueType = typename Value::ValueType;

  // `bound` sizes the helping rule's moved-twice table (the one per-pid
  // cost here; scans are Omega(m) by design, that is the baseline's
  // point).
  FullSnapshotT(std::uint32_t initial_components, std::uint32_t max_processes,
                std::uint64_t initial_value = 0,
                exec::PidBound bound = {});
  ~FullSnapshotT() override;

  std::uint32_t num_components() const override { return size_.load(); }
  std::string_view name() const override {
    if constexpr (Value::kVersioned) {
      return "full-snapshot-versioned";
    } else if constexpr (Value::kIndirect) {
      return "full-snapshot-blob";
    } else {
      return "full-snapshot";
    }
  }
  // Versioned updates CAS-retry (lock-free; see the header comment), and
  // versioned scans touch only their r requested chains (local).
  bool is_wait_free() const override { return !Value::kVersioned; }
  bool is_local() const override { return Value::kVersioned; }
  std::string_view value_plane() const override { return Value::kName; }

  std::uint32_t add_components(std::uint32_t count) override;
  void update(std::uint32_t i, std::uint64_t v) override;
  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out, core::ScanContext& ctx) override;
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override;
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<psnap::value::Blob>& out,
                  core::ScanContext& ctx) override;
  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out,
                               core::ScanContext& ctx) override;
  // Batched updates: collect planes share ONE embedded full scan (the
  // Omega(m) helping cost, paid once for k writes) and publish k records
  // by exchange -- kAmortized.  The versioned plane shares one stamp
  // through a batch descriptor (install-helped, like fig3's) -- kAtomic.
  void update_batch(std::span<const core::BatchEntry> entries) override;
  void update_batch_blob(
      std::span<const core::BlobBatchEntry> entries) override;
  core::BatchAtomicity batch_atomicity() const override {
    return Value::kVersioned ? core::BatchAtomicity::kAtomic
                             : core::BatchAtomicity::kAmortized;
  }
  using core::PartialSnapshot::scan;
  using core::PartialSnapshot::scan_blobs;
  using core::PartialSnapshot::scan_versioned;

 private:
  struct FullRecord {
    ValueType value{};
    std::uint64_t counter = 0;
    std::uint32_t pid = core::kInitPid;
    // All components up to the count the publishing operation captured.
    // Growth keeps this sound: a borrowed record belongs to an operation
    // that started after the borrower, so its full_view covers at least
    // the borrower's captured count (counts are monotone and captured
    // with seq_cst loads -- see embedded_full_scan).
    std::vector<ValueType> full_view;
    // Version-chain fields, used only on the versioned plane (dead weight
    // on the others; keeping them unconditional keeps FullRecord one
    // type).  See primitives/version_chain.h for the protocol.
    mutable std::atomic<std::uint64_t> version{primitives::kUnstamped};
    std::atomic<const FullRecord*> prev{nullptr};
    // Non-null while the record is an unresolved update_batch member.
    std::atomic<const primitives::BatchControl*> batch{nullptr};

    bool is_initial() const { return pid == core::kInitPid; }
  };

  // The versioned plane's batch descriptor; see the twin in cas_psnap.h.
  struct BatchDesc final : primitives::BatchControl {
    FullSnapshotT* owner = nullptr;
    primitives::BatchSlots<FullRecord> slots;
    void resolve() const override { owner->resolve_batch(*this); }
  };

  void resolve_batch(const BatchDesc& desc);

  template <class EntryT, class Fill>
  void do_update_batch(std::span<const EntryT> entries, Fill&& fill);

  FullRecord* make_initial(std::uint64_t v, std::uint32_t index) {
    auto* rec = new FullRecord();
    Value::encode(v, rec->value);
    rec->counter = index;
    rec->pid = core::kInitPid;
    if constexpr (Value::kVersioned) {
      rec->version.store(primitives::kInitialVersion,
                         std::memory_order_relaxed);
    }
    return rec;
  }

  // Fills the context's plane values with components [0, m) for the count
  // m the caller captured at operation start.
  std::vector<ValueType>& embedded_full_scan(core::ScanContext& ctx,
                                             std::uint32_t m);

  template <class Fill>
  void do_update(std::uint32_t i, Fill&& fill);
  // The one scan body; `extract` pulls the caller's components out of the
  // full view (u64 decoding or blob copies).
  template <class Extract>
  void do_scan(std::span<const std::uint32_t> indices,
               core::ScanContext& ctx, Extract&& extract);
  // The versioned plane's scan body; returns the epoch.
  std::uint64_t do_scan_versioned(std::span<const std::uint32_t> indices,
                                  std::vector<std::uint64_t>& out);

  // Versioned cells must support CAS (chain appends need to know their
  // predecessor); the other planes keep the historical plain register.
  using Slot =
      std::conditional_t<Value::kVersioned,
                         primitives::CasObject<const FullRecord*>,
                         primitives::Register<const FullRecord*>>;

  core::GrowableSize size_;
  std::uint32_t n_;
  exec::PidBound bound_;
  std::uint64_t initial_value_;
  // Pool before ebr_: ~EbrDomain flushes retired records into it.  Pooled
  // records keep their full_view capacity (per-element byte buffers
  // included, on the blob plane), so steady-state updates are
  // allocation-free even though every record carries all m values.
  reclaim::Pool<FullRecord> record_pool_;
  reclaim::Pool<BatchDesc> batch_pool_;
  core::ComponentStorage<Slot> r_;
  reclaim::EbrDomain ebr_;
  core::PerPidStorage<CachelinePadded<std::uint64_t>> counter_;
  // Owner's in-flight batch descriptor, per pid (versioned plane) -- read
  // only by the destructor's crash sweep; see the twin in cas_psnap.h.
  core::PerPidStorage<CachelinePadded<std::atomic<BatchDesc*>>> active_batch_;
  [[no_unique_address]] std::conditional_t<Value::kVersioned,
                                           primitives::VersionCamera<>,
                                           primitives::NoCamera>
      camera_;
};

using FullSnapshot = FullSnapshotT<psnap::value::DirectU64>;
using FullSnapshotBlob = FullSnapshotT<psnap::value::IndirectBlob>;
using FullSnapshotVersioned = FullSnapshotT<psnap::value::VersionedU64>;

}  // namespace psnap::baseline
