// The one process-capacity constant every pid-keyed table derives from.
//
// Pids index per-process slot arrays all over the system: the thread
// registry's allocation bitmap, EBR and hazard-pointer per-thread slots,
// pool free lists, announcement registers.  Those tables must agree on the
// ceiling -- a pid the registry can hand out must have a slot everywhere --
// and historically they did so by repeating the literal (the 128->192 bump
// in PR 6 had to be made in two places by hand).  This header is the single
// definition; everything else is derived:
//
//   exec::ThreadRegistry::kMaxCapacity  == kMaxPidCapacity
//   reclaim::kPidSlots                  == kMaxPidCapacity
//   reclaim::EbrDomain / HazardDomain / Pool slot tables size off
//   reclaim::kTotalSlots (pid slots + anonymous-thread slots)
//
// Raising the ceiling is now one edit here.
#pragma once

#include <cstdint>

namespace psnap::exec {

inline constexpr std::uint32_t kMaxPidCapacity = 192;

}  // namespace psnap::exec
