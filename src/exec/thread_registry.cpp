#include "exec/thread_registry.h"

#include <bit>

#include "common/assert.h"

namespace psnap::exec {

ThreadRegistry::ThreadRegistry(std::uint32_t max_threads)
    : capacity_(max_threads) {
  PSNAP_ASSERT_MSG(max_threads > 0 && max_threads <= kMaxCapacity,
                   "ThreadRegistry capacity out of range");
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

std::uint32_t ThreadRegistry::try_acquire_in(std::uint32_t lo,
                                             std::uint32_t hi) {
  // Lowest-free-bit scan with CAS claim.  Restarting from the range's
  // first word after a lost race keeps allocation dense (the lowest free
  // pid wins), which is what bounds per-pid walks by the high watermark
  // rather than capacity.
  PSNAP_ASSERT(lo < hi && hi <= capacity_);
  while (true) {
    bool raced = false;
    for (std::uint32_t w = lo / kBitsPerWord; w * kBitsPerWord < hi; ++w) {
      std::uint64_t word = words_[w].load(std::memory_order_relaxed);
      while (true) {
        std::uint64_t free_mask = ~word;
        if (w * kBitsPerWord < lo) {
          // Mask off bits below the range in its first word.
          free_mask &= ~0ull << (lo - w * kBitsPerWord);
        }
        if (w * kBitsPerWord + kBitsPerWord > hi) {
          // Mask off bits beyond the range in its last word.
          std::uint32_t valid = hi - w * kBitsPerWord;
          free_mask &= (valid == kBitsPerWord) ? ~0ull
                                               : ((1ull << valid) - 1);
        }
        if (free_mask == 0) break;  // word full; next word
        std::uint32_t bit =
            static_cast<std::uint32_t>(std::countr_zero(free_mask));
        // acq_rel: release hands the previous holder's per-pid state to
        // us; acquire pairs with the releasing fetch_and below.
        if (words_[w].compare_exchange_weak(word, word | (1ull << bit),
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
          std::uint32_t pid = w * kBitsPerWord + bit;
          active_.fetch_add(1, std::memory_order_relaxed);
          std::uint32_t seen = watermark_.load(std::memory_order_relaxed);
          while (pid + 1 > seen &&
                 !watermark_.compare_exchange_weak(
                     seen, pid + 1, std::memory_order_release,
                     std::memory_order_relaxed)) {
          }
          return pid;
        }
        raced = true;  // word reloaded by the CAS failure
      }
    }
    if (!raced) return kInvalidPid;  // genuinely full
    // Every word looked full but we lost at least one race; re-scan in
    // case a release freed a low slot meanwhile.
  }
}

std::uint32_t ThreadRegistry::try_acquire() {
  return try_acquire_in(0, capacity_);
}

std::uint32_t ThreadRegistry::acquire() {
  std::uint32_t pid = try_acquire();
  PSNAP_ASSERT_MSG(pid != kInvalidPid,
                   "ThreadRegistry capacity exhausted (all pids live)");
  return pid;
}

std::uint32_t ThreadRegistry::try_acquire_affine(std::uint32_t shard,
                                                 std::uint32_t num_shards) {
  PSNAP_ASSERT(num_shards > 0 && shard < num_shards);
  if (num_shards == 1) return try_acquire();
  // Even split of the capacity; the tail shard absorbs the remainder.
  // With more shards than pids the low shards get empty blocks and fall
  // straight through to the global scan.
  std::uint32_t lo = shard * (capacity_ / num_shards);
  std::uint32_t hi = shard + 1 == num_shards
                         ? capacity_
                         : (shard + 1) * (capacity_ / num_shards);
  if (lo < hi) {
    std::uint32_t pid = try_acquire_in(lo, hi);
    if (pid != kInvalidPid) return pid;
  }
  // Block full: affinity is a hint, not a limit.
  return try_acquire();
}

std::uint32_t ThreadRegistry::acquire_affine(std::uint32_t shard,
                                             std::uint32_t num_shards) {
  std::uint32_t pid = try_acquire_affine(shard, num_shards);
  PSNAP_ASSERT_MSG(pid != kInvalidPid,
                   "ThreadRegistry capacity exhausted (all pids live)");
  return pid;
}

void ThreadRegistry::release(std::uint32_t pid) {
  PSNAP_ASSERT(pid < capacity_);
  std::uint64_t mask = 1ull << (pid % kBitsPerWord);
  std::uint64_t prev = words_[pid / kBitsPerWord].fetch_and(
      ~mask, std::memory_order_acq_rel);
  PSNAP_ASSERT_MSG((prev & mask) != 0, "release of a pid that is not live");
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void ThreadRegistry::note_pid_in_use(std::uint32_t pid) {
  PSNAP_ASSERT_MSG(pid < kMaxCapacity,
                   "pid beyond the registry capacity ceiling");
  std::uint32_t seen = watermark_.load(std::memory_order_relaxed);
  while (pid + 1 > seen &&
         !watermark_.compare_exchange_weak(seen, pid + 1,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
  }
}

ThreadRegistry& ThreadRegistry::process_wide() {
  static ThreadRegistry registry(ThreadRegistry::kMaxCapacity);
  return registry;
}

ThreadHandle::ThreadHandle(ThreadRegistry& registry)
    : registry_(registry), pid_(registry.acquire()), saved_(ctx().pid) {
  PSNAP_ASSERT_MSG(saved_ == kInvalidPid,
                   "thread already has a pid; ThreadHandle must not nest");
  if (&registry != &ThreadRegistry::process_wide()) {
    // A pid issued by a local registry still indexes the same per-pid
    // storage as everyone else's; the process-wide watermark -- the
    // default PidBound every registry-built object walks to -- must cover
    // it, exactly as ScopedPid guarantees for manually assigned pids.
    // (Objects bounded by watermark_of(the local registry), e.g. in
    // bench_adaptive_collect, are unaffected.)
    ThreadRegistry::process_wide().note_pid_in_use(pid_);
  }
  ctx().pid = pid_;
}

ThreadHandle::ThreadHandle(ThreadRegistry& registry, std::uint32_t shard,
                           std::uint32_t num_shards)
    : registry_(registry),
      pid_(registry.acquire_affine(shard, num_shards)),
      saved_(ctx().pid) {
  PSNAP_ASSERT_MSG(saved_ == kInvalidPid,
                   "thread already has a pid; ThreadHandle must not nest");
  if (&registry != &ThreadRegistry::process_wide()) {
    ThreadRegistry::process_wide().note_pid_in_use(pid_);
  }
  ctx().pid = pid_;
}

ThreadHandle::~ThreadHandle() {
  ctx().pid = saved_;
  registry_.release(pid_);
}

}  // namespace psnap::exec
