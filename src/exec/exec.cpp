#include "exec/exec.h"

#include "common/assert.h"
#include "exec/thread_registry.h"

namespace psnap::exec {

ThreadCtx& ctx() {
  thread_local ThreadCtx tls_ctx;
  return tls_ctx;
}

ScopedPid::ScopedPid(std::uint32_t pid) : saved_(ctx().pid) {
  PSNAP_ASSERT_MSG(saved_ == kInvalidPid,
                   "thread already has a pid; ScopedPid must not nest");
  // Manually assigned pids must still be covered by adaptive per-pid
  // walks (exec/pid_bound.h), so raise the process-wide watermark exactly
  // as a registry acquire() would.
  ThreadRegistry::process_wide().note_pid_in_use(pid);
  ctx().pid = pid;
}

ScopedPid::~ScopedPid() { ctx().pid = saved_; }

ScopedLogger::ScopedLogger(AccessLogger* logger) : saved_(ctx().logger) {
  ctx().logger = logger;
}

ScopedLogger::~ScopedLogger() { ctx().logger = saved_; }

}  // namespace psnap::exec
