#include "exec/exec.h"

#include "common/assert.h"

namespace psnap::exec {

ThreadCtx& ctx() {
  thread_local ThreadCtx tls_ctx;
  return tls_ctx;
}

ScopedPid::ScopedPid(std::uint32_t pid) : saved_(ctx().pid) {
  PSNAP_ASSERT_MSG(saved_ == kInvalidPid,
                   "thread already has a pid; ScopedPid must not nest");
  ctx().pid = pid;
}

ScopedPid::~ScopedPid() { ctx().pid = saved_; }

ScopedLogger::ScopedLogger(AccessLogger* logger) : saved_(ctx().logger) {
  ctx().logger = logger;
}

ScopedLogger::~ScopedLogger() { ctx().logger = saved_; }

}  // namespace psnap::exec
