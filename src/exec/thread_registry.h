// Dynamic thread lifecycle: reusable process ids.
//
// The seed runtime froze the thread population at construction: every
// harness assigned fixed pids 0..n-1 with exec::ScopedPid and the snapshot
// objects sized their per-process arrays to that n forever.  Workloads with
// churn -- clients connecting and disconnecting, worker pools resizing --
// could not even be expressed.
//
// A ThreadRegistry hands out pids dynamically from a bounded capacity:
//
//   * acquire() returns the lowest free pid (lock-free bitmap CAS), so the
//     set of live pids stays dense -- per-pid walks (active-set collects,
//     announcement reads) touch only the low slots actually in use;
//   * release(pid) makes the pid immediately reusable by the next joiner.
//     The release/acquire pair synchronizes (CAS on the same bitmap word),
//     so per-pid state handed from the old thread to the new one -- EBR
//     retired lists, pool free lists, per-pid counters -- is ordered;
//   * ThreadHandle is the RAII form: it acquires a pid, installs it as
//     exec::ctx().pid for the calling thread, and restores + releases on
//     destruction.  This replaces ScopedPid in every native-thread harness
//     (ScopedPid remains for the sim scheduler and for tests that need a
//     SPECIFIC pid).
//
// Pids index per-process slot arrays (announcement registers, EBR slots,
// publication counters), so the same pid must never be held by two live
// threads at once; the registry guarantees that, and reuse after release is
// safe because all per-pid protocol state is reset by the protocols
// themselves (a released scanner has left the active set; its announcement
// register may keep its last value -- updates only read announcements of
// *joined* pids).
//
// Rule for releasing: a thread must not release its pid (destroy its
// ThreadHandle) while an operation is in flight -- in particular while it
// holds an EBR pin, since EBR per-thread slots are keyed by pid (see
// reclaim/ebr.h).  Scoped usage makes this automatic.
#pragma once

#include <atomic>
#include <cstdint>

#include "exec/capacity.h"
#include "exec/exec.h"

namespace psnap::exec {

class ThreadRegistry {
 public:
  // Capacity ceiling shared with the reclamation layer's pid-keyed slot
  // range (reclaim::kPidSlots; see exec/capacity.h for the one
  // definition); a registry can be smaller, never larger.
  static constexpr std::uint32_t kMaxCapacity = kMaxPidCapacity;

  explicit ThreadRegistry(std::uint32_t max_threads = kMaxCapacity);

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  // Lowest free pid, or kInvalidPid when all max_threads pids are live.
  std::uint32_t try_acquire();
  // try_acquire that asserts on exhaustion (capacity is a configured bound,
  // so running out is a usage error, not an expected condition).
  std::uint32_t acquire();
  void release(std::uint32_t pid);

  // Shard-affine acquisition (the sharded reclamation plane's
  // affinity=segment mode): prefers the lowest free pid inside shard
  // `shard`'s contiguous pid block -- the capacity split evenly over
  // num_shards -- so a thread that mostly writes one component segment
  // gets a pid whose EBR slot, pool free list, and announcement register
  // all land in that shard's tables.  Falls back to the global
  // lowest-free scan when the block is full (affinity is a performance
  // hint, never a capacity limit).  Returns kInvalidPid only when the
  // whole registry is full.
  std::uint32_t try_acquire_affine(std::uint32_t shard,
                                   std::uint32_t num_shards);
  // Asserting form, like acquire().
  std::uint32_t acquire_affine(std::uint32_t shard, std::uint32_t num_shards);

  std::uint32_t max_threads() const { return capacity_; }
  // Live pids right now.
  std::uint32_t active_count() const {
    return active_.load(std::memory_order_relaxed);
  }
  // max(pid)+1 over every pid ever handed out (or noted in use): the dense
  // upper bound a per-pid walk needs.  MONOTONE BY DESIGN: release() never
  // lowers it, because a walk bound must cover every pid whose per-pid
  // state (announcement registers, membership flags) may still be read --
  // and because lowest-free reuse means churn re-issues the same low pids,
  // so the watermark converges to the peak live population instead of
  // creeping toward capacity.  tests/exec/thread_registry_test.cpp asserts
  // both halves (density under release-then-reacquire churn, monotonicity).
  std::uint32_t high_watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }
  // The walk-bound read used by PidBound (see exec/pid_bound.h): seq_cst
  // because it sits on the getSet end of the announce/join-vs-getSet
  // handshake, next to the load_sync membership reads.  Same instruction
  // as the acquire load on x86 and AArch64.
  std::uint32_t high_watermark_sync() const {
    return watermark_.load(std::memory_order_seq_cst);
  }

  // Records that `pid` is (or is about to be) in use without allocating it
  // from the bitmap: raises the watermark so adaptive per-pid walks cover
  // it.  Called by exec::ScopedPid on the process-wide registry -- the sim
  // scheduler and pinned-pid tests assign pids directly, and the adaptive
  // bound must be sound for every way a pid can enter use.
  void note_pid_in_use(std::uint32_t pid);

  // The process-wide registry native harnesses default to (full
  // kMaxCapacity).  Objects built through the implementation registry
  // assert their max_threads against this capacity.
  static ThreadRegistry& process_wide();

 private:
  static constexpr std::uint32_t kBitsPerWord = 64;

  // Lowest free pid in [lo, hi), or kInvalidPid; the body of try_acquire
  // (the full range) and the affine preference pass (one shard's block).
  std::uint32_t try_acquire_in(std::uint32_t lo, std::uint32_t hi);

  std::uint32_t capacity_;
  std::atomic<std::uint64_t> words_[kMaxCapacity / kBitsPerWord];
  std::atomic<std::uint32_t> active_{0};
  std::atomic<std::uint32_t> watermark_{0};
};

// RAII pid for one native thread: acquires from the registry, installs
// into exec::ctx().pid (asserting the thread did not already carry one),
// restores and releases on destruction.
class ThreadHandle {
 public:
  explicit ThreadHandle(ThreadRegistry& registry);
  ThreadHandle() : ThreadHandle(ThreadRegistry::process_wide()) {}
  // Shard-affine form (acquire_affine): the pid lands in shard `shard`'s
  // block when one is free there.
  ThreadHandle(ThreadRegistry& registry, std::uint32_t shard,
               std::uint32_t num_shards);
  ~ThreadHandle();

  ThreadHandle(const ThreadHandle&) = delete;
  ThreadHandle& operator=(const ThreadHandle&) = delete;

  std::uint32_t pid() const { return pid_; }

 private:
  ThreadRegistry& registry_;
  std::uint32_t pid_;
  std::uint32_t saved_;
};

}  // namespace psnap::exec
