// Execution layer: step accounting and scheduling hooks.
//
// The paper measures algorithms in *steps*: accesses to linearizable shared
// base objects (registers, compare&swap objects, fetch&increment objects).
// Every primitive in src/primitives calls exec::on_step() exactly once per
// base-object operation.  In a native run this bumps thread-local counters,
// which is how the benchmark harness reproduces the step-complexity bounds
// of Theorems 1-3.  In a simulated run a SimHook is installed and each step
// becomes a scheduling point for the deterministic scheduler in src/runtime,
// which is how the linearizability tests enumerate interleavings.
//
// The same algorithm implementations serve both modes; nothing in
// src/activeset or src/core knows which mode it is running under.
#pragma once

#include <cstdint>
#include <vector>

namespace psnap::exec {

// Kinds of shared base objects, for per-kind step breakdowns.
enum class ObjKind : std::uint8_t {
  kRegister = 0,  // read/write register
  kCas = 1,       // compare&swap object
  kFai = 2,       // fetch&increment object
  kNumKinds = 3,
};

inline constexpr std::size_t kNumObjKinds =
    static_cast<std::size_t>(ObjKind::kNumKinds);

// Label attached to a base object for access-set tests (e.g. "scan must not
// touch components outside its argument set").  kNoLabel objects are
// bookkeeping (announcements, active-set state) and are exempt.
inline constexpr std::uint64_t kNoLabel = ~std::uint64_t{0};

struct StepCounters {
  std::uint64_t by_kind[kNumObjKinds] = {};
  std::uint64_t total = 0;

  void reset() { *this = StepCounters{}; }

  StepCounters operator-(const StepCounters& rhs) const {
    StepCounters out;
    for (std::size_t k = 0; k < kNumObjKinds; ++k) {
      out.by_kind[k] = by_kind[k] - rhs.by_kind[k];
    }
    out.total = total - rhs.total;
    return out;
  }
};

// Installed by the deterministic scheduler; each base-object step parks the
// calling thread until the scheduler grants it.
class SimHook {
 public:
  virtual ~SimHook() = default;
  virtual void on_step(ObjKind kind, std::uint64_t label) = 0;
};

// Installed by locality tests to record which labelled objects an operation
// touched.
class AccessLogger {
 public:
  virtual ~AccessLogger() = default;
  virtual void on_access(ObjKind kind, std::uint64_t label) = 0;
};

inline constexpr std::uint32_t kInvalidPid = ~std::uint32_t{0};

// Per-thread execution context.  pid identifies the logical process (index
// into per-process arrays such as the announcement registers); it must be
// set before invoking any algorithm operation.
struct ThreadCtx {
  std::uint32_t pid = kInvalidPid;
  StepCounters steps;
  SimHook* hook = nullptr;
  AccessLogger* logger = nullptr;
};

ThreadCtx& ctx();

// One call per base-object operation.  Keep inline: this is on every hot
// path in the library.
inline void on_step(ObjKind kind, std::uint64_t label = kNoLabel) {
  ThreadCtx& c = ctx();
  ++c.steps.total;
  ++c.steps.by_kind[static_cast<std::size_t>(kind)];
  if (c.logger != nullptr) [[unlikely]] {
    c.logger->on_access(kind, label);
  }
  if (c.hook != nullptr) [[unlikely]] {
    c.hook->on_step(kind, label);
  }
}

// RAII process-id assignment for native threads.  Asserts the thread did
// not already carry a pid, so nesting bugs fail fast.
class ScopedPid {
 public:
  explicit ScopedPid(std::uint32_t pid);
  ~ScopedPid();

  ScopedPid(const ScopedPid&) = delete;
  ScopedPid& operator=(const ScopedPid&) = delete;

 private:
  std::uint32_t saved_;
};

// RAII access-logger installation.
class ScopedLogger {
 public:
  explicit ScopedLogger(AccessLogger* logger);
  ~ScopedLogger();

  ScopedLogger(const ScopedLogger&) = delete;
  ScopedLogger& operator=(const ScopedLogger&) = delete;

 private:
  AccessLogger* saved_;
};

// Simple vector-recording logger for tests.
class RecordingLogger final : public AccessLogger {
 public:
  struct Access {
    ObjKind kind;
    std::uint64_t label;
  };

  void on_access(ObjKind kind, std::uint64_t label) override {
    accesses_.push_back({kind, label});
  }

  const std::vector<Access>& accesses() const { return accesses_; }
  void clear() { accesses_.clear(); }

 private:
  std::vector<Access> accesses_;
};

}  // namespace psnap::exec
