// PidBound: the upper bound a per-pid walk loops to.
//
// The paper's whole point is that an operation's cost should track what it
// *touches*, not the size of the object -- and the same holds for the
// thread dimension.  Before this provider existed, every per-pid walk in
// the library (active-set collects, the condition-(2) helping tables in
// the embedded scans) iterated over the full `max_threads` range, paying
// for 128 potential threads when two were live.  That is exactly the cost
// shape the adaptive collect of Afek, Stupp and Touitou -- the component
// the paper plugs into Figure 1 -- exists to avoid.
//
// A PidBound answers one question: "what is the smallest prefix [0, b)
// that is guaranteed to contain every pid in use?"  Two providers:
//
//   * adaptive (the default): b = ThreadRegistry::high_watermark() -- the
//     registry hands out the lowest free pid and tracks max(pid)+1 over
//     every pid ever issued, so live pids are dense in [0, watermark) and
//     the watermark IS the tight walk bound.  exec::ScopedPid raises the
//     same watermark for manually assigned pids (sim scheduler, pinned-pid
//     tests), so the bound is sound for every way a pid can enter use;
//   * fixed(n): the full-range walk the seed library performed -- kept for
//     A/B comparison (bench_adaptive_collect measures adaptive against it)
//     and for callers that manage pids outside any registry.
//
// Soundness of the adaptive bound (why a walk to the watermark never
// misses a member): a pid enters use only through ThreadRegistry::
// acquire() or exec::ScopedPid, both of which raise the watermark BEFORE
// the thread performs any operation under that pid.  The watermark is
// monotone (releases never lower it; see thread_registry.h), so by the
// time a join/announcement under pid p is visible, every walk that starts
// afterwards reads a watermark >= p+1.  The walk-side read is seq_cst for
// the same reason the membership loads are (`load_sync`): it sits on the
// getSet end of the Dekker-shaped announce/join-vs-getSet handshake, and
// the scanner's post-join protocol fence must order its watermark bump and
// its join before any bound read that follows the fence (see
// primitives.h).  A *stale* bound is still safe where it can occur: it can
// only under-count pids whose acquisition is concurrent with the walk, and
// a mid-acquisition thread has not completed a join, which the active-set
// specification allows a getSet to omit.
//
// Step-accounting semantics (Instrumented runtime): the bound read is
// memory-management bookkeeping, like a segment install or a GrowableSize
// load -- NOT a base-object step.  Each slot a bounded walk actually reads
// remains exactly one step, so getSet step counts now equal the walked
// prefix length min(max_processes, watermark): the cost tracks the live
// population, which is the adaptive-collect behavior Theorem 1's additive
// active-set term is stated against.
#pragma once

#include <algorithm>
#include <cstdint>

#include "exec/thread_registry.h"

namespace psnap::exec {

class PidBound {
 public:
  // Adaptive bound over the process-wide registry: the default for every
  // implementation constructed through src/registry.
  PidBound() : registry_(&ThreadRegistry::process_wide()) {}

  // Adaptive bound over a specific registry (benches isolate population
  // sweeps in a local registry so the monotone watermark restarts per
  // measurement).  The registry must outlive every object holding the
  // bound.
  //
  // CALLER CONTRACT: a local registry's watermark covers ONLY pids issued
  // by that registry.  Every thread that operates on an object bounded by
  // watermark_of(r) must hold its pid from r (ThreadHandle(r)); a pid
  // assigned any other way -- exec::ScopedPid, another registry -- raises
  // only the process-wide watermark and would be invisible to this bound,
  // i.e. walks could miss a live member.  The default process-wide bound
  // has no such restriction: ThreadHandle (any registry) and ScopedPid
  // both ratchet the process-wide watermark.
  static PidBound watermark_of(const ThreadRegistry& registry) {
    PidBound bound;
    bound.registry_ = &registry;
    return bound;
  }

  // The full-range walk: always `n` (clamped by the caller's capacity).
  static PidBound fixed(std::uint32_t n) {
    PidBound bound;
    bound.registry_ = nullptr;
    bound.fixed_ = n;
    return bound;
  }

  bool is_adaptive() const { return registry_ != nullptr; }

  // The walk bound: every pid in use is < get(capacity) <= capacity.
  // seq_cst read on the adaptive path -- see the handshake discussion in
  // the header comment; same instruction as acquire on x86/AArch64.
  std::uint32_t get(std::uint32_t capacity) const {
    if (registry_ == nullptr) return std::min(capacity, fixed_);
    return std::min(capacity, registry_->high_watermark_sync());
  }

 private:
  const ThreadRegistry* registry_;
  std::uint32_t fixed_ = 0;
};

}  // namespace psnap::exec
