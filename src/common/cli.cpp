#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/assert.h"

namespace psnap {

void CliFlags::define(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  PSNAP_ASSERT_MSG(!flags_.count(name), "duplicate flag definition: " + name);
  flags_[name] = Flag{default_value, help};
}

bool CliFlags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      print_usage(argv[0]);
      return false;
    }
    std::string body = arg.substr(2);
    std::string key, value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      key = body;
      auto it = flags_.find(key);
      bool is_bool =
          it != flags_.end() &&
          (it->second.value == "true" || it->second.value == "false");
      if (is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", key.c_str());
        return false;
      }
    }
    auto it = flags_.find(key);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      print_usage(argv[0]);
      return false;
    }
    it->second.value = value;
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name) const {
  auto it = flags_.find(name);
  PSNAP_ASSERT_MSG(it != flags_.end(), "flag not defined: " + name);
  return it->second;
}

std::string CliFlags::get_string(const std::string& name) const {
  return find(name).value;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return std::strtoll(find(name).value.c_str(), nullptr, 10);
}

std::uint64_t CliFlags::get_uint(const std::string& name) const {
  return std::strtoull(find(name).value.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(find(name).value.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& v = find(name).value;
  return v == "true" || v == "1" || v == "yes";
}

std::vector<std::uint64_t> CliFlags::get_uint_list(
    const std::string& name) const {
  std::vector<std::uint64_t> out;
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  while (pos < v.size()) {
    std::size_t comma = v.find(',', pos);
    if (comma == std::string::npos) comma = v.size();
    out.push_back(std::strtoull(v.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

void CliFlags::print_usage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%s (default: %s)\n      %s\n", name.c_str(),
                 flag.value.c_str(), flag.help.c_str());
  }
}

}  // namespace psnap
