// Deterministic, seedable random number generation.
//
// Every randomized component in the library (workloads, schedules, property
// tests) draws from these generators so that any failure is reproducible
// from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <vector>

namespace psnap {

// SplitMix64: used to expand one seed into independent stream seeds.
// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

// xoshiro256**: the main generator.  Small, fast, and high quality; see
// Blackman & Vigna, "Scrambled linear pseudorandom number generators", 2018.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  // Uniform over [0, bound).  bound must be > 0.  Uses Lemire's unbiased
  // multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double next_double();

  // True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  // Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // k distinct values from [0, n), in sorted order.  k must be <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace psnap
