// Always-on invariant checking for a concurrency library.
//
// PSNAP_ASSERT is active in all build types: the algorithms in this library
// encode subtle correctness arguments (linearizability, view-coverage,
// interval invariants) and silently continuing after a violated invariant
// would make every downstream measurement meaningless.  The cost of the
// checks is a branch on a local predicate; none of them read shared memory,
// so they do not perturb step counts.
#pragma once

#include <cstdint>
#include <string>

namespace psnap {

// Aborts the process with a formatted message.  Out-of-line so the assert
// macro stays tiny at call sites.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);

namespace detail {
// Number of assertion evaluations (for tests that want to prove the checks
// are really on).  Not atomic: only read in single-threaded test code.
extern thread_local std::uint64_t tls_assert_evaluations;
}  // namespace detail

}  // namespace psnap

#define PSNAP_ASSERT(expr)                                              \
  do {                                                                  \
    ++::psnap::detail::tls_assert_evaluations;                          \
    if (!(expr)) [[unlikely]] {                                         \
      ::psnap::assert_fail(#expr, __FILE__, __LINE__, std::string{});   \
    }                                                                   \
  } while (0)

#define PSNAP_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    ++::psnap::detail::tls_assert_evaluations;                          \
    if (!(expr)) [[unlikely]] {                                         \
      ::psnap::assert_fail(#expr, __FILE__, __LINE__, (msg));           \
    }                                                                   \
  } while (0)
