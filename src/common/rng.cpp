#include "common/rng.h"

#include <algorithm>

#include "common/assert.h"

namespace psnap {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // All-zero state is the one invalid state; SplitMix64 cannot produce four
  // zero outputs from any seed, but keep the guard explicit.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  PSNAP_ASSERT(bound > 0);
  // Lemire's method with rejection for exact uniformity.
  while (true) {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (0 - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t Xoshiro256::next_in(std::uint64_t lo, std::uint64_t hi) {
  PSNAP_ASSERT(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::uint32_t> Xoshiro256::sample_without_replacement(
    std::uint32_t n, std::uint32_t k) {
  PSNAP_ASSERT(k <= n);
  // Floyd's algorithm: O(k) expected time, no O(n) scratch.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    std::uint32_t t = static_cast<std::uint32_t>(next_below(j + 1));
    if (std::find(out.begin(), out.end(), t) != out.end()) t = j;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace psnap
