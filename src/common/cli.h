// Minimal command-line flag parsing for bench and example binaries.
//
// Supports "--key=value", "--key value" and boolean "--flag".  Unknown flags
// are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psnap {

class CliFlags {
 public:
  // Declares a flag with a default and a help line, then call parse().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  // Parses argv; returns false (after printing usage) on error or --help.
  bool parse(int argc, char** argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  // Comma-separated integer list, e.g. "--sizes=1,2,4,8".
  std::vector<std::uint64_t> get_uint_list(const std::string& name) const;

  void print_usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  const Flag& find(const std::string& name) const;
  std::map<std::string, Flag> flags_;
};

}  // namespace psnap
