// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace psnap {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  std::uint64_t elapsed_nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Monotonic nanosecond timestamp, shared by all threads.  Used by the
// real-time stress checker to bound operation intervals.
inline std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace psnap
