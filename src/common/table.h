// Aligned text / CSV table output for the benchmark harness.
//
// Every bench binary prints its results through TablePrinter so that the
// rows in bench_output.txt line up with the experiment tables described in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psnap {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Cell helpers; each add_row call must supply one cell per header.
  void add_row(std::vector<std::string> cells);

  // Formats a double with the given precision, trimming trailing noise.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);

  // Renders with space-aligned columns, a header underline, and an optional
  // title.  Suitable for terminals and for diffing bench_output.txt.
  void print(std::ostream& os, const std::string& title = "") const;

  // Comma-separated form for downstream plotting.
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psnap
