#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace psnap {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  std::uint64_t n = n_ + other.n_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.n_) /
                            static_cast<double>(n);
  double m2 = m2_ + other.m2_ +
              delta * delta * static_cast<double>(n_) *
                  static_cast<double>(other.n_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
  mean_ = mean;
  m2_ = m2;
}

namespace {

// Rank interpolation on an already-sorted vector (shared by percentile and
// summarize_percentiles so the summary pays for one sort, not four).
double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  PSNAP_ASSERT(!samples.empty());
  PSNAP_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, p);
}

Percentiles summarize_percentiles(std::vector<double> samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  out.p50 = sorted_percentile(samples, 50.0);
  out.p90 = sorted_percentile(samples, 90.0);
  out.p99 = sorted_percentile(samples, 99.0);
  out.max = samples.back();
  return out;
}

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  PSNAP_ASSERT(xs.size() == ys.size());
  PSNAP_ASSERT(xs.size() >= 2);
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    PSNAP_ASSERT(xs[i] > 0 && ys[i] > 0);
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  return fit_linear(lx, ly);
}

}  // namespace psnap
