// Small statistics helpers used by the benchmark harness and tests.
#pragma once

#include <cstdint>
#include <vector>

namespace psnap {

// Welford's online mean/variance.  Numerically stable; O(1) per sample.
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  // Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample vector using linear interpolation between closest
// ranks.  p in [0, 100].  The input is copied and sorted.
double percentile(std::vector<double> samples, double p);

// Tail-latency summary: the percentiles the bench tables report, computed
// with one sort of the sample vector (same interpolation as percentile()).
// Zero-filled for an empty input.
struct Percentiles {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};
Percentiles summarize_percentiles(std::vector<double> samples);

// Least-squares fit of y = a + b*x; returns {a, b}.  Used by the benchmark
// harness to report empirical growth exponents (fit on log-log data).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  // Coefficient of determination in [0,1]; 1 means a perfect fit.
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

// Fits y = c * x^k on positive data by regressing log y on log x; returns
// the exponent k (slope) and r^2.  This is how the harness checks "scan cost
// grows quadratically in r" style claims.
LinearFit fit_power_law(const std::vector<double>& xs,
                        const std::vector<double>& ys);

}  // namespace psnap
