// Cache-line isolation for per-thread hot data.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace psnap {

// We hard-code 64 bytes rather than std::hardware_destructive_interference_
// size: GCC warns on ABI-affecting uses of the latter, and 64 is correct for
// every x86-64 and most AArch64 parts; 128 would only pad further.
inline constexpr std::size_t kCachelineBytes = 64;

// Wraps T so adjacent array elements never share a cache line.  Used for
// per-process counters and announcement slots, where false sharing would
// distort the wall-clock benchmarks (step counts are unaffected either way).
template <class T>
struct alignas(kCachelineBytes) CachelinePadded {
  T value{};

  CachelinePadded() = default;
  template <class... Args>
  explicit CachelinePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace psnap
