#include "common/assert.h"

#include <cstdio>
#include <cstdlib>

namespace psnap {

namespace detail {
thread_local std::uint64_t tls_assert_evaluations = 0;
}  // namespace detail

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "psnap invariant violated: %s\n  at %s:%d\n", expr,
               file, line);
  if (!msg.empty()) {
    std::fprintf(stderr, "  %s\n", msg.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace psnap
