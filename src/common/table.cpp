#include "common/table.h"

#include <cstdio>
#include <ostream>

#include "common/assert.h"

namespace psnap {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PSNAP_ASSERT(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  PSNAP_ASSERT_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) {
    os << "== " << title << " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace psnap
