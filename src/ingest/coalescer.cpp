#include "ingest/coalescer.h"

#include <chrono>

#include "common/assert.h"

namespace psnap::ingest {

namespace {

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Coalescer::Coalescer(core::PartialSnapshot& snapshot, Options options)
    : snapshot_(snapshot), options_(std::move(options)) {
  PSNAP_ASSERT_MSG(options_.batch > 0, "batch=0 has no flush threshold");
  if (options_.coalesce_window_us > 0 && !options_.now_us) {
    options_.now_us = steady_now_us;
  }
  pending_.reserve(options_.batch);
}

Coalescer::~Coalescer() {
  try {
    flush();
  } catch (...) {
    // Swallowed by contract (see header); explicit flush() reports.
  }
}

void Coalescer::write(std::uint32_t index, std::uint64_t value) {
  ++stats_.writes;
  ++raw_in_window_;
  bool merged = false;
  if (options_.coalesce_window > 0) {
    // Linear scan: pending batches are small (k is a handful to a few
    // dozen) and the entries are hot in cache; a map would cost more.
    for (core::BatchEntry& e : pending_) {
      if (e.index == index) {
        e.value = value;
        merged = true;
        ++stats_.merged;
        break;
      }
    }
  }
  if (!merged) pending_.push_back({index, value});
  if (options_.coalesce_window_us > 0 && pending_.size() == 1 && !merged) {
    window_start_us_ = options_.now_us();
  }
  if (pending_.size() >= options_.batch ||
      (options_.coalesce_window > 0 &&
       raw_in_window_ >= options_.coalesce_window) ||
      deadline_expired()) {
    flush();
  }
}

bool Coalescer::deadline_expired() const {
  return options_.coalesce_window_us > 0 && !pending_.empty() &&
         options_.now_us() - window_start_us_ >= options_.coalesce_window_us;
}

bool Coalescer::poll() {
  if (!deadline_expired()) return false;
  flush();
  return true;
}

void Coalescer::flush() {
  raw_in_window_ = 0;
  if (pending_.empty()) return;
  if (pending_.size() == 1) {
    snapshot_.update(pending_[0].index, pending_[0].value);
  } else {
    snapshot_.update_batch(
        std::span<const core::BatchEntry>(pending_.data(), pending_.size()));
  }
  ++stats_.flushes;
  stats_.flushed_entries += pending_.size();
  pending_.clear();  // keeps capacity: steady state allocates nothing
}

}  // namespace psnap::ingest
