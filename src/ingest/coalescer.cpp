#include "ingest/coalescer.h"

#include "common/assert.h"

namespace psnap::ingest {

Coalescer::Coalescer(core::PartialSnapshot& snapshot, Options options)
    : snapshot_(snapshot), options_(options) {
  PSNAP_ASSERT_MSG(options_.batch > 0, "batch=0 has no flush threshold");
  pending_.reserve(options_.batch);
}

Coalescer::~Coalescer() {
  try {
    flush();
  } catch (...) {
    // Swallowed by contract (see header); explicit flush() reports.
  }
}

void Coalescer::write(std::uint32_t index, std::uint64_t value) {
  ++stats_.writes;
  ++raw_in_window_;
  bool merged = false;
  if (options_.coalesce_window > 0) {
    // Linear scan: pending batches are small (k is a handful to a few
    // dozen) and the entries are hot in cache; a map would cost more.
    for (core::BatchEntry& e : pending_) {
      if (e.index == index) {
        e.value = value;
        merged = true;
        ++stats_.merged;
        break;
      }
    }
  }
  if (!merged) pending_.push_back({index, value});
  if (pending_.size() >= options_.batch ||
      (options_.coalesce_window > 0 &&
       raw_in_window_ >= options_.coalesce_window)) {
    flush();
  }
}

void Coalescer::flush() {
  raw_in_window_ = 0;
  if (pending_.empty()) return;
  if (pending_.size() == 1) {
    snapshot_.update(pending_[0].index, pending_[0].value);
  } else {
    snapshot_.update_batch(
        std::span<const core::BatchEntry>(pending_.data(), pending_.size()));
  }
  ++stats_.flushes;
  stats_.flushed_entries += pending_.size();
  pending_.clear();  // keeps capacity: steady state allocates nothing
}

}  // namespace psnap::ingest
