// Coalescing ingest front-end: buffers a stream of singleton writes and
// flushes them as one atomic/amortized update_batch.
//
// The batch protocol (core/partial_snapshot.h) amortizes one announcement
// record, one helping round, and one grace period over k writes -- but
// only if the caller HAS k writes in hand.  The Coalescer manufactures
// them from an ordinary write stream, the way an ingest pipeline in front
// of a snapshot-backed store would: writes accumulate in a pending batch,
// same-component writes within the window merge last-wins (the snapshot
// only ever publishes the newest value, so intermediate ones are pure
// protocol cost), and the batch flushes when it reaches `batch` distinct
// components or `coalesce_window` raw writes.
//
// Single-threaded by design: one Coalescer fronts one producer thread
// (per-thread ingest queues), the snapshot underneath provides the
// cross-thread atomicity.  Buffered writes are invisible to scans until
// the flush -- the window bounds that staleness.
//
// The registry's universal batch=/coalesce_window= spec options
// (registry::IngestKnobs) carry exactly these two knobs from a CLI spec
// to this constructor.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/partial_snapshot.h"

namespace psnap::ingest {

class Coalescer {
 public:
  struct Options {
    // Flush when this many distinct components are pending.  1 = flush
    // every write (the singleton baseline the batched path A/Bs against).
    std::uint32_t batch = 1;
    // Flush after this many raw writes even if fewer than `batch`
    // distinct components accumulated; while below it, same-component
    // writes merge last-wins.  0 disables coalescing: every write is a
    // distinct pending entry.
    std::uint32_t coalesce_window = 0;
    // Time bound on buffered staleness: flush once the OLDEST pending
    // write has been buffered for this many microseconds, checked on
    // every write() and on poll().  0 disables the deadline (the
    // count-based thresholds above still apply).  A sparse write stream
    // with a count-only window can hold a write hostage indefinitely;
    // the deadline caps that at a wall-clock bound.
    std::uint64_t coalesce_window_us = 0;
    // Clock used for the deadline, in microseconds on any monotonic
    // scale.  Defaults to the steady clock; tests inject a fake to make
    // deadline flushes deterministic.
    std::function<std::uint64_t()> now_us;
  };

  struct Stats {
    std::uint64_t writes = 0;    // raw writes accepted
    std::uint64_t merged = 0;    // writes absorbed into a pending entry
    std::uint64_t flushes = 0;   // update_batch / update calls issued
    std::uint64_t flushed_entries = 0;  // distinct entries published
  };

  // The snapshot must outlive the Coalescer.  Callers pass a snapshot
  // whose batch_atomicity() != kUnsupported (checked on first flush by
  // the snapshot itself, which throws from update_batch otherwise).
  Coalescer(core::PartialSnapshot& snapshot, Options options);

  // Flushes any pending writes.  Destructors must not throw, so a failing
  // terminal flush (e.g. a kUnsupported snapshot) is swallowed; call
  // flush() explicitly to observe errors.
  ~Coalescer();

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  // Buffers one write, merging and flushing per the options above.
  void write(std::uint32_t index, std::uint64_t value);

  // Publishes all pending writes now (one update_batch; a lone pending
  // write goes through the singleton update, which is the wait-free path
  // and what "batch of one" means).  No-op when nothing is pending.
  void flush();

  // Flushes if the coalesce_window_us deadline has expired; otherwise a
  // no-op.  Call between writes when the stream can go quiet -- write()
  // checks the deadline itself, but only a poll can flush a tail the
  // stream never follows up.  Returns true when it flushed.
  bool poll();

  std::size_t pending() const { return pending_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  bool deadline_expired() const;

  core::PartialSnapshot& snapshot_;
  Options options_;
  std::vector<core::BatchEntry> pending_;
  std::uint32_t raw_in_window_ = 0;
  std::uint64_t window_start_us_ = 0;  // stamp of the oldest pending write
  Stats stats_;
};

}  // namespace psnap::ingest
