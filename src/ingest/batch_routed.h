// BatchRouted: a PartialSnapshot decorator that routes singleton updates
// through the batch entry points (update(i,v) becomes a k=1
// update_batch).
//
// Purpose: the registry's canned *_batch twins.  Registering a BatchRouted
// wrapper of an existing implementation puts the batch protocol -- the
// shared announcement record, the descriptor install/resolve engine, the
// pooled batch descriptors -- on the exact paths every registry-driven
// suite already drives (linearizability, validity, growth, churn, crash,
// allocation), with zero per-suite wiring.  Scans and plane accessors
// forward untouched.
//
// Wait-freedom is a constructor argument rather than forwarded: on the
// versioned plane the batch engine CAS-retries until every member is
// installed (lock-free), so a wrapper of a wait-free singleton
// implementation is NOT wait-free even at k=1, and the registry flag must
// describe the wrapper, not the wrappee.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "common/assert.h"
#include "core/partial_snapshot.h"
#include "core/scan_context.h"

namespace psnap::ingest {

class BatchRouted final : public core::PartialSnapshot {
 public:
  BatchRouted(std::unique_ptr<core::PartialSnapshot> inner, bool wait_free)
      : inner_(std::move(inner)),
        wait_free_(wait_free),
        name_(std::string(inner_->name()) + "+batch") {
    PSNAP_ASSERT_MSG(
        inner_->batch_atomicity() != core::BatchAtomicity::kUnsupported,
        "BatchRouted needs an inner implementation with a batch path");
  }

  std::uint32_t num_components() const override {
    return inner_->num_components();
  }
  std::string_view name() const override { return name_; }
  bool is_wait_free() const override { return wait_free_; }
  bool is_local() const override { return inner_->is_local(); }
  std::string_view value_plane() const override {
    return inner_->value_plane();
  }
  std::string_view reclaim_plane() const override {
    return inner_->reclaim_plane();
  }
  std::uint32_t reclaim_shards() const override {
    return inner_->reclaim_shards();
  }
  std::uint64_t reclaim_outstanding() const override {
    return inner_->reclaim_outstanding();
  }

  std::uint32_t add_components(std::uint32_t count) override {
    return inner_->add_components(count);
  }

  void update(std::uint32_t i, std::uint64_t v) override {
    core::BatchEntry e{i, v};
    inner_->update_batch(std::span<const core::BatchEntry>(&e, 1));
  }
  void update_blob(std::uint32_t i,
                   std::span<const std::byte> bytes) override {
    core::BlobBatchEntry e{i, bytes};
    inner_->update_batch_blob(std::span<const core::BlobBatchEntry>(&e, 1));
  }

  void update_batch(std::span<const core::BatchEntry> entries) override {
    inner_->update_batch(entries);
  }
  void update_batch_blob(
      std::span<const core::BlobBatchEntry> entries) override {
    inner_->update_batch_blob(entries);
  }
  core::BatchAtomicity batch_atomicity() const override {
    return inner_->batch_atomicity();
  }

  void scan(std::span<const std::uint32_t> indices,
            std::vector<std::uint64_t>& out,
            core::ScanContext& ctx) override {
    inner_->scan(indices, out, ctx);
  }
  void scan_blobs(std::span<const std::uint32_t> indices,
                  std::vector<psnap::value::Blob>& out,
                  core::ScanContext& ctx) override {
    inner_->scan_blobs(indices, out, ctx);
  }
  std::uint64_t scan_versioned(std::span<const std::uint32_t> indices,
                               std::vector<std::uint64_t>& out,
                               core::ScanContext& ctx) override {
    return inner_->scan_versioned(indices, out, ctx);
  }

  using core::PartialSnapshot::scan;
  using core::PartialSnapshot::scan_blobs;
  using core::PartialSnapshot::scan_versioned;
  using core::PartialSnapshot::update_batch;

 private:
  std::unique_ptr<core::PartialSnapshot> inner_;
  bool wait_free_;
  std::string name_;
};

}  // namespace psnap::ingest
