// ValueCell: the atomic component cell of a value plane.
//
// Implementations whose components already hold record pointers (fig1,
// fig3, the full-snapshot and double-collect baselines) embed the payload
// in their records and need nothing from this header.  Implementations
// whose components were RAW WORDS -- the seqlock baseline stores values
// directly in registers -- wrap each cell in a ValueCell instead:
//
//   * ValueCell<DirectU64>: a Register<uint64_t>; the word is the value.
//     Identical code to before, zero cost.
//
//   * ValueCell<IndirectBlob>: a Register<const BlobNode*> publishing an
//     immutable, pooled payload node.  An update builds the node, then
//     exchange()s it in (one register step, release publication); a read
//     load()s the pointer (one register step, acquire) and dereferences it
//     -- callers must hold an EBR pin across the dereference and retire
//     the replaced node through a reclaim::Pool<BlobNode>, exactly the
//     record lifecycle the snapshot algorithms already run.
//
// Cost model of the indirection: one extra acquire dereference per read,
// one pool acquire per update, one step either way -- step counts match
// the direct plane, so the theorem-level accounting is plane-invariant.
#pragma once

#include <cstdint>

#include "exec/exec.h"
#include "primitives/primitives.h"
#include "primitives/value_plane.h"
#include "primitives/version_chain.h"

namespace psnap::primitives {

// The blob plane's standalone payload node, for cells that had no record
// to embed the payload in.  Immutable after publication; recycled through
// a reclaim::Pool so its byte vector keeps capacity across lives.
struct BlobNode {
  value::Blob bytes;
};

template <class Value, class Policy = Instrumented>
class ValueCell;

template <class Policy>
class ValueCell<value::DirectU64, Policy> {
 public:
  // Construction-phase initialization (see Register::init).
  void init(std::uint64_t v, std::uint64_t label = exec::kNoLabel) {
    reg_.init(v, label);
  }

  // One register step each, exactly as the raw register was.
  std::uint64_t load() const { return reg_.load(); }
  void store(std::uint64_t v) { reg_.store(v); }

 private:
  Register<std::uint64_t, Policy> reg_;
};

template <class Policy>
class ValueCell<value::IndirectBlob, Policy> {
 public:
  // Construction-phase installation of the initial node (owned by the
  // cell's owner; see the seqlock destructor).
  void init(const BlobNode* node, std::uint64_t label = exec::kNoLabel) {
    reg_.init(node, label);
  }

  // One register step; the returned node may be dereferenced only under
  // an EBR pin (acquire load in the Release runtime pairs with the
  // publishing exchange).
  const BlobNode* load() const { return reg_.load(); }

  // Publishes a fully-built node; returns the replaced node so exactly
  // one thread retires it.  One register step.
  const BlobNode* exchange(const BlobNode* node) {
    return reg_.exchange(node);
  }

  // Non-step read for destructors (quiescent only).
  const BlobNode* peek() const { return reg_.peek(); }

 private:
  Register<const BlobNode*, Policy> reg_;
};

// The versioned plane's cell (version_chain.h): the register publishes
// the HEAD of the component's version chain.  Same lifecycle contract as
// the blob cell -- load under an EBR pin, exchange a fully-built node in,
// retire displaced nodes through a reclaim::Pool<VersionNodeU64> -- plus
// the chain walk readers run via primitives::chain_read.
template <class Policy>
class ValueCell<value::VersionedU64, Policy> {
 public:
  // Construction-phase installation of the chain's initial node (stamped
  // kInitialVersion by the caller; owned by the cell's owner).
  void init(const VersionNodeU64* node, std::uint64_t label = exec::kNoLabel) {
    reg_.init(node, label);
  }

  // One register step; dereference only under an EBR pin.
  const VersionNodeU64* load() const { return reg_.load(); }

  // Publishes a fully-built node (prev already pointing at the current
  // head); returns the replaced head.  One register step.  Callers must
  // serialize publications per cell (the seqlock's writer section does) --
  // an exchange-based chain append cannot resolve racing predecessors.
  const VersionNodeU64* exchange(const VersionNodeU64* node) {
    return reg_.exchange(node);
  }

  // Non-step read for destructors (quiescent only).
  const VersionNodeU64* peek() const { return reg_.peek(); }

 private:
  Register<const VersionNodeU64*, Policy> reg_;
};

}  // namespace psnap::primitives
