// The primitives are header-only templates; this translation unit exists to
// anchor the static library and to force-compile the common instantiations
// used across the project, catching template errors early.
#include "primitives/primitives.h"

namespace psnap::primitives {

template class Register<std::uint64_t>;
template class Register<void*>;
template class CasObject<std::uint64_t>;
template class CasObject<void*>;

}  // namespace psnap::primitives
