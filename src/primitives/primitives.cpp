// The primitives are header-only templates; this translation unit exists to
// anchor the static library and to force-compile the common instantiations
// used across the project -- in both runtimes -- catching template errors
// early.
#include "primitives/primitives.h"

namespace psnap::primitives {

template class Register<std::uint64_t, Instrumented>;
template class Register<void*, Instrumented>;
template class CasObject<std::uint64_t, Instrumented>;
template class CasObject<void*, Instrumented>;
template class FetchIncrementT<Instrumented>;

template class Register<std::uint64_t, Release>;
template class Register<void*, Release>;
template class CasObject<std::uint64_t, Release>;
template class CasObject<void*, Release>;
template class FetchIncrementT<Release>;

}  // namespace psnap::primitives
