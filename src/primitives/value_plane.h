// The value plane: what a component's payload IS, as a compile-time policy.
//
// The paper treats each component as one opaque register word, and until
// this header the whole stack hard-coded that word as std::uint64_t.  Real
// workloads carry string sensor ids, struct telemetry records, blobs --
// and the algorithms never cared: they synchronize on the *identity* of an
// immutable record published through one atomic word, not on the payload's
// shape (Wei et al. and Kallimanis & Kanellou both get arbitrary payloads
// from exactly this indirection; see PAPERS.md).
//
// A Value policy picks the payload representation, orthogonally to the
// Instrumented/Release runtime policy (primitives.h):
//
//   * DirectU64 -- today's behavior, bit-identical and zero-cost: the
//     payload is the 64-bit word itself.  The default and the fast path.
//
//   * IndirectBlob -- the payload is an owned, variable-size byte buffer
//     living behind the indirection each algorithm already has:
//       - fig1/fig3/full-snapshot/double-collect publish immutable heap
//         records through an atomic pointer; the blob is embedded in the
//         record, so it rides the existing pool + EBR lifecycle (pooled
//         records keep the blob vector's capacity across lives -- steady
//         state updates stay allocation-free, and a crash-unwound update
//         returns its unpublished record, blob and all, to the pool
//         instantly);
//       - the seqlock baseline stored raw words; its cells become
//         primitives::ValueCell pointers to standalone pooled BlobNodes
//         (value_cell.h) -- the "CAS'd pointer to an immutable payload
//         record" construction, one extra acquire dereference per read and
//         one pool acquire per update;
//       - the lock baseline keeps blobs in its mutex-guarded vector.
//
// Every implementation still speaks the logical-u64 interface
// (PartialSnapshot::update/scan) on BOTH planes -- on the blob plane a
// logical u64 round-trips through an 8-byte payload -- so the sim
// linearizability, validity, crash, growth, and churn suites cover
// indirect values without a parallel harness.  Arbitrary payloads go
// through PartialSnapshot::update_blob/scan_blobs, which the u64 plane
// rejects.
//
// Value policies never perform shared-memory operations themselves: a
// plane only says how payload bytes are stored and copied.  Step counts
// are therefore IDENTICAL across planes -- the paper's theorems, stated in
// base-object steps, hold unchanged on the blob plane.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

namespace psnap::value {

// An owned payload: arbitrary bytes, capacity retained across re-fills
// (vector assignment never shrinks capacity), so blobs embedded in pooled
// records re-fill without touching the heap once warmed up.
using Blob = std::vector<std::byte>;

// The payload plane of the original algorithms: one 64-bit word.
struct DirectU64 {
  using ValueType = std::uint64_t;
  static constexpr bool kIndirect = false;
  static constexpr bool kVersioned = false;
  static constexpr std::string_view kName = "u64";

  static void encode(std::uint64_t v, ValueType& out) { out = v; }
  static std::uint64_t decode(const ValueType& v) { return v; }
  // Payload-to-payload copy (view building, borrow extraction).
  static void copy(const ValueType& src, ValueType& dst) { dst = src; }
};

// The versioned read plane (primitives/version_chain.h): the payload is
// still one 64-bit word, but every publication appends an immutable
// {value, version, prev} node to a per-component version chain and a
// global camera epoch orders them.  Scans become constant-time per
// component -- grab an epoch, walk each requested chain to the newest
// node at or below it -- with no collects, no helping round, and no
// seqlock retries; see PartialSnapshot::scan_versioned.  The plane policy
// itself is payload-only (bit-identical to DirectU64); the chain fields
// live in the implementations' records/cells, keyed off kVersioned.
struct VersionedU64 {
  using ValueType = std::uint64_t;
  static constexpr bool kIndirect = false;
  static constexpr bool kVersioned = true;
  static constexpr std::string_view kName = "versioned";

  static void encode(std::uint64_t v, ValueType& out) { out = v; }
  static std::uint64_t decode(const ValueType& v) { return v; }
  static void copy(const ValueType& src, ValueType& dst) { dst = src; }
};

// Larger-than-word payloads: owned byte buffers behind the record
// indirection.  The logical-u64 interface maps onto the first 8 bytes
// (native-endian, zero-extended when the payload is shorter), so a blob
// object driven only through update()/scan() behaves exactly like a u64
// object -- which is what lets every existing harness cover this plane.
struct IndirectBlob {
  using ValueType = Blob;
  static constexpr bool kIndirect = true;
  static constexpr bool kVersioned = false;
  static constexpr std::string_view kName = "blob";

  static void encode(std::uint64_t v, Blob& out) {
    out.resize(sizeof v);  // capacity-retaining
    std::memcpy(out.data(), &v, sizeof v);
  }
  static std::uint64_t decode(const Blob& b) {
    std::uint64_t v = 0;
    if (!b.empty()) std::memcpy(&v, b.data(), std::min(b.size(), sizeof v));
    return v;
  }
  static void copy(const Blob& src, Blob& dst) { dst = src; }

  static void assign(Blob& dst, std::span<const std::byte> bytes) {
    dst.assign(bytes.begin(), bytes.end());
  }
};

// Convenience for examples/tests publishing trivially-copyable structs.
template <class T>
std::span<const std::byte> as_bytes_of(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(&v), sizeof(T));
}

// Reads a trivially-copyable struct back out of a blob; returns false on a
// size mismatch (e.g. a component still holding its 8-byte initial
// payload).
template <class T>
bool from_bytes(const Blob& b, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (b.size() != sizeof(T)) return false;
  std::memcpy(&out, b.data(), sizeof(T));
  return true;
}

}  // namespace psnap::value
