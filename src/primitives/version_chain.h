// The versioned value plane's primitives: version chains and the camera.
//
// Wei, Fatourou & Ben-David ("Constant-Time Snapshots with Applications to
// Concurrent Data Structures", PAPERS.md) take a snapshot in O(1) by
// fetch-adding a global epoch counter -- the CAMERA -- and resolving reads
// lazily against per-location VERSION CHAINS: each publication carries an
// immutable node {value, version, prev}, and a reader with epoch s walks
// prev pointers to the newest node whose version is <= s.  This header
// holds the pieces the snapshot implementations share:
//
//   * the publish-then-stamp protocol.  A node is published with
//     version = kUnstamped and its version is FIXED afterwards by a CAS
//     from kUnstamped to a camera read.  Anyone who needs the version --
//     the publisher itself, a later updater displacing the node, a reader
//     deciding which side of its epoch the node falls on -- helps stamp
//     first (ensure_stamped), so the fix is unique and an updater stalled
//     between publish and stamp never blocks a reader.  An update
//     linearizes at its stamp fix; a scan linearizes at its camera
//     fetch-add.
//
//   * the chain invariant the walk's termination rests on: an updater
//     help-stamps the node it displaces BEFORE publishing over it, so
//     stamps never decrease along publication order -- walking prev the
//     versions are non-increasing, and every chain is rooted in an initial
//     node stamped 0 (< every epoch: the camera starts at 1).
//
//   * the consistency argument: a stamp is a camera read, so every stamp
//     fixed before a scan's fetch-add is <= that scan's epoch s, and every
//     stamp fixed after it is > s.  The values a scan extracts -- newest
//     node with version <= s per component -- were therefore all
//     simultaneously current at the instant of the fetch-add.
//
//   * reclamation (lazy chain trimming): after publishing N over H, the
//     only nodes of the chain a future reader can still reach are N and H
//     -- a reader pinned after the publication starts its walk at N (or
//     newer) and stops at the first node with version <= its epoch, which
//     is at latest H, because H's stamp was fixed before N was published
//     and hence before any later epoch.  So the updater retires H.prev
//     through the pool and the live unretired set per component is always
//     exactly {head, head->prev}; readers that raced the publication are
//     protected by the EBR grace period.  Steady state stays
//     zero-allocation: one node acquired, one retired, per update.
//
// Every shared access here is one base-object step under the Instrumented
// policy (the version word is a CAS object, prev is a register, the camera
// is the paper's fetch&increment), so the sim scheduler interleaves the
// versioned algorithms exactly like the collect-based ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "exec/exec.h"
#include "primitives/primitives.h"

namespace psnap::primitives {

// A published-but-not-yet-stamped version (see publish-then-stamp above).
inline constexpr std::uint64_t kUnstamped = ~std::uint64_t{0};

// --- batched publication (update_batch on the versioned plane) ---
//
// A k-entry batch publishes k nodes that must carry ONE stamp, fixed only
// after ALL k are installed -- that is what makes the batch atomic: a
// scan's epoch e either satisfies e >= stamp (the stamp was fixed, hence
// every entry installed, before the scan's fetch-add, so the scan sees all
// k new values) or e < stamp (it sees none of them).  The shared stamp
// lives in a BATCH DESCRIPTOR the member nodes point at; anyone who needs
// a member's version while the descriptor is unresolved -- a reader's
// chain walk, an updater displacing a member -- first helps the batch to
// completion through resolve() (install every pending entry, then fix the
// shared stamp), exactly like ensure_stamped helps a stalled singleton.
//
// Descriptors outlive their batch by an EBR grace period (pool-recycled by
// the owner after it has copied the shared stamp into every member's own
// version word), so the member fast path never touches the descriptor
// again once stamped.
class BatchControl {
 public:
  // Ensures every entry of the batch is installed and `version` is fixed.
  // Implementations differ in HOW (lock-free install helping for the
  // CAS-cell algorithms, a bounded wait on the writer section for the
  // seqlock baseline), but after resolve() returns, version != kUnstamped.
  virtual void resolve() const = 0;

  // The shared stamp; kUnstamped until resolve() fixes it.
  mutable std::atomic<std::uint64_t> version{kUnstamped};

 protected:
  ~BatchControl() = default;  // owned and destroyed as the concrete type
};

// Stamp carried by pre-installed initial nodes; the camera starts at 1, so
// an initial node is older than every epoch ever handed out.
inline constexpr std::uint64_t kInitialVersion = 0;

// The standalone version node for cells that had no record to embed the
// chain in (the seqlock baseline's raw-word cells; see value_cell.h).
// Record-publishing implementations embed the same two fields in their
// records instead (core::VersionedRecordT).  `version` is mutable because
// stamping is metadata fixing on an otherwise-immutable published node.
struct VersionNodeU64 {
  std::uint64_t value = 0;
  mutable std::atomic<std::uint64_t> version{kUnstamped};
  std::atomic<const VersionNodeU64*> prev{nullptr};
  // Non-null while the node is an unresolved batch member (see
  // BatchControl); singleton publications clear it before publishing.
  std::atomic<const BatchControl*> batch{nullptr};
};

// The camera: a fetch&increment object whose value is the next epoch to be
// handed out.  new_epoch() atomically claims the current value (one F&I
// step); now() reads it (one register-kind step on the F&I object).
template <class Policy = Instrumented>
class VersionCamera {
 public:
  // A scan's epoch: all stamps fixed before this fetch-add are <= the
  // returned value, all fixed after are > it.
  std::uint64_t new_epoch() { return fai_.fetch_increment() - 1; }

  // The stamp value for a node published before this read.
  std::uint64_t now() { return fai_.read(); }

 private:
  FetchIncrementT<Policy> fai_{1};
};

// Empty stand-in so non-versioned instantiations carry no camera
// ([[no_unique_address]] member via std::conditional_t).
struct NoCamera {};

// --- chain accessors (one step each; Node is any type with the
// VersionNodeU64 field shape) ---

template <class Policy, class Node>
std::uint64_t version_of(const Node& node) {
  if constexpr (Policy::kCountsSteps) {
    exec::on_step(exec::ObjKind::kCas);
  }
  return node.version.load(Policy::kLoad);
}

// Fixes an unstamped node's version to `stamp`; returns the version the
// node ended up with (the existing one if another stamper won).
template <class Policy, class Node>
std::uint64_t stamp_version(const Node& node, std::uint64_t stamp) {
  if constexpr (Policy::kCountsSteps) {
    exec::on_step(exec::ObjKind::kCas);
  }
  std::uint64_t expected = kUnstamped;
  if (node.version.compare_exchange_strong(expected, stamp, Policy::kRmw,
                                           Policy::kCasFailure)) {
    return stamp;
  }
  return expected;
}

template <class Policy, class Node>
const Node* prev_of(const Node& node) {
  if constexpr (Policy::kCountsSteps) {
    exec::on_step(exec::ObjKind::kRegister);
  }
  return node.prev.load(Policy::kLoad);
}

// The helping primitive: returns the node's fixed version, stamping it
// from the camera first if it is still unstamped.  Used by updaters on the
// node they displace (before publishing over it), by publishers on their
// own node (after publishing), and by readers on any node whose epoch side
// they must decide.
//
// Batch members route through their descriptor: the batch is first helped
// to completion (resolve installs every pending entry, then fixes the
// shared stamp), and the member is stamped FROM the shared word -- every
// stamper of every member therefore proposes the same value, which is the
// whole-batch atomicity.
template <class Policy, class Node, class Camera>
std::uint64_t ensure_stamped(const Node& node, Camera& camera) {
  std::uint64_t version = version_of<Policy>(node);
  if (version != kUnstamped) return version;
  if (const BatchControl* batch =
          node.batch.load(std::memory_order_acquire)) {
    batch->resolve();
    return stamp_version<Policy>(
        node, batch->version.load(std::memory_order_acquire));
  }
  return stamp_version<Policy>(node, camera.now());
}

// The reader's walk: newest node with version <= epoch, starting from a
// head loaded under the caller's EBR pin.  Terminates at latest at the
// chain's initial node (version 0); every prev it dereferences belongs to
// a node stamped AFTER the caller's fetch-add (version > epoch), whose
// displacement -- and hence whose prev's retirement -- came after the
// caller's pin, so the grace period protects the whole walk.  `walked`
// counts visited nodes (chain-length observability for tests/benches).
template <class Policy, class Node, class Camera>
const Node* chain_read(const Node* head, std::uint64_t epoch, Camera& camera,
                       std::uint64_t& walked) {
  const Node* node = head;
  while (true) {
    ++walked;
    if (ensure_stamped<Policy>(*node, camera) <= epoch) return node;
    node = prev_of<Policy>(*node);
  }
}

// --- the batch descriptor's entry table and install engine ---

// One entry of a batch descriptor.  `installed` flips false->true exactly
// once, when the node lands in its component's cell.
template <class Node>
struct BatchSlotT {
  std::uint32_t index = 0;
  Node* node = nullptr;
  std::atomic<bool> installed{false};
};

// The descriptor's entry storage: a capacity-reusing array (atomics make
// BatchSlotT immovable, so std::vector cannot hold it).  reset(k)
// allocates only when k exceeds every previous batch's size -- steady
// state stays allocation-free, like the record pools.
template <class Node>
class BatchSlots {
 public:
  BatchSlotT<Node>* begin() { return data_.get(); }
  BatchSlotT<Node>* data() const { return data_.get(); }
  std::uint32_t size() const { return size_; }
  BatchSlotT<Node>& operator[](std::uint32_t i) { return data_[i]; }
  const BatchSlotT<Node>& operator[](std::uint32_t i) const {
    return data_[i];
  }

  void reset(std::uint32_t count) {
    if (count > capacity_) {
      data_ = std::make_unique<BatchSlotT<Node>[]>(count);
      capacity_ = count;
    }
    size_ = count;
    for (std::uint32_t i = 0; i < count; ++i) {
      data_[i].index = 0;
      data_[i].node = nullptr;
      data_[i].installed.store(false, std::memory_order_relaxed);
    }
  }

 private:
  std::unique_ptr<BatchSlotT<Node>[]> data_;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = 0;
};

// Installs every pending entry of a batch (owner and helpers run the same
// loop), then fixes the shared stamp.  Shared by the CAS-cell algorithms
// (fig3, full_snapshot); the seqlock baseline has its own single-writer
// variant.
//
//   * entries are sorted ascending by component index and installed in
//     that order, and a slot's flag flips only after every lower slot's
//     did -- so when helping chains recurse (installing over a head that
//     is itself an unresolved batch member calls ensure_stamped, hence
//     resolve, on THAT batch), the component index strictly increases
//     along the chain and the recursion depth is bounded by m.  This is
//     the MCAS address-ordering argument.
//
//   * an entry's predecessor is agreed through node->prev (CAS nullptr ->
//     head): the first proposer fixes which head the installers CAS over.
//     A failed cell CAS either returns our own node (another helper just
//     won: mark installed and stop) or a foreign head -- and in the latter
//     case the entry, if it HAD been installed, was already displaced,
//     which required the displacer to resolve this batch first (it
//     ensure_stamped the head it displaced), so re-checking `installed`
//     after the failure is guaranteed to see true before the stale
//     proposal could be retracted from a published node.  Only a genuinely
//     uninstalled entry ever has its proposal reset.
//
//   * every proposal is help-stamped before the cell CAS, preserving the
//     chain's never-decreasing stamp order; the shared stamp, taken after
//     the last install, is >= all of them.
//
//   * ABA-safety: callers run pinned, so a displaced head cannot be
//     recycled into a fresh publication while any helper still holds its
//     pointer.
//
// `cell_at(index)` returns the component's CAS cell (load() /
// compare_and_swap(expected, desired) -> previous); `trim(displaced)` is
// called once per installed entry with the head it displaced (the lazy
// chain-trim hook).
template <class Policy, class Node, class Camera, class CellAt, class Trim>
void batch_install_and_resolve(BatchSlotT<Node>* slots, std::uint32_t count,
                               const BatchControl& control, Camera& camera,
                               CellAt&& cell_at, Trim&& trim) {
  for (std::uint32_t e = 0; e < count; ++e) {
    BatchSlotT<Node>& slot = slots[e];
    Node* node = slot.node;
    while (!slot.installed.load(std::memory_order_acquire)) {
      const Node* proposed = node->prev.load(std::memory_order_acquire);
      if (proposed == nullptr) {
        const Node* head = cell_at(slot.index).load();
        ensure_stamped<Policy>(*head, camera);
        const Node* expected = nullptr;
        node->prev.compare_exchange_strong(expected, head,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire);
        continue;  // re-read the agreed proposal
      }
      const Node* was = cell_at(slot.index).compare_and_swap(proposed, node);
      if (was == proposed) {
        slot.installed.store(true, std::memory_order_release);
        trim(proposed);
        break;
      }
      if (was == node) {
        // Another helper's install landed between our proposal read and
        // our CAS; publish the flag on its behalf and move on.
        slot.installed.store(true, std::memory_order_release);
        break;
      }
      if (slot.installed.load(std::memory_order_acquire)) break;
      // Stale proposal on an uninstalled entry: retract it (first
      // retractor wins; losers just loop) and retry against the new head.
      const Node* stale = proposed;
      node->prev.compare_exchange_strong(stale, nullptr,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
    }
  }
  // All entries installed: fix the shared stamp (the batch's linearization
  // point, unless a racing helper already fixed it).
  if (control.version.load(std::memory_order_acquire) == kUnstamped) {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kCas);
    }
    std::uint64_t expected = kUnstamped;
    control.version.compare_exchange_strong(expected, camera.now(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
  }
}

}  // namespace psnap::primitives
