// The versioned value plane's primitives: version chains and the camera.
//
// Wei, Fatourou & Ben-David ("Constant-Time Snapshots with Applications to
// Concurrent Data Structures", PAPERS.md) take a snapshot in O(1) by
// fetch-adding a global epoch counter -- the CAMERA -- and resolving reads
// lazily against per-location VERSION CHAINS: each publication carries an
// immutable node {value, version, prev}, and a reader with epoch s walks
// prev pointers to the newest node whose version is <= s.  This header
// holds the pieces the snapshot implementations share:
//
//   * the publish-then-stamp protocol.  A node is published with
//     version = kUnstamped and its version is FIXED afterwards by a CAS
//     from kUnstamped to a camera read.  Anyone who needs the version --
//     the publisher itself, a later updater displacing the node, a reader
//     deciding which side of its epoch the node falls on -- helps stamp
//     first (ensure_stamped), so the fix is unique and an updater stalled
//     between publish and stamp never blocks a reader.  An update
//     linearizes at its stamp fix; a scan linearizes at its camera
//     fetch-add.
//
//   * the chain invariant the walk's termination rests on: an updater
//     help-stamps the node it displaces BEFORE publishing over it, so
//     stamps never decrease along publication order -- walking prev the
//     versions are non-increasing, and every chain is rooted in an initial
//     node stamped 0 (< every epoch: the camera starts at 1).
//
//   * the consistency argument: a stamp is a camera read, so every stamp
//     fixed before a scan's fetch-add is <= that scan's epoch s, and every
//     stamp fixed after it is > s.  The values a scan extracts -- newest
//     node with version <= s per component -- were therefore all
//     simultaneously current at the instant of the fetch-add.
//
//   * reclamation (lazy chain trimming): after publishing N over H, the
//     only nodes of the chain a future reader can still reach are N and H
//     -- a reader pinned after the publication starts its walk at N (or
//     newer) and stops at the first node with version <= its epoch, which
//     is at latest H, because H's stamp was fixed before N was published
//     and hence before any later epoch.  So the updater retires H.prev
//     through the pool and the live unretired set per component is always
//     exactly {head, head->prev}; readers that raced the publication are
//     protected by the EBR grace period.  Steady state stays
//     zero-allocation: one node acquired, one retired, per update.
//
// Every shared access here is one base-object step under the Instrumented
// policy (the version word is a CAS object, prev is a register, the camera
// is the paper's fetch&increment), so the sim scheduler interleaves the
// versioned algorithms exactly like the collect-based ones.
#pragma once

#include <atomic>
#include <cstdint>

#include "exec/exec.h"
#include "primitives/primitives.h"

namespace psnap::primitives {

// A published-but-not-yet-stamped version (see publish-then-stamp above).
inline constexpr std::uint64_t kUnstamped = ~std::uint64_t{0};

// Stamp carried by pre-installed initial nodes; the camera starts at 1, so
// an initial node is older than every epoch ever handed out.
inline constexpr std::uint64_t kInitialVersion = 0;

// The standalone version node for cells that had no record to embed the
// chain in (the seqlock baseline's raw-word cells; see value_cell.h).
// Record-publishing implementations embed the same two fields in their
// records instead (core::VersionedRecordT).  `version` is mutable because
// stamping is metadata fixing on an otherwise-immutable published node.
struct VersionNodeU64 {
  std::uint64_t value = 0;
  mutable std::atomic<std::uint64_t> version{kUnstamped};
  std::atomic<const VersionNodeU64*> prev{nullptr};
};

// The camera: a fetch&increment object whose value is the next epoch to be
// handed out.  new_epoch() atomically claims the current value (one F&I
// step); now() reads it (one register-kind step on the F&I object).
template <class Policy = Instrumented>
class VersionCamera {
 public:
  // A scan's epoch: all stamps fixed before this fetch-add are <= the
  // returned value, all fixed after are > it.
  std::uint64_t new_epoch() { return fai_.fetch_increment() - 1; }

  // The stamp value for a node published before this read.
  std::uint64_t now() { return fai_.read(); }

 private:
  FetchIncrementT<Policy> fai_{1};
};

// Empty stand-in so non-versioned instantiations carry no camera
// ([[no_unique_address]] member via std::conditional_t).
struct NoCamera {};

// --- chain accessors (one step each; Node is any type with the
// VersionNodeU64 field shape) ---

template <class Policy, class Node>
std::uint64_t version_of(const Node& node) {
  if constexpr (Policy::kCountsSteps) {
    exec::on_step(exec::ObjKind::kCas);
  }
  return node.version.load(Policy::kLoad);
}

// Fixes an unstamped node's version to `stamp`; returns the version the
// node ended up with (the existing one if another stamper won).
template <class Policy, class Node>
std::uint64_t stamp_version(const Node& node, std::uint64_t stamp) {
  if constexpr (Policy::kCountsSteps) {
    exec::on_step(exec::ObjKind::kCas);
  }
  std::uint64_t expected = kUnstamped;
  if (node.version.compare_exchange_strong(expected, stamp, Policy::kRmw,
                                           Policy::kCasFailure)) {
    return stamp;
  }
  return expected;
}

template <class Policy, class Node>
const Node* prev_of(const Node& node) {
  if constexpr (Policy::kCountsSteps) {
    exec::on_step(exec::ObjKind::kRegister);
  }
  return node.prev.load(Policy::kLoad);
}

// The helping primitive: returns the node's fixed version, stamping it
// from the camera first if it is still unstamped.  Used by updaters on the
// node they displace (before publishing over it), by publishers on their
// own node (after publishing), and by readers on any node whose epoch side
// they must decide.
template <class Policy, class Node, class Camera>
std::uint64_t ensure_stamped(const Node& node, Camera& camera) {
  std::uint64_t version = version_of<Policy>(node);
  if (version == kUnstamped) {
    version = stamp_version<Policy>(node, camera.now());
  }
  return version;
}

// The reader's walk: newest node with version <= epoch, starting from a
// head loaded under the caller's EBR pin.  Terminates at latest at the
// chain's initial node (version 0); every prev it dereferences belongs to
// a node stamped AFTER the caller's fetch-add (version > epoch), whose
// displacement -- and hence whose prev's retirement -- came after the
// caller's pin, so the grace period protects the whole walk.  `walked`
// counts visited nodes (chain-length observability for tests/benches).
template <class Policy, class Node, class Camera>
const Node* chain_read(const Node* head, std::uint64_t epoch, Camera& camera,
                       std::uint64_t& walked) {
  const Node* node = head;
  while (true) {
    ++walked;
    if (ensure_stamped<Policy>(*node, camera) <= epoch) return node;
    node = prev_of<Policy>(*node);
  }
}

}  // namespace psnap::primitives
