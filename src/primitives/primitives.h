// Linearizable shared base objects, parameterized over a runtime policy.
//
// These are the paper's model-level primitives (Section 2 / Section 4):
// read/write registers, compare&swap objects, and fetch&increment objects.
// Each is a template over a *runtime policy* selecting one of two
// compile-time runtimes:
//
//   * Instrumented (the default, used by every theorem bench, sim test,
//     and crash sweep): every operation is a single std::atomic operation
//     with seq_cst ordering -- so the implementation really is
//     linearizable at the hardware level with no further argument -- and
//     reports exactly one "step" to the execution layer, the unit in which
//     Theorems 1-3 are stated and in which our benches measure.  Steps are
//     also the scheduling points of the deterministic simulator.
//
//   * Release (the `*_fast` registry entries): no step accounting, no
//     sim/logger hooks, and acquire/release publication instead of
//     seq_cst.  The downgrades are sound for THIS library's usage pattern,
//     argued per operation below and tabulated in README.md ("The two
//     runtimes"); the short form is that every algorithm here synchronizes
//     by publishing immutable heap records through single atomic words
//     (message passing), and never decides anything from a Dekker-style
//     store-load race between two locations.  RMWs (exchange, CAS, F&I)
//     keep acq_rel, so they still read the newest value in each location's
//     modification order.
//
// Objects may carry a label (component index) so locality tests can assert
// which components an operation touched.  Labels are only observable
// through the instrumentation hooks, so the Release runtime ignores them.
#pragma once

#include <atomic>
#include <cstdint>

#include "exec/exec.h"

namespace psnap::primitives {

// ---------------------------------------------------------------------------
// Runtime policies.
// ---------------------------------------------------------------------------

// The paper's model: seq_cst base objects, one exec step per operation.
// Every operation is already globally ordered, so the protocol fence
// (below) is a no-op here.
struct Instrumented {
  static constexpr bool kCountsSteps = true;
  static constexpr bool kNeedsProtocolFence = false;
  static constexpr std::memory_order kLoad = std::memory_order_seq_cst;
  static constexpr std::memory_order kStore = std::memory_order_seq_cst;
  static constexpr std::memory_order kRmw = std::memory_order_seq_cst;
  static constexpr std::memory_order kCasFailure = std::memory_order_seq_cst;
};

// The wall-clock runtime: acquire/release publication, no accounting.
// Loads are acquire because every loaded pointer may be dereferenced
// (records are immutable and fully built before the release publication,
// the classic message-passing pattern).  Stores are release for the same
// reason.  RMWs are acq_rel: they publish a new record (release) and the
// returned previous value may be dereferenced or retired (acquire).
//
// One synchronization pattern in the snapshot algorithms is NOT covered
// by acquire/release: the announce/join-vs-getSet handshake is
// Dekker-shaped.  A scanner STOREs its announcement and joins, then LOADs
// components; an updater LOADs the active set after LOADing its
// component.  The condition-(2) borrow proof needs "an update whose
// embedded scan began after my join sees my announcement", i.e. the
// scanner's stores must be ordered before its own subsequent loads --
// store-load ordering, the one thing release+acquire never gives (the
// scanner's join can sit in its store buffer while its collects run).
// Policies with kNeedsProtocolFence request an explicit seq_cst fence at
// the scanner's end of that handshake (after announce+join, before the
// first collect): architecturally, the fence drains the store buffer, so
// the join is globally visible before any collect load executes, and a
// getSet walk -- whose loads read coherent memory, via load_sync below --
// that runs after that point must see it.  One fence per scan (updates
// pay none) instead of seq_cst ordering on every step.  This is an
// architectural argument (TSO / ARMv8 barrier semantics), not a pure
// C++-abstract-machine proof; the Instrumented runtime remains the
// formally seq_cst model and everything that reasons about correctness
// (sim tests, crash sweeps) runs on it.
struct Release {
  static constexpr bool kCountsSteps = false;
  static constexpr bool kNeedsProtocolFence = true;
  static constexpr std::memory_order kLoad = std::memory_order_acquire;
  static constexpr std::memory_order kStore = std::memory_order_release;
  static constexpr std::memory_order kRmw = std::memory_order_acq_rel;
  static constexpr std::memory_order kCasFailure = std::memory_order_acquire;
};

#if defined(__SANITIZE_THREAD__)
#define PSNAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSNAP_TSAN 1
#endif
#endif

// The Dekker-point fence (see Release above).  Call sites mark the
// scanner's end of the announce/join-vs-getSet handshake; no-op for
// policies whose every operation is already seq_cst.
template <class Policy>
inline void protocol_fence() {
  if constexpr (Policy::kNeedsProtocolFence) {
#if defined(PSNAP_TSAN)
    // TSan cannot instrument atomic_thread_fence (GCC hard-errors under
    // -Wtsan -Werror).  A seq_cst RMW stands in: every shared access in
    // this library is an atomic TSan models directly, so the fence's only
    // job under TSan is to exist without breaking the build.
    static std::atomic<unsigned> fence_surrogate{0};
    fence_surrogate.fetch_add(1, std::memory_order_seq_cst);
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }
}

// Atomic read/write register.  T must be a type std::atomic supports
// natively (we use pointers and 64-bit integers throughout).
template <class T, class Policy = Instrumented>
class Register {
 public:
  Register() : value_(T{}) {}
  explicit Register(T initial, std::uint64_t label = exec::kNoLabel)
      : value_(initial), label_(label) {}

  // Construction-phase initialization (before the object is shared); not a
  // step.  Registers live in vectors, and std::atomic makes them
  // non-assignable, so containers default-construct and then init().
  void init(T initial, std::uint64_t label = exec::kNoLabel) {
    value_.store(initial, std::memory_order_relaxed);
    label_ = label;
  }

  void set_label(std::uint64_t label) { label_ = label; }

  T load() const {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kRegister, label_);
    }
    return value_.load(Policy::kLoad);
  }

  void store(T desired) {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kRegister, label_);
    }
    value_.store(desired, Policy::kStore);
  }

  // Atomic swap.  Counted as one register step: the algorithms use it only
  // where the paper writes a plain write, and the returned previous value
  // is used purely for memory reclamation (retire-exactly-once), never for
  // synchronization decisions.  See RegisterPartialSnapshot::update.
  T exchange(T desired) {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kRegister, label_);
    }
    return value_.exchange(desired, Policy::kRmw);
  }

  // Handshake read: the getSet end of the announce/join-vs-getSet
  // handshake (see Release above).  seq_cst in BOTH runtimes -- the same
  // instruction as an acquire load on x86 and AArch64, so the Release
  // runtime pays nothing -- and one ordinary step in the instrumented
  // runtime.  Used for the active-set membership walks, whose loads must
  // observe any join a scanner fenced before them.
  T load_sync() const {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kRegister, label_);
    }
    return value_.load(std::memory_order_seq_cst);
  }

  // Non-step read: does not count a step or act as a schedule point.  For
  // tests, destructors, and a process reading its OWN single-writer
  // register (re-reading local state the process itself wrote is not a
  // shared-object step in the paper's model -- see the announcement reuse
  // in cas_psnap.cpp / register_psnap.cpp).  Relaxed in both runtimes:
  // every use is either same-thread (reading our own last store, which
  // program order already orders) or externally synchronized (destructors
  // run quiescent, after the owning threads were joined).
  T peek() const { return value_.load(std::memory_order_relaxed); }

  // Non-step VALIDATION read: seq_cst, no step, no schedule point.  The
  // hazard-pointer plane publishes a hazard and must then re-read the
  // source to confirm the pointer did not move before the publication
  // became visible (Michael's protect protocol).  The re-read is not one
  // of the paper's steps -- the operation's counted step is the initial
  // load being validated -- but it needs seq_cst so it is ordered after
  // the hazard store it validates.
  T peek_sync() const { return value_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<T> value_;
  std::uint64_t label_ = exec::kNoLabel;
};

// compare&swap object (Section 4): holds a value; compare_and_swap(old,new)
// installs new iff the current value equals old, returning the previous
// value.  We also expose the boolean-success form used in Figure 3.
template <class T, class Policy = Instrumented>
class CasObject {
 public:
  CasObject() : value_(T{}) {}
  explicit CasObject(T initial, std::uint64_t label = exec::kNoLabel)
      : value_(initial), label_(label) {}

  // Construction-phase initialization; see Register::init.
  void init(T initial, std::uint64_t label = exec::kNoLabel) {
    value_.store(initial, std::memory_order_relaxed);
    label_ = label;
  }

  void set_label(std::uint64_t label) { label_ = label; }

  T load() const {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kCas, label_);
    }
    return value_.load(Policy::kLoad);
  }

  // Returns the value held immediately before the operation (the paper's
  // interface).  The swap happened iff the return value equals `expected`.
  T compare_and_swap(T expected, T desired) {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kCas, label_);
    }
    T prev = expected;
    value_.compare_exchange_strong(prev, desired, Policy::kRmw,
                                   Policy::kCasFailure);
    return prev;
  }

  bool compare_and_swap_bool(T expected, T desired) {
    return compare_and_swap(expected, desired) == expected;
  }

  // Non-step read.  Acquire (not relaxed): unlike Register::peek, one use
  // crosses threads and dereferences -- FaiCasActiveSet::
  // published_intervals() peeks the skip-list pointer published by another
  // thread's CAS and reads the IntervalSet behind it.  Acquire pairs with
  // that publication; it is still fence-free on x86 and a plain ldar on
  // AArch64, never a full seq_cst barrier.
  T peek() const { return value_.load(std::memory_order_acquire); }

  // Non-step validation read for the hazard-pointer protect protocol; see
  // Register::peek_sync.
  T peek_sync() const { return value_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<T> value_;
  std::uint64_t label_ = exec::kNoLabel;
};

// fetch&increment object (Section 4): atomically increments and returns the
// *new* value; also readable without modification (the paper assumes this).
template <class Policy = Instrumented>
class FetchIncrementT {
 public:
  FetchIncrementT() = default;
  explicit FetchIncrementT(std::uint64_t initial,
                           std::uint64_t label = exec::kNoLabel)
      : value_(initial), label_(label) {}

  std::uint64_t fetch_increment() {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kFai, label_);
    }
    return value_.fetch_add(1, Policy::kRmw) + 1;
  }

  std::uint64_t read() const {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kFai, label_);
    }
    return value_.load(Policy::kLoad);
  }

  // Non-step read; relaxed, used only by tests and observability accessors
  // (slots_used) where the value is a plain counter, never dereferenced.
  std::uint64_t peek() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::uint64_t label_ = exec::kNoLabel;
};

// A 64-bit word of membership bits, RMW'd one bit at a time (the bitmap
// active set's base object; see activeset/bitmap_active_set.h).  In the
// paper's model this is one multi-writer register holding a 64-bit value
// whose writers use RMW primitives: a read is one register step, and each
// single-bit fetch_or/fetch_and is one CAS-class step (an RMW on the
// newest value in the word's modification order, like compare&swap).
// Packing 64 membership flags into one readable register is what turns an
// O(n) collect into the O(ceil(n/64)) word walk.
template <class Policy = Instrumented>
class AtomicBits {
 public:
  AtomicBits() = default;

  // Sets bit `bit`, returning the word's previous value.  One CAS-kind
  // step: publication of membership, acq_rel in the Release runtime so
  // the joiner's earlier stores (its announcement) are visible to any
  // getSet that reads the bit.
  std::uint64_t fetch_or(std::uint32_t bit) {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kCas, label_);
    }
    return value_.fetch_or(std::uint64_t{1} << bit, Policy::kRmw);
  }

  // Clears bit `bit`, returning the word's previous value.
  std::uint64_t fetch_and_clear(std::uint32_t bit) {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kCas, label_);
    }
    return value_.fetch_and(~(std::uint64_t{1} << bit), Policy::kRmw);
  }

  // Handshake read, the getSet end of the announce/join-vs-getSet
  // handshake: seq_cst in both runtimes, exactly like Register::load_sync
  // (same instruction as acquire on x86/AArch64).  One register step.
  std::uint64_t load_sync() const {
    if constexpr (Policy::kCountsSteps) {
      exec::on_step(exec::ObjKind::kRegister, label_);
    }
    return value_.load(std::memory_order_seq_cst);
  }

  // Non-step read for tests and destructors (quiescent or own-state only).
  std::uint64_t peek() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::uint64_t label_ = exec::kNoLabel;
};

// The historical (and still most common) spelling: the instrumented F&I.
using FetchIncrement = FetchIncrementT<Instrumented>;

}  // namespace psnap::primitives
