// Linearizable shared base objects, step-instrumented.
//
// These are the paper's model-level primitives (Section 2 / Section 4):
// read/write registers, compare&swap objects, and fetch&increment objects.
// Every operation:
//   * is a single std::atomic operation with seq_cst ordering, so the
//     implementation really is linearizable at the hardware level, and
//   * reports exactly one "step" to the execution layer, which is the unit
//     in which Theorems 1-3 are stated and in which our benches measure.
//
// Objects may carry a label (component index) so locality tests can assert
// which components an operation touched.
#pragma once

#include <atomic>
#include <cstdint>

#include "exec/exec.h"

namespace psnap::primitives {

// Atomic read/write register.  T must be a type std::atomic supports
// natively (we use pointers and 64-bit integers throughout).
template <class T>
class Register {
 public:
  Register() : value_(T{}) {}
  explicit Register(T initial, std::uint64_t label = exec::kNoLabel)
      : value_(initial), label_(label) {}

  // Construction-phase initialization (before the object is shared); not a
  // step.  Registers live in vectors, and std::atomic makes them
  // non-assignable, so containers default-construct and then init().
  void init(T initial, std::uint64_t label = exec::kNoLabel) {
    value_.store(initial, std::memory_order_relaxed);
    label_ = label;
  }

  void set_label(std::uint64_t label) { label_ = label; }

  T load() const {
    exec::on_step(exec::ObjKind::kRegister, label_);
    return value_.load(std::memory_order_seq_cst);
  }

  void store(T desired) {
    exec::on_step(exec::ObjKind::kRegister, label_);
    value_.store(desired, std::memory_order_seq_cst);
  }

  // Atomic swap.  Counted as one register step: the algorithms use it only
  // where the paper writes a plain write, and the returned previous value
  // is used purely for memory reclamation (retire-exactly-once), never for
  // synchronization decisions.  See RegisterPartialSnapshot::update.
  T exchange(T desired) {
    exec::on_step(exec::ObjKind::kRegister, label_);
    return value_.exchange(desired, std::memory_order_seq_cst);
  }

  // Non-step read: does not count a step or act as a schedule point.  For
  // tests, destructors, and a process reading its OWN single-writer
  // register (re-reading local state the process itself wrote is not a
  // shared-object step in the paper's model -- see the announcement reuse
  // in cas_psnap.cpp / register_psnap.cpp).
  T peek() const { return value_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<T> value_;
  std::uint64_t label_ = exec::kNoLabel;
};

// compare&swap object (Section 4): holds a value; compare_and_swap(old,new)
// installs new iff the current value equals old, returning the previous
// value.  We also expose the boolean-success form used in Figure 3.
template <class T>
class CasObject {
 public:
  CasObject() : value_(T{}) {}
  explicit CasObject(T initial, std::uint64_t label = exec::kNoLabel)
      : value_(initial), label_(label) {}

  // Construction-phase initialization; see Register::init.
  void init(T initial, std::uint64_t label = exec::kNoLabel) {
    value_.store(initial, std::memory_order_relaxed);
    label_ = label;
  }

  void set_label(std::uint64_t label) { label_ = label; }

  T load() const {
    exec::on_step(exec::ObjKind::kCas, label_);
    return value_.load(std::memory_order_seq_cst);
  }

  // Returns the value held immediately before the operation (the paper's
  // interface).  The swap happened iff the return value equals `expected`.
  T compare_and_swap(T expected, T desired) {
    exec::on_step(exec::ObjKind::kCas, label_);
    T prev = expected;
    value_.compare_exchange_strong(prev, desired, std::memory_order_seq_cst,
                                   std::memory_order_seq_cst);
    return prev;
  }

  bool compare_and_swap_bool(T expected, T desired) {
    return compare_and_swap(expected, desired) == expected;
  }

  T peek() const { return value_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<T> value_;
  std::uint64_t label_ = exec::kNoLabel;
};

// fetch&increment object (Section 4): atomically increments and returns the
// *new* value; also readable without modification (the paper assumes this).
class FetchIncrement {
 public:
  FetchIncrement() = default;
  explicit FetchIncrement(std::uint64_t initial,
                          std::uint64_t label = exec::kNoLabel)
      : value_(initial), label_(label) {}

  std::uint64_t fetch_increment() {
    exec::on_step(exec::ObjKind::kFai, label_);
    return value_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  std::uint64_t read() const {
    exec::on_step(exec::ObjKind::kFai, label_);
    return value_.load(std::memory_order_seq_cst);
  }

  std::uint64_t peek() const { return value_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::uint64_t label_ = exec::kNoLabel;
};

}  // namespace psnap::primitives
