#include "registry/registry.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"

namespace psnap::registry {

// Defined in builtins.cpp; called exactly once per registry singleton.
void register_builtin_snapshots(SnapshotRegistry& registry);
void register_builtin_active_sets(ActiveSetRegistry& registry);

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

Options Options::parse(std::string_view spec) {
  Options options;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (item.empty()) {
      throw std::invalid_argument("empty option in spec '" +
                                  std::string(spec) + "'");
    }
    std::size_t eq = item.find('=');
    Entry entry;
    if (eq == std::string_view::npos) {
      // A bare key is boolean shorthand for key=true.
      entry.key = std::string(item);
      entry.value = "true";
    } else {
      entry.key = std::string(item.substr(0, eq));
      entry.value = std::string(item.substr(eq + 1));
    }
    if (entry.key.empty()) {
      throw std::invalid_argument("option with empty key in spec '" +
                                  std::string(spec) + "'");
    }
    for (const Entry& existing : options.entries_) {
      if (existing.key == entry.key) {
        throw std::invalid_argument("duplicate option '" + entry.key +
                                    "' in spec '" + std::string(spec) + "'");
      }
    }
    options.entries_.push_back(std::move(entry));
  }
  return options;
}

const Options::Entry* Options::find(std::string_view key) const {
  for (const Entry& entry : entries_) {
    if (entry.key == key) {
      entry.consumed = true;
      return &entry;
    }
  }
  return nullptr;
}

bool Options::get_bool(std::string_view key, bool def) const {
  const Entry* entry = find(key);
  if (entry == nullptr) return def;
  if (entry->value == "true" || entry->value == "1") return true;
  if (entry->value == "false" || entry->value == "0") return false;
  throw std::invalid_argument("option '" + entry->key +
                              "' expects a boolean, got '" + entry->value +
                              "'");
}

std::uint64_t Options::get_uint(std::string_view key,
                                std::uint64_t def) const {
  const Entry* entry = find(key);
  if (entry == nullptr) return def;
  try {
    // stoull tolerates leading whitespace, '+' and even '-' (wrapping the
    // negation); require a bare digit string so typos fail loudly.
    if (entry->value.empty() ||
        entry->value.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("not a digit string");
    }
    std::size_t used = 0;
    std::uint64_t value = std::stoull(entry->value, &used);
    if (used != entry->value.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option '" + entry->key +
                                "' expects an unsigned integer, got '" +
                                entry->value + "'");
  }
}

std::string Options::get_string(std::string_view key,
                                std::string_view def) const {
  const Entry* entry = find(key);
  return entry == nullptr ? std::string(def) : entry->value;
}

void Options::check_consumed() const {
  for (const Entry& entry : entries_) {
    if (!entry.consumed) {
      throw std::invalid_argument("unknown option '" + entry.key + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

SnapshotRegistry& SnapshotRegistry::instance() {
  static SnapshotRegistry* registry = [] {
    auto* r = new SnapshotRegistry();
    register_builtin_snapshots(*r);
    return r;
  }();
  return *registry;
}

void SnapshotRegistry::add(SnapshotInfo info) {
  PSNAP_ASSERT_MSG(!info.name.empty(), "registry entries need a name");
  PSNAP_ASSERT_MSG(find(info.name) == nullptr,
                   "duplicate snapshot registration");
  infos_.push_back(std::move(info));
}

std::vector<const SnapshotInfo*> SnapshotRegistry::all() const {
  std::vector<const SnapshotInfo*> out;
  out.reserve(infos_.size());
  for (const SnapshotInfo& info : infos_) out.push_back(&info);
  return out;
}

const SnapshotInfo* SnapshotRegistry::find(std::string_view name) const {
  for (const SnapshotInfo& info : infos_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<core::PartialSnapshot> SnapshotRegistry::make(
    std::string_view spec, std::uint32_t num_components,
    std::uint32_t max_processes) const {
  auto [name, opt_spec] = split_spec(spec);
  const SnapshotInfo* info = find(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown snapshot implementation '" +
                                std::string(name) + "'; known: " +
                                snapshot_catalogue());
  }
  Options options = Options::parse(opt_spec);
  auto snapshot = info->make(num_components, max_processes, options);
  options.check_consumed();
  return snapshot;
}

ActiveSetRegistry& ActiveSetRegistry::instance() {
  static ActiveSetRegistry* registry = [] {
    auto* r = new ActiveSetRegistry();
    register_builtin_active_sets(*r);
    return r;
  }();
  return *registry;
}

void ActiveSetRegistry::add(ActiveSetInfo info) {
  PSNAP_ASSERT_MSG(!info.name.empty(), "registry entries need a name");
  PSNAP_ASSERT_MSG(find(info.name) == nullptr,
                   "duplicate active-set registration");
  infos_.push_back(std::move(info));
}

std::vector<const ActiveSetInfo*> ActiveSetRegistry::all() const {
  std::vector<const ActiveSetInfo*> out;
  out.reserve(infos_.size());
  for (const ActiveSetInfo& info : infos_) out.push_back(&info);
  return out;
}

const ActiveSetInfo* ActiveSetRegistry::find(std::string_view name) const {
  for (const ActiveSetInfo& info : infos_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<activeset::ActiveSet> ActiveSetRegistry::make(
    std::string_view spec, std::uint32_t max_processes) const {
  auto [name, opt_spec] = split_spec(spec);
  const ActiveSetInfo* info = find(name);
  if (info == nullptr) {
    throw std::invalid_argument("unknown active-set implementation '" +
                                std::string(name) + "'; known: " +
                                active_set_catalogue());
  }
  Options options = Options::parse(opt_spec);
  auto active_set = info->make(max_processes, options);
  options.check_consumed();
  return active_set;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::pair<std::string_view, std::string_view> split_spec(
    std::string_view spec) {
  std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) return {spec, {}};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

std::unique_ptr<core::PartialSnapshot> make_snapshot(
    std::string_view spec, std::uint32_t num_components,
    std::uint32_t max_processes) {
  return SnapshotRegistry::instance().make(spec, num_components,
                                           max_processes);
}

std::unique_ptr<activeset::ActiveSet> make_active_set(
    std::string_view spec, std::uint32_t max_processes) {
  return ActiveSetRegistry::instance().make(spec, max_processes);
}

std::string snapshot_catalogue() {
  std::ostringstream out;
  for (const SnapshotInfo* info : SnapshotRegistry::instance().all()) {
    out << "  " << info->name << " -- " << info->description;
    if (!info->options_help.empty()) {
      out << " [" << info->options_help << "]";
    }
    out << "\n";
  }
  return out.str();
}

std::string active_set_catalogue() {
  std::ostringstream out;
  for (const ActiveSetInfo* info : ActiveSetRegistry::instance().all()) {
    out << "  " << info->name << " -- " << info->description;
    if (!info->options_help.empty()) {
      out << " [" << info->options_help << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace psnap::registry
