#include "registry/registry.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"

namespace psnap::registry {

// Defined in builtins.cpp; called exactly once per registry singleton.
void register_builtin_snapshots(SnapshotRegistry& registry);
void register_builtin_active_sets(ActiveSetRegistry& registry);

namespace {

// Plain Levenshtein distance; catalogues are tiny, so the O(a*b) table is
// irrelevant.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

// "Did you mean" candidate: the closest name within an edit-distance
// budget that scales with the typo's length (a one-character slip on a
// short name, a couple on a long one).  Prefix matches (an abbreviated
// name) always qualify.
template <class Infos>
std::string closest_name(std::string_view name, const Infos& infos) {
  std::string best;
  std::size_t best_distance = ~std::size_t{0};
  for (const auto* info : infos) {
    std::size_t d = edit_distance(name, info->name);
    if (d < best_distance) {
      best_distance = d;
      best = info->name;
    }
    if (!name.empty() &&
        std::string_view(info->name).substr(0, name.size()) == name) {
      return info->name;
    }
  }
  std::size_t budget = name.size() < 6 ? 2 : name.size() / 3;
  return best_distance <= budget ? best : std::string();
}

// The universal shape options are 32-bit; reject rather than silently
// truncate a too-large value (the registry's contract is that bad specs
// fail loudly).
std::uint32_t get_u32_option(const Options& options, std::string_view key,
                             std::uint32_t def) {
  std::uint64_t value = options.get_uint(key, def);
  if (value > ~std::uint32_t{0}) {
    throw std::invalid_argument("option '" + std::string(key) +
                                "' exceeds the 32-bit range");
  }
  return static_cast<std::uint32_t>(value);
}

std::string unknown_name_message(std::string_view kind,
                                 std::string_view name,
                                 const std::string& suggestion,
                                 const std::string& catalogue) {
  std::string message = "unknown " + std::string(kind) +
                        " implementation '" + std::string(name) + "'";
  if (!suggestion.empty()) {
    message += "; did you mean '" + suggestion + "'?";
  }
  message += "\nknown implementations:\n" + catalogue;
  return message;
}

}  // namespace

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

Options Options::parse(std::string_view spec) {
  Options options;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    if (item.empty()) {
      throw std::invalid_argument("empty option in spec '" +
                                  std::string(spec) + "'");
    }
    std::size_t eq = item.find('=');
    Entry entry;
    if (eq == std::string_view::npos) {
      // A bare key is boolean shorthand for key=true.
      entry.key = std::string(item);
      entry.value = "true";
    } else {
      entry.key = std::string(item.substr(0, eq));
      entry.value = std::string(item.substr(eq + 1));
    }
    if (entry.key.empty()) {
      throw std::invalid_argument("option with empty key in spec '" +
                                  std::string(spec) + "'");
    }
    for (const Entry& existing : options.entries_) {
      if (existing.key == entry.key) {
        throw std::invalid_argument("duplicate option '" + entry.key +
                                    "' in spec '" + std::string(spec) + "'");
      }
    }
    options.entries_.push_back(std::move(entry));
  }
  return options;
}

const Options::Entry* Options::find(std::string_view key) const {
  // Record the key whether or not it is present: the set of keys callers
  // ASKED about is check_consumed's "did you mean" candidate pool.
  bool seen = false;
  for (const std::string& q : queried_) seen = seen || q == key;
  if (!seen) queried_.emplace_back(key);
  for (const Entry& entry : entries_) {
    if (entry.key == key) {
      entry.consumed = true;
      return &entry;
    }
  }
  return nullptr;
}

bool Options::get_bool(std::string_view key, bool def) const {
  const Entry* entry = find(key);
  if (entry == nullptr) return def;
  if (entry->value == "true" || entry->value == "1") return true;
  if (entry->value == "false" || entry->value == "0") return false;
  throw std::invalid_argument("option '" + entry->key +
                              "' expects a boolean, got '" + entry->value +
                              "'");
}

std::uint64_t Options::get_uint(std::string_view key,
                                std::uint64_t def) const {
  const Entry* entry = find(key);
  if (entry == nullptr) return def;
  try {
    // stoull tolerates leading whitespace, '+' and even '-' (wrapping the
    // negation); require a bare digit string so typos fail loudly.
    if (entry->value.empty() ||
        entry->value.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("not a digit string");
    }
    std::size_t used = 0;
    std::uint64_t value = std::stoull(entry->value, &used);
    if (used != entry->value.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option '" + entry->key +
                                "' expects an unsigned integer, got '" +
                                entry->value + "'");
  }
}

std::string Options::get_string(std::string_view key,
                                std::string_view def) const {
  const Entry* entry = find(key);
  return entry == nullptr ? std::string(def) : entry->value;
}

void Options::check_consumed() const {
  for (const Entry& entry : entries_) {
    if (entry.consumed) continue;
    std::string message = "unknown option '" + entry.key + "'";
    // Suggest the closest key anything asked about, under the same
    // distance budget as the registry's name diagnostics.
    std::string best;
    std::size_t best_distance = ~std::size_t{0};
    for (const std::string& q : queried_) {
      std::size_t d = edit_distance(entry.key, q);
      if (d < best_distance) {
        best_distance = d;
        best = q;
      }
    }
    std::size_t budget = entry.key.size() < 6 ? 2 : entry.key.size() / 3;
    if (!best.empty() && best_distance <= budget) {
      message += "; did you mean '" + best + "'?";
    }
    throw std::invalid_argument(message);
  }
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

SnapshotRegistry& SnapshotRegistry::instance() {
  static SnapshotRegistry* registry = [] {
    auto* r = new SnapshotRegistry();
    register_builtin_snapshots(*r);
    return r;
  }();
  return *registry;
}

void SnapshotRegistry::add(SnapshotInfo info) {
  PSNAP_ASSERT_MSG(!info.name.empty(), "registry entries need a name");
  PSNAP_ASSERT_MSG(find(info.name) == nullptr,
                   "duplicate snapshot registration");
  infos_.push_back(std::move(info));
}

std::vector<const SnapshotInfo*> SnapshotRegistry::all() const {
  std::vector<const SnapshotInfo*> out;
  out.reserve(infos_.size());
  for (const SnapshotInfo& info : infos_) out.push_back(&info);
  return out;
}

const SnapshotInfo* SnapshotRegistry::find(std::string_view name) const {
  for (const SnapshotInfo& info : infos_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<core::PartialSnapshot> SnapshotRegistry::make(
    std::string_view spec, std::uint32_t initial_m,
    std::uint32_t max_threads) const {
  return make(spec, initial_m, max_threads, /*knobs=*/nullptr);
}

std::unique_ptr<core::PartialSnapshot> SnapshotRegistry::make(
    std::string_view spec, std::uint32_t initial_m,
    std::uint32_t max_threads, IngestKnobs* knobs) const {
  auto [name, opt_spec] = split_spec(spec);
  const SnapshotInfo* info = find(name);
  if (info == nullptr) {
    throw std::invalid_argument(
        unknown_name_message("snapshot", name, closest_name(name, all()),
                             snapshot_catalogue()));
  }
  Options options = Options::parse(opt_spec);
  // Universal options, consumed before the factory runs: any spec may
  // reshape the object's initial component count and thread bound.
  initial_m = get_u32_option(options, "m0", initial_m);
  max_threads = get_u32_option(options, "max_threads", max_threads);
  // The value plane is validated centrally against the entry's supported
  // list, so an unsupported combo fails with the catalogue (which names
  // every entry's planes) instead of deep inside a factory.
  std::string plane = options.get_string(
      "value", default_value_plane(info->values));
  if (!value_plane_supported(info->values, plane)) {
    throw std::invalid_argument(
        "snapshot implementation '" + info->name +
        "' does not support value=" + plane + " (supported: " +
        info->values + ")\nknown implementations:\n" + snapshot_catalogue());
  }
  // The reclamation plane gets the same central treatment (the catalogue
  // lists each entry's planes as {reclaim=...}).  The option is peeked,
  // not consumed on the entry's behalf: hp-capable factories re-read it.
  std::string reclaim = options.get_string(
      "reclaim", default_reclaim_plane(info->reclaims));
  if (!reclaim_plane_supported(info->reclaims, reclaim)) {
    throw std::invalid_argument(
        "snapshot implementation '" + info->name +
        "' does not support reclaim=" + reclaim + " (supported: " +
        info->reclaims + ")\nknown implementations:\n" +
        snapshot_catalogue());
  }
  // Universal ingest knobs, validated here so an unsupported combo fails
  // with the catalogue, but ACTED on by the caller: batching is a
  // property of how writes are fed to the object, so only entry points
  // that batch (the coalescing ingest front-end, benches, examples) pass
  // an IngestKnobs sink.  With a nullptr sink the knobs would silently
  // mean "singleton anyway" -- reject instead.
  const bool has_batch = options.contains("batch");
  const bool has_window = options.contains("coalesce_window") ||
                          options.contains("coalesce_window_us");
  const bool has_affinity = options.contains("affinity");
  if ((has_batch || has_window || has_affinity) && knobs == nullptr) {
    throw std::invalid_argument(
        "spec '" + std::string(spec) + "' sets " +
        (has_batch ? "batch="
                   : has_window ? "coalesce_window=" : "affinity=") +
        " but this entry point feeds writes one at a time and cannot "
        "honor ingest knobs");
  }
  if (knobs != nullptr) {
    knobs->affinity = options.get_string("affinity", knobs->affinity);
    if (knobs->affinity != "none" && knobs->affinity != "segment") {
      throw std::invalid_argument(
          "option 'affinity' expects none|segment, got '" +
          knobs->affinity + "'");
    }
    knobs->batch = get_u32_option(options, "batch", knobs->batch);
    knobs->coalesce_window =
        get_u32_option(options, "coalesce_window", knobs->coalesce_window);
    knobs->coalesce_window_us = get_u32_option(
        options, "coalesce_window_us",
        static_cast<std::uint32_t>(knobs->coalesce_window_us));
    if (knobs->batch == 0) {
      throw std::invalid_argument(
          "option 'batch' expects a positive flush threshold (batch=1 "
          "means singleton updates)");
    }
    if (knobs->batching_requested() && !info->supports_batch) {
      throw std::invalid_argument(
          "snapshot implementation '" + info->name +
          "' does not support batched updates (requested batch=" +
          std::to_string(knobs->batch) + ", coalesce_window=" +
          std::to_string(knobs->coalesce_window) +
          "; batch-capable entries are marked (batch) below)"
          "\nknown implementations:\n" + snapshot_catalogue());
    }
  }
  auto snapshot = info->make(initial_m, max_threads, options);
  options.check_consumed();
  return snapshot;
}

ActiveSetRegistry& ActiveSetRegistry::instance() {
  static ActiveSetRegistry* registry = [] {
    auto* r = new ActiveSetRegistry();
    register_builtin_active_sets(*r);
    return r;
  }();
  return *registry;
}

void ActiveSetRegistry::add(ActiveSetInfo info) {
  PSNAP_ASSERT_MSG(!info.name.empty(), "registry entries need a name");
  PSNAP_ASSERT_MSG(find(info.name) == nullptr,
                   "duplicate active-set registration");
  infos_.push_back(std::move(info));
}

std::vector<const ActiveSetInfo*> ActiveSetRegistry::all() const {
  std::vector<const ActiveSetInfo*> out;
  out.reserve(infos_.size());
  for (const ActiveSetInfo& info : infos_) out.push_back(&info);
  return out;
}

const ActiveSetInfo* ActiveSetRegistry::find(std::string_view name) const {
  for (const ActiveSetInfo& info : infos_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<activeset::ActiveSet> ActiveSetRegistry::make(
    std::string_view spec, std::uint32_t max_threads) const {
  auto [name, opt_spec] = split_spec(spec);
  const ActiveSetInfo* info = find(name);
  if (info == nullptr) {
    throw std::invalid_argument(
        unknown_name_message("active-set", name, closest_name(name, all()),
                             active_set_catalogue()));
  }
  Options options = Options::parse(opt_spec);
  max_threads = get_u32_option(options, "max_threads", max_threads);
  auto active_set = info->make(max_threads, options);
  options.check_consumed();
  return active_set;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::pair<std::string_view, std::string_view> split_spec(
    std::string_view spec) {
  std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) return {spec, {}};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

std::unique_ptr<core::PartialSnapshot> make_snapshot(
    std::string_view spec, std::uint32_t initial_m,
    std::uint32_t max_threads) {
  return SnapshotRegistry::instance().make(spec, initial_m, max_threads);
}

std::unique_ptr<core::PartialSnapshot> make_snapshot(
    std::string_view spec, std::uint32_t initial_m,
    std::uint32_t max_threads, IngestKnobs* knobs) {
  return SnapshotRegistry::instance().make(spec, initial_m, max_threads,
                                           knobs);
}

std::unique_ptr<activeset::ActiveSet> make_active_set(
    std::string_view spec, std::uint32_t max_threads) {
  return ActiveSetRegistry::instance().make(spec, max_threads);
}

bool value_plane_supported(std::string_view values, std::string_view plane) {
  std::size_t pos = 0;
  while (pos <= values.size()) {
    std::size_t comma = values.find(',', pos);
    if (comma == std::string_view::npos) comma = values.size();
    if (values.substr(pos, comma - pos) == plane) return true;
    pos = comma + 1;
  }
  return false;
}

std::string_view default_value_plane(std::string_view values) {
  return values.substr(0, values.find(','));
}

bool reclaim_plane_supported(std::string_view reclaims,
                             std::string_view plane) {
  return value_plane_supported(reclaims, plane);
}

std::string_view default_reclaim_plane(std::string_view reclaims) {
  return default_value_plane(reclaims);
}

std::string closest_snapshot_name(std::string_view name) {
  return closest_name(name, SnapshotRegistry::instance().all());
}

std::string closest_active_set_name(std::string_view name) {
  return closest_name(name, ActiveSetRegistry::instance().all());
}

namespace {

// Catalogues print in name order, not registration order: the output is
// consumed by humans diffing `--impls=help` across builds, and link-order
// differences (or late registrations like the experimental mutants) must
// not reshuffle it.
template <typename Info>
std::vector<const Info*> sorted_by_name(std::vector<const Info*> infos) {
  std::sort(infos.begin(), infos.end(),
            [](const Info* a, const Info* b) { return a->name < b->name; });
  return infos;
}

}  // namespace

std::string snapshot_catalogue() {
  std::ostringstream out;
  for (const SnapshotInfo* info :
       sorted_by_name(SnapshotRegistry::instance().all())) {
    out << "  " << info->name << " -- " << info->description;
    if (!info->options_help.empty()) {
      out << " [" << info->options_help << "]";
    }
    out << " {value=" << info->values << "}";
    out << " {reclaim=" << info->reclaims << "}";
    if (info->supports_batch) out << " (batch)";
    out << "\n";
  }
  out << "  (every spec also accepts m0=<u32>, max_threads=<u32>, "
         "value=<plane> from the listed {value=...} set, and "
         "reclaim=<plane> from the listed {reclaim=...} set; entries "
         "marked (batch) additionally accept batch=<k>, "
         "coalesce_window=<w>, and coalesce_window_us=<t> at batch-aware "
         "entry points, which also honor affinity=none|segment for "
         "shard-affine worker placement)\n";
  return out.str();
}

std::string active_set_catalogue() {
  std::ostringstream out;
  for (const ActiveSetInfo* info :
       sorted_by_name(ActiveSetRegistry::instance().all())) {
    out << "  " << info->name << " -- " << info->description;
    if (!info->options_help.empty()) {
      out << " [" << info->options_help << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace psnap::registry
