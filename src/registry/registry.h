// Central registry of PartialSnapshot and ActiveSet implementations.
//
// Every test, bench, and example used to carry its own `struct Impl {
// label; factory; }` table; adding an implementation or an ablation meant
// editing a dozen files.  The registry replaces those tables with one
// string-keyed catalogue:
//
//   * enumeration: SnapshotRegistry::instance().all() lists every
//     implementation in registration order, with capability flags
//     (is_wait_free / is_local / counts_steps / sim_safe) so consumers can
//     filter ("only wait-free impls for the crash sweeps", "only
//     sim-safe impls under the deterministic scheduler") instead of
//     hand-curating lists;
//
//   * construction from CLI strings: make_snapshot("fig3_cas:cas=false",
//     m, n) parses per-implementation options from a spec of the form
//     "name" or "name:key=value,key=value", so bench and example binaries
//     expose --impl flags that reach every registered ablation;
//
//   * one-line registration: a new implementation (or a canned ablation
//     variant of an existing one) is a single add() call in
//     register_builtins() -- every consumer picks it up automatically.
//
// The registry is deliberately not self-registering via static
// initializers: built-ins are registered lazily on first use, which keeps
// registration order deterministic and immune to linker dead-stripping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "activeset/active_set.h"
#include "core/partial_snapshot.h"

namespace psnap::registry {

// Parsed "key=value,key=value" option string.  Factories pull typed values
// with defaults; keys a factory never asked about are reported by
// check_consumed(), so a typo in a spec fails loudly rather than silently
// running the default configuration.
class Options {
 public:
  Options() = default;

  // Parses "key=value,key=value[,flag]" (a bare flag means "true").
  // Throws std::invalid_argument on malformed input.
  static Options parse(std::string_view spec);

  bool get_bool(std::string_view key, bool def) const;
  std::uint64_t get_uint(std::string_view key, std::uint64_t def) const;
  std::string get_string(std::string_view key,
                         std::string_view def) const;

  // Throws std::invalid_argument naming any key no get_* ever asked for,
  // with a "did you mean" suggestion drawn from the keys that WERE asked
  // about (so a typo'd option names its likely intent, mirroring the
  // registry's unknown-name diagnostics).
  void check_consumed() const;

  // Presence check; counts as consumption (used for universal keys the
  // registry handles itself, never for factory options).
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::string key;
    std::string value;
    mutable bool consumed = false;
  };
  const Entry* find(std::string_view key) const;
  std::vector<Entry> entries_;
  // Every key a get_*/contains call asked about, present or not: the
  // candidate pool for check_consumed's "did you mean".
  mutable std::vector<std::string> queried_;
};

// ---------------------------------------------------------------------------
// Partial snapshot implementations.
// ---------------------------------------------------------------------------

// Factory signature of the dynamic runtime: initial_m is the component
// count at construction (the object grows from there via add_components),
// max_threads the bound on concurrently live pids (threads register
// dynamically through exec::ThreadRegistry; the bound sizes nothing
// up-front thanks to the grow-only per-pid storage).
using SnapshotFactory =
    std::function<std::unique_ptr<core::PartialSnapshot>(
        std::uint32_t initial_m, std::uint32_t max_threads,
        const Options& options)>;

struct SnapshotInfo {
  // Registry key; also a valid gtest parameter name ([A-Za-z0-9_]).
  std::string name;
  std::string description;
  // "key=value" summary of the accepted options, for --help output.
  std::string options_help;

  // Capability flags, queryable without instantiating (used by consumers
  // to filter; asserted against the instances in registry_test.cpp).
  bool is_wait_free = false;
  // Scan complexity depends only on r, never on m.
  bool is_local = false;
  // Performs base-object steps counted by exec::on_step (false for the
  // mutex baseline, which synchronizes outside the paper's model).
  bool counts_steps = true;
  // Safe under the deterministic simulation scheduler: every potentially
  // blocking wait is a step-instrumented shared-object operation (false
  // for the mutex baseline, which parks threads the scheduler cannot see,
  // and for the seqlock, whose reader spin loop never performs a
  // scheduling step while waiting out a writer).
  bool sim_safe = true;
  // Comma-separated value planes this entry accepts for the universal
  // value=<plane> option (primitives/value_plane.h); the FIRST is the
  // default plane.  make() validates the option against this list before
  // calling the factory, so an unsupported combo fails with the full
  // catalogue rather than inside the factory.
  std::string values = "u64";
  // Comma-separated reclamation planes this entry accepts for the
  // universal reclaim=<plane> option (reclaim/; "ebr" and/or "hp"); the
  // FIRST is the default.  Validated centrally like `values`, so
  // reclaim=hp on an entry without a hazard-pointer path fails with the
  // catalogue.
  std::string reclaims = "ebr";
  // Implements update_batch()/update_batch_blob() (false for the fig1
  // register constructions, whose base-class defaults throw).  Gates the
  // universal batch=/coalesce_window= ingest knobs: a spec asking for
  // batching on an entry without it fails with the full catalogue.
  bool supports_batch = false;

  SnapshotFactory make;
};

// Ingest-shaping knobs parsed from the universal spec options batch=<k>
// and coalesce_window=<w>.  The registry only parses and validates them
// (batching is a property of how the CALLER feeds the object, not of the
// object itself); callers that batch writes -- the Coalescer front-end,
// benches, examples -- pass an IngestKnobs* to make() and act on the
// result.  Callers that cannot batch pass nullptr, and a spec asking for
// batching then fails loudly instead of silently running singleton.
struct IngestKnobs {
  // Flush after this many distinct components are pending (k=1 means
  // singleton updates; the default).
  std::uint32_t batch = 1;
  // Merge same-component writes while fewer than this many raw writes
  // are pending; 0 disables coalescing (every write is kept).
  std::uint32_t coalesce_window = 0;
  // Flush once the oldest pending write is this many microseconds old
  // (the Coalescer's wall-clock staleness bound); 0 disables the
  // deadline.
  std::uint64_t coalesce_window_us = 0;
  // Worker placement (universal spec option affinity=none|segment):
  // "segment" asks the caller's thread harness to register workers with
  // segment-affine pids (exec::ThreadRegistry), aligning each writer's
  // components with one reclamation shard.  Like batching, this describes
  // how the CALLER drives the object, so it rides in the knobs.
  std::string affinity = "none";

  bool batching_requested() const {
    return batch > 1 || coalesce_window > 0 || coalesce_window_us > 0;
  }
};

class SnapshotRegistry {
 public:
  // The process-wide registry, with built-ins already registered.
  static SnapshotRegistry& instance();

  // Registers an implementation; names must be unique.
  void add(SnapshotInfo info);

  // All implementations, in registration order.
  std::vector<const SnapshotInfo*> all() const;

  // Looks up by exact name; nullptr if absent.
  const SnapshotInfo* find(std::string_view name) const;

  // Builds from a spec "name" or "name:key=value,...".  Every
  // implementation accepts the universal options m0=<u32> (initial
  // component count), max_threads=<u32> -- which override the caller's
  // initial_m / max_threads arguments, so a CLI spec can reshape the
  // object without the binary growing flags -- and value=<plane>,
  // validated against the entry's supported plane list.  Throws
  // std::invalid_argument for unknown names (with a "did you mean"
  // suggestion and the full catalogue), unknown options, or an
  // unsupported value plane (again with the full catalogue, which lists
  // each entry's planes).
  std::unique_ptr<core::PartialSnapshot> make(std::string_view spec,
                                              std::uint32_t initial_m,
                                              std::uint32_t max_threads)
      const;

  // As above, additionally consuming the universal ingest knobs
  // batch=<u32>, coalesce_window=<u32>, and coalesce_window_us=<u32>
  // into *knobs (see IngestKnobs).
  // Throws std::invalid_argument when the spec requests batching on an
  // entry without supports_batch, when batch=0, or when knobs is nullptr
  // but the spec contains either knob (the three-argument overload above
  // forwards nullptr, so batching specs fail loudly in callers that
  // would silently ignore them).
  std::unique_ptr<core::PartialSnapshot> make(std::string_view spec,
                                              std::uint32_t initial_m,
                                              std::uint32_t max_threads,
                                              IngestKnobs* knobs) const;

 private:
  std::vector<SnapshotInfo> infos_;
};

// ---------------------------------------------------------------------------
// Active set implementations.
// ---------------------------------------------------------------------------

using ActiveSetFactory = std::function<std::unique_ptr<activeset::ActiveSet>(
    std::uint32_t max_threads, const Options& options)>;

struct ActiveSetInfo {
  std::string name;
  std::string description;
  std::string options_help;
  bool is_wait_free = false;
  bool counts_steps = true;
  bool sim_safe = true;
  ActiveSetFactory make;
};

class ActiveSetRegistry {
 public:
  static ActiveSetRegistry& instance();

  void add(ActiveSetInfo info);
  std::vector<const ActiveSetInfo*> all() const;
  const ActiveSetInfo* find(std::string_view name) const;
  // Accepts the universal option max_threads=<u32> (overrides the
  // argument); unknown names throw with a "did you mean" suggestion.
  std::unique_ptr<activeset::ActiveSet> make(std::string_view spec,
                                             std::uint32_t max_threads)
      const;

 private:
  std::vector<ActiveSetInfo> infos_;
};

// ---------------------------------------------------------------------------
// Convenience helpers.
// ---------------------------------------------------------------------------

// Splits "name:opts" into its two halves (opts empty when absent).
std::pair<std::string_view, std::string_view> split_spec(
    std::string_view spec);

std::unique_ptr<core::PartialSnapshot> make_snapshot(
    std::string_view spec, std::uint32_t initial_m,
    std::uint32_t max_threads);

std::unique_ptr<core::PartialSnapshot> make_snapshot(
    std::string_view spec, std::uint32_t initial_m,
    std::uint32_t max_threads, IngestKnobs* knobs);

std::unique_ptr<activeset::ActiveSet> make_active_set(
    std::string_view spec, std::uint32_t max_threads);

// Value-plane list helpers (SnapshotInfo::values is a comma-separated
// plane list whose first entry is the default).
bool value_plane_supported(std::string_view values, std::string_view plane);
std::string_view default_value_plane(std::string_view values);

// Same contract for SnapshotInfo::reclaims (reclaim=ebr|hp).
bool reclaim_plane_supported(std::string_view reclaims,
                             std::string_view plane);
std::string_view default_reclaim_plane(std::string_view reclaims);

// Closest registered name by edit distance (for "did you mean"
// diagnostics); empty when nothing is plausibly close.
std::string closest_snapshot_name(std::string_view name);
std::string closest_active_set_name(std::string_view name);

// One line per implementation: "name  description [options]".  For the
// --help output of bench/example binaries.
std::string snapshot_catalogue();
std::string active_set_catalogue();

}  // namespace psnap::registry
