// Built-in implementation catalogue.
//
// Adding an implementation (or a canned ablation) is ONE add() call here;
// every registry-driven test, bench, and example picks it up automatically.
//
// Value planes: every snapshot entry accepts the universal
// value=u64|blob|versioned option (primitives/value_plane.h; validated
// centrally in SnapshotRegistry::make against the entry's `values` list).
// The three core algorithms additionally register canned *_blob entries --
// first-class, sim_safe catalogue rows -- so the DFS/random
// linearizability, validity, crash, growth, churn, and allocation suites
// enumerate the indirect plane automatically, with zero per-suite wiring;
// the versioned read plane (primitives/version_chain.h) gets the same
// treatment through canned *_versioned entries on the implementations
// that support it (fig3_cas, full_snapshot, seqlock).
#include <algorithm>
#include <memory>
#include <string>

#include "activeset/bitmap_active_set.h"
#include "activeset/faicas_active_set.h"
#include "activeset/lock_active_set.h"
#include "activeset/register_active_set.h"
#include "baseline/double_collect.h"
#include "baseline/full_snapshot.h"
#include "baseline/lock_snapshot.h"
#include "baseline/seqlock_snapshot.h"
#include "core/cas_psnap.h"
#include "core/register_psnap.h"
#include "exec/pid_bound.h"
#include "ingest/batch_routed.h"
#include "reclaim/sharded_ebr.h"
#include "registry/registry.h"

namespace psnap::registry {

namespace {

// The universal per-pid walk bound (exec/pid_bound.h): adaptive
// (watermark-bounded, the default) unless the spec says adaptive=false,
// which pins the full-range walk of the given capacity -- the A/B knob
// bench_adaptive_collect measures the win against.
exec::PidBound pid_bound(const Options& options, std::uint32_t n) {
  return options.get_bool("adaptive", true) ? exec::PidBound{}
                                            : exec::PidBound::fixed(n);
}

activeset::FaiCasActiveSet::Options faicas_options(const Options& options,
                                                   std::uint32_t n) {
  activeset::FaiCasActiveSet::Options out;
  out.coalesce = options.get_bool("coalesce", true);
  out.publish_skip_list = options.get_bool("publish", true);
  out.max_joins = options.get_uint("max_joins", 0);
  out.bound = pid_bound(options, n);
  return out;
}

// The entry's value plane.  `def` is the entry's default (the first plane
// in its SnapshotInfo::values list); SnapshotRegistry::make has already
// rejected planes the entry does not list.
bool blob_plane(const Options& options, std::string_view def) {
  return options.get_string("value", def) == "blob";
}

bool versioned_plane(const Options& options, std::string_view def) {
  return options.get_string("value", def) == "versioned";
}

// The fig3 reclamation knobs (core/cas_psnap.h): reclaim=ebr|hp selects
// the plane (the registry has already validated it against the entry's
// `reclaims` list; `def_reclaim` is that list's first entry) and
// shards=<k> the EBR domain count.  The plane/shard combination rules the
// constructor would assert are checked here so a bad spec throws instead.
void apply_reclaim_options(core::CasSnapshotOptions& impl,
                           const Options& options, bool versioned,
                           std::string_view def_reclaim) {
  impl.use_hp = options.get_string("reclaim", def_reclaim) == "hp";
  std::uint64_t shards = options.get_uint("shards", 1);
  if (shards == 0 || shards > reclaim::ShardedEbr::kMaxShards) {
    throw std::invalid_argument(
        "option 'shards' expects 1.." +
        std::to_string(reclaim::ShardedEbr::kMaxShards) + ", got " +
        std::to_string(shards));
  }
  impl.reclaim_shards = static_cast<std::uint32_t>(shards);
  if (impl.use_hp && !impl.use_cas) {
    throw std::invalid_argument(
        "reclaim=hp requires the CAS publication path (cas=true)");
  }
  if (impl.use_hp && impl.reclaim_shards > 1) {
    throw std::invalid_argument(
        "shards>1 is an EBR-plane knob; hazard pointers already confine "
        "a stalled reader to the records it protects (drop shards= or "
        "use reclaim=ebr)");
  }
  if (versioned && impl.reclaim_shards > 1) {
    throw std::invalid_argument(
        "shards>1 is not supported on the versioned plane (batch "
        "descriptors and version stamps share one domain; use reclaim=hp "
        "for tail-latency isolation instead)");
  }
}

// Resolves the fig1 nested active-set spec ("as=name;k=v...") and the
// adaptive= forwarding, shared by the direct and blob planes.
std::unique_ptr<activeset::ActiveSet> fig1_active_set(const Options& options,
                                                     std::uint32_t n) {
  // Nested active-set options use ';' so they survive the outer comma
  // split: "fig1_register:as=faicas;coalesce=false".  The first ';' plays
  // the nested spec's ':' (name/options separator), the rest its commas.
  std::string as_spec = options.get_string("as", "");
  if (std::size_t semi = as_spec.find(';'); semi != std::string::npos) {
    as_spec[semi] = ':';
    std::replace(as_spec.begin() + semi, as_spec.end(), ';', ',');
  }
  if (as_spec.empty()) return nullptr;
  // The outer adaptive= choice reaches the injected active set too (its
  // collect is the dominant per-pid walk the option A/Bs); an explicit
  // nested adaptive= wins.  The nested check matches the exact option KEY
  // at an option boundary, so future options merely containing the word
  // stay inert.
  auto nested_sets_adaptive = [&as_spec] {
    std::size_t colon = as_spec.find(':');
    std::size_t pos = colon == std::string::npos ? as_spec.size() : colon + 1;
    while (pos < as_spec.size()) {
      std::size_t comma = as_spec.find(',', pos);
      std::size_t end = comma == std::string::npos ? as_spec.size() : comma;
      std::string_view item(as_spec.data() + pos, end - pos);
      if (item.substr(0, item.find('=')) == "adaptive") {
        return true;
      }
      pos = comma == std::string::npos ? as_spec.size() : comma + 1;
    }
    return false;
  };
  std::string adaptive = options.get_string("adaptive", "");
  if (!adaptive.empty() && !nested_sets_adaptive()) {
    as_spec += as_spec.find(':') == std::string::npos ? ':' : ',';
    as_spec += "adaptive=" + adaptive;
  }
  return make_active_set(as_spec, n);
}

// Plane-dispatching constructors shared by the base entries (default
// plane u64) and the canned *_blob entries (default plane blob).
std::unique_ptr<core::PartialSnapshot> make_fig1(std::uint32_t m,
                                                 std::uint32_t n,
                                                 const Options& options,
                                                 std::string_view def) {
  auto as = fig1_active_set(options, n);
  std::uint64_t initial = options.get_uint("initial", 0);
  exec::PidBound bound = pid_bound(options, n);
  if (blob_plane(options, def)) {
    return std::make_unique<core::RegisterPartialSnapshotBlob>(
        m, n, std::move(as), initial, bound);
  }
  return std::make_unique<core::RegisterPartialSnapshot>(m, n, std::move(as),
                                                         initial, bound);
}

std::unique_ptr<core::PartialSnapshot> make_fig3(
    std::uint32_t m, std::uint32_t n, const Options& options,
    std::string_view def, bool use_cas,
    std::string_view def_reclaim = "ebr") {
  core::CasPartialSnapshot::Options impl;
  impl.use_cas = use_cas;
  impl.active_set = faicas_options(options, n);
  impl.bound = impl.active_set.bound;
  apply_reclaim_options(impl, options, versioned_plane(options, def),
                        def_reclaim);
  std::uint64_t initial = options.get_uint("initial", 0);
  if (versioned_plane(options, def)) {
    return std::make_unique<core::CasPartialSnapshotVersioned>(m, n, impl,
                                                               initial);
  }
  if (blob_plane(options, def)) {
    return std::make_unique<core::CasPartialSnapshotBlob>(m, n, impl,
                                                          initial);
  }
  return std::make_unique<core::CasPartialSnapshot>(m, n, impl, initial);
}

std::unique_ptr<core::PartialSnapshot> make_full(std::uint32_t m,
                                                 std::uint32_t n,
                                                 const Options& options,
                                                 std::string_view def) {
  std::uint64_t initial = options.get_uint("initial", 0);
  exec::PidBound bound = pid_bound(options, n);
  if (versioned_plane(options, def)) {
    return std::make_unique<baseline::FullSnapshotVersioned>(m, n, initial,
                                                             bound);
  }
  if (blob_plane(options, def)) {
    return std::make_unique<baseline::FullSnapshotBlob>(m, n, initial,
                                                        bound);
  }
  return std::make_unique<baseline::FullSnapshot>(m, n, initial, bound);
}

// The scan-attempt cap of the starvation-prone baselines.  `max_attempts`
// is the service-facing spelling (the Checkpointer's graceful-degradation
// knob: a capped scan throws StarvationError and the Checkpointer backs
// off and retries); `cap` remains as the historical alias.  When both are
// given, max_attempts wins.
std::uint64_t scan_attempt_cap(const Options& options) {
  std::uint64_t cap = options.get_uint("cap", 0);
  return options.get_uint("max_attempts", cap);
}

std::unique_ptr<core::PartialSnapshot> make_seqlock(std::uint32_t m,
                                                    const Options& options,
                                                    std::string_view def) {
  std::uint64_t cap = scan_attempt_cap(options);
  std::uint64_t initial = options.get_uint("initial", 0);
  if (versioned_plane(options, def)) {
    return std::make_unique<baseline::SeqlockSnapshotVersioned>(m, cap,
                                                                initial);
  }
  if (blob_plane(options, def)) {
    return std::make_unique<baseline::SeqlockSnapshotBlob>(m, cap, initial);
  }
  return std::make_unique<baseline::SeqlockSnapshot>(m, cap, initial);
}

}  // namespace

void register_builtin_snapshots(SnapshotRegistry& registry) {
  registry.add(SnapshotInfo{
      .name = "fig1_register",
      .description =
          "Figure 1: wait-free partial snapshot from registers (Theorem 1)",
      .options_help = "as=<name[;k=v...]>,initial=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "u64,blob",
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_fig1(m, n, options, "u64");
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig1_register_fast",
      .description = "Figure 1 in the Release runtime: acquire/release "
                     "publication, no step accounting or sim hooks "
                     "(counts_steps=false; wall-clock benches only)",
      .options_help = "initial=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = false,
      .sim_safe = false,
      .values = "u64,blob",
      .make =
          [](std::uint32_t m, std::uint32_t n,
             const Options& options) -> std::unique_ptr<core::PartialSnapshot> {
            std::uint64_t initial = options.get_uint("initial", 0);
            exec::PidBound bound = pid_bound(options, n);
            if (blob_plane(options, "u64")) {
              return std::make_unique<core::RegisterPartialSnapshotBlobFast>(
                  m, n, nullptr, initial, bound);
            }
            return std::make_unique<core::RegisterPartialSnapshotFast>(
                m, n, nullptr, initial, bound);
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig1_register_blob",
      .description = "Figure 1 on the indirect value plane: byte payloads "
                     "embedded in the pooled records (sim-covered twin of "
                     "fig1_register:value=blob)",
      .options_help = "as=<name[;k=v...]>,initial=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "blob",
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_fig1(m, n, options, "blob");
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig3_cas",
      .description = "Figure 3: local partial scans from CAS + F&I "
                     "(Theorem 3, the paper's headline algorithm)",
      .options_help =
          "cas=<bool>,coalesce=<bool>,publish=<bool>,max_joins=<u64>,"
          "initial=<u64>,adaptive=<bool>,reclaim=<ebr|hp>,shards=<u32>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "u64,blob,versioned",
      .reclaims = "ebr,hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_fig3(m, n, options, "u64",
                             options.get_bool("cas", true));
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig3_cas_fast",
      .description = "Figure 3 in the Release runtime: acquire/release "
                     "publication, no step accounting or sim hooks "
                     "(counts_steps=false; wall-clock benches only)",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,initial=<u64>,"
          "adaptive=<bool>,reclaim=<ebr|hp>,shards=<u32>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = false,
      .sim_safe = false,
      .values = "u64,blob,versioned",
      .reclaims = "ebr,hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n,
             const Options& options) -> std::unique_ptr<core::PartialSnapshot> {
            core::CasPartialSnapshotFast::Options impl;
            impl.active_set = faicas_options(options, n);
            impl.bound = impl.active_set.bound;
            apply_reclaim_options(impl, options,
                                  versioned_plane(options, "u64"), "ebr");
            std::uint64_t initial = options.get_uint("initial", 0);
            if (versioned_plane(options, "u64")) {
              return std::make_unique<core::CasPartialSnapshotVersionedFast>(
                  m, n, impl, initial);
            }
            if (blob_plane(options, "u64")) {
              return std::make_unique<core::CasPartialSnapshotBlobFast>(
                  m, n, impl, initial);
            }
            return std::make_unique<core::CasPartialSnapshotFast>(m, n, impl,
                                                                  initial);
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig3_cas_blob",
      .description = "Figure 3 on the indirect value plane: byte payloads "
                     "embedded in the CAS'd records (sim-covered twin of "
                     "fig3_cas:value=blob)",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,initial=<u64>,"
          "adaptive=<bool>,reclaim=<ebr|hp>,shards=<u32>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "blob",
      .reclaims = "ebr,hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_fig3(m, n, options, "blob", /*use_cas=*/true);
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig3_cas_versioned",
      .description = "Figure 3 on the versioned read plane: scans walk "
                     "version chains under a camera epoch instead of "
                     "double-collecting (sim-covered twin of "
                     "fig3_cas:value=versioned)",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,initial=<u64>,"
          "adaptive=<bool>,reclaim=<ebr|hp>,shards=<u32>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "versioned",
      .reclaims = "ebr,hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_fig3(m, n, options, "versioned", /*use_cas=*/true);
          },
  });
  // Canned hazard-pointer twins: the same fig3 construction with
  // reclaim=hp as its default plane, registered first-class so every
  // registry-driven suite (DFS/random linearizability, validity, crash,
  // growth, churn, allocation, fuzz enumeration) exercises the hp
  // protocol automatically, with zero per-suite wiring.
  registry.add(SnapshotInfo{
      .name = "fig3_cas_hp",
      .description = "Figure 3 reclaiming through hazard pointers instead "
                     "of epochs: a parked scanner delays only the records "
                     "it protects (sim-covered twin of "
                     "fig3_cas:reclaim=hp)",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,initial=<u64>,"
          "adaptive=<bool>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "u64",
      .reclaims = "hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_fig3(m, n, options, "u64", /*use_cas=*/true, "hp");
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig3_cas_versioned_hp",
      .description = "the versioned read plane reclaiming through hazard "
                     "pointers: scans protect a depth-2 chain window and "
                     "restart past it, so this twin is lock-free, not "
                     "wait-free (twin of "
                     "fig3_cas_versioned:reclaim=hp)",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,initial=<u64>,"
          "adaptive=<bool>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "versioned",
      .reclaims = "hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_fig3(m, n, options, "versioned", /*use_cas=*/true,
                             "hp");
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig3_write_ablation",
      .description = "ABL-3: Figure 3 publishing updates with plain "
                     "overwrites instead of CAS (loses the 2r+1 bound)",
      .options_help = "initial=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "u64,blob",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            // No faicas options exposed here historically; keep the bound
            // wiring identical to before.
            core::CasPartialSnapshot::Options impl;
            impl.use_cas = false;
            impl.bound = pid_bound(options, n);
            impl.active_set.bound = impl.bound;
            std::uint64_t initial = options.get_uint("initial", 0);
            if (blob_plane(options, "u64")) {
              return std::unique_ptr<core::PartialSnapshot>(
                  std::make_unique<core::CasPartialSnapshotBlob>(m, n, impl,
                                                                 initial));
            }
            return std::unique_ptr<core::PartialSnapshot>(
                std::make_unique<core::CasPartialSnapshot>(m, n, impl,
                                                           initial));
          },
  });
  registry.add(SnapshotInfo{
      .name = "full_snapshot",
      .description = "complete-scan extraction baseline (Afek et al.): "
                     "every operation costs Omega(m)",
      .options_help = "initial=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .is_local = false,
      .counts_steps = true,
      .sim_safe = true,
      .values = "u64,blob,versioned",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_full(m, n, options, "u64");
          },
  });
  registry.add(SnapshotInfo{
      .name = "full_snapshot_blob",
      .description = "the complete-scan baseline on the indirect value "
                     "plane: every full view carries m byte payloads "
                     "(sim-covered twin of full_snapshot:value=blob)",
      .options_help = "initial=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .is_local = false,
      .counts_steps = true,
      .sim_safe = true,
      .values = "blob",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_full(m, n, options, "blob");
          },
  });
  registry.add(SnapshotInfo{
      .name = "full_snapshot_versioned",
      .description = "the complete-scan baseline rescued by the versioned "
                     "read plane: scans walk only the requested chains, "
                     "updates CAS-retry (lock-free; sim-covered twin of "
                     "full_snapshot:value=versioned)",
      .options_help = "initial=<u64>,adaptive=<bool>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "versioned",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return make_full(m, n, options, "versioned");
          },
  });
  registry.add(SnapshotInfo{
      .name = "double_collect",
      .description = "lock-free double collect, no helping: scans can "
                     "starve (max_attempts>0 throws StarvationError)",
      .options_help = "max_attempts=<u64>,cap=<u64>,initial=<u64>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "u64,blob",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n,
             const Options& options) -> std::unique_ptr<core::PartialSnapshot> {
            std::uint64_t cap = scan_attempt_cap(options);
            std::uint64_t initial = options.get_uint("initial", 0);
            if (blob_plane(options, "u64")) {
              return std::make_unique<baseline::DoubleCollectSnapshotBlob>(
                  m, n, cap, initial);
            }
            return std::make_unique<baseline::DoubleCollectSnapshot>(
                m, n, cap, initial);
          },
  });
  registry.add(SnapshotInfo{
      .name = "lock",
      .description = "global-mutex reference (blocking; performs no "
                     "base-object steps in the paper's model)",
      .options_help = "initial=<u64>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = false,
      .sim_safe = false,
      .values = "u64,blob",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t /*n*/,
             const Options& options) -> std::unique_ptr<core::PartialSnapshot> {
            std::uint64_t initial = options.get_uint("initial", 0);
            if (blob_plane(options, "u64")) {
              return std::make_unique<baseline::LockSnapshotBlob>(m, initial);
            }
            return std::make_unique<baseline::LockSnapshot>(m, initial);
          },
  });
  registry.add(SnapshotInfo{
      .name = "seqlock",
      .description = "global-seqlock reference: invisible readers, one "
                     "global conflict domain (max_attempts>0 throws "
                     "StarvationError)",
      .options_help = "max_attempts=<u64>,cap=<u64>,initial=<u64>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = false,
      .values = "u64,blob,versioned",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t /*n*/,
             const Options& options) -> std::unique_ptr<core::PartialSnapshot> {
            return make_seqlock(m, options, "u64");
          },
  });
  registry.add(SnapshotInfo{
      .name = "seqlock_versioned",
      .description = "the global seqlock on the versioned read plane: "
                     "writers still serialize, but scans walk version "
                     "chains and never retry (twin of "
                     "seqlock:value=versioned)",
      .options_help = "max_attempts=<u64>,cap=<u64>,initial=<u64>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = false,
      .values = "versioned",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t /*n*/,
             const Options& options) -> std::unique_ptr<core::PartialSnapshot> {
            return make_seqlock(m, options, "versioned");
          },
  });
  // Canned batch-routed twins (ingest/batch_routed.h): every singleton
  // update goes through the k=1 batch path, so the registry-driven suites
  // exercise the batch protocol -- descriptor install/resolve, shared
  // counters, pooled batch records -- on their existing workloads.
  registry.add(SnapshotInfo{
      .name = "fig3_cas_batch",
      .description = "Figure 3 with updates routed through the batch "
                     "entry points (sim-covered twin driving the shared "
                     "announcement/helping path at k=1)",
      .options_help =
          "cas=<bool>,coalesce=<bool>,publish=<bool>,max_joins=<u64>,"
          "initial=<u64>,adaptive=<bool>,reclaim=<ebr|hp>,shards=<u32>",
      .is_wait_free = true,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "u64,blob",
      .reclaims = "ebr,hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return std::make_unique<ingest::BatchRouted>(
                make_fig3(m, n, options, "u64",
                          options.get_bool("cas", true)),
                /*wait_free=*/true);
          },
  });
  registry.add(SnapshotInfo{
      .name = "fig3_cas_versioned_batch",
      .description = "Figure 3 on the versioned plane with batch-routed "
                     "updates: the descriptor install engine CAS-retries, "
                     "so this twin is lock-free, not wait-free",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,initial=<u64>,"
          "adaptive=<bool>,reclaim=<ebr|hp>,shards=<u32>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "versioned",
      .reclaims = "ebr,hp",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return std::make_unique<ingest::BatchRouted>(
                make_fig3(m, n, options, "versioned", /*use_cas=*/true),
                /*wait_free=*/false);
          },
  });
  registry.add(SnapshotInfo{
      .name = "full_snapshot_versioned_batch",
      .description = "the versioned complete-scan baseline with "
                     "batch-routed updates (lock-free descriptor engine "
                     "over the full-view records)",
      .options_help = "initial=<u64>,adaptive=<bool>",
      .is_wait_free = false,
      .is_local = true,
      .counts_steps = true,
      .sim_safe = true,
      .values = "versioned",
      .supports_batch = true,
      .make =
          [](std::uint32_t m, std::uint32_t n, const Options& options) {
            return std::make_unique<ingest::BatchRouted>(
                make_full(m, n, options, "versioned"),
                /*wait_free=*/false);
          },
  });
}

void register_builtin_active_sets(ActiveSetRegistry& registry) {
  registry.add(ActiveSetInfo{
      .name = "register",
      .description = "one flag register per process; O(1) join/leave, "
                     "O(live) watermark-bounded getSet (Figure 1's "
                     "substitution)",
      .options_help = "adaptive=<bool>",
      .is_wait_free = true,
      .counts_steps = true,
      .sim_safe = true,
      .make =
          [](std::uint32_t n, const Options& options) {
            return std::make_unique<activeset::RegisterActiveSet>(
                n, pid_bound(options, n));
          },
  });
  registry.add(ActiveSetInfo{
      .name = "register_fast",
      .description = "the register active set in the Release runtime (no "
                     "step accounting; wall-clock benches only)",
      .options_help = "adaptive=<bool>",
      .is_wait_free = true,
      .counts_steps = false,
      .sim_safe = false,
      .make =
          [](std::uint32_t n, const Options& options) {
            return std::make_unique<
                activeset::RegisterActiveSetT<primitives::Release>>(
                n, pid_bound(options, n));
          },
  });
  registry.add(ActiveSetInfo{
      .name = "bitmap",
      .description = "one membership bit per pid in padded words; O(1) "
                     "join/leave RMWs, O(live/64) getSet",
      .options_help = "adaptive=<bool>",
      .is_wait_free = true,
      .counts_steps = true,
      .sim_safe = true,
      .make =
          [](std::uint32_t n, const Options& options) {
            return std::make_unique<activeset::BitmapActiveSet>(
                n, pid_bound(options, n));
          },
  });
  registry.add(ActiveSetInfo{
      .name = "bitmap_fast",
      .description = "the bitmap active set in the Release runtime (no "
                     "step accounting; wall-clock benches only)",
      .options_help = "adaptive=<bool>",
      .is_wait_free = true,
      .counts_steps = false,
      .sim_safe = false,
      .make =
          [](std::uint32_t n, const Options& options) {
            return std::make_unique<
                activeset::BitmapActiveSetT<primitives::Release>>(
                n, pid_bound(options, n));
          },
  });
  registry.add(ActiveSetInfo{
      .name = "faicas",
      .description = "Figure 2: F&I slot allocation + CAS-published skip "
                     "list (Theorem 2)",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .counts_steps = true,
      .sim_safe = true,
      .make =
          [](std::uint32_t n, const Options& options) {
            return std::make_unique<activeset::FaiCasActiveSet>(
                n, faicas_options(options, n));
          },
  });
  registry.add(ActiveSetInfo{
      .name = "faicas_fast",
      .description = "Figure 2 in the Release runtime (no step accounting; "
                     "wall-clock benches only)",
      .options_help =
          "coalesce=<bool>,publish=<bool>,max_joins=<u64>,adaptive=<bool>",
      .is_wait_free = true,
      .counts_steps = false,
      .sim_safe = false,
      .make =
          [](std::uint32_t n, const Options& options) {
            return std::make_unique<
                activeset::FaiCasActiveSetT<primitives::Release>>(
                n, faicas_options(options, n));
          },
  });
  registry.add(ActiveSetInfo{
      .name = "faicas_nocoalesce",
      .description = "ABL-1: Figure 2 without interval coalescing "
                     "(published list grows with vacated runs)",
      .options_help = "",
      .is_wait_free = true,
      .counts_steps = true,
      .sim_safe = true,
      .make =
          [](std::uint32_t n, const Options& /*options*/) {
            activeset::FaiCasActiveSet::Options impl;
            impl.coalesce = false;
            return std::make_unique<activeset::FaiCasActiveSet>(n, impl);
          },
  });
  registry.add(ActiveSetInfo{
      .name = "faicas_nopublish",
      .description = "ABL-1: Figure 2 without the published skip list "
                     "(getSet cost grows with total joins)",
      .options_help = "",
      .is_wait_free = true,
      .counts_steps = true,
      .sim_safe = true,
      .make =
          [](std::uint32_t n, const Options& /*options*/) {
            activeset::FaiCasActiveSet::Options impl;
            impl.publish_skip_list = false;
            return std::make_unique<activeset::FaiCasActiveSet>(n, impl);
          },
  });
  registry.add(ActiveSetInfo{
      .name = "lock",
      .description = "mutex-based oracle (trivially correct; blocking)",
      .options_help = "",
      .is_wait_free = false,
      .counts_steps = false,
      .sim_safe = false,
      .make =
          [](std::uint32_t n, const Options& /*options*/) {
            return std::make_unique<activeset::LockActiveSet>(n);
          },
  });
}

}  // namespace psnap::registry
