// Offline auditor for JSONL execution traces (runtime/trace.h).
//
//   build/tools/trace_audit <trace.jsonl> [more.jsonl ...]
//
// Parses each artifact and replays the audit checks: per-pid epoch
// regressions, torn batches (begin/end pairing and entry counts),
// grow-block watermark violations, and index bounds.  Exit 0 when every
// file audits clean, 1 on any violation, 2 on unreadable/malformed input.
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "runtime/trace.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_audit <trace.jsonl> [...]\n");
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "trace_audit: cannot open %s\n", argv[i]);
      return 2;
    }
    try {
      psnap::runtime::TraceArtifact artifact =
          psnap::runtime::parse_jsonl(in);
      psnap::runtime::TraceAuditReport report =
          psnap::runtime::audit_trace(artifact);
      std::printf("%s: impl=%s events=%llu emitted=%llu %s\n", argv[i],
                  artifact.impl.c_str(),
                  static_cast<unsigned long long>(report.events_checked),
                  static_cast<unsigned long long>(artifact.emitted),
                  report.ok ? "OK" : "VIOLATIONS");
      for (const std::string& v : report.violations) {
        std::printf("  %s\n", v.c_str());
        all_ok = false;
      }
      if (!report.ok) all_ok = false;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace_audit: %s: %s\n", argv[i], e.what());
      return 2;
    }
  }
  return all_ok ? 0 : 1;
}
