// Fuzzed linearizability harness, CLI front-end (verify/fuzz/).
//
//   build/tools/fuzz_psnap [--budget-ms=N] [--iters=N] [--base-seed=N]
//                          [--impls=<substring>|help] [--mutants]
//                          [--max-failures=N] [--no-shrink] [--no-corpus]
//                          [--artifacts=<dir>] [--replay=<token>] [--list]
//
// Default mode runs a fuzz campaign over EVERY registry-enumerated
// sim-safe implementation x value plane x ingest-knob combination plus
// every sim-safe active set, with the pinned regression corpus replayed
// first.  Failing cases print a one-line repro token and the shrunk
// minimal counterexample; --replay=<token> re-runs one token
// deterministically (same shrink, same minimal counterexample).
//
//   --budget-ms=0   one sweep of --iters cases per target (the default);
//                   otherwise sweeps repeat until the budget elapses.
//   --impls=foo     only targets whose spec contains "foo".
//   --impls=help    print the catalogues (sorted; diffable) and exit.
//   --mutants       also register the deliberately broken implementations
//                   from psnap_experimental and fuzz ONLY them: exits 1
//                   unless every mutant is detected (the CI gate inverts
//                   the usual success condition).
//   --artifacts=D   write one <token-hash>.txt per failure (token, plan,
//                   schedule script, diagnosis, history) into D.
//
// Exit codes: 0 clean (or every mutant detected under --mutants), 1
// failures found (or a mutant escaped), 2 usage/setup error.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "experimental/mutants.h"
#include "registry/registry.h"
#include "verify/fuzz/corpus.h"
#include "verify/fuzz/fuzzer.h"

namespace {

using namespace psnap;
using verify::fuzz::CampaignOptions;
using verify::fuzz::CampaignStats;
using verify::fuzz::FailingCase;
using verify::fuzz::FuzzTarget;

struct Args {
  double budget_ms = 0;
  std::uint32_t iters = 20;
  std::uint64_t base_seed = 1;
  std::string impls;
  bool mutants = false;
  std::uint32_t max_failures = 0;
  bool shrink = true;
  bool corpus = true;
  std::string artifacts;
  std::string replay;
  bool list = false;
  bool help = false;
};

bool consume(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (consume(arg, "--budget-ms", &value)) {
      args.budget_ms = std::stod(value);
    } else if (consume(arg, "--iters", &value)) {
      args.iters = static_cast<std::uint32_t>(std::stoul(value));
    } else if (consume(arg, "--base-seed", &value)) {
      args.base_seed = std::stoull(value);
    } else if (consume(arg, "--impls", &value)) {
      args.impls = value;
    } else if (consume(arg, "--max-failures", &value)) {
      args.max_failures = static_cast<std::uint32_t>(std::stoul(value));
    } else if (consume(arg, "--artifacts", &value)) {
      args.artifacts = value;
    } else if (consume(arg, "--replay", &value)) {
      args.replay = value;
    } else if (arg == "--mutants") {
      args.mutants = true;
    } else if (arg == "--no-shrink") {
      args.shrink = false;
    } else if (arg == "--no-corpus") {
      args.corpus = false;
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg == "--help" || arg == "-h") {
      args.help = true;
    } else {
      throw std::invalid_argument("unknown argument '" + arg + "'");
    }
  }
  return args;
}

void write_artifact(const std::string& dir, const FailingCase& failing) {
  std::filesystem::create_directories(dir);
  // File name from the token's FNV hash: stable across replays, safe for
  // any registry spec characters.
  std::uint64_t h = 1469598103934665603ull;
  for (char c : failing.token) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.txt",
                static_cast<unsigned long long>(h));
  std::ofstream out(std::filesystem::path(dir) / name);
  out << failing.minimal_summary() << "\nminimal history:\n"
      << failing.minimal_history << "\noriginal diagnosis: "
      << failing.diagnosis << "\n";
}

int run(const Args& args) {
  if (args.impls == "help") {
    std::printf("snapshot implementations:\n%s\nactive sets:\n%s",
                registry::snapshot_catalogue().c_str(),
                registry::active_set_catalogue().c_str());
    return 0;
  }
  if (args.mutants) {
    experimental::register_mutant_snapshots(
        registry::SnapshotRegistry::instance());
  }

  if (!args.replay.empty()) {
    FailingCase failing;
    if (!verify::fuzz::replay_token(args.replay, &failing)) {
      std::printf("token replays CLEAN (no failure)\n");
      return 0;
    }
    std::printf("token reproduces a failure\n%s\nminimal history:\n%s\n",
                failing.minimal_summary().c_str(),
                failing.minimal_history.c_str());
    if (!args.artifacts.empty()) write_artifact(args.artifacts, failing);
    return 1;
  }

  std::vector<FuzzTarget> targets;
  for (FuzzTarget& target : verify::fuzz::enumerate_targets()) {
    if (args.mutants &&
        target.spec.rfind("mut_", 0) != 0) {
      continue;
    }
    if (!args.impls.empty() &&
        target.spec.find(args.impls) == std::string::npos) {
      continue;
    }
    targets.push_back(std::move(target));
  }
  if (args.list) {
    for (const FuzzTarget& target : targets) {
      std::printf("%s\n", target.display().c_str());
    }
    return 0;
  }
  if (targets.empty()) {
    std::fprintf(stderr, "no fuzz targets match\n");
    return 2;
  }

  CampaignOptions options;
  options.base_seed = args.base_seed;
  options.iters_per_target = args.iters;
  options.budget_seconds = args.budget_ms / 1000.0;
  options.max_failures = args.max_failures;
  options.shrink = args.shrink;
  if (args.corpus && !args.mutants) {
    options.pinned_tokens = verify::fuzz::pinned_corpus();
  }

  std::uint64_t reported = 0;
  std::set<std::string> failing_specs;
  CampaignStats stats = verify::fuzz::run_campaign(
      targets, options, [&](const FailingCase& failing) {
        ++reported;
        failing_specs.insert(failing.spec.target.spec);
        std::printf("FAILURE %llu\n%s\n",
                    static_cast<unsigned long long>(reported),
                    failing.minimal_summary().c_str());
        if (!args.artifacts.empty()) write_artifact(args.artifacts, failing);
      });
  std::printf(
      "targets=%zu cases=%llu failures=%llu inconclusive=%llu\n",
      targets.size(), static_cast<unsigned long long>(stats.cases_run),
      static_cast<unsigned long long>(stats.failures),
      static_cast<unsigned long long>(stats.inconclusive));
  if (args.mutants) {
    // Inverted gate: success means every seeded bug was caught.  A mutant
    // counts as detected when any of its targets (one per knob combo)
    // produced a failure.
    std::set<std::string> mutant_names;
    for (const FuzzTarget& target : targets) {
      mutant_names.insert(target.spec.substr(0, target.spec.find(':')));
    }
    bool all_detected = true;
    for (const std::string& name : mutant_names) {
      bool detected = false;
      for (const std::string& spec : failing_specs) {
        if (spec.substr(0, spec.find(':')) == name) detected = true;
      }
      std::printf("mutant %s: %s\n", name.c_str(),
                  detected ? "DETECTED" : "ESCAPED");
      if (!detected) all_detected = false;
    }
    return all_detected ? 0 : 1;
  }
  return stats.failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Args args = parse_args(argc, argv);
    if (args.help) {
      std::printf(
          "usage: fuzz_psnap [--budget-ms=N] [--iters=N] [--base-seed=N]\n"
          "                  [--impls=<substring>|help] [--mutants]\n"
          "                  [--max-failures=N] [--no-shrink] [--no-corpus]\n"
          "                  [--artifacts=<dir>] [--replay=<token>] "
          "[--list]\n");
      return 0;
    }
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_psnap: %s\n", e.what());
    return 2;
  }
}
