// The coalescing ingest front-end (ingest/coalescer.h): flush thresholds,
// last-wins merging inside the window, visibility, and stats.
#include "ingest/coalescer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"

namespace psnap::ingest {
namespace {

std::unique_ptr<core::PartialSnapshot> make_snap(std::uint32_t m = 8) {
  return registry::make_snapshot("fig3_cas", m, 2);
}

Coalescer::Options opts(std::uint32_t batch, std::uint32_t window) {
  Coalescer::Options options;
  options.batch = batch;
  options.coalesce_window = window;
  return options;
}

TEST(Coalescer, FlushesWhenTheBatchThresholdFills) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, opts(3, 0));

  ingest.write(0, 10);
  ingest.write(1, 11);
  EXPECT_EQ(ingest.pending(), 2u);
  // Buffered writes are invisible until the flush.
  EXPECT_EQ(snap->scan({0, 1, 2}), (std::vector<std::uint64_t>{0, 0, 0}));

  ingest.write(2, 12);  // third distinct component: flush
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({0, 1, 2}), (std::vector<std::uint64_t>{10, 11, 12}));
  EXPECT_EQ(ingest.stats().flushes, 1u);
  EXPECT_EQ(ingest.stats().flushed_entries, 3u);
}

TEST(Coalescer, MergesSameComponentWritesInsideTheWindow) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, opts(8, 4));

  // Three raw writes to one component collapse to one pending entry...
  ingest.write(5, 1);
  ingest.write(5, 2);
  ingest.write(5, 3);
  EXPECT_EQ(ingest.pending(), 1u);
  EXPECT_EQ(ingest.stats().merged, 2u);
  // ...and the fourth raw write exhausts the window, flushing two entries
  // (the newest value per component) well before `batch` filled.
  ingest.write(6, 4);
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({5, 6}), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ingest.stats().writes, 4u);
  EXPECT_EQ(ingest.stats().flushed_entries, 2u);
}

TEST(Coalescer, WindowZeroDisablesMerging) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, opts(2, 0));

  // Without a window, repeat writes are distinct entries; the snapshot's
  // own last-wins coalescing still publishes only the newest value.
  ingest.write(3, 7);
  ingest.write(3, 8);
  EXPECT_EQ(ingest.stats().merged, 0u);
  EXPECT_EQ(ingest.stats().flushes, 1u);
  EXPECT_EQ(snap->scan({3}), (std::vector<std::uint64_t>{8}));
}

TEST(Coalescer, BatchOneIsTheSingletonPath) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, opts(1, 0));
  for (std::uint32_t i = 0; i < 4; ++i) ingest.write(i, 100 + i);
  EXPECT_EQ(ingest.stats().flushes, 4u);
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({0, 1, 2, 3}),
            (std::vector<std::uint64_t>{100, 101, 102, 103}));
}

TEST(Coalescer, ExplicitAndDestructorFlushPublishTheTail) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  {
    Coalescer ingest(*snap, opts(16, 0));
    ingest.write(0, 1);
    ingest.write(1, 2);
    ingest.flush();
    EXPECT_EQ(snap->scan({0, 1}), (std::vector<std::uint64_t>{1, 2}));
    ingest.write(2, 3);
    // Destructor flushes the tail batch.
  }
  EXPECT_EQ(snap->scan({2}), (std::vector<std::uint64_t>{3}));
}

TEST(Coalescer, DeadlineFlushesStaleWritesOnTheNextWrite) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  std::uint64_t fake_now = 1000;
  Coalescer ingest(*snap, {.batch = 8,
                           .coalesce_window = 0,
                           .coalesce_window_us = 50,
                           .now_us = [&] { return fake_now; }});

  ingest.write(0, 10);  // window opens at t=1000
  fake_now = 1040;
  ingest.write(1, 11);  // 40us elapsed: still inside the window
  EXPECT_EQ(ingest.pending(), 2u);
  fake_now = 1050;
  ingest.write(2, 12);  // 50us: the oldest pending write hit the deadline
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({0, 1, 2}), (std::vector<std::uint64_t>{10, 11, 12}));
  EXPECT_EQ(ingest.stats().flushes, 1u);
}

TEST(Coalescer, PollFlushesATailTheStreamNeverFollowsUp) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  std::uint64_t fake_now = 0;
  Coalescer ingest(*snap, {.batch = 8,
                           .coalesce_window = 0,
                           .coalesce_window_us = 100,
                           .now_us = [&] { return fake_now; }});

  ingest.write(4, 44);
  EXPECT_FALSE(ingest.poll());  // deadline not reached
  EXPECT_EQ(ingest.pending(), 1u);
  fake_now = 99;
  EXPECT_FALSE(ingest.poll());
  fake_now = 100;
  EXPECT_TRUE(ingest.poll());
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({4}), (std::vector<std::uint64_t>{44}));
  // An empty batch never expires, no matter how far the clock advances.
  fake_now = 1u << 20;
  EXPECT_FALSE(ingest.poll());
}

TEST(Coalescer, DeadlineTracksTheOldestPendingWrite) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  std::uint64_t fake_now = 0;
  Coalescer ingest(*snap, {.batch = 8,
                           .coalesce_window = 4,
                           .coalesce_window_us = 100,
                           .now_us = [&] { return fake_now; }});

  ingest.write(0, 1);  // window opens at t=0
  fake_now = 90;
  ingest.write(0, 2);  // merges; the window does NOT restart
  EXPECT_EQ(ingest.pending(), 1u);
  fake_now = 100;
  EXPECT_TRUE(ingest.poll());  // 100us since the FIRST write to component 0
  EXPECT_EQ(snap->scan({0}), (std::vector<std::uint64_t>{2}));

  // After a flush the next write opens a fresh window.
  ingest.write(1, 3);  // t=100
  fake_now = 199;
  EXPECT_FALSE(ingest.poll());
  fake_now = 200;
  EXPECT_TRUE(ingest.poll());
  EXPECT_EQ(snap->scan({1}), (std::vector<std::uint64_t>{3}));
}

TEST(Coalescer, RegistryParsesTheMicrosecondWindowKnob) {
  exec::ScopedPid pid(0);
  registry::IngestKnobs knobs;
  auto snap = registry::make_snapshot(
      "fig3_cas:batch=4,coalesce_window_us=250", 8, 2, &knobs);
  EXPECT_EQ(knobs.batch, 4u);
  EXPECT_EQ(knobs.coalesce_window_us, 250u);
  EXPECT_TRUE(knobs.batching_requested());
  // The knob counts as a batching request, so entry points that cannot
  // batch must reject it rather than silently running singleton.
  EXPECT_THROW(registry::make_snapshot("fig3_cas:coalesce_window_us=250", 8,
                                       2, nullptr),
               std::invalid_argument);
  // And batch-incapable implementations reject it with the catalogue.
  EXPECT_THROW(registry::make_snapshot("fig1_register:coalesce_window_us=250",
                                       8, 2, &knobs),
               std::invalid_argument);
}

TEST(Coalescer, RegistryKnobsDriveTheFrontEnd) {
  // The universal spec options land in IngestKnobs, which map 1:1 onto
  // the Coalescer's options -- the CLI-to-ingest path benches use.
  exec::ScopedPid pid(0);
  registry::IngestKnobs knobs;
  auto snap =
      registry::make_snapshot("fig3_cas:batch=2,coalesce_window=8", 8, 2,
                              &knobs);
  Coalescer ingest(*snap, opts(knobs.batch, knobs.coalesce_window));
  ingest.write(0, 5);
  ingest.write(0, 6);  // merged, still one pending entry
  EXPECT_EQ(ingest.pending(), 1u);
  ingest.write(1, 7);  // second distinct component: flush
  EXPECT_EQ(snap->scan({0, 1}), (std::vector<std::uint64_t>{6, 7}));
}

}  // namespace
}  // namespace psnap::ingest
