// The coalescing ingest front-end (ingest/coalescer.h): flush thresholds,
// last-wins merging inside the window, visibility, and stats.
#include "ingest/coalescer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"

namespace psnap::ingest {
namespace {

std::unique_ptr<core::PartialSnapshot> make_snap(std::uint32_t m = 8) {
  return registry::make_snapshot("fig3_cas", m, 2);
}

TEST(Coalescer, FlushesWhenTheBatchThresholdFills) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, {.batch = 3, .coalesce_window = 0});

  ingest.write(0, 10);
  ingest.write(1, 11);
  EXPECT_EQ(ingest.pending(), 2u);
  // Buffered writes are invisible until the flush.
  EXPECT_EQ(snap->scan({0, 1, 2}), (std::vector<std::uint64_t>{0, 0, 0}));

  ingest.write(2, 12);  // third distinct component: flush
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({0, 1, 2}), (std::vector<std::uint64_t>{10, 11, 12}));
  EXPECT_EQ(ingest.stats().flushes, 1u);
  EXPECT_EQ(ingest.stats().flushed_entries, 3u);
}

TEST(Coalescer, MergesSameComponentWritesInsideTheWindow) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, {.batch = 8, .coalesce_window = 4});

  // Three raw writes to one component collapse to one pending entry...
  ingest.write(5, 1);
  ingest.write(5, 2);
  ingest.write(5, 3);
  EXPECT_EQ(ingest.pending(), 1u);
  EXPECT_EQ(ingest.stats().merged, 2u);
  // ...and the fourth raw write exhausts the window, flushing two entries
  // (the newest value per component) well before `batch` filled.
  ingest.write(6, 4);
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({5, 6}), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ingest.stats().writes, 4u);
  EXPECT_EQ(ingest.stats().flushed_entries, 2u);
}

TEST(Coalescer, WindowZeroDisablesMerging) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, {.batch = 2, .coalesce_window = 0});

  // Without a window, repeat writes are distinct entries; the snapshot's
  // own last-wins coalescing still publishes only the newest value.
  ingest.write(3, 7);
  ingest.write(3, 8);
  EXPECT_EQ(ingest.stats().merged, 0u);
  EXPECT_EQ(ingest.stats().flushes, 1u);
  EXPECT_EQ(snap->scan({3}), (std::vector<std::uint64_t>{8}));
}

TEST(Coalescer, BatchOneIsTheSingletonPath) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  Coalescer ingest(*snap, {.batch = 1, .coalesce_window = 0});
  for (std::uint32_t i = 0; i < 4; ++i) ingest.write(i, 100 + i);
  EXPECT_EQ(ingest.stats().flushes, 4u);
  EXPECT_EQ(ingest.pending(), 0u);
  EXPECT_EQ(snap->scan({0, 1, 2, 3}),
            (std::vector<std::uint64_t>{100, 101, 102, 103}));
}

TEST(Coalescer, ExplicitAndDestructorFlushPublishTheTail) {
  exec::ScopedPid pid(0);
  auto snap = make_snap();
  {
    Coalescer ingest(*snap, {.batch = 16, .coalesce_window = 0});
    ingest.write(0, 1);
    ingest.write(1, 2);
    ingest.flush();
    EXPECT_EQ(snap->scan({0, 1}), (std::vector<std::uint64_t>{1, 2}));
    ingest.write(2, 3);
    // Destructor flushes the tail batch.
  }
  EXPECT_EQ(snap->scan({2}), (std::vector<std::uint64_t>{3}));
}

TEST(Coalescer, RegistryKnobsDriveTheFrontEnd) {
  // The universal spec options land in IngestKnobs, which map 1:1 onto
  // the Coalescer's options -- the CLI-to-ingest path benches use.
  exec::ScopedPid pid(0);
  registry::IngestKnobs knobs;
  auto snap =
      registry::make_snapshot("fig3_cas:batch=2,coalesce_window=8", 8, 2,
                              &knobs);
  Coalescer ingest(*snap,
                   {.batch = knobs.batch,
                    .coalesce_window = knobs.coalesce_window});
  ingest.write(0, 5);
  ingest.write(0, 6);  // merged, still one pending entry
  EXPECT_EQ(ingest.pending(), 1u);
  ingest.write(1, 7);  // second distinct component: flush
  EXPECT_EQ(snap->scan({0, 1}), (std::vector<std::uint64_t>{6, 7}));
}

}  // namespace
}  // namespace psnap::ingest
