// Batched updates must amortize, not just aggregate: one announcement,
// one helping round, and ZERO steady-state heap allocations per batch.
//
// Three oracles pin the tentpole's cost model down:
//
//   * allocation: after warm-up, an update_batch of k entries performs no
//     heap allocations on any plane -- records and batch descriptors come
//     from the reclaim::Pool free lists, the duplicate-merge scratch from
//     the ScanContext arena, and retired nodes recycle;
//   * helping round: on the collect planes the batch performs exactly ONE
//     embedded scan (OpStats::collects equals a singleton update's),
//     where k singletons would perform k;
//   * steps: with a scanner parked (helping live), a k=16 batch costs
//     less than half the base-object steps of 16 singleton updates --
//     the announcement/getSet/embedded-scan cost amortizes, only the k
//     publishes scale.
//
// Own binary: replaces global operator new/delete with the counting
// versions (tests/support/counting_allocator.h).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/full_snapshot.h"
#include "core/cas_psnap.h"
#include "core/op_stats.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/counting_allocator.h"
#include "tests/support/registry_params.h"

namespace psnap::ingest {
namespace {

using core::tls_op_stats;
using test::g_allocations;

constexpr std::uint32_t kM = 64;
constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kK = 8;  // batch width for the allocation oracle

std::vector<core::BatchEntry> make_batch(std::uint32_t k, int round) {
  std::vector<core::BatchEntry> entries;
  entries.reserve(k);
  for (std::uint32_t j = 0; j < k; ++j) {
    entries.push_back({(static_cast<std::uint32_t>(round) + j * 7) % kM,
                       4000 + static_cast<std::uint64_t>(round) + j});
  }
  return entries;
}

// Past every warm-up watermark: pool fill (records AND batch
// descriptors), EBR retired-list capacity, ScanContext scratch, view
// capacity -- via singletons, batches, and scans.
void warm_up(core::PartialSnapshot& snap) {
  std::vector<std::uint64_t> out;
  const std::vector<std::uint32_t> idx{3, 9, 17, 40};
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < kM; ++i) snap.update(i, 1000 + i);
    snap.scan(idx, out);
  }
  for (int round = 0; round < 256; ++round) {
    auto entries = make_batch(kK, round);
    snap.update_batch(
        std::span<const core::BatchEntry>(entries.data(), entries.size()));
  }
}

// Every batch-capable implementation except the double-collect baseline,
// which deliberately heap-allocates its plain records on every update
// (it predates pooling and stays that way as the unpooled contrast).
std::vector<const registry::SnapshotInfo*> pooled_batch_impls() {
  return test::snapshot_impls([](const registry::SnapshotInfo& info) {
    return info.supports_batch && info.name != "double_collect";
  });
}

class BatchAllocTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(BatchAllocTest, SteadyStateBatchesAreAllocationFree) {
  exec::ScopedPid pid(0);
  auto snap = test::make_snapshot(*GetParam(), kM, kN);
  warm_up(*snap);
  // Pre-built entry spans: the measurement covers the snapshot, not the
  // harness's argument vectors.
  std::vector<std::vector<core::BatchEntry>> batches;
  for (int round = 0; round < 256; ++round) {
    batches.push_back(make_batch(kK, round));
  }
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (const auto& entries : batches) {
    snap->update_batch(
        std::span<const core::BatchEntry>(entries.data(), entries.size()));
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
      << GetParam()->name;
  // The batches still publish real data.
  const core::BatchEntry last = batches.back().back();
  EXPECT_EQ(snap->scan({last.index}),
            (std::vector<std::uint64_t>{last.value}));
}

INSTANTIATE_TEST_SUITE_P(PooledBatchImpls, BatchAllocTest,
                         ::testing::ValuesIn(pooled_batch_impls()),
                         test::snapshot_param_name);

// The helping path: with a scanner announced and parked in the active
// set, every batch's getSet returns it and the embedded scan runs over
// the announced set -- and the whole machinery must still be
// allocation-free, once per batch.
template <class Snap>
void run_helping_batch_test(Snap& snap) {
  {
    exec::ScopedPid scanner(1);
    std::vector<std::uint64_t> out;
    snap.scan(std::vector<std::uint32_t>{3, 9, 17, 40}, out);
    snap.active_set().join();
  }
  {
    exec::ScopedPid updater(0);
    warm_up(snap);
    std::vector<std::vector<core::BatchEntry>> batches;
    for (int round = 0; round < 128; ++round) {
      batches.push_back(make_batch(kK, round));
    }
    std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (const auto& entries : batches) {
      snap.update_batch(
          std::span<const core::BatchEntry>(entries.data(), entries.size()));
    }
    EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
    EXPECT_GT(tls_op_stats().getset_size, 0u)
        << "helping path was not exercised";
    EXPECT_EQ(tls_op_stats().batch_size, kK);
  }
  {
    exec::ScopedPid scanner(1);
    snap.active_set().leave();
  }
}

TEST(BatchAllocHelpingTest, CasSnapshotHelpingBatchesAreAllocationFree) {
  core::CasPartialSnapshot snap(kM, kN);
  run_helping_batch_test(snap);
}

TEST(BatchAllocHelpingTest, CasSnapshotFastHelpingBatchesAreAllocationFree) {
  core::CasPartialSnapshotFast snap(kM, kN);
  run_helping_batch_test(snap);
}

// ---------------------------------------------------------------------------
// Amortization: one helping round, sublinear steps.
// ---------------------------------------------------------------------------

std::vector<core::BatchEntry> distinct_batch(std::uint32_t k) {
  std::vector<core::BatchEntry> entries;
  for (std::uint32_t j = 0; j < k; ++j) entries.push_back({j, 7000 + j});
  return entries;
}

// Figure 3 with a parked scanner: 16 singleton updates perform 16
// getSet + embedded-scan rounds; one 16-entry batch performs ONE.  The
// batch must cost less than half the steps.
TEST(BatchAmortization, Fig3BatchHalvesStepsUnderHelping) {
  core::CasPartialSnapshot snap(kM, kN);
  {
    exec::ScopedPid scanner(1);
    std::vector<std::uint64_t> out;
    snap.scan(std::vector<std::uint32_t>{3, 9, 17, 40}, out);
    snap.active_set().join();
  }
  {
    exec::ScopedPid updater(0);
    warm_up(snap);
    auto entries = distinct_batch(16);

    std::uint64_t t0 = exec::ctx().steps.total;
    for (const core::BatchEntry& e : entries) snap.update(e.index, e.value);
    std::uint64_t singleton_steps = exec::ctx().steps.total - t0;
    std::uint64_t single_collects = tls_op_stats().collects;
    ASSERT_GT(tls_op_stats().getset_size, 0u);

    std::uint64_t t1 = exec::ctx().steps.total;
    snap.update_batch(
        std::span<const core::BatchEntry>(entries.data(), entries.size()));
    std::uint64_t batch_steps = exec::ctx().steps.total - t1;

    EXPECT_LT(batch_steps * 2, singleton_steps)
        << "batch=" << batch_steps << " singletons=" << singleton_steps;
    // One helping round: the batch's embedded scan collected no more than
    // the last singleton's did.
    EXPECT_LE(tls_op_stats().collects, single_collects);
    EXPECT_EQ(tls_op_stats().batch_size, 16u);
  }
  exec::ScopedPid scanner(1);
  snap.active_set().leave();
}

// The complete-scan baseline: a singleton update pays a full Theta(m)
// embedded scan; a k-entry batch pays exactly one.
TEST(BatchAmortization, FullSnapshotBatchRunsOneEmbeddedScan) {
  baseline::FullSnapshot snap(kM, kN);
  exec::ScopedPid pid(0);
  warm_up(snap);

  snap.update(0, 1);
  std::uint64_t single_collects = tls_op_stats().collects;
  ASSERT_GT(single_collects, 0u);

  auto entries = distinct_batch(16);
  std::uint64_t t0 = exec::ctx().steps.total;
  for (const core::BatchEntry& e : entries) snap.update(e.index, e.value);
  std::uint64_t singleton_steps = exec::ctx().steps.total - t0;

  std::uint64_t t1 = exec::ctx().steps.total;
  snap.update_batch(
      std::span<const core::BatchEntry>(entries.data(), entries.size()));
  std::uint64_t batch_steps = exec::ctx().steps.total - t1;

  // Exactly one embedded scan's worth of collecting for the whole batch.
  EXPECT_EQ(tls_op_stats().collects, single_collects);
  EXPECT_LT(batch_steps * 2, singleton_steps)
      << "batch=" << batch_steps << " singletons=" << singleton_steps;
}

// Versioned plane: the batch resolves ONE shared stamp for all members
// (stats.epoch reports it), and stays allocation-free -- descriptors are
// pooled like records.
TEST(BatchAmortization, VersionedBatchSharesOneStamp) {
  exec::ScopedPid pid(0);
  auto snap = registry::make_snapshot("fig3_cas_versioned", kM, kN);
  warm_up(*snap);

  auto entries = distinct_batch(16);
  snap->update_batch(
      std::span<const core::BatchEntry>(entries.data(), entries.size()));
  std::uint64_t stamp = tls_op_stats().epoch;
  EXPECT_GT(stamp, 0u);
  EXPECT_EQ(tls_op_stats().batch_size, 16u);

  // A scan at an epoch at or past the stamp sees the WHOLE batch (the
  // all-or-nothing face of the shared stamp).
  std::vector<std::uint64_t> out;
  std::vector<std::uint32_t> idx;
  for (const core::BatchEntry& e : entries) idx.push_back(e.index);
  std::uint64_t epoch = snap->scan_versioned(idx, out);
  EXPECT_GE(epoch, stamp);
  for (std::uint32_t j = 0; j < 16; ++j) {
    EXPECT_EQ(out[j], entries[j].value);
  }
}

}  // namespace
}  // namespace psnap::ingest
