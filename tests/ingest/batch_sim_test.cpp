// Batched updates: semantics, atomicity tier, and crash safety.
//
// update_batch applies k component writes as one protocol instance
// (core/partial_snapshot.h).  What a concurrent scan may observe is the
// implementation's batch_atomicity() tier, and this suite is the oracle:
//
//   * kAtomic     -- no schedule may show a scan SOME of a batch's writes
//                    without the others (a "torn batch");
//   * kAmortized  -- entries linearize individually in argument order, so
//                    a scan may see a prefix of a batch, but never a value
//                    that was not written.
//
// The writer publishes batches that set every probed component to the
// same value, so a torn batch is directly visible as a mixed-value scan.
// Crash sweeps halt a writer at every step of its update_batch: survivors
// must complete (helpers finish or ignore the orphaned batch), the
// atomicity tier must still hold, and destruction must free the orphaned
// descriptor and its never-installed records (the ASan job proves the
// sweep leak-free).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/op_stats.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "runtime/explore.h"
#include "runtime/sim_scheduler.h"
#include "tests/support/registry_params.h"

namespace psnap::ingest {
namespace {

using core::BatchAtomicity;
using runtime::ExploreOptions;
using runtime::SimScheduler;

std::vector<const registry::SnapshotInfo*> sim_batch_impls() {
  return test::snapshot_impls([](const registry::SnapshotInfo& info) {
    return info.sim_safe && info.supports_batch;
  });
}

std::vector<const registry::SnapshotInfo*> all_batch_impls() {
  return test::snapshot_impls([](const registry::SnapshotInfo& info) {
    return info.supports_batch;
  });
}

// ---------------------------------------------------------------------------
// Sequential contract (every batch-capable implementation, including the
// non-sim-safe lock/seqlock baselines).
// ---------------------------------------------------------------------------

class BatchContractTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(BatchContractTest, BatchWritesLandAndEmptyBatchIsNoOp) {
  exec::ScopedPid pid(0);
  auto snap = test::make_snapshot(*GetParam(), 4, 2);
  ASSERT_NE(snap->batch_atomicity(), BatchAtomicity::kUnsupported);
  snap->update_batch({{0, 10}, {2, 30}, {3, 40}});
  EXPECT_EQ(snap->scan({0, 1, 2, 3}),
            (std::vector<std::uint64_t>{10, 0, 30, 40}));
  snap->update_batch(std::span<const core::BatchEntry>{});
  EXPECT_EQ(snap->scan({0, 1, 2, 3}),
            (std::vector<std::uint64_t>{10, 0, 30, 40}));
}

TEST_P(BatchContractTest, DuplicateIndicesCoalesceLastWins) {
  exec::ScopedPid pid(0);
  auto snap = test::make_snapshot(*GetParam(), 4, 2);
  snap->update_batch({{1, 5}, {3, 6}, {1, 7}, {1, 8}});
  // batch_size reports DISTINCT components after coalescing.  Read it
  // before the scan below resets the thread's op stats.
  const std::uint32_t merged = core::tls_op_stats().batch_size;
  EXPECT_EQ(snap->scan({1, 3}), (std::vector<std::uint64_t>{8, 6}));
  if (GetParam()->counts_steps) {
    EXPECT_EQ(merged, 2u);
  }
}

TEST_P(BatchContractTest, BatchReachesGrownComponents) {
  exec::ScopedPid pid(0);
  auto snap = test::make_snapshot(*GetParam(), 2, 2);
  std::uint32_t first = snap->add_components(2);
  snap->update_batch({{first, 1}, {first + 1, 2}, {0, 3}});
  EXPECT_EQ(snap->scan({0, first, first + 1}),
            (std::vector<std::uint64_t>{3, 1, 2}));
}

INSTANTIATE_TEST_SUITE_P(BatchCapableImpls, BatchContractTest,
                         ::testing::ValuesIn(all_batch_impls()),
                         test::snapshot_param_name);

TEST(BatchContract, UnsupportedImplementationsThrow) {
  exec::ScopedPid pid(0);
  auto snap = registry::make_snapshot("fig1_register", 4, 2);
  EXPECT_EQ(snap->batch_atomicity(), BatchAtomicity::kUnsupported);
  EXPECT_THROW(snap->update_batch({{0, 1}}), std::logic_error);
  std::vector<core::BlobBatchEntry> blobs;
  EXPECT_THROW(
      snap->update_batch_blob(std::span<const core::BlobBatchEntry>(blobs)),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// The atomicity oracle under explored schedules.
// ---------------------------------------------------------------------------

// The writer runs batch g setting ALL of components {0,1} to g, for
// g = 1, 2.  Under kAtomic the only observable states are (0,0), (1,1),
// (2,2); under kAmortized entries apply in order, so the prefix states
// (1,0) and (2,1) join the set.  Anything else is a bug regardless of
// tier.
void expect_batch_consistent(const std::vector<std::uint64_t>& out,
                             BatchAtomicity tier, const std::string& name) {
  ASSERT_EQ(out.size(), 2u);
  const bool uniform = out[0] == out[1] && out[0] <= 2;
  const bool prefix =
      (out[0] == 1 && out[1] == 0) || (out[0] == 2 && out[1] == 1);
  if (tier == BatchAtomicity::kAtomic) {
    EXPECT_TRUE(uniform) << name << " tore a batch: saw (" << out[0] << ", "
                         << out[1] << ")";
  } else {
    EXPECT_TRUE(uniform || prefix)
        << name << " saw impossible state (" << out[0] << ", " << out[1]
        << ")";
  }
}

class BatchAtomicityTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(BatchAtomicityTest, ScansNeverObserveTornBatchesDfs) {
  auto stats = runtime::explore_dfs(
      [&](const std::vector<std::uint32_t>& script) {
        auto snap = test::make_snapshot(*GetParam(), 2, 2);
        const BatchAtomicity tier = snap->batch_atomicity();

        SimScheduler::Options options;
        options.script = script;
        SimScheduler sched(options);
        sched.add_process([&] {
          snap->update_batch({{0, 1}, {1, 1}});
          snap->update_batch({{0, 2}, {1, 2}});
        });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          snap->scan(std::vector<std::uint32_t>{0, 1}, out);
          expect_batch_consistent(out, tier, GetParam()->name);
        });
        return sched.run();
      },
      ExploreOptions{.max_schedules = 600});
  EXPECT_TRUE(stats.exhausted || stats.schedules_run >= 100u);
}

TEST_P(BatchAtomicityTest, ConcurrentBatchesFromTwoWritersStayWhole) {
  runtime::explore_random(
      [&](std::uint64_t seed) {
        auto snap = test::make_snapshot(*GetParam(), 2, 3);
        const BatchAtomicity tier = snap->batch_atomicity();

        SimScheduler::Options options;
        options.policy = SimScheduler::Policy::kRandom;
        options.seed = seed;
        SimScheduler sched(options);
        // Both writers write BOTH components, so under kAtomic every scan
        // still sees a uniform pair no matter how the batches interleave.
        sched.add_process([&] { snap->update_batch({{0, 1}, {1, 1}}); });
        sched.add_process([&] { snap->update_batch({{0, 2}, {1, 2}}); });
        sched.add_process([&] {
          std::vector<std::uint64_t> out;
          for (int s = 0; s < 2; ++s) {
            snap->scan(std::vector<std::uint32_t>{0, 1}, out);
            ASSERT_EQ(out.size(), 2u);
            EXPECT_LE(out[0], 2u) << GetParam()->name;
            EXPECT_LE(out[1], 2u) << GetParam()->name;
            if (tier == BatchAtomicity::kAtomic) {
              EXPECT_EQ(out[0], out[1])
                  << GetParam()->name << " tore a batch";
            }
          }
        });
        sched.run();
      },
      /*runs=*/80);
}

INSTANTIATE_TEST_SUITE_P(SimSafeImpls, BatchAtomicityTest,
                         ::testing::ValuesIn(sim_batch_impls()),
                         test::snapshot_param_name);

// ---------------------------------------------------------------------------
// Crash sweeps: a writer halts at every step of its update_batch.
// ---------------------------------------------------------------------------

class BatchCrashTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

// The survivor must keep scanning and batching; its scans must still
// respect the atomicity tier (a crashed kAtomic batch is all-or-nothing:
// helpers either complete it or never see it); and destroying the
// snapshot right after must reclaim the orphaned descriptor and its
// never-installed records -- the unwind returns unpublished pool nodes
// immediately, the destructor sweep frees what the halt stranded (the
// ASan preset runs this binary, so a leak fails CI).
TEST_P(BatchCrashTest, CrashMidBatchNeverTearsAndNeverLeaks) {
  for (std::uint64_t crash_step = 1; crash_step <= 30; ++crash_step) {
    auto snap = test::make_snapshot(*GetParam(), 2, 2);
    const BatchAtomicity tier = snap->batch_atomicity();
    bool survivor_finished = false;

    SimScheduler::Options options;
    options.crashes = {{0, crash_step}};
    SimScheduler sched(options);
    sched.add_process([&] { snap->update_batch({{0, 7}, {1, 7}}); });
    sched.add_process([&] {
      std::vector<std::uint64_t> out;
      auto check = [&] {
        ASSERT_EQ(out.size(), 2u);
        for (std::uint64_t v : out) {
          EXPECT_TRUE(v == 0 || v == 7 || v == 9)
              << GetParam()->name << " invented value " << v;
        }
        if (tier == BatchAtomicity::kAtomic && out[0] != 9 && out[1] != 9) {
          EXPECT_EQ(out[0], out[1])
              << GetParam()->name << " tore the crashed batch";
        }
      };
      // First scan may race or help the dying batch.
      snap->scan(std::vector<std::uint32_t>{0, 1}, out);
      check();
      // The survivor's own batch must complete despite the orphan.
      snap->update_batch({{0, 9}, {1, 9}});
      snap->scan(std::vector<std::uint32_t>{0, 1}, out);
      check();
      survivor_finished = true;
    });
    sched.run();

    ASSERT_TRUE(survivor_finished)
        << GetParam()->name << " crash at step " << crash_step;
  }
}

INSTANTIATE_TEST_SUITE_P(SimSafeImpls, BatchCrashTest,
                         ::testing::ValuesIn(sim_batch_impls()),
                         test::snapshot_param_name);

}  // namespace
}  // namespace psnap::ingest
