// Dynamic pid lifecycle: lowest-free allocation, reuse after release,
// RAII installation, capacity behavior, and concurrent churn exclusivity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/thread_registry.h"

namespace psnap::exec {
namespace {

TEST(ThreadRegistryTest, AcquiresLowestFreePidAndReusesAfterRelease) {
  ThreadRegistry registry(8);
  EXPECT_EQ(registry.acquire(), 0u);
  EXPECT_EQ(registry.acquire(), 1u);
  EXPECT_EQ(registry.acquire(), 2u);
  EXPECT_EQ(registry.active_count(), 3u);
  registry.release(1);
  EXPECT_EQ(registry.active_count(), 2u);
  // The freed pid is the lowest, so the next joiner gets it back.
  EXPECT_EQ(registry.acquire(), 1u);
  registry.release(0);
  registry.release(1);
  registry.release(2);
  EXPECT_EQ(registry.active_count(), 0u);
}

TEST(ThreadRegistryTest, TryAcquireReportsExhaustionWithoutAsserting) {
  ThreadRegistry registry(2);
  EXPECT_EQ(registry.try_acquire(), 0u);
  EXPECT_EQ(registry.try_acquire(), 1u);
  EXPECT_EQ(registry.try_acquire(), kInvalidPid);
  registry.release(0);
  EXPECT_EQ(registry.try_acquire(), 0u);
  registry.release(0);
  registry.release(1);
}

TEST(ThreadRegistryTest, WatermarkTracksHighestPidEverIssued) {
  ThreadRegistry registry(8);
  EXPECT_EQ(registry.high_watermark(), 0u);
  std::uint32_t a = registry.acquire();
  std::uint32_t b = registry.acquire();
  EXPECT_EQ(registry.high_watermark(), 2u);
  registry.release(a);
  registry.release(b);
  // Release does not lower the watermark; re-acquisition of low pids does
  // not raise it.
  std::uint32_t c = registry.acquire();
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(registry.high_watermark(), 2u);
  registry.release(c);
}

TEST(ThreadRegistryTest, HandleInstallsPidIntoThreadContextAndRestores) {
  ThreadRegistry registry(4);
  EXPECT_EQ(ctx().pid, kInvalidPid);
  {
    ThreadHandle handle(registry);
    EXPECT_EQ(handle.pid(), 0u);
    EXPECT_EQ(ctx().pid, 0u);
  }
  EXPECT_EQ(ctx().pid, kInvalidPid);
  EXPECT_EQ(registry.active_count(), 0u);
  // The released pid is immediately reusable.
  ThreadHandle again(registry);
  EXPECT_EQ(again.pid(), 0u);
}

TEST(ThreadRegistryTest, ConcurrentChurnNeverSharesALivePid) {
  constexpr std::uint32_t kCapacity = 4;
  constexpr std::uint32_t kThreads = 8;
  constexpr int kLives = 400;
  ThreadRegistry registry(kCapacity);
  std::atomic<int> owners[kCapacity] = {};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int life = 0; life < kLives; ++life) {
        std::uint32_t pid = registry.try_acquire();
        if (pid == kInvalidPid) {
          std::this_thread::yield();  // all pids live; retry next life
          continue;
        }
        // try_acquire never returns a pid at or above the capacity.
        if (owners[pid].fetch_add(1) != 0) violation.store(true);
        owners[pid].fetch_sub(1);
        registry.release(pid);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load()) << "two live threads shared a pid";
  EXPECT_EQ(registry.active_count(), 0u);
}

TEST(ThreadRegistryTest, ProcessWideRegistryBacksDefaultHandles) {
  std::uint32_t seen = kInvalidPid;
  std::thread worker([&] {
    ThreadHandle handle;  // process-wide registry
    seen = handle.pid();
  });
  worker.join();
  EXPECT_LT(seen, ThreadRegistry::process_wide().max_threads());
}

}  // namespace
}  // namespace psnap::exec
