// Dynamic pid lifecycle: lowest-free allocation, reuse after release,
// RAII installation, capacity behavior, and concurrent churn exclusivity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/thread_registry.h"

namespace psnap::exec {
namespace {

TEST(ThreadRegistryTest, AcquiresLowestFreePidAndReusesAfterRelease) {
  ThreadRegistry registry(8);
  EXPECT_EQ(registry.acquire(), 0u);
  EXPECT_EQ(registry.acquire(), 1u);
  EXPECT_EQ(registry.acquire(), 2u);
  EXPECT_EQ(registry.active_count(), 3u);
  registry.release(1);
  EXPECT_EQ(registry.active_count(), 2u);
  // The freed pid is the lowest, so the next joiner gets it back.
  EXPECT_EQ(registry.acquire(), 1u);
  registry.release(0);
  registry.release(1);
  registry.release(2);
  EXPECT_EQ(registry.active_count(), 0u);
}

TEST(ThreadRegistryTest, TryAcquireReportsExhaustionWithoutAsserting) {
  ThreadRegistry registry(2);
  EXPECT_EQ(registry.try_acquire(), 0u);
  EXPECT_EQ(registry.try_acquire(), 1u);
  EXPECT_EQ(registry.try_acquire(), kInvalidPid);
  registry.release(0);
  EXPECT_EQ(registry.try_acquire(), 0u);
  registry.release(0);
  registry.release(1);
}

TEST(ThreadRegistryTest, WatermarkStaysDenseUnderReleaseReacquireChurn) {
  // The property adaptive walks (exec/pid_bound.h) rely on: lowest-free
  // reuse means churn re-issues the same low pids, so the watermark
  // converges to the PEAK live population and stays there -- walks stay
  // short no matter how many thread lifetimes pass.
  ThreadRegistry registry(64);
  constexpr std::uint32_t kPeakLive = 5;
  std::uint32_t pids[kPeakLive];
  for (std::uint32_t i = 0; i < kPeakLive; ++i) pids[i] = registry.acquire();
  EXPECT_EQ(registry.high_watermark(), kPeakLive);
  for (int life = 0; life < 1000; ++life) {
    // Whole-cohort churn: release everything, reacquire everything.
    for (std::uint32_t i = 0; i < kPeakLive; ++i) registry.release(pids[i]);
    for (std::uint32_t i = 0; i < kPeakLive; ++i) {
      pids[i] = registry.acquire();
      EXPECT_LT(pids[i], kPeakLive);
    }
    EXPECT_EQ(registry.high_watermark(), kPeakLive) << "life " << life;
    // Partial churn: a middle pid cycles alone and must come back.
    registry.release(pids[2]);
    pids[2] = registry.acquire();
    EXPECT_EQ(pids[2], 2u);
    EXPECT_EQ(registry.high_watermark(), kPeakLive);
  }
  for (std::uint32_t i = 0; i < kPeakLive; ++i) registry.release(pids[i]);
  // Monotone by design: full release does not lower it either.
  EXPECT_EQ(registry.high_watermark(), kPeakLive);
}

TEST(ThreadRegistryTest, WatermarkIsMonotoneAndBoundedUnderConcurrentChurn) {
  // Concurrent lives hammer a small capacity; the watermark may only
  // ratchet upward and can never exceed the capacity -- i.e. adaptive
  // walks are never longer than the full-range walk they replace.
  constexpr std::uint32_t kCapacity = 4;
  ThreadRegistry registry(kCapacity);
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      std::uint32_t last_seen = 0;
      for (int life = 0; life < 2000; ++life) {
        std::uint32_t pid = registry.try_acquire();
        std::uint32_t seen = registry.high_watermark();
        if (seen < last_seen || seen > kCapacity) violation.store(true);
        last_seen = seen;
        if (pid == kInvalidPid) {
          std::this_thread::yield();
          continue;
        }
        if (seen < pid + 1) violation.store(true);  // own pid covered
        registry.release(pid);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load());
  EXPECT_LE(registry.high_watermark(), kCapacity);
}

TEST(ThreadRegistryTest, LocalRegistryHandlesRaiseTheProcessWideWatermark) {
  // A pid issued by a LOCAL registry indexes the same per-pid storage as
  // any other; objects bounded by the default (process-wide) PidBound
  // must still cover it, so ThreadHandle notes it process-wide.
  ThreadRegistry local(16);
  std::uint32_t seen = kInvalidPid;
  std::thread worker([&] {
    ThreadHandle handle(local);
    seen = handle.pid();
  });
  worker.join();
  EXPECT_NE(seen, kInvalidPid);
  EXPECT_GE(ThreadRegistry::process_wide().high_watermark(), seen + 1);
}

TEST(ThreadRegistryTest, NotePidInUseRaisesTheWatermarkForManualPids) {
  // ScopedPid installs pids without a registry acquire; it must still
  // raise the process-wide watermark so adaptive walks cover them.
  std::uint32_t before = ThreadRegistry::process_wide().high_watermark();
  {
    exec::ScopedPid pid(before + 3);
    EXPECT_GE(ThreadRegistry::process_wide().high_watermark(), before + 4);
  }
  // Monotone: dropping the ScopedPid does not lower it.
  EXPECT_GE(ThreadRegistry::process_wide().high_watermark(), before + 4);
}

TEST(ThreadRegistryTest, WatermarkTracksHighestPidEverIssued) {
  ThreadRegistry registry(8);
  EXPECT_EQ(registry.high_watermark(), 0u);
  std::uint32_t a = registry.acquire();
  std::uint32_t b = registry.acquire();
  EXPECT_EQ(registry.high_watermark(), 2u);
  registry.release(a);
  registry.release(b);
  // Release does not lower the watermark; re-acquisition of low pids does
  // not raise it.
  std::uint32_t c = registry.acquire();
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(registry.high_watermark(), 2u);
  registry.release(c);
}

TEST(ThreadRegistryTest, HandleInstallsPidIntoThreadContextAndRestores) {
  ThreadRegistry registry(4);
  EXPECT_EQ(ctx().pid, kInvalidPid);
  {
    ThreadHandle handle(registry);
    EXPECT_EQ(handle.pid(), 0u);
    EXPECT_EQ(ctx().pid, 0u);
  }
  EXPECT_EQ(ctx().pid, kInvalidPid);
  EXPECT_EQ(registry.active_count(), 0u);
  // The released pid is immediately reusable.
  ThreadHandle again(registry);
  EXPECT_EQ(again.pid(), 0u);
}

TEST(ThreadRegistryTest, ConcurrentChurnNeverSharesALivePid) {
  constexpr std::uint32_t kCapacity = 4;
  constexpr std::uint32_t kThreads = 8;
  constexpr int kLives = 400;
  ThreadRegistry registry(kCapacity);
  std::atomic<int> owners[kCapacity] = {};
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int life = 0; life < kLives; ++life) {
        std::uint32_t pid = registry.try_acquire();
        if (pid == kInvalidPid) {
          std::this_thread::yield();  // all pids live; retry next life
          continue;
        }
        // try_acquire never returns a pid at or above the capacity.
        if (owners[pid].fetch_add(1) != 0) violation.store(true);
        owners[pid].fetch_sub(1);
        registry.release(pid);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation.load()) << "two live threads shared a pid";
  EXPECT_EQ(registry.active_count(), 0u);
}

TEST(ThreadRegistryTest, ProcessWideRegistryBacksDefaultHandles) {
  std::uint32_t seen = kInvalidPid;
  std::thread worker([&] {
    ThreadHandle handle;  // process-wide registry
    seen = handle.pid();
  });
  worker.join();
  EXPECT_LT(seen, ThreadRegistry::process_wide().max_threads());
}

}  // namespace
}  // namespace psnap::exec
