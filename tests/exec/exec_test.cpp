#include "exec/exec.h"

#include <gtest/gtest.h>

#include <thread>

#include "primitives/primitives.h"

namespace psnap::exec {
namespace {

TEST(StepCounters, StartAtZero) {
  StepCounters c;
  EXPECT_EQ(c.total, 0u);
  for (std::size_t k = 0; k < kNumObjKinds; ++k) EXPECT_EQ(c.by_kind[k], 0u);
}

TEST(StepCounters, OnStepIncrements) {
  ctx().steps.reset();
  on_step(ObjKind::kRegister);
  on_step(ObjKind::kRegister);
  on_step(ObjKind::kCas);
  on_step(ObjKind::kFai);
  EXPECT_EQ(ctx().steps.total, 4u);
  EXPECT_EQ(ctx().steps.by_kind[size_t(ObjKind::kRegister)], 2u);
  EXPECT_EQ(ctx().steps.by_kind[size_t(ObjKind::kCas)], 1u);
  EXPECT_EQ(ctx().steps.by_kind[size_t(ObjKind::kFai)], 1u);
}

TEST(StepCounters, DifferenceOperator) {
  StepCounters a, b;
  a.total = 10;
  a.by_kind[0] = 7;
  b.total = 4;
  b.by_kind[0] = 3;
  StepCounters d = a - b;
  EXPECT_EQ(d.total, 6u);
  EXPECT_EQ(d.by_kind[0], 4u);
}

TEST(ThreadCtx, PerThreadIsolation) {
  ctx().steps.reset();
  on_step(ObjKind::kRegister);
  std::uint64_t other_total = 99;
  std::thread t([&] {
    other_total = ctx().steps.total;  // fresh thread-local context
  });
  t.join();
  EXPECT_EQ(other_total, 0u);
  EXPECT_EQ(ctx().steps.total, 1u);
}

TEST(ScopedPid, SetsAndRestores) {
  EXPECT_EQ(ctx().pid, kInvalidPid);
  {
    ScopedPid guard(5);
    EXPECT_EQ(ctx().pid, 5u);
  }
  EXPECT_EQ(ctx().pid, kInvalidPid);
}

TEST(ScopedPidDeathTest, NestingAborts) {
  ScopedPid guard(1);
  EXPECT_DEATH(ScopedPid inner(2), "already has a pid");
}

TEST(RecordingLogger, CapturesLabelledAccesses) {
  primitives::Register<std::uint64_t> reg(0, /*label=*/42);
  RecordingLogger logger;
  {
    ScopedLogger guard(&logger);
    reg.store(7);
    (void)reg.load();
  }
  (void)reg.load();  // not logged
  ASSERT_EQ(logger.accesses().size(), 2u);
  EXPECT_EQ(logger.accesses()[0].label, 42u);
  EXPECT_EQ(logger.accesses()[0].kind, ObjKind::kRegister);
}

TEST(RecordingLogger, RestoredOnScopeExit) {
  RecordingLogger outer_logger;
  RecordingLogger inner_logger;
  primitives::Register<std::uint64_t> reg(0, 1);
  ScopedLogger outer(&outer_logger);
  {
    ScopedLogger inner(&inner_logger);
    reg.store(1);
  }
  reg.store(2);
  EXPECT_EQ(inner_logger.accesses().size(), 1u);
  EXPECT_EQ(outer_logger.accesses().size(), 1u);
}

}  // namespace
}  // namespace psnap::exec
