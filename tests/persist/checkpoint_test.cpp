// The durable checkpoint format: CRC framing, serialize/parse round
// trips on every value plane, the atomic-rename commit protocol, and the
// loader's newest-intact-frame contract (the torn/corrupt half of that
// contract lives in torn_checkpoint_test.cpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "persist/checkpoint.h"
#include "persist/crc32.h"

namespace psnap::persist {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "psnap-ckpt-XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

CheckpointData sample_u64_frame(std::uint64_t sequence) {
  CheckpointData frame;
  frame.impl_spec = "fig3_cas:coalesce=false";
  frame.sequence = sequence;
  frame.value_plane = "u64";
  frame.initial_m = 3;
  frame.num_components = 5;
  frame.max_threads = 8;
  frame.values = {10, 20, 30, 40, 50 + sequence};
  return frame;
}

TEST(Crc32, KnownAnswer) {
  const char* check = "123456789";
  EXPECT_EQ(crc32(std::as_bytes(std::span(check, 9))), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const char* data = "partial snapshot objects";
  auto bytes = std::as_bytes(std::span(data, 24));
  std::uint32_t state = crc32_init();
  state = crc32_update(state, bytes.first(7));
  state = crc32_update(state, bytes.subspan(7, 9));
  state = crc32_update(state, bytes.subspan(16));
  EXPECT_EQ(crc32_finish(state), crc32(bytes));
}

TEST(CheckpointFrame, RoundTripU64) {
  CheckpointData frame = sample_u64_frame(7);
  frame.epoch = 0;
  auto image = serialize_frame(frame);
  std::string error;
  auto parsed = parse_frame(image, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, frame);
}

TEST(CheckpointFrame, RoundTripBlob) {
  CheckpointData frame;
  frame.impl_spec = "fig3_cas_blob";
  frame.sequence = 3;
  frame.value_plane = "blob";
  frame.initial_m = 2;
  frame.num_components = 3;
  frame.max_threads = 4;
  frame.blobs = {value::Blob{std::byte{1}, std::byte{2}},
                 value::Blob{},  // empty payload survives
                 value::Blob(100, std::byte{0xAB})};
  auto parsed = parse_frame(serialize_frame(frame));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, frame);
}

TEST(CheckpointFrame, RoundTripVersionedKeepsEpoch) {
  CheckpointData frame = sample_u64_frame(9);
  frame.value_plane = "versioned";
  frame.impl_spec = "fig3_cas_versioned";
  frame.epoch = 123456789;
  auto parsed = parse_frame(serialize_frame(frame));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 123456789u);
  EXPECT_EQ(*parsed, frame);
}

TEST(CheckpointFrame, RoundTripPartial) {
  CheckpointData frame = sample_u64_frame(2);
  frame.indices = {1, 4};
  frame.values = {21, 54};
  auto parsed = parse_frame(serialize_frame(frame));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->is_full());
  EXPECT_EQ(*parsed, frame);
}

TEST(CheckpointFrame, SerializeValidates) {
  CheckpointData bad_plane = sample_u64_frame(1);
  bad_plane.value_plane = "exotic";
  EXPECT_THROW(serialize_frame(bad_plane), std::invalid_argument);

  CheckpointData bad_count = sample_u64_frame(1);
  bad_count.values.pop_back();
  EXPECT_THROW(serialize_frame(bad_count), std::invalid_argument);

  CheckpointData bad_index = sample_u64_frame(1);
  bad_index.indices = {99};
  bad_index.values = {1};
  EXPECT_THROW(serialize_frame(bad_index), std::invalid_argument);
}

TEST(CheckpointWriter, CommitThenLoadNewest) {
  TempDir dir;
  CheckpointWriter writer(dir.path);
  CheckpointLoader loader(dir.path);

  EXPECT_EQ(loader.load_newest(), std::nullopt);

  writer.commit(sample_u64_frame(1));
  writer.commit(sample_u64_frame(2));
  std::string path3 = writer.commit(sample_u64_frame(3));
  EXPECT_TRUE(fs::exists(path3));

  auto loaded = loader.load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, sample_u64_frame(3));
}

TEST(CheckpointWriter, PrunesToKeepFrames) {
  TempDir dir;
  CheckpointWriter::Options options;
  options.keep_frames = 2;
  options.sync = false;
  CheckpointWriter writer(dir.path, options);
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    writer.commit(sample_u64_frame(seq));
  }
  CheckpointLoader loader(dir.path);
  auto paths = loader.frame_paths();
  ASSERT_EQ(paths.size(), 2u);
  auto loaded = loader.load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 5u);
}

TEST(CheckpointLoader, IgnoresTmpOrphansAndStrays) {
  TempDir dir;
  CheckpointWriter writer(dir.path);
  writer.commit(sample_u64_frame(4));

  // A torn temp file from a crash mid-write, a stray file, and a
  // non-frame name: none may influence the load.
  std::ofstream(dir.path + "/ckpt-9.psnap.tmp") << "torn";
  std::ofstream(dir.path + "/notes.txt") << "hello";
  std::ofstream(dir.path + "/ckpt-abc.psnap") << "not a sequence";

  CheckpointLoader loader(dir.path);
  auto loaded = loader.load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 4u);
}

TEST(CheckpointLoader, MissingDirectoryIsEmpty) {
  CheckpointLoader loader("/nonexistent/psnap-checkpoints");
  EXPECT_TRUE(loader.frame_paths().empty());
  EXPECT_EQ(loader.load_newest(), std::nullopt);
}

TEST(CheckpointLoader, FramePathsNewestFirst) {
  TempDir dir;
  CheckpointWriter::Options options;
  options.sync = false;
  CheckpointWriter writer(dir.path, options);
  // Commit out of order; paths must come back by sequence, not by name or
  // mtime (seq 10 sorts after seq 9 despite "ckpt-10" < "ckpt-9"
  // lexicographically).
  writer.commit(sample_u64_frame(10));
  writer.commit(sample_u64_frame(2));
  writer.commit(sample_u64_frame(9));
  CheckpointLoader loader(dir.path);
  auto paths = loader.frame_paths();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_NE(paths[0].find("ckpt-10"), std::string::npos);
  EXPECT_NE(paths[1].find("ckpt-9"), std::string::npos);
  EXPECT_NE(paths[2].find("ckpt-2"), std::string::npos);
}

}  // namespace
}  // namespace psnap::persist
