// The loader's corruption contract, test-enforced: a torn, truncated, or
// bit-flipped frame is NEVER restored from.  Every load in this file must
// return byte-exactly one of the frames that were actually committed (or
// nothing at all) -- the loader either falls back to the previous intact
// frame or fails loudly, and in no case returns garbage.
//
// The sweeps are exhaustive, not sampled: every truncation length of the
// newest frame, and every bit of every byte.  CRC-32 detects all
// single-bit errors, so the bit-flip half holds by construction; the
// truncation half additionally exercises the structural bounds checks
// (a prefix of a valid frame re-framed by a shorter length field must
// still die on the CRC or a bounds check, never read out of range --
// ASan in CI watches exactly that).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "persist/checkpoint.h"

namespace psnap::persist {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "psnap-torn-XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CheckpointData make_frame(std::uint64_t sequence) {
  CheckpointData frame;
  frame.impl_spec = "fig3_cas";
  frame.sequence = sequence;
  frame.value_plane = "u64";
  frame.initial_m = 2;
  frame.num_components = 4;
  frame.max_threads = 4;
  frame.values = {sequence * 100, sequence * 100 + 1, sequence * 100 + 2,
                  sequence * 100 + 3};
  return frame;
}

class TornCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CheckpointWriter::Options options;
    options.sync = false;  // thousands of commits/loads in the sweeps
    CheckpointWriter writer(dir_.path, options);
    frame_a_ = make_frame(1);
    frame_b_ = make_frame(2);
    path_a_ = writer.commit(frame_a_);
    path_b_ = writer.commit(frame_b_);
    bytes_b_ = read_file(path_b_);
    ASSERT_FALSE(bytes_b_.empty());
  }

  // Asserts the invariant every corruption case must satisfy: the load
  // returns exactly frame A (the fallback) -- not garbage, not a
  // half-believed B.
  void expect_falls_back_to_a() {
    CheckpointLoader::Report report;
    auto loaded = CheckpointLoader(dir_.path).load_newest(&report);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(*loaded, frame_a_);
    ASSERT_FALSE(report.rejected.empty());
  }

  TempDir dir_;
  CheckpointData frame_a_, frame_b_;
  std::string path_a_, path_b_;
  std::vector<char> bytes_b_;
};

TEST_F(TornCheckpointTest, IntactNewestWins) {
  auto loaded = CheckpointLoader(dir_.path).load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, frame_b_);
}

TEST_F(TornCheckpointTest, EveryTruncationFallsBack) {
  for (std::size_t len = 0; len < bytes_b_.size(); ++len) {
    write_file(path_b_, std::vector<char>(bytes_b_.begin(),
                                          bytes_b_.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  len)));
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    expect_falls_back_to_a();
  }
}

TEST_F(TornCheckpointTest, EveryBitFlipFallsBack) {
  for (std::size_t i = 0; i < bytes_b_.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<char> corrupt = bytes_b_;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      write_file(path_b_, corrupt);
      SCOPED_TRACE("bit " + std::to_string(bit) + " of byte " +
                   std::to_string(i));
      expect_falls_back_to_a();
    }
  }
}

TEST_F(TornCheckpointTest, GarbageFrameFallsBack) {
  std::vector<char> garbage(257);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (char& c : garbage) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    c = static_cast<char>(x);
  }
  // Garbage posing as the NEWEST frame: must be rejected, falling back to
  // the intact B.
  write_file(dir_.path + "/ckpt-3.psnap", garbage);
  CheckpointLoader::Report report;
  auto loaded = CheckpointLoader(dir_.path).load_newest(&report);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, frame_b_);
  EXPECT_EQ(report.rejected.size(), 1u);
}

TEST_F(TornCheckpointTest, AllFramesCorruptFailsLoudly) {
  write_file(path_a_, {'n', 'o'});
  write_file(path_b_, {});
  CheckpointLoader::Report report;
  EXPECT_EQ(CheckpointLoader(dir_.path).load_newest(&report), std::nullopt);
  EXPECT_EQ(report.rejected.size(), 2u);
}

TEST_F(TornCheckpointTest, SwappedFrameBodiesRejected) {
  // A frame whose FILENAME claims sequence 3 but whose (intact) body says
  // sequence 1 is still a valid frame -- the body, protected by its CRC,
  // is the truth; the filename only orders the walk.  The loader may
  // return it, but what it returns must be the real frame A content, not
  // anything influenced by the name.
  std::vector<char> bytes_a = read_file(path_a_);
  write_file(dir_.path + "/ckpt-3.psnap", bytes_a);
  auto loaded = CheckpointLoader(dir_.path).load_newest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, frame_a_);
}

}  // namespace
}  // namespace psnap::persist
