// End-to-end integration: the paper's stock-portfolio motivation as an
// executable invariant.
//
// Each "ticker" is a pair of components maintained by one owner thread:
//   even component  = cumulative shares issued   (E)
//   odd component   = cumulative shares settled  (O)
// The owner increments E then O in lock-step, so at EVERY instant
//   O <= E <= O + 1.
// A linearizable partial scan of the pair must observe that invariant; a
// torn scan (mixing values from different instants) shows E - O outside
// {0, 1} as soon as the owner has advanced in between.  A deliberately
// naive piecewise reader is included as a control to prove the workload
// does generate tearing when consistency is NOT enforced.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "core/cas_psnap.h"
#include "core/partial_snapshot.h"
#include "exec/exec.h"
#include "registry/registry.h"
#include "tests/support/registry_params.h"

namespace psnap::core {
namespace {

// Every registered implementation is linearizable, so all of them must
// keep the pair invariant (uncapped double-collect/seqlock scans can
// retry but always return a consistent pair once the owners finish).
class PortfolioInvariantTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(PortfolioInvariantTest, PairInvariantHoldsUnderChurn) {
  constexpr std::uint32_t kPairs = 2;
  constexpr std::uint32_t kM = 2 * kPairs;
  constexpr std::uint64_t kIterations = 30000;
  constexpr int kAudits = 5000;

  auto snap = test::make_snapshot(*GetParam(), kM, kPairs + 2);

  std::vector<std::thread> owners;
  for (std::uint32_t p = 0; p < kPairs; ++p) {
    owners.emplace_back([&snap, p] {
      exec::ScopedPid pid(p);
      for (std::uint64_t k = 1; k <= kIterations; ++k) {
        snap->update(2 * p, k);      // E := k   (invariant: E <= O+1 holds)
        snap->update(2 * p + 1, k);  // O := k   (back to E == O)
      }
    });
  }

  std::atomic<std::uint64_t> violations{0};
  std::vector<std::thread> auditors;
  for (std::uint32_t a = 0; a < 2; ++a) {
    auditors.emplace_back([&, a] {
      exec::ScopedPid pid(kPairs + a);
      std::vector<std::uint64_t> out;
      for (int i = 0; i < kAudits; ++i) {
        std::uint32_t p = static_cast<std::uint32_t>(i) % kPairs;
        snap->scan(std::vector<std::uint32_t>{2 * p, 2 * p + 1}, out);
        std::uint64_t issued = out[0], settled = out[1];
        if (!(settled <= issued && issued <= settled + 1)) {
          violations.fetch_add(1);
        }
      }
    });
  }

  for (auto& t : owners) t.join();
  for (auto& t : auditors) t.join();
  EXPECT_EQ(violations.load(), 0u) << GetParam()->name;
}

INSTANTIATE_TEST_SUITE_P(LinearizableImpls, PortfolioInvariantTest,
                         ::testing::ValuesIn(test::snapshot_impls()),
                         test::snapshot_param_name);

TEST(PortfolioControl, NaivePiecewiseReadsDoTear) {
  // Control experiment: read the pair with two independent scans (which is
  // exactly the inconsistent piece-by-piece read of the paper's
  // introduction) and show the invariant DOES get violated -- i.e. the
  // workload is strong enough that the tests above are meaningful.
  constexpr std::uint64_t kIterations = 400000;
  CasPartialSnapshot snap(2, 3);

  std::atomic<bool> done{false};
  std::thread owner([&] {
    exec::ScopedPid pid(0);
    for (std::uint64_t k = 1; k <= kIterations; ++k) {
      snap.update(0, k);
      snap.update(1, k);
    }
    done = true;
  });

  std::uint64_t violations = 0;
  {
    exec::ScopedPid pid(2);
    std::vector<std::uint64_t> issued_out, settled_out;
    while (!done && violations == 0) {
      // Deliberately wrong: two separate atomic reads, not one scan.
      snap.scan(std::vector<std::uint32_t>{1}, settled_out);
      snap.scan(std::vector<std::uint32_t>{0}, issued_out);
      std::uint64_t issued = issued_out[0], settled = settled_out[0];
      if (!(settled <= issued && issued <= settled + 1)) ++violations;
    }
  }
  owner.join();
  EXPECT_GT(violations, 0u)
      << "piecewise reads never tore; the invariant tests are too weak";
}

}  // namespace
}  // namespace psnap::core
