// The restore() contract: a full frame rebuilds a registry-spec'd object
// whose observable state (plane, component count, growth watermark,
// payloads) matches the consistent scan that was checkpointed -- across
// value planes, across growth, and for checkpoints taken while a grower
// was crashed mid-add_components at every step (the satellite's
// crash-during-growth suite, driven through runtime::FaultPlan).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <vector>

#include "exec/exec.h"
#include "exec/thread_registry.h"
#include "persist/checkpoint.h"
#include "recovery/checkpointer.h"
#include "recovery/restore.h"
#include "registry/registry.h"
#include "runtime/fault_plan.h"
#include "runtime/sim_scheduler.h"
#include "tests/support/registry_params.h"

namespace psnap::recovery {
namespace {

namespace fs = std::filesystem;
using persist::CheckpointData;
using persist::CheckpointLoader;
using persist::CheckpointWriter;
using runtime::FaultPlan;
using runtime::SimScheduler;

struct TempDir {
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "psnap-rest-XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// Checkpoint `snap` through the full disk pipeline (capture -> commit ->
// load) and return the loaded frame.
CheckpointData disk_round_trip(core::PartialSnapshot& snap,
                               const std::string& spec, std::uint32_t m0,
                               std::uint32_t max_threads) {
  TempDir dir;
  CheckpointWriter writer(dir.path);
  Checkpointer::Options options;
  options.impl_spec = spec;
  options.initial_m = m0;
  options.max_threads = max_threads;
  Checkpointer ck(snap, writer, options);
  ck.checkpoint_now();
  auto loaded = CheckpointLoader(dir.path).load_newest();
  EXPECT_TRUE(loaded.has_value());
  return *loaded;
}

TEST(Restore, RoundTripAcrossSpecs) {
  const char* specs[] = {
      "fig1_register", "fig3_cas",        "fig3_cas:value=blob",
      "fig3_cas:value=versioned",         "fig3_cas:coalesce=false",
      "full_snapshot", "double_collect",  "seqlock",
      "seqlock:value=versioned",          "lock",
  };
  exec::ThreadHandle pid;
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    auto snap = registry::make_snapshot(spec, 6, 4);
    for (std::uint32_t i = 0; i < 6; ++i) snap->update(i, 100 + i * 7);

    CheckpointData frame = disk_round_trip(*snap, spec, 6, 4);
    auto restored = restore(frame);

    EXPECT_EQ(restored->value_plane(), snap->value_plane());
    EXPECT_EQ(restored->num_components(), 6u);
    EXPECT_EQ(restored->scan_all(), snap->scan_all());
  }
}

TEST(Restore, BlobPayloadsSurvive) {
  exec::ThreadHandle pid;
  const std::string spec = "fig3_cas:value=blob";
  auto snap = registry::make_snapshot(spec, 3, 4);
  std::vector<std::byte> long_payload(300, std::byte{0x5A});
  snap->update_blob(0, long_payload);
  snap->update_blob(1, {});  // empty payload
  snap->update(2, 77);       // logical-u64 8-byte payload

  CheckpointData frame = disk_round_trip(*snap, spec, 3, 4);
  auto restored = restore(frame);

  std::vector<value::Blob> expect, got;
  snap->scan_blobs(std::vector<std::uint32_t>{0, 1, 2}, expect);
  restored->scan_blobs(std::vector<std::uint32_t>{0, 1, 2}, got);
  EXPECT_EQ(got, expect);
}

TEST(Restore, ReplaysGrowthToTheWatermark) {
  exec::ThreadHandle pid;
  const std::string spec = "fig3_cas";
  auto snap = registry::make_snapshot(spec, 4, 4);
  std::uint32_t first = snap->add_components(4);
  ASSERT_EQ(first, 4u);
  for (std::uint32_t i = 0; i < 8; ++i) snap->update(i, i + 1);

  CheckpointData frame = disk_round_trip(*snap, spec, 4, 4);
  EXPECT_EQ(frame.initial_m, 4u);
  EXPECT_EQ(frame.num_components, 8u);

  auto restored = restore(frame);
  EXPECT_EQ(restored->num_components(), 8u);
  EXPECT_EQ(restored->scan_all(), snap->scan_all());

  // The grow-only lifecycle continues from the restored watermark.
  EXPECT_EQ(restored->add_components(2), 8u);
  EXPECT_EQ(restored->num_components(), 10u);
}

TEST(Restore, PartialFrameRejected) {
  exec::ThreadHandle pid;
  auto snap = registry::make_snapshot("fig3_cas", 4, 4);
  TempDir dir;
  CheckpointWriter writer(dir.path);
  Checkpointer::Options options;
  options.impl_spec = "fig3_cas";
  options.initial_m = 4;
  options.max_threads = 4;
  Checkpointer ck(*snap, writer, options);
  CheckpointData frame;
  std::vector<std::uint32_t> indices{0, 2};
  ck.capture(indices, frame);
  EXPECT_THROW(restore(frame), std::invalid_argument);
}

TEST(Restore, RequiresRegisteredPid) {
  CheckpointData frame;
  frame.impl_spec = "fig3_cas";
  frame.initial_m = 2;
  frame.num_components = 2;
  frame.max_threads = 2;
  frame.values = {1, 2};
  ASSERT_EQ(exec::ctx().pid, exec::kInvalidPid);
  EXPECT_THROW(restore(frame), std::logic_error);
}

TEST(Restore, PlaneMismatchRejected) {
  exec::ThreadHandle pid;
  CheckpointData frame;
  frame.impl_spec = "fig3_cas";  // builds the u64 plane...
  frame.value_plane = "blob";    // ...but the frame holds blobs
  frame.initial_m = 2;
  frame.num_components = 2;
  frame.max_threads = 2;
  frame.blobs = {value::Blob{}, value::Blob{}};
  EXPECT_THROW(restore(frame), std::invalid_argument);
}

TEST(Restore, ShrunkenFrameRejected) {
  exec::ThreadHandle pid;
  CheckpointData frame;
  frame.impl_spec = "fig3_cas";  // constructs m=4 via initial_m below
  frame.initial_m = 4;
  frame.num_components = 2;      // frame claims fewer than constructed
  frame.max_threads = 2;
  frame.values = {1, 2};
  // initial_m > num_components dies in the parser; emulate a consistent-
  // looking but shrunken frame via the spec's m0= override.
  frame.initial_m = 2;
  frame.impl_spec = "fig3_cas:m0=4";
  EXPECT_THROW(restore(frame), std::invalid_argument);
}

// ---- Crash during add_components (satellite) ----
//
// A grower is crashed at EVERY base-object step of an
// add_components+update sequence while a survivor keeps updating; the
// checkpoint taken afterwards must always serialize, survive the disk
// round trip, and restore to an object whose component count and values
// are consistent -- the count is whatever the crashed grow left published
// (old or new, never torn), every restored value matches the checkpoint
// scan, and growth replays on the restored object.
class CrashDuringGrowthTest
    : public ::testing::TestWithParam<const registry::SnapshotInfo*> {};

TEST_P(CrashDuringGrowthTest, CheckpointAndRestoreStayConsistent) {
  constexpr std::uint32_t kM0 = 2;
  constexpr std::uint32_t kGrow = 2;
  for (const FaultPlan& plan : FaultPlan::sweep(/*pid=*/0, 1, 28)) {
    auto snap = test::make_snapshot(*GetParam(), kM0, 3);
    SimScheduler sched(plan.apply());
    sched.add_process([&] {  // the grower, crashed mid-flight
      std::uint32_t first = snap->add_components(kGrow);
      snap->update(first, 1000);
    });
    sched.add_process([&] {  // survivor traffic
      std::vector<std::uint64_t> out;
      snap->update(0, 11);
      snap->scan(std::vector<std::uint32_t>{0, 1}, out);
      snap->update(1, 22);
    });
    sched.run();

    // The service side after the dust settles: checkpoint what the
    // object now holds, round-trip it, restore, compare.
    exec::ScopedPid pid(2);
    TempDir dir;
    CheckpointWriter::Options wopts;
    wopts.sync = false;  // dozens of crash points per impl
    CheckpointWriter writer(dir.path, wopts);
    Checkpointer::Options options;
    options.impl_spec = GetParam()->name;
    options.initial_m = kM0;
    options.max_threads = 3;
    Checkpointer ck(*snap, writer, options);
    ck.checkpoint_now();

    auto frame = CheckpointLoader(dir.path).load_newest();
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(frame->num_components == kM0 ||
                frame->num_components == kM0 + kGrow)
        << "torn component count " << frame->num_components;

    auto restored = restore(*frame);
    EXPECT_EQ(restored->num_components(), frame->num_components);
    if (frame->value_plane == "blob") {
      std::vector<std::uint32_t> idx(frame->num_components);
      std::iota(idx.begin(), idx.end(), 0u);
      std::vector<value::Blob> got;
      restored->scan_blobs(idx, got);
      EXPECT_EQ(got, frame->blobs);
    } else {
      EXPECT_EQ(restored->scan_all(), frame->values);
    }

    // Growth replays cleanly on the restored object regardless of where
    // the original grower died.
    std::uint32_t next = restored->add_components(1);
    EXPECT_EQ(next, frame->num_components);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WaitFreeImpls, CrashDuringGrowthTest,
    ::testing::ValuesIn(test::snapshot_impls(
        [](const registry::SnapshotInfo& info) {
          return info.is_wait_free && info.sim_safe;
        })),
    test::snapshot_param_name);

}  // namespace
}  // namespace psnap::recovery
